//! A realistic vision pipeline (SD-VBS stereo disparity) across every
//! architecture model the paper evaluates — the workload class whose
//! multi-object inner loops motivate sub-computation partitioning.
//!
//! ```text
//! cargo run --release --example image_pipeline
//! ```

use distda::system::{ConfigKind, RunConfig};
use distda::workloads::{disparity, Scale};

fn main() {
    let mut scale = Scale::eval();
    scale.img = 32; // keep the demo snappy
    let w = disparity(&scale);
    println!(
        "stereo disparity: {}x{} image, {} shifts, {} objects\n",
        scale.img,
        scale.img,
        scale.shifts,
        w.program.arrays.len()
    );
    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "config", "ticks", "energy(nJ)", "intra%", "D-A%", "A-A%"
    );
    for kind in ConfigKind::ALL {
        let r = w.simulate(&RunConfig::named(kind));
        assert!(r.validated, "wrong pixels under {}", r.config);
        let total = (r.intra_bytes + r.da_bytes + r.aa_bytes).max(1) as f64;
        println!(
            "{:<18} {:>12} {:>12.1} {:>9.1}% {:>9.1}% {:>9.1}%",
            r.config,
            r.ticks,
            r.energy_pj() / 1e3,
            100.0 * r.intra_bytes as f64 / total,
            100.0 * r.da_bytes as f64 / total,
            100.0 * r.aa_bytes as f64 / total,
        );
    }
    println!("\nintra = access-unit buffer hits (near-data reuse),");
    println!("D-A   = accelerator <-> cache hierarchy, A-A = operand dataflow.");
}
