//! Quickstart: author a kernel, offload it, compare against the OoO host.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use distda::ir::prelude::*;
use distda::system::{ConfigKind, RunConfig};

fn main() {
    // 1. Write a kernel in the IR: y[i] = sqrt(x[i]^2 + y[i]^2).
    let n = 16 * 1024;
    let mut b = ProgramBuilder::new("hypot");
    let x = b.array_f64("x", n);
    let y = b.array_f64("y", n);
    b.for_(0, n as i64, 1, |b, i| {
        let gx = Expr::load(x, i.clone());
        let gy = Expr::load(y, i.clone());
        let v = (gx.clone() * gx + gy.clone() * gy).sqrt();
        b.store(y, i, v);
    });
    let prog = b.build();

    // 2. Inputs.
    let init = |mem: &mut Memory| {
        for i in 0..n {
            mem.array_mut(x)[i] = Value::F(i as f64);
            mem.array_mut(y)[i] = Value::F(1.0);
        }
    };

    // 3. Simulate under the OoO baseline and the full Dist-DA-F system.
    println!(
        "{:<18} {:>12} {:>14} {:>12} {:>10}",
        "config", "ticks", "energy (nJ)", "NoC bytes", "valid"
    );
    let mut baseline = None;
    for kind in [
        ConfigKind::OoO,
        ConfigKind::MonoDAIO,
        ConfigKind::DistDAIO,
        ConfigKind::DistDAF,
    ] {
        let cfg = RunConfig::named(kind);
        let r = distda::system::simulate(&prog, &init, &cfg);
        println!(
            "{:<18} {:>12} {:>14.1} {:>12} {:>10}",
            r.config,
            r.ticks,
            r.energy_pj() / 1e3,
            r.noc_bytes.iter().sum::<u64>(),
            r.validated
        );
        if kind == ConfigKind::OoO {
            baseline = Some(r);
        }
    }
    let base = baseline.expect("baseline ran");
    let dist = distda::system::simulate(&prog, &init, &RunConfig::named(ConfigKind::DistDAF));
    println!(
        "\nDist-DA-F vs OoO: {:.2}x speedup, {:.2}x energy efficiency",
        base.ticks as f64 / dist.ticks as f64,
        base.energy_pj() / dist.energy_pj()
    );
}
