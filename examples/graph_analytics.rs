//! Irregular graph analytics (pagerank + bfs) near data: indirect accesses
//! served at the L3 cluster that owns each object, with the full energy
//! breakdown per component.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use distda::system::{ConfigKind, RunConfig};
use distda::workloads::{bfs, pagerank, Scale};

fn main() {
    let scale = Scale::eval();
    for w in [pagerank(&scale), bfs(&scale)] {
        println!(
            "== {} ({} nodes, edge factor {}) ==",
            w.name, scale.nodes, scale.edge_factor
        );
        println!(
            "{:<18} {:>11} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "config", "ticks", "core", "accel", "cache", "noc", "dram"
        );
        for kind in [
            ConfigKind::OoO,
            ConfigKind::MonoDAIO,
            ConfigKind::DistDAIO,
            ConfigKind::DistDAF,
        ] {
            let r = w.simulate(&RunConfig::named(kind));
            assert!(r.validated);
            let e = &r.energy;
            let pct = |x: f64| 100.0 * x / r.energy_pj();
            println!(
                "{:<18} {:>11} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                r.config,
                r.ticks,
                pct(e.core),
                pct(e.accel + e.buffers + e.mmio),
                pct(e.cache),
                pct(e.noc),
                pct(e.dram),
            );
        }
        println!();
    }
    println!("Near-data offload shifts energy from the host core and cache walk");
    println!("into cheap access-unit buffers beside the owning L3 cluster.");
}
