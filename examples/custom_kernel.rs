//! Peek inside the compiler: author a kernel, inspect the DFG
//! classification, the object-anchored partitioning and the generated
//! accelerator definitions, then run it.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use distda::compiler::{compile, AccessPattern, PartitionMode};
use distda::ir::prelude::*;
use distda::system::{ConfigKind, RunConfig};

fn main() {
    // A gather-scale-scatter kernel: out[i] = table[idx[i]] * w[i].
    let n = 4096;
    let mut b = ProgramBuilder::new("gather-scale");
    let idx = b.array_i64("idx", n);
    let table = b.array_f64("table", 8 * n);
    let w = b.array_f64("w", n);
    let out = b.array_f64("out", n);
    b.for_(0, n as i64, 1, |b, i| {
        let v = Expr::load(table, Expr::load(idx, i.clone())) * Expr::load(w, i.clone());
        b.store(out, i, v);
    });
    let prog = b.build();

    // Compile with distributed (Dist-DA) partitioning and inspect.
    let compiled = compile(&prog, PartitionMode::Distributed);
    for plan in &compiled.offloads {
        println!(
            "offload {:?}: class {:?}, {} partitions, {} channels, cut {} B/iter, DFG {}x{}",
            plan.loop_id,
            plan.class,
            plan.partitions.len(),
            plan.channels.len(),
            plan.cut_bytes,
            plan.dfg_dims.0,
            plan.dfg_dims.1
        );
        for p in &plan.partitions {
            let obj = p
                .object
                .map(|a| prog.arrays[a.0].name.clone())
                .unwrap_or_else(|| "-".into());
            let patterns: Vec<&str> = p
                .accesses
                .iter()
                .map(|a| match a.pattern {
                    AccessPattern::Stream { .. } => {
                        if a.write {
                            "stream-W"
                        } else {
                            "stream-R"
                        }
                    }
                    AccessPattern::Indirect => {
                        if a.write {
                            "indirect-W"
                        } else {
                            "indirect-R"
                        }
                    }
                })
                .collect();
            println!(
                "  partition {} @ object {:<6}: {:>2} microcode ops ({} B), accesses {:?}",
                p.id,
                obj,
                p.inst_count(),
                p.microcode_bytes(),
                patterns
            );
        }
    }

    // Run it end to end.
    let init = |mem: &mut Memory| {
        for i in 0..n {
            mem.array_mut(idx)[i] = Value::I(((i * 7919) % (8 * n)) as i64);
            mem.array_mut(w)[i] = Value::F(0.5);
        }
        for i in 0..8 * n {
            mem.array_mut(table)[i] = Value::F(i as f64);
        }
    };
    let ooo = distda::system::simulate(&prog, &init, &RunConfig::named(ConfigKind::OoO));
    let dist = distda::system::simulate(&prog, &init, &RunConfig::named(ConfigKind::DistDAF));
    assert!(ooo.validated && dist.validated);
    println!(
        "\nOoO {} ticks vs Dist-DA-F {} ticks -> {:.2}x speedup, {:.2}x energy efficiency",
        ooo.ticks,
        dist.ticks,
        ooo.ticks as f64 / dist.ticks as f64,
        ooo.energy_pj() / dist.energy_pj()
    );
}
