//! Cross-crate integration: every workload of the suite must produce the
//! reference-identical memory image under every evaluated configuration —
//! the paper's "validated by execution until program completion".

use distda::system::{ConfigKind, RunConfig};
use distda::workloads::{suite, Scale};

fn check(kind: ConfigKind) {
    let scale = Scale::tiny();
    for w in suite(&scale) {
        let r = w.simulate(&RunConfig::named(kind));
        assert!(
            r.validated,
            "{} failed validation under {}",
            w.name, r.config
        );
        assert!(r.ticks > 0, "{} reported zero time", w.name);
    }
}

#[test]
fn ooo_validates_entire_suite() {
    check(ConfigKind::OoO);
}

#[test]
fn mono_ca_validates_entire_suite() {
    check(ConfigKind::MonoCA);
}

#[test]
fn mono_da_io_validates_entire_suite() {
    check(ConfigKind::MonoDAIO);
}

#[test]
fn mono_da_f_validates_entire_suite() {
    check(ConfigKind::MonoDAF);
}

#[test]
fn dist_da_io_validates_entire_suite() {
    check(ConfigKind::DistDAIO);
}

#[test]
fn dist_da_f_validates_entire_suite() {
    check(ConfigKind::DistDAF);
}

#[test]
fn sensitivity_variants_validate_on_representative_kernels() {
    let scale = Scale::tiny();
    for w in [
        distda::workloads::fdtd_2d(&scale),
        distda::workloads::pagerank(&scale),
    ] {
        for cfg in [RunConfig::dist_da_io_sw(), RunConfig::dist_da_f_alloc()] {
            let r = w.simulate(&cfg);
            assert!(r.validated, "{} failed under {}", w.name, r.config);
        }
    }
}

#[test]
fn case_study_kernels_validate() {
    let scale = Scale::tiny();
    for w in [
        distda::workloads::spmv(&scale),
        distda::workloads::spmv_flat(&scale),
        distda::workloads::nw_blocked(&scale, 4),
    ] {
        for kind in [ConfigKind::OoO, ConfigKind::DistDAIO] {
            let r = w.simulate(&RunConfig::named(kind));
            assert!(r.validated, "{} failed under {:?}", w.name, kind);
        }
    }
}

/// The differential-validation contract with everything strict: a
/// golden-model mismatch, conservation-invariant violation, or drain leak
/// is a typed error, for every configuration, with idle skip-ahead both on
/// and off. Guards the drain-state leaks the sanitizer originally flagged
/// (undelivered responses; packets stranded in a mesh inbox on the final
/// drain tick).
#[test]
fn strict_checked_runs_hold_every_invariant_across_configs() {
    use distda::system::CheckPolicy;
    let scale = Scale::tiny();
    // pointer-chase serializes DRAM misses, fdtd-2d streams through the
    // prefetcher (the path that stranded a DRAM request in an inbox), and
    // bfs exercises indirect traffic from the engines.
    for w in [
        distda::workloads::pointer_chase(&scale),
        distda::workloads::fdtd_2d(&scale),
        distda::workloads::bfs(&scale),
    ] {
        for kind in ConfigKind::ALL {
            for skip in [true, false] {
                let r = w
                    .try_simulate_checked(&RunConfig::named(kind), Some(skip), CheckPolicy::full())
                    .unwrap_or_else(|e| panic!("{} under {:?} (skip={skip}): {e}", w.name, kind));
                assert!(r.validated);
            }
        }
    }
}

/// Interleaved allocation leaves no home-cluster table, so configurations
/// that consult it must be rejected with a typed error up front — this
/// used to be an `unreachable!()` panic deep in the allocator.
#[test]
fn interleaved_alloc_under_decentralized_config_is_a_typed_error() {
    use distda::system::{AllocStrategy, SimError};
    let scale = Scale::tiny();
    let w = distda::workloads::pointer_chase(&scale);
    let cfg = RunConfig {
        alloc: AllocStrategy::Interleaved,
        ..RunConfig::named(ConfigKind::DistDAF)
    };
    match w.try_simulate(&cfg) {
        Err(SimError::InvalidConfig { detail }) => {
            assert!(detail.contains("Interleaved"), "detail: {detail}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // The plain Mono-CA baseline allocates interleaved by design and must
    // keep working.
    let ca = RunConfig {
        alloc: AllocStrategy::Interleaved,
        ..RunConfig::named(ConfigKind::MonoCA)
    };
    assert!(w.try_simulate(&ca).expect("Mono-CA interleaved").validated);
}
