//! Cross-crate integration: every workload of the suite must produce the
//! reference-identical memory image under every evaluated configuration —
//! the paper's "validated by execution until program completion".

use distda::system::{ConfigKind, RunConfig};
use distda::workloads::{suite, Scale};

fn check(kind: ConfigKind) {
    let scale = Scale::tiny();
    for w in suite(&scale) {
        let r = w.simulate(&RunConfig::named(kind));
        assert!(
            r.validated,
            "{} failed validation under {}",
            w.name, r.config
        );
        assert!(r.ticks > 0, "{} reported zero time", w.name);
    }
}

#[test]
fn ooo_validates_entire_suite() {
    check(ConfigKind::OoO);
}

#[test]
fn mono_ca_validates_entire_suite() {
    check(ConfigKind::MonoCA);
}

#[test]
fn mono_da_io_validates_entire_suite() {
    check(ConfigKind::MonoDAIO);
}

#[test]
fn mono_da_f_validates_entire_suite() {
    check(ConfigKind::MonoDAF);
}

#[test]
fn dist_da_io_validates_entire_suite() {
    check(ConfigKind::DistDAIO);
}

#[test]
fn dist_da_f_validates_entire_suite() {
    check(ConfigKind::DistDAF);
}

#[test]
fn sensitivity_variants_validate_on_representative_kernels() {
    let scale = Scale::tiny();
    for w in [
        distda::workloads::fdtd_2d(&scale),
        distda::workloads::pagerank(&scale),
    ] {
        for cfg in [RunConfig::dist_da_io_sw(), RunConfig::dist_da_f_alloc()] {
            let r = w.simulate(&cfg);
            assert!(r.validated, "{} failed under {}", w.name, r.config);
        }
    }
}

#[test]
fn case_study_kernels_validate() {
    let scale = Scale::tiny();
    for w in [
        distda::workloads::spmv(&scale),
        distda::workloads::spmv_flat(&scale),
        distda::workloads::nw_blocked(&scale, 4),
    ] {
        for kind in [ConfigKind::OoO, ConfigKind::DistDAIO] {
            let r = w.simulate(&RunConfig::named(kind));
            assert!(r.validated, "{} failed under {:?}", w.name, kind);
        }
    }
}
