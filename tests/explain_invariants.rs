//! Cross-layer invariants of the explain pipeline on real machines:
//! canonical port naming everywhere names are exported, exact tick
//! accounting on real runs, and byte-identical causal trees across
//! execution strategies that must not be observable.

use distda::explain::{render_text, Explanation};
use distda::sim::{port_names, sample::DEFAULT_WINDOW_CAP, Sampler};
use distda::system::RunResult;
use distda::workloads::{nw, pathfinder, pointer_chase, Scale};

const WINDOW: u64 = 1024;

fn explained(
    w: &distda::workloads::Workload,
    cfg: &distda::system::RunConfig,
    skip: Option<bool>,
) -> (RunResult, Explanation) {
    let sampler = Sampler::enabled(WINDOW, DEFAULT_WINDOW_CAP);
    let (r, x) = w
        .try_simulate_explained(cfg, skip, &sampler)
        .expect("explained run succeeds");
    (r, x.expect("sampler on -> explanation present"))
}

/// Every port name exported by a real machine — report keys, sampled
/// series, blame-edge ports — must come from the one `port_names`
/// module, so runner reports, obs labels and explain nodes can never
/// disagree (the naming-drift satellite's invariant test).
#[test]
fn every_exported_port_name_is_canonical() {
    let w = pathfinder(&Scale::tiny());
    let cfg = distda::system::RunConfig::named(distda::system::ConfigKind::DistDAF);
    let (r, x) = explained(&w, &cfg, None);

    let mut port_keys = 0;
    for (key, _) in r.report.iter() {
        let Some(rest) = key.strip_prefix("port.") else {
            continue;
        };
        let Some((name, _stat)) = rest.rsplit_once('.') else {
            panic!("malformed port report key: {key}");
        };
        assert!(
            port_names::is_canonical(name),
            "report key {key} carries non-canonical port name {name}"
        );
        port_keys += 1;
    }
    assert!(port_keys > 0, "the run must export port statistics");

    for step in &x.critical_path {
        assert!(
            port_names::is_canonical(&step.port),
            "critical-path port {} is not canonical",
            step.port
        );
    }
    let mut waits = 0;
    for e in &x.engines {
        for wait in &e.waits {
            assert!(
                port_names::is_canonical(&wait.port),
                "wait port {} is not canonical",
                wait.port
            );
            waits += 1;
        }
    }
    assert!(waits > 0, "a Dist-DA run must record engine waits");

    // Blame-graph components come from the same module: engines, or one
    // of the fixed structural names.
    let component_ok = |c: &str| {
        c == port_names::HOST
            || c == port_names::MEM
            || c == port_names::NOC
            || c == port_names::DELIVERY
            || c.strip_prefix("engine.")
                .is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
    };
    for step in &x.critical_path {
        assert!(component_ok(&step.component), "{}", step.component);
        assert!(component_ok(&step.blamed), "{}", step.blamed);
    }
}

/// Real machines must satisfy the exact-accounting invariant the
/// sanitizer enforces: zero violations, and per engine
/// `blamed + busy + idle == ticks`.
#[test]
fn real_runs_account_every_tick() {
    for w in [
        pathfinder(&Scale::tiny()),
        pointer_chase(&Scale::tiny()),
        nw(&Scale::tiny()),
    ] {
        for kind in [
            distda::system::ConfigKind::DistDAIO,
            distda::system::ConfigKind::DistDAF,
        ] {
            let cfg = distda::system::RunConfig::named(kind);
            let (r, x) = explained(&w, &cfg, None);
            assert!(
                x.violations.is_empty(),
                "{} / {}: {:?}",
                w.name,
                cfg.label(),
                x.violations
            );
            for e in &x.engines {
                assert_eq!(
                    e.blamed_ticks + e.busy_ticks + e.idle_ticks,
                    x.ticks,
                    "{} / {}: {}",
                    w.name,
                    cfg.label(),
                    e.name
                );
            }
            // The report carries the verdict the tree renders.
            assert_eq!(
                r.report.get("explain.stall_ticks"),
                Some(x.stall_ticks as f64)
            );
        }
    }
}

/// The causal tree is part of the deterministic surface: skip-ahead on
/// and off must produce byte-identical rendered trees (skip-ahead is an
/// optimization, not a semantic change), and repeated runs must be
/// stable.
#[test]
fn causal_tree_is_byte_identical_across_skip_modes() {
    let w = pathfinder(&Scale::tiny());
    let cfg = distda::system::RunConfig::named(distda::system::ConfigKind::DistDAF);
    let (_, skip_on) = explained(&w, &cfg, Some(true));
    let (_, skip_off) = explained(&w, &cfg, Some(false));
    let (_, again) = explained(&w, &cfg, Some(true));
    assert_eq!(
        render_text(&skip_on),
        render_text(&skip_off),
        "skip-ahead must not change the causal tree"
    );
    assert_eq!(render_text(&skip_on), render_text(&again), "stable reruns");
}
