//! Component-protocol conformance, applied to every `Component`
//! implementation through the reusable harness in
//! `distda_sim::conformance`: the full machine (all seven adapter
//! components together), and the standalone blanket impls of the mesh and
//! the memory system scheduled with `W = ()`.
//!
//! Cases are generated with the repo's own `SplitMix64` so the suite is
//! deterministic and dependency-free, matching `tests/property.rs`.

use distda::accel::IssueModel;
use distda::compiler::{compile, PartitionMode};
use distda::ir::prelude::*;
use distda::mem::{MemConfig, MemRequest, MemSystem, PortKind};
use distda::noc::{Mesh, NocConfig, Packet, TrafficClass};
use distda::sim::conformance::{run_for, run_to_quiescence};
use distda::sim::time::ClockDomain;
use distda::sim::{Scheduler, SplitMix64};
use distda::system::{allocate, AllocStrategy, Machine, Substrate, Topology};

fn scaled_setup(n: usize) -> (Program, distda::compiler::CompiledKernel, Machine, ArrayId) {
    scaled_setup_on(n, &Topology::paper())
}

fn scaled_setup_on(
    n: usize,
    topo: &Topology,
) -> (Program, distda::compiler::CompiledKernel, Machine, ArrayId) {
    let mut b = ProgramBuilder::new("pipe");
    let x = b.array_f64("x", n);
    let y = b.array_f64("y", n);
    b.for_(0, n as i64, 1, |b, i| {
        b.store(y, i.clone(), Expr::load(x, i) * Expr::cf(3.0));
    });
    let p = b.build();
    let ck = compile(&p, PartitionMode::Distributed);
    let mc = MemConfig {
        clusters: topo.clusters(),
        banks_per_cluster: topo.banks_per_cluster,
        ..MemConfig::default()
    };
    let mut mem = MemSystem::new(
        mc,
        ClockDomain::from_ghz(2.0),
        topo.host_node,
        topo.memctrl_node,
    );
    let alloc = allocate(
        &p,
        &ck.offloads,
        topo.clusters(),
        AllocStrategy::RoundRobin,
        &mut mem,
    );
    let mut img = Memory::for_program(&p);
    for i in 0..n {
        img.array_mut(x)[i] = Value::F(i as f64);
    }
    let machine = Machine::new(mem, img, alloc.layout, 5, 224, topo);
    (p, ck, machine, y)
}

fn io_substrate(ghz: f64) -> Substrate {
    Substrate {
        model: IssueModel::InOrder { width: 1 },
        clock: ClockDomain::from_ghz(ghz),
        buffer_lines: 32,
        is_access_node: false,
        tuning: (8, 12, 16),
    }
}

/// The whole machine — host, delivery, engines, memory, injection, mesh —
/// honours the component protocol across randomized placements, engine
/// clocks and skip settings, and skip/no-skip runs agree on final time.
#[test]
fn machine_components_conform_across_random_configs() {
    let mut rng = SplitMix64::new(0xC04F);
    for _case in 0..6 {
        let n = 64 + 16 * rng.below(8) as usize;
        let p0 = rng.below(8) as usize;
        let p1 = rng.below(8) as usize;
        let ghz = [1.0, 1.5, 2.0, 3.0][rng.below(4) as usize];
        let mut finish = Vec::new();
        for skip in [false, true] {
            let (_p, ck, mut m, y) = scaled_setup(n);
            m.set_skip(skip);
            let plan = &ck.offloads[0];
            let subs = vec![io_substrate(ghz); plan.partitions.len()];
            let h = m.configure_plan(plan, &[p0, p1], &subs, &[]);
            m.launch(h, &[], &[vec![], vec![]], 0, n as i64, 1);
            let v = m.run_conformance(10_000_000);
            assert!(
                v.is_empty(),
                "skip={skip} placement=({p0},{p1}) ghz={ghz}: {}",
                v.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
            assert!(m.plan_done(h));
            for i in 0..n {
                assert_eq!(m.memimg().array(y)[i], Value::F(3.0 * i as f64));
            }
            finish.push(m.now());
        }
        assert_eq!(finish[0], finish[1], "skip changed the finish time");
    }
}

/// A machine that interleaves host segments with offloads also conforms —
/// this exercises the host's finish-time wake promise (a jump to a
/// completion instant where `next_event` legitimately goes quiet).
#[test]
fn host_segment_completion_jump_conforms() {
    let (_p, ck, mut m, _y) = scaled_setup(64);
    use distda::ir::trace::{DynOp, OpKind, NO_DEP};
    let base = m.layout().base(ArrayId(0));
    let ops: Vec<DynOp> = (0..16)
        .map(|i| DynOp {
            kind: OpKind::Store { addr: base + i * 8 },
            dep1: NO_DEP,
            dep2: NO_DEP,
        })
        .collect();
    m.run_host_segment(ops).unwrap();
    let plan = &ck.offloads[0];
    let subs = vec![io_substrate(2.0); plan.partitions.len()];
    let h = m.configure_plan(plan, &[0, 1], &subs, &[]);
    m.launch(h, &[], &[vec![], vec![]], 0, 64, 1);
    let v = m.run_conformance(10_000_000);
    assert!(v.is_empty(), "{v:?}");
}

/// The mesh's standalone blanket impl (`W = ()`) keeps its wake promises
/// while routing randomized traffic.
#[test]
fn standalone_mesh_conforms_while_routing() {
    let mut rng = SplitMix64::new(0x4E5E);
    for _case in 0..8 {
        let mut mesh: Mesh<u64> = Mesh::new(4, 2, NocConfig::default(), ClockDomain::from_ghz(2.0));
        for k in 0..(1 + rng.below(12)) {
            let src = rng.below(8) as usize;
            let dst = rng.below(8) as usize;
            let bytes = 8 + 8 * rng.below(8) as u32;
            let _ = mesh.try_inject(0, Packet::new(src, dst, bytes, TrafficClass::AccData, k));
        }
        let mut sched: Scheduler<()> = Scheduler::new(1_000_000, rng.below(2) == 0);
        sched.register(0, Box::new(mesh), &mut ());
        // Inboxes are never drained here (no delivery component), so the
        // mesh stays non-quiescent by design; run a bounded window and
        // require zero protocol violations while packets route.
        let v = run_for(&mut sched, &mut (), 400);
        assert!(v.is_empty(), "{v:?}");
    }
}

/// Every port in the machine passes the generic handshake-compliance
/// audit after a drained run, across randomized mesh shapes and
/// placements: no-loss (`pushed == popped + len`), capacity never
/// exceeded (occupancy and high-water), and drained ports empty — the
/// same `check_ports` rules the sanitizer applies at drain time, here
/// asserted directly on [`Machine::port_snapshots`].
#[test]
fn ports_conform_across_random_topologies() {
    let mut rng = SplitMix64::new(0x9047);
    for _case in 0..5 {
        let cols = 2 + rng.below(3) as usize; // 2..=4 columns
        let rows = 2 + rng.below(2) as usize; // 2..=3 rows
        let topo = Topology::mesh(cols, rows);
        let clusters = topo.clusters();
        let n = 64 + 16 * rng.below(5) as usize;
        let p0 = rng.below(clusters as u64) as usize;
        let p1 = rng.below(clusters as u64) as usize;
        let (_p, ck, mut m, y) = scaled_setup_on(n, &topo);
        let plan = &ck.offloads[0];
        let subs = vec![io_substrate(2.0); plan.partitions.len()];
        let h = m.configure_plan(plan, &[p0, p1], &subs, &[]);
        m.launch(h, &[], &[vec![], vec![]], 0, n as i64, 1);
        let v = m.run_conformance(10_000_000);
        assert!(
            v.is_empty(),
            "{cols}x{rows} placement=({p0},{p1}): {}",
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        let snaps = m.port_snapshots();
        assert!(!snaps.is_empty(), "machine must expose its ports");
        assert!(
            snaps.iter().any(|s| s.pushed > 0),
            "run must move traffic through the ports"
        );
        let pv = distda::sim::conformance::check_ports(&snaps, m.now(), true);
        assert!(
            pv.is_empty(),
            "{cols}x{rows} placement=({p0},{p1}) port audit: {}",
            pv.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        for i in 0..n {
            assert_eq!(m.memimg().array(y)[i], Value::F(3.0 * i as f64));
        }
    }
}

/// The harness catches the liveness bug the drain loop exists to prevent:
/// a memory system whose responses nobody ever collects reports either an
/// eventless-active component or a failure to reach quiescence.
#[test]
fn uncollected_memory_responses_are_flagged() {
    let mut mem = MemSystem::new(MemConfig::default(), ClockDomain::from_ghz(2.0), 0, 7);
    let port = mem.register_port(PortKind::Host);
    for id in 0..4 {
        mem.try_request(
            0,
            MemRequest {
                port,
                id,
                addr: 64 * id,
                write: false,
            },
        )
        .unwrap();
    }
    let mut sched: Scheduler<()> = Scheduler::new(1_000_000, true);
    sched.register(0, Box::new(mem), &mut ());
    let v = run_to_quiescence(&mut sched, &mut (), 100_000);
    assert!(
        v.iter()
            .any(|x| x.rule == "eventless-active" || x.rule == "no-quiescence"),
        "expected the stranded responses to be flagged, got {v:?}"
    );
}
