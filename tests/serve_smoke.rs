//! The sim-as-a-service smoke test (also run as CI's `serve-smoke` job):
//! an in-process daemon, one small sweep submitted twice, with the second
//! submission served entirely from the content-addressed cache — zero new
//! simulated ticks, byte-identical to both the first submission and a
//! direct `try_run_matrix` of the same cells. The config list mixes the
//! paper machine with an extended-topology label (a 4x4 mesh over a
//! 200-cycle far-memory pool), so the daemon's label-to-config path
//! covers the scenario families, not just the six paper points.

use distda_bench::try_run_matrix;
use distda_serve::{encode_result, fetch_metrics, Client, ServeConfig, Server, SweepReply};
use distda_system::{ConfigKind, RunConfig};
use distda_workloads::{nw, pointer_chase, Scale};

#[test]
fn served_sweep_dedupes_and_matches_direct_simulation() {
    let dir = std::env::temp_dir().join(format!("distda-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue: 32,
        cache_mem: 32,
        cache_dir: Some(dir.clone()),
        cache_bytes: 0,
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("daemon answers ping");

    let kernels = ["pch", "nw"];
    let configs = ["OoO", "Dist-DA-F", "Dist-DA-IO:4x4:fm200"];
    let run = |client: &mut Client| match client
        .sweep(&kernels, &configs, "tiny", true, true)
        .expect("sweep")
    {
        SweepReply::Done(t) => t,
        SweepReply::Rejected { .. } => panic!("tiny job must be admitted"),
    };

    let first = run(&mut client);
    assert_eq!(first.cells, 6);
    assert_eq!(first.queued, 6, "cold cache simulates everything");
    assert!(first.results.iter().all(|r| r.ok && !r.cached));
    assert!(first.summary_ticks > 0);

    // Second identical submission: 100% cache hits, zero new ticks.
    let second = run(&mut client);
    assert_eq!(second.cached, 6, "second submission is 100% cache hits");
    assert_eq!(second.queued, 0);
    assert_eq!(second.summary_ticks, 0, "no new simulation");
    assert!(second.results.iter().all(|r| r.ok && r.cached));
    let served: Vec<&String> = second
        .results
        .iter()
        .map(|r| r.payload.as_ref().expect("payload"))
        .collect();
    let first_payloads: Vec<&String> = first
        .results
        .iter()
        .map(|r| r.payload.as_ref().expect("payload"))
        .collect();
    assert_eq!(first_payloads, served, "cache round-trip is byte-identical");

    // Byte-identical to running the same matrix directly, bypassing the
    // daemon entirely (the simulator is deterministic).
    let scale = Scale::tiny();
    let ws = [pointer_chase(&scale), nw(&scale)];
    let (_, mixed_topo) =
        distda_system::parse_label_extension("Dist-DA-IO:4x4:fm200").expect("valid label");
    let cfgs = [
        RunConfig::named(ConfigKind::OoO),
        RunConfig::named(ConfigKind::DistDAF),
        RunConfig::named(ConfigKind::DistDAIO).with_topology(mixed_topo),
    ];
    let (sweep, failures) = try_run_matrix(&ws, &cfgs);
    assert!(failures.is_empty());
    let _ = distda_bench::take_timings();
    for cell in &second.results {
        let direct = sweep
            .results
            .get(&(cell.kernel.clone(), cell.config.clone()))
            .expect("direct run has the cell");
        assert_eq!(
            cell.payload.as_deref(),
            Some(encode_result(direct).as_str()),
            "{} under {} served != direct",
            cell.kernel,
            cell.config
        );
    }

    // The daemon accounting balances and the scrape works end to end.
    let metrics = fetch_metrics(&addr).expect("GET /metrics");
    assert!(metrics.ends_with("# EOF\n"));
    assert!(metrics.contains("distda_serve_cells_submitted_total 12"));
    assert!(metrics.contains("distda_serve_cells_completed_total 6"));
    assert!(metrics.contains("distda_serve_cells_deduped_total 6"));
    assert!(metrics.contains("distda_serve_cache_disk_bytes"));
    assert!(metrics.contains("distda_serve_retry_after_ms"));
    assert!(
        metrics.contains("distda_serve_cache_hit_ratio 0.5"),
        "4 hits / 8 lookups"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}
