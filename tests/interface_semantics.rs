//! Integration tests of the Table II interface semantics at the machine
//! level: configuration, dataflow decoupling, register-file transfer, and
//! the execution-flow guarantees of Section V-B.

use distda::accel::IssueModel;
use distda::compiler::{compile, PartitionMode};
use distda::ir::prelude::*;
use distda::mem::{MemConfig, MemSystem};
use distda::sim::time::ClockDomain;
use distda::system::{allocate, AllocStrategy, Machine, Substrate, Topology};

fn pipeline_setup() -> (Program, distda::compiler::CompiledKernel, Machine) {
    let mut b = ProgramBuilder::new("pipe");
    let x = b.array_f64("x", 256);
    let y = b.array_f64("y", 256);
    b.for_(0, 256, 1, |b, i| {
        b.store(y, i.clone(), Expr::load(x, i) * Expr::cf(3.0));
    });
    let p = b.build();
    let ck = compile(&p, PartitionMode::Distributed);
    let mut mem = MemSystem::new(MemConfig::default(), ClockDomain::from_ghz(2.0), 0, 7);
    let alloc = allocate(&p, &ck.offloads, 8, AllocStrategy::RoundRobin, &mut mem);
    let mut img = Memory::for_program(&p);
    for i in 0..256 {
        img.array_mut(x)[i] = Value::F(i as f64);
    }
    let machine = Machine::new(mem, img, alloc.layout, 5, 224, &Topology::paper());
    (p, ck, machine)
}

fn io_substrate() -> Substrate {
    Substrate {
        model: IssueModel::InOrder { width: 1 },
        clock: ClockDomain::from_ghz(2.0),
        buffer_lines: 32,
        is_access_node: false,
        tuning: (8, 12, 16),
    }
}

/// `cp_config` + `cp_run` cost MMIO words and host time (Table VI %init).
#[test]
fn configuration_charges_mmio_and_time() {
    let (_p, ck, mut m) = pipeline_setup();
    let before_words = m.mmio_words();
    let before_time = m.now();
    let plan = &ck.offloads[0];
    let subs = vec![io_substrate(); plan.partitions.len()];
    let h = m.configure_plan(plan, &[0, 1], &subs, &[]);
    assert!(m.mmio_words() > before_words, "cp_config must cost MMIO");
    assert!(m.now() > before_time, "configuration occupies the host");
    let words_after_config = m.mmio_words();
    m.launch(h, &[], &[vec![], vec![]], 0, 256, 1);
    assert!(
        m.mmio_words() > words_after_config,
        "cp_set_rf/cp_run cost MMIO"
    );
    m.run_offload(h).unwrap();
}

/// Decoupled producer-consumer execution: the producer partition runs
/// ahead of the consumer, bounded by the channel buffer (cp_produce
/// blocks only on credits; cp_consume only on emptiness).
#[test]
fn producer_runs_ahead_bounded_by_buffer() {
    let (_p, ck, mut m) = pipeline_setup();
    let plan = &ck.offloads[0];
    // Producer at cluster 0; consumer far away at cluster 7: latency is
    // hidden by decoupling, so total time is far below 256 sequential
    // round trips.
    let subs = vec![io_substrate(); plan.partitions.len()];
    let h = m.configure_plan(plan, &[0, 7], &subs, &[]);
    m.launch(h, &[], &[vec![], vec![]], 0, 256, 1);
    m.run_offload(h).unwrap();
    let ticks = m.now();
    // A naive request-response per element across ~9 hops at ~30+ cycles
    // round trip would exceed 256 * 90 ticks; decoupling must beat half
    // of that comfortably.
    assert!(
        ticks < 256 * 45,
        "dataflow decoupling failed to hide latency: {ticks} ticks"
    );
}

/// Re-running a configured plan (outer-loop reuse, Section V-B) works
/// without reconfiguration and produces fresh results.
#[test]
fn plans_are_reusable_across_invocations() {
    let (_p, ck, mut m) = pipeline_setup();
    let plan = &ck.offloads[0];
    let subs = vec![io_substrate(); plan.partitions.len()];
    let h = m.configure_plan(plan, &[0, 1], &subs, &[]);
    for chunk in 0..4 {
        let lo = chunk * 64;
        m.launch(h, &[], &[vec![], vec![]], lo, lo + 64, 1);
        m.run_offload(h).unwrap();
    }
    for i in 0..256 {
        assert_eq!(
            m.memimg().array(ArrayId(1))[i],
            Value::F(3.0 * i as f64),
            "element {i}"
        );
    }
}

/// Offload-boundary flushes invalidate host-cached object lines
/// (Section IV-D's software-managed coherence).
#[test]
fn configure_flushes_host_cached_objects() {
    let (p, ck, mut m) = pipeline_setup();
    // Warm the host caches over x's range.
    use distda::ir::trace::{DynOp, OpKind, NO_DEP};
    let (start, _end) = m.layout().range(&p, ArrayId(0));
    let ops: Vec<DynOp> = (0..32)
        .map(|i| DynOp {
            kind: OpKind::Store {
                addr: start + i * 8,
            },
            dep1: NO_DEP,
            dep2: NO_DEP,
        })
        .collect();
    m.run_host_segment(ops).unwrap();
    let plan = &ck.offloads[0];
    let subs = vec![io_substrate(); plan.partitions.len()];
    let ranges = [(start, start + 256 * 8)];
    let flushed_before = m.mem().sys_stats().flushed_lines;
    let _ = m.configure_plan(plan, &[0, 1], &subs, &ranges);
    assert!(
        m.mem().sys_stats().flushed_lines > flushed_before,
        "dirty host lines over the object must flush at the offload boundary"
    );
}

/// Channel credits bound producer run-ahead exactly (no unbounded queues).
#[test]
fn channel_occupancy_never_exceeds_capacity() {
    // Indirectly verified by Fifo's internal capacity assertion: a push
    // beyond capacity would panic inside the machine. Run a long pipeline
    // with a deliberately slow consumer (CGRA with big II) to stress it.
    let (_p, ck, mut m) = pipeline_setup();
    let plan = &ck.offloads[0];
    let mut subs = vec![io_substrate(); plan.partitions.len()];
    subs[1] = Substrate {
        model: IssueModel::Cgra { ii: 24 },
        clock: ClockDomain::from_ghz(1.0),
        ..io_substrate()
    };
    let h = m.configure_plan(plan, &[0, 1], &subs, &[]);
    m.launch(h, &[], &[vec![], vec![]], 0, 256, 1);
    m.run_offload(h).unwrap(); // would panic on any credit violation
}
