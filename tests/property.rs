//! Randomized model-based tests on the core data structures and the
//! end-to-end invariants the system depends on.
//!
//! Cases are generated with the repo's own `SplitMix64` so the suite is
//! deterministic, reproducible across platforms, and dependency-free.

use distda::compiler::{compile, PartitionMode};
use distda::ir::prelude::*;
use distda::mem::cache::{Cache, Lookup};
use distda::mem::params::CacheParams;
use distda::noc::{Mesh, NocConfig, Packet, TrafficClass};
use distda::sim::time::ClockDomain;
use distda::sim::{Channel, CreditLoop, Fifo, SplitMix64};
use distda::system::{ConfigKind, RunConfig};
use std::collections::HashSet;

/// FIFO preserves order and never exceeds capacity.
#[test]
fn fifo_is_order_preserving() {
    let mut rng = SplitMix64::new(0xF1F0);
    for _case in 0..64 {
        let cap = 1 + rng.below(15) as usize;
        let n_ops = 1 + rng.below(199) as usize;
        let mut f = Fifo::new(cap);
        let mut model = std::collections::VecDeque::new();
        let mut next = 0u32;
        for _ in 0..n_ops {
            if rng.below(3) < 2 {
                // push
                if f.try_push(next).is_ok() {
                    model.push_back(next);
                }
                next += 1;
            } else {
                assert_eq!(f.pop(), model.pop_front());
            }
            assert!(f.len() <= cap);
            assert_eq!(f.len(), model.len());
        }
        while let Some(v) = f.pop() {
            assert_eq!(Some(v), model.pop_front());
        }
    }
}

/// The handshaked channel behaves exactly like a FIFO model under random
/// offer/accept interleavings: order-preserving, lossless, and
/// stable-data — a refused offer hands the value back unchanged so the
/// producer can re-offer it, exactly like holding a `valid` wire stable.
/// The snapshot accounting conserves at every step
/// (`pushed == popped + len`, `high_water <= capacity`).
#[test]
fn channel_handshake_matches_fifo_model() {
    let mut rng = SplitMix64::new(0x0FFE2);
    for _case in 0..64 {
        let cap = 1 + rng.below(15) as usize;
        let n_ops = 1 + rng.below(249) as usize;
        let mut ch: Channel<u32> = Channel::bounded(cap);
        let mut model = std::collections::VecDeque::new();
        let mut next = 0u32;
        for _ in 0..n_ops {
            if rng.below(3) < 2 {
                assert_eq!(ch.tx().ready(), model.len() < cap);
                match ch.tx().offer(next) {
                    Ok(()) => model.push_back(next),
                    Err(back) => {
                        assert_eq!(back, next, "stable-data: value must come back unchanged");
                        assert_eq!(model.len(), cap, "offer refused while not full");
                    }
                }
                next += 1;
            } else {
                assert_eq!(ch.rx().valid(), !model.is_empty());
                assert_eq!(ch.rx().peek(), model.front());
                assert_eq!(ch.rx().accept(), model.pop_front());
            }
            assert_eq!(ch.len(), model.len());
            let s = ch.snapshot("t");
            assert_eq!(s.pushed, s.popped + s.len as u64, "no-loss violated");
            assert!(s.high_water <= cap);
        }
        let mut rx = ch.rx();
        while let Some(v) = rx.accept() {
            assert_eq!(Some(v), model.pop_front());
        }
        assert!(model.is_empty());
    }
}

/// Credit loops conserve across random produce/consume/grant
/// interleavings: credits held + deferred debt + in-flight credit
/// messages + queue occupancy always account for the whole ring, the
/// producer can never overfill a channel it holds a credit for, and once
/// everything drains and grants land, `drained()` holds exactly.
#[test]
fn credit_loop_conserves_under_random_interleavings() {
    let mut rng = SplitMix64::new(0xC2ED17);
    for _case in 0..64 {
        let cap = 2 + rng.below(14) as usize;
        let batch = 1 + rng.below(7) as usize;
        let mut ch: Channel<u32> = Channel::bounded(cap);
        let mut flow = CreditLoop::new(cap, batch);
        let mut in_flight = 0usize; // flushed batches awaiting their grant
        let mut next = 0u32;
        for _ in 0..300 {
            match rng.below(3) {
                0 => {
                    // Produce: a held credit guarantees room.
                    if flow.take() {
                        assert!(ch.tx().offer(next).is_ok(), "credit must bound occupancy");
                        next += 1;
                    } else {
                        assert_eq!(flow.credits(), 0);
                    }
                }
                1 => {
                    // Consume on the remote path: defer the credit return.
                    if ch.rx().accept().is_some() {
                        if let Some(n) = flow.defer() {
                            in_flight += n;
                        }
                    }
                }
                _ => {
                    // The credit message arrives.
                    flow.grant(in_flight);
                    in_flight = 0;
                }
            }
            assert!(flow.conserves(ch.len()), "credit conservation violated");
            assert_eq!(
                flow.credits() + flow.debt() + in_flight + ch.len(),
                cap,
                "the ring must be fully accounted at every step"
            );
        }
        // Drain: consume the rest, land every grant, and the ring closes.
        while ch.rx().accept().is_some() {
            if let Some(n) = flow.defer() {
                in_flight += n;
            }
        }
        flow.grant(in_flight);
        assert!(ch.is_empty());
        assert!(flow.drained(), "drained ring must hold every credit");
    }
}

/// The cache tag array tracks presence exactly like a set model.
#[test]
fn cache_matches_reference_set_model() {
    let mut rng = SplitMix64::new(0xCAC4E);
    for _case in 0..64 {
        let n_lines = 1 + rng.below(299) as usize;
        let mut c = Cache::new(CacheParams {
            size_bytes: 16 * 64,
            assoc: 2,
            latency: 1,
            mshrs: 4,
        });
        let mut resident: HashSet<u64> = HashSet::new();
        for _ in 0..n_lines {
            let line = rng.below(64);
            match c.access(line, false) {
                Lookup::Hit => assert!(resident.contains(&line), "phantom hit on {line}"),
                Lookup::Miss => {
                    assert!(!resident.contains(&line), "missed resident line {line}");
                    c.fill(line, false);
                    resident.insert(line);
                    // Mirror an eviction if the set exceeded associativity.
                    let set = line % 8;
                    let in_set: Vec<u64> =
                        resident.iter().copied().filter(|l| l % 8 == set).collect();
                    if in_set.len() > 2 {
                        // Trust the cache: resync residency from probes.
                        for l in in_set {
                            if !c.probe(l) {
                                resident.remove(&l);
                            }
                        }
                    }
                }
            }
            assert!(c.resident_lines() <= 32);
        }
    }
}

/// Every injected packet is delivered exactly once, to its destination.
#[test]
fn mesh_delivers_everything() {
    let mut rng = SplitMix64::new(0x4E54);
    for _case in 0..64 {
        let n_pkts = 1 + rng.below(39) as usize;
        let mut mesh: Mesh<usize> =
            Mesh::new(4, 2, NocConfig::default(), ClockDomain::from_ghz(2.0));
        let mut expected: Vec<Option<usize>> = Vec::new();
        let mut t = 0u64;
        let mut accepted = 0usize;
        for i in 0..n_pkts {
            let src = rng.below(8) as usize;
            let dst = rng.below(8) as usize;
            let bytes = 1 + rng.below(255) as u32;
            if mesh
                .try_inject(t, Packet::new(src, dst, bytes, TrafficClass::AccData, i))
                .is_ok()
            {
                expected.push(Some(dst));
                accepted += 1;
            } else {
                expected.push(None);
            }
            mesh.tick(t);
            t += 1;
        }
        let mut got = 0usize;
        while mesh.is_active() {
            mesh.tick(t);
            t += 1;
            assert!(t < 1_000_000, "mesh failed to drain");
        }
        for node in 0..8 {
            for p in mesh.drain_inbox(node) {
                assert_eq!(expected[p.payload], Some(node), "misrouted packet");
                got += 1;
            }
        }
        assert_eq!(got, accepted, "lost or duplicated packets");
    }
}

/// Compiled plans are structurally valid for arbitrary map-style
/// kernels, and distributed partitioning anchors one object each.
#[test]
fn compiled_plans_validate() {
    let mut rng = SplitMix64::new(0xC0DE);
    for _case in 0..32 {
        let n_arrays = 2 + rng.below(3) as usize;
        let scale = 1 + rng.below(4) as i64;
        let offset = rng.below(5) as i64 - 2;
        let mut b = ProgramBuilder::new("gen");
        let arrays: Vec<_> = (0..n_arrays)
            .map(|k| b.array_f64(format!("a{k}"), 64))
            .collect();
        let out = *arrays.last().unwrap();
        b.for_(2, 60, 1, |b, i| {
            let mut acc = Expr::cf(1.0);
            for &a in &arrays[..n_arrays - 1] {
                acc = acc + Expr::load(a, i.clone() * Expr::c(scale) + Expr::c(offset));
            }
            b.store(out, i, acc);
        });
        let p = b.build();
        for mode in [PartitionMode::Distributed, PartitionMode::Monolithic] {
            let ck = compile(&p, mode);
            assert_eq!(ck.offloads.len(), 1);
            let plan = &ck.offloads[0];
            assert!(plan.validate().is_ok(), "{:?}", plan.validate());
            if mode == PartitionMode::Distributed {
                for part in &plan.partitions {
                    let objs: HashSet<_> = part.accesses.iter().map(|a| a.array).collect();
                    assert!(objs.len() <= 1, "partition touches {} objects", objs.len());
                }
            }
        }
    }
}

/// End-to-end: random affine map kernels produce reference-identical
/// results under distributed offload, and simulation is deterministic.
#[test]
fn simulation_is_correct_and_deterministic() {
    let mut rng = SplitMix64::new(0x51AB);
    for _case in 0..4 {
        let seed = rng.below(1000);
        let stride = 1 + rng.below(3) as i64;
        let n = 64usize;
        let mut b = ProgramBuilder::new("prop");
        let x = b.array_f64("x", n * 4);
        let y = b.array_f64("y", n * 4);
        b.for_(0, n as i64, 1, |b, i| {
            let v = Expr::load(x, i.clone() * Expr::c(stride)) * Expr::cf(1.5) + Expr::cf(1.0);
            b.store(y, i * Expr::c(stride), v);
        });
        let p = b.build();
        let init = move |mem: &mut Memory| {
            let mut r = SplitMix64::new(seed);
            for v in mem.array_mut(x) {
                *v = Value::F(r.next_f64());
            }
        };
        let cfg = RunConfig::named(ConfigKind::DistDAIO);
        let r1 = distda::system::simulate(&p, &init, &cfg);
        let r2 = distda::system::simulate(&p, &init, &cfg);
        assert!(r1.validated);
        assert_eq!(r1.ticks, r2.ticks, "nondeterministic timing");
        assert_eq!(r1.counters.noc_hop_bytes, r2.counters.noc_hop_bytes);
    }
}
