//! Input model: what a run must hand the analyzer.
//!
//! The analyzer is deliberately decoupled from the machine: it consumes
//! plain data — final port snapshots, a blame topology, per-engine
//! totals already converted to base ticks, and (optionally) the
//! windowed [`SampleDump`] — so it can be unit-tested against synthetic
//! machines whose critical path is known in closed form.

use distda_sim::port::PortSnapshot;
use distda_sim::sample::SampleDump;
use distda_sim::time::Tick;

/// One blame edge of the port topology: `waiter` accumulated `stalls`
/// stall cycles blocked at `port`, and the component responsible for
/// relieving the pressure is `blamed` (the consumer for back-pressured
/// ports, the producer for starvation ports like memory responses).
///
/// Stalls are per-*waiter*, not per-port: a channel port's raw counter
/// aggregates producer send-stalls, consumer recv-stalls and
/// delivery-side rejections, so the machine attributes each waiter's
/// share on its own edge (in that waiter's clock cycles — engine
/// cycles for engines, base ticks for structural components).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Canonical port name (see `distda_sim::port_names`).
    pub port: String,
    /// Component that accumulated the stall cycles at this port.
    pub waiter: String,
    /// Component those stall cycles indict.
    pub blamed: String,
    /// Stall cycles `waiter` accumulated here, in `waiter`'s clock.
    pub stalls: u64,
}

impl Edge {
    /// Convenience constructor.
    pub fn new(
        port: impl Into<String>,
        waiter: impl Into<String>,
        blamed: impl Into<String>,
        stalls: u64,
    ) -> Self {
        Self {
            port: port.into(),
            waiter: waiter.into(),
            blamed: blamed.into(),
            stalls,
        }
    }
}

/// One engine's end-of-run totals, converted to base ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineObs {
    /// Component name (`engine.N`, matching scheduler registration).
    pub name: String,
    /// Base ticks spent executing (busy engine cycles x clock period).
    pub busy_ticks: u64,
    /// Base ticks stalled on memory responses.
    pub stall_mem_ticks: u64,
    /// Base ticks stalled on operand channels.
    pub stall_chan_ticks: u64,
    /// Engine-clock period in base ticks — converts the engine-cycle
    /// stall counts on this engine's ports into base ticks.
    pub period_ticks: u64,
}

/// Everything the analyzer sees from one finished run.
#[derive(Debug, Clone, Default)]
pub struct Observation {
    /// Total simulated base ticks of the run.
    pub ticks: Tick,
    /// Final statistics of every handshaked port.
    pub ports: Vec<PortSnapshot>,
    /// The blame topology (one edge per port).
    pub edges: Vec<Edge>,
    /// Per-engine totals in base ticks.
    pub engines: Vec<EngineObs>,
    /// Windowed time series, when sampling ran.
    pub samples: Option<SampleDump>,
}

impl Default for EngineObs {
    fn default() -> Self {
        Self {
            name: String::new(),
            busy_ticks: 0,
            stall_mem_ticks: 0,
            stall_chan_ticks: 0,
            period_ticks: 1,
        }
    }
}
