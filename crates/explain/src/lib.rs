//! # distda-explain
//!
//! Causal bottleneck attribution and critical-path analysis over the
//! port fabric.
//!
//! The paper's central claim is that offload overhead is dominated by
//! *interface waits* — time blocked on handshakes between host, memory,
//! mesh and engines. The rest of the observability stack can say where
//! time goes (the profiler's per-component host-ns, the per-port stall
//! totals); this crate says *why*: it turns the final [`PortSnapshot`]s,
//! the machine's blame topology and the engines' own stall counters
//! into a ranked causal tree — "61% of stall ticks: engine.3 blocked on
//! chan2, itself blocked on net_out back-pressure" — with exact tick
//! accounting (`blamed + self_busy + idle == ticks`, checked here and
//! escalated to the sanitizer by the runner).
//!
//! Inputs are plain data (see [`Observation`]), so the analyzer can be
//! driven by synthetic machines in tests; the real feed comes from
//! `Machine::port_topology` / `Machine::engine_observations` plus the
//! windowed [`Sampler`](distda_sim::Sampler) ring that
//! `DISTDA_EXPLAIN=1` attaches to a run.
//!
//! [`PortSnapshot`]: distda_sim::port::PortSnapshot
//! [`Observation`]: crate::model::Observation

pub mod analyze;
pub mod model;
pub mod render;

pub use analyze::{analyze, phases, Accounting, Explanation, PathStep, Phase, Wait};
pub use model::{Edge, EngineObs, Observation};
pub use render::{render_json, render_text, to_report, top_bottleneck};

#[cfg(test)]
mod tests {
    use super::*;
    use distda_sim::port::Channel;
    use distda_sim::port::PortSnapshot;

    fn snap(name: &str, stalls: u64) -> PortSnapshot {
        let mut ch = Channel::<u8>::unbounded();
        ch.note_stalls(stalls);
        ch.snapshot(name)
    }

    /// A synthetic two-port machine whose critical path is known in
    /// closed form: engine.0 produces into chan0 (consumed by
    /// engine.1), engine.1 waits on mem.resp1 (served by mem). With
    /// engine.0 stalled 600 ticks on chan0 and engine.1 stalled 400 on
    /// its response port, the path must be
    /// engine.0 -> chan0 -> engine.1 -> mem.resp1 -> mem, and the top
    /// share exactly 600/1000.
    fn two_port() -> Observation {
        Observation {
            ticks: 2000,
            ports: vec![snap("chan0", 600), snap("mem.resp1", 400)],
            edges: vec![
                Edge::new("chan0", "engine.0", "engine.1", 600),
                Edge::new("chan0", "engine.1", "engine.0", 0),
                Edge::new("mem.resp1", "engine.1", "mem", 400),
            ],
            engines: vec![
                EngineObs {
                    name: "engine.0".into(),
                    busy_ticks: 900,
                    stall_mem_ticks: 0,
                    stall_chan_ticks: 600,
                    period_ticks: 1,
                },
                EngineObs {
                    name: "engine.1".into(),
                    busy_ticks: 1100,
                    stall_mem_ticks: 400,
                    stall_chan_ticks: 0,
                    period_ticks: 1,
                },
            ],
            samples: None,
        }
    }

    #[test]
    fn two_port_critical_path_is_closed_form() {
        let x = analyze(&two_port());
        assert!(x.violations.is_empty(), "{:?}", x.violations);
        assert_eq!(x.stall_ticks, 1000);
        let path: Vec<(&str, &str, &str, u64)> = x
            .critical_path
            .iter()
            .map(|s| {
                (
                    s.component.as_str(),
                    s.port.as_str(),
                    s.blamed.as_str(),
                    s.ticks,
                )
            })
            .collect();
        assert_eq!(
            path,
            vec![
                ("engine.0", "chan0", "engine.1", 600),
                ("engine.1", "mem.resp1", "mem", 400),
            ]
        );
        assert!((x.critical_path[0].share - 0.6).abs() < 1e-12);
        // Exact accounting: blamed + busy + idle == ticks per engine.
        for e in &x.engines {
            assert_eq!(e.blamed_ticks + e.busy_ticks + e.idle_ticks, x.ticks);
        }
        assert_eq!(x.engines[0].name, "engine.0"); // most blamed first
        assert_eq!(x.engines[0].idle_ticks, 2000 - 900 - 600);
    }

    #[test]
    fn over_accounting_is_a_violation() {
        let mut obs = two_port();
        obs.ticks = 1000; // busy + blamed of engine.1 now exceeds the run
        let x = analyze(&obs);
        assert!(x.violations.iter().any(|v| v.contains("engine.1")));
    }

    #[test]
    fn port_engine_counter_disagreement_is_a_violation() {
        let mut obs = two_port();
        obs.edges[0].stalls = 599; // machine attributed one stall fewer
        let x = analyze(&obs);
        assert!(
            x.violations
                .iter()
                .any(|v| v.contains("per-port stalls sum")),
            "{:?}",
            x.violations
        );
    }

    #[test]
    fn port_counter_below_attribution_is_a_violation() {
        let mut obs = two_port();
        obs.ports[0] = snap("chan0", 599); // port lost a stall its waiter charged
        let x = analyze(&obs);
        assert!(
            x.violations
                .iter()
                .any(|v| v.contains("port counter carries only")),
            "{:?}",
            x.violations
        );
    }

    #[test]
    fn cyclic_wait_graphs_terminate() {
        let obs = Observation {
            ticks: 100,
            ports: vec![snap("chan0", 10), snap("chan1", 5)],
            edges: vec![
                Edge::new("chan0", "engine.0", "engine.1", 10),
                Edge::new("chan1", "engine.1", "engine.0", 5),
            ],
            engines: vec![
                EngineObs {
                    name: "engine.0".into(),
                    stall_chan_ticks: 10,
                    ..Default::default()
                },
                EngineObs {
                    name: "engine.1".into(),
                    stall_chan_ticks: 5,
                    ..Default::default()
                },
            ],
            samples: None,
        };
        let x = analyze(&obs);
        // One full loop then stop: e0 -> e1, e1 -> e0 (already visited).
        assert_eq!(x.critical_path.len(), 2);
    }

    #[test]
    fn engine_cycle_periods_convert_port_stalls() {
        // A 1 GHz engine (period 6) whose port carries 100 stall cycles
        // must account 600 base ticks.
        let obs = Observation {
            ticks: 10_000,
            ports: vec![snap("chan0", 100)],
            edges: vec![Edge::new("chan0", "engine.0", "engine.1", 100)],
            engines: vec![EngineObs {
                name: "engine.0".into(),
                busy_ticks: 1200,
                stall_chan_ticks: 600,
                period_ticks: 6,
                ..Default::default()
            }],
            samples: None,
        };
        let x = analyze(&obs);
        assert!(x.violations.is_empty(), "{:?}", x.violations);
        assert_eq!(x.engines[0].waits[0].ticks, 600);
    }

    #[test]
    fn renders_parse_and_round_trip_the_verdict() {
        let x = analyze(&two_port());
        let txt = render_text(&x);
        assert!(txt.contains("60.0% of stall ticks"), "{txt}");
        assert!(txt.contains("engine.0 blocked on chan0 -> engine.1"));
        let json = render_json(&x);
        let v = distda_trace::json::parse(&json).expect("tree JSON parses");
        assert_eq!(v.get("stall_ticks").and_then(|n| n.as_num()), Some(1000.0));
        assert_eq!(
            v.get("critical_path")
                .and_then(|p| p.as_arr())
                .map(|a| a.len()),
            Some(2)
        );

        let mut report = distda_sim::Report::new();
        report.merge_prefixed("explain", &to_report(&x));
        let (top, share) = top_bottleneck(&report).expect("verdict");
        assert_eq!(top, "engine.0");
        assert!((share - 0.6).abs() < 1e-12);
    }

    #[test]
    fn phases_follow_the_dominant_port_over_time() {
        use distda_sim::Sampler;
        let s = Sampler::enabled(100, 64);
        // First two windows dominated by chan0, then mem.resp1 takes over.
        s.record_at(100, &[snap("chan0", 50), snap("mem.resp1", 0)], &[]);
        s.record_at(200, &[snap("chan0", 90), snap("mem.resp1", 10)], &[]);
        s.record_at(300, &[snap("chan0", 95), snap("mem.resp1", 80)], &[]);
        let obs = Observation {
            ticks: 300,
            samples: s.dump(),
            ..Default::default()
        };
        let p = phases(&obs);
        assert_eq!(p.len(), 2, "{p:?}");
        assert_eq!((p[0].port.as_str(), p[0].from, p[0].to), ("chan0", 0, 200));
        assert_eq!(p[0].stalls, 50 + 40);
        assert_eq!(
            (p[1].port.as_str(), p[1].from, p[1].to),
            ("mem.resp1", 200, 300)
        );
    }
}
