//! The causal analysis: exact tick accounting, blame-graph walk,
//! critical-path extraction and phase detection.
//!
//! ## Accounting invariant
//!
//! For every engine `e` over a run of `T` base ticks:
//!
//! ```text
//! blamed(e) + self_busy(e) + idle(e) == T
//! ```
//!
//! where `blamed(e) = stall_mem_ticks + stall_chan_ticks` (every engine
//! edge that missed because a port refused the handshake) and
//! `self_busy(e)` is busy engine cycles converted to base ticks. `idle`
//! is the remainder, so the *checkable* content of the invariant is
//! over-accounting: `blamed + self_busy <= T`, plus two cross-layer
//! equalities: the per-port stall cycles the machine attributed to an
//! engine's blame edges must sum exactly to that engine's own stall
//! counters, and no port may carry fewer raw stall cycles than its
//! waiters attribute to it (the port counter additionally absorbs
//! delivery-side rejections, so it bounds the attribution from above —
//! the same family of equalities DESIGN.md §15 pins for the metrics
//! series). Violations are reported in [`Explanation::violations`] and
//! escalated to the sanitizer by the runner.
//!
//! ## Blame walk
//!
//! Producer stalls on port P blame P's `blamed` component (the
//! topology's [`Edge`]); the critical path starts at the engine with
//! the most blamed ticks, follows its dominant port to the blamed
//! component, then recursively follows *that* component's dominant
//! wait, with a visited-set guard so cyclic wait graphs terminate.

use crate::model::{Edge, EngineObs, Observation};
use distda_sim::time::Tick;
use std::collections::BTreeMap;

/// One component's exact tick accounting over the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accounting {
    /// Component name.
    pub name: String,
    /// Base ticks blocked on ports, total.
    pub blamed_ticks: u64,
    /// Base ticks doing work.
    pub busy_ticks: u64,
    /// Base ticks neither busy nor blocked (not yet launched, done, or
    /// waiting for its own clock edge).
    pub idle_ticks: u64,
    /// The blocked ticks broken down by port, largest first.
    pub waits: Vec<Wait>,
}

/// Ticks a component spent blocked at one port, and who that indicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wait {
    /// The port the component was blocked at.
    pub port: String,
    /// The component the blocked ticks indict.
    pub blamed: String,
    /// Blocked base ticks.
    pub ticks: u64,
}

/// One step of the critical path: `component` blocked on `port`, which
/// indicts `blamed` — the next step explains `blamed` in turn.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// The waiting component.
    pub component: String,
    /// The dominant port it was blocked at.
    pub port: String,
    /// The component the wait indicts.
    pub blamed: String,
    /// Blocked ticks at that port.
    pub ticks: u64,
    /// This wait as a fraction of all engine stall ticks in the run.
    pub share: f64,
}

/// A maximal run of sampling windows dominated by the same port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// First tick of the phase (inclusive).
    pub from: Tick,
    /// Last boundary of the phase (exclusive end).
    pub to: Tick,
    /// The port that accumulated the most stall cycles in the phase,
    /// empty when no port stalled at all.
    pub port: String,
    /// Stall cycles the dominant port accumulated during the phase.
    pub stalls: u64,
}

/// The analyzer's output: a ranked causal explanation of where the
/// run's ticks went.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Total simulated base ticks.
    pub ticks: Tick,
    /// Sum of every engine's blamed ticks (the denominator of every
    /// `share`).
    pub stall_ticks: u64,
    /// Per-engine accounting, most-blamed first.
    pub engines: Vec<Accounting>,
    /// The dominant chain of waits, starting at the most-blamed engine.
    pub critical_path: Vec<PathStep>,
    /// Time-resolved bottleneck phases (empty without sampling).
    pub phases: Vec<Phase>,
    /// Accounting-invariant violations (empty on a healthy run).
    pub violations: Vec<String>,
}

fn edges_waited_by<'a>(obs: &'a Observation, comp: &str) -> impl Iterator<Item = &'a Edge> {
    let comp = comp.to_string();
    obs.edges.iter().filter(move |e| e.waiter == comp)
}

/// The waits of one component, largest first (ties broken by port name
/// so the ordering is deterministic). Each edge carries the waiter's
/// own attributed stall cycles; engine waits are converted from engine
/// cycles to base ticks via the engine's clock period, non-engine
/// components charge their ports in base ticks already.
fn waits_of(obs: &Observation, comp: &str) -> Vec<Wait> {
    let period = obs
        .engines
        .iter()
        .find(|e| e.name == comp)
        .map(|e| e.period_ticks)
        .unwrap_or(1);
    let mut waits: Vec<Wait> = edges_waited_by(obs, comp)
        .map(|e| Wait {
            port: e.port.clone(),
            blamed: e.blamed.clone(),
            ticks: e.stalls * period,
        })
        .filter(|w| w.ticks > 0)
        .collect();
    waits.sort_by(|a, b| b.ticks.cmp(&a.ticks).then(a.port.cmp(&b.port)));
    waits
}

/// A port cannot carry fewer raw stall cycles than its waiters
/// attribute to it: the port counter is the attribution plus whatever
/// infrastructure (delivery retries) charged on top.
fn check_port_bounds(obs: &Observation, violations: &mut Vec<String>) {
    for snap in &obs.ports {
        let attributed: u64 = obs
            .edges
            .iter()
            .filter(|e| e.port == snap.name)
            .map(|e| e.stalls)
            .sum();
        if attributed > snap.stalls {
            violations.push(format!(
                "port {}: waiters attribute {attributed} stall cycles but the port \
                 counter carries only {}",
                snap.name, snap.stalls
            ));
        }
    }
}

fn account_engine(obs: &Observation, eng: &EngineObs, violations: &mut Vec<String>) -> Accounting {
    let waits = waits_of(obs, &eng.name);
    let blamed = eng.stall_mem_ticks + eng.stall_chan_ticks;
    let busy = eng.busy_ticks;
    let idle = obs.ticks.saturating_sub(blamed + busy);
    if blamed + busy > obs.ticks {
        violations.push(format!(
            "{}: blamed {blamed} + busy {busy} ticks exceed run total {} — \
             blamed + self_busy + idle == ticks cannot hold",
            eng.name, obs.ticks
        ));
    }
    // Cross-layer equality: the stall cycles the machine attributed to
    // this engine's blame edges must sum exactly to the engine's own
    // counters — both sides are charged at the same retry sites, so any
    // difference is a lost or double-counted attribution.
    let port_sum: u64 = waits.iter().map(|w| w.ticks).sum();
    if port_sum != blamed {
        violations.push(format!(
            "{}: per-port stalls sum to {port_sum} ticks but engine counters say {blamed}",
            eng.name
        ));
    }
    Accounting {
        name: eng.name.clone(),
        blamed_ticks: blamed,
        busy_ticks: busy,
        idle_ticks: idle,
        waits,
    }
}

fn critical_path(obs: &Observation, engines: &[Accounting], stall_ticks: u64) -> Vec<PathStep> {
    let mut path = Vec::new();
    let Some(start) = engines.iter().find(|e| e.blamed_ticks > 0) else {
        return path;
    };
    let mut visited = vec![start.name.clone()];
    let mut waits = start.waits.clone();
    let mut comp = start.name.clone();
    while let Some(w) = waits.first().cloned() {
        path.push(PathStep {
            component: comp.clone(),
            port: w.port.clone(),
            blamed: w.blamed.clone(),
            ticks: w.ticks,
            share: if stall_ticks > 0 {
                w.ticks as f64 / stall_ticks as f64
            } else {
                0.0
            },
        });
        if visited.contains(&w.blamed) {
            break;
        }
        visited.push(w.blamed.clone());
        comp = w.blamed;
        waits = waits_of(obs, &comp);
    }
    path
}

/// Collapses the sample windows into maximal phases dominated by one
/// port. Returns an empty vec when no sampling ran or nothing stalled.
pub fn phases(obs: &Observation) -> Vec<Phase> {
    let Some(dump) = &obs.samples else {
        return Vec::new();
    };
    let mut out: Vec<Phase> = Vec::new();
    let mut prev: BTreeMap<&str, u64> = BTreeMap::new();
    let mut from = 0;
    for win in &dump.windows {
        // Dominant port of this window by stall delta; ties break by
        // name order (BTreeMap iteration), keeping the output stable.
        let mut best: Option<(&str, u64)> = None;
        let mut cur: BTreeMap<&str, u64> = BTreeMap::new();
        for (i, name) in dump.port_names.iter().enumerate() {
            let now = win.ports.get(i).map(|p| p.stalls).unwrap_or(0);
            cur.insert(name, now);
            let delta = now - prev.get(name.as_str()).copied().unwrap_or(0);
            if delta > 0 && best.is_none_or(|(_, b)| delta > b) {
                best = Some((name, delta));
            }
        }
        let (port, stalls) = best.unwrap_or(("", 0));
        match out.last_mut() {
            Some(last) if last.port == port && last.to == from => {
                last.to = win.at;
                last.stalls += stalls;
            }
            _ => out.push(Phase {
                from,
                to: win.at,
                port: port.to_string(),
                stalls,
            }),
        }
        from = win.at;
        prev = cur;
    }
    out.retain(|p| !p.port.is_empty());
    out
}

/// Runs the full analysis over one observation.
pub fn analyze(obs: &Observation) -> Explanation {
    let mut violations = Vec::new();
    check_port_bounds(obs, &mut violations);
    let mut engines: Vec<Accounting> = obs
        .engines
        .iter()
        .map(|e| account_engine(obs, e, &mut violations))
        .collect();
    engines.sort_by(|a, b| {
        b.blamed_ticks
            .cmp(&a.blamed_ticks)
            .then(a.name.cmp(&b.name))
    });
    let stall_ticks = engines.iter().map(|e| e.blamed_ticks).sum();
    let critical_path = critical_path(obs, &engines, stall_ticks);
    let phases = phases(obs);
    Explanation {
        ticks: obs.ticks,
        stall_ticks,
        engines,
        critical_path,
        phases,
        violations,
    }
}
