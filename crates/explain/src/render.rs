//! Rendering and export: the human-readable causal tree, a JSON form
//! (parseable by `distda_trace::json`), the `explain.*` report keys,
//! and the verdict helper consumers use to recover the top-of-tree
//! bottleneck from a report.

use crate::analyze::Explanation;
use distda_sim::Report;
use std::fmt::Write as _;

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 * 100.0 / den as f64
    }
}

/// The ranked causal tree as indented text, e.g.
///
/// ```text
/// explain: 1203456 ticks, 84210 engine stall ticks
/// critical path:
///   61.3% of stall ticks: engine.3 blocked on chan2 -> engine.1
///     -> engine.1 blocked on mem.resp1 -> mem (18700 wait ticks)
/// ```
pub fn render_text(x: &Explanation) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "explain: {} ticks, {} engine stall ticks",
        x.ticks, x.stall_ticks
    );
    if x.critical_path.is_empty() {
        let _ = writeln!(s, "critical path: none (no engine stalled)");
    } else {
        let _ = writeln!(s, "critical path:");
        for (i, step) in x.critical_path.iter().enumerate() {
            let indent = "  ".repeat(i + 1);
            if i == 0 {
                let _ = writeln!(
                    s,
                    "{indent}{:.1}% of stall ticks: {} blocked on {} -> {}",
                    step.share * 100.0,
                    step.component,
                    step.port,
                    step.blamed
                );
            } else {
                let _ = writeln!(
                    s,
                    "{indent}-> {} blocked on {} -> {} ({} wait ticks)",
                    step.component, step.port, step.blamed, step.ticks
                );
            }
        }
    }
    let _ = writeln!(s, "engines (blamed + busy + idle == ticks):");
    for e in &x.engines {
        let _ = writeln!(
            s,
            "  {}: blamed {:.1}%  busy {:.1}%  idle {:.1}%  ({} + {} + {} == {})",
            e.name,
            pct(e.blamed_ticks, x.ticks),
            pct(e.busy_ticks, x.ticks),
            pct(e.idle_ticks, x.ticks),
            e.blamed_ticks,
            e.busy_ticks,
            e.idle_ticks,
            x.ticks
        );
        for w in e.waits.iter().take(3) {
            let _ = writeln!(
                s,
                "      wait {} ticks on {} -> {}",
                w.ticks, w.port, w.blamed
            );
        }
    }
    if !x.phases.is_empty() {
        let _ = writeln!(s, "phases:");
        for p in &x.phases {
            let _ = writeln!(
                s,
                "  [{}..{}) dominated by {} (+{} stalls)",
                p.from, p.to, p.port, p.stalls
            );
        }
    }
    for v in &x.violations {
        let _ = writeln!(s, "VIOLATION: {v}");
    }
    s
}

fn esc(s: &str) -> String {
    distda_trace::json::escape(s)
}

/// The explanation as one JSON object (strict JSON, parseable by
/// `distda_trace::json::parse`).
pub fn render_json(x: &Explanation) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"ticks\":{},\"stall_ticks\":{},\"critical_path\":[",
        x.ticks, x.stall_ticks
    );
    for (i, p) in x.critical_path.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"component\":\"{}\",\"port\":\"{}\",\"blamed\":\"{}\",\"ticks\":{},\"share\":{:.6}}}",
            esc(&p.component),
            esc(&p.port),
            esc(&p.blamed),
            p.ticks,
            p.share
        );
    }
    s.push_str("],\"engines\":[");
    for (i, e) in x.engines.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"blamed\":{},\"busy\":{},\"idle\":{},\"waits\":[",
            esc(&e.name),
            e.blamed_ticks,
            e.busy_ticks,
            e.idle_ticks
        );
        for (j, w) in e.waits.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"port\":\"{}\",\"blamed\":\"{}\",\"ticks\":{}}}",
                esc(&w.port),
                esc(&w.blamed),
                w.ticks
            );
        }
        s.push_str("]}");
    }
    s.push_str("],\"phases\":[");
    for (i, p) in x.phases.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"from\":{},\"to\":{},\"port\":\"{}\",\"stalls\":{}}}",
            p.from,
            p.to,
            esc(&p.port),
            p.stalls
        );
    }
    s.push_str("],\"violations\":[");
    for (i, v) in x.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", esc(v));
    }
    s.push_str("]}");
    s
}

/// The explanation as report keys, meant to be merged under the
/// `explain.` prefix: per-node accounting (`node.<name>.blamed` /
/// `.busy` / `.idle` / `.share`), the stall total, and the top-of-path
/// summary. All values are numeric; the top component *name* is
/// recovered by [`top_bottleneck`] as the argmax of the node keys.
pub fn to_report(x: &Explanation) -> Report {
    let mut r = Report::new();
    r.add("ticks", x.ticks as f64);
    r.add("stall_ticks", x.stall_ticks as f64);
    r.add("path.len", x.critical_path.len() as f64);
    if let Some(top) = x.critical_path.first() {
        r.add("top.ticks", top.ticks as f64);
        r.add("top.share", top.share);
    }
    for e in &x.engines {
        r.add(format!("node.{}.blamed", e.name), e.blamed_ticks as f64);
        r.add(format!("node.{}.busy", e.name), e.busy_ticks as f64);
        r.add(format!("node.{}.idle", e.name), e.idle_ticks as f64);
        if x.stall_ticks > 0 {
            r.add(
                format!("node.{}.share", e.name),
                e.blamed_ticks as f64 / x.stall_ticks as f64,
            );
        }
    }
    r.add("violations", x.violations.len() as f64);
    r
}

/// Recovers the bottleneck verdict from a run report carrying
/// `explain.*` keys: the component with the most blamed ticks and its
/// share of all stall ticks. `None` when the report has no explain
/// keys or nothing stalled.
pub fn top_bottleneck(report: &Report) -> Option<(String, f64)> {
    let stall = report.get("explain.stall_ticks")?;
    if stall <= 0.0 {
        return None;
    }
    let mut best: Option<(String, f64)> = None;
    for (k, v) in report.iter() {
        let Some(rest) = k.strip_prefix("explain.node.") else {
            continue;
        };
        let Some(name) = rest.strip_suffix(".blamed") else {
            continue;
        };
        if best.as_ref().is_none_or(|(_, b)| v > *b) {
            best = Some((name.to_string(), v));
        }
    }
    best.map(|(name, blamed)| (name, blamed / stall))
}
