//! Criterion microbenchmarks of the simulator's hot components plus a
//! small end-to-end simulation, so `cargo bench` exercises the substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use distda_ir::prelude::*;
use distda_mem::cache::Cache;
use distda_mem::params::CacheParams;
use distda_noc::{Mesh, NocConfig, Packet, TrafficClass};
use distda_sim::time::ClockDomain;
use distda_system::{ConfigKind, RunConfig};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/streaming_access", |b| {
        let mut cache = Cache::new(CacheParams {
            size_bytes: 32 * 1024,
            assoc: 8,
            latency: 2,
            mshrs: 8,
        });
        let mut line = 0u64;
        b.iter(|| {
            if cache.access(black_box(line), false) == distda_mem::cache::Lookup::Miss {
                cache.fill(line, false);
            }
            line = (line + 1) % 4096;
        });
    });
}

fn bench_noc(c: &mut Criterion) {
    c.bench_function("noc/inject_route_deliver", |b| {
        let mut mesh: Mesh<u64> = Mesh::new(4, 2, NocConfig::default(), ClockDomain::from_ghz(2.0));
        let mut t = 0u64;
        b.iter(|| {
            let _ = mesh.try_inject(t, Packet::new(0, 7, 64, TrafficClass::AccData, t));
            mesh.tick(t);
            for n in 0..8 {
                black_box(mesh.drain_inbox(n));
            }
            t += 1;
        });
    });
}

fn bench_compiler(c: &mut Criterion) {
    let mut b = ProgramBuilder::new("stencil");
    let a = b.array_f64("a", 4096);
    let o = b.array_f64("o", 4096);
    b.for_(1, 4095, 1, |b, i| {
        let v = Expr::load(a, i.clone() - Expr::c(1))
            + Expr::load(a, i.clone())
            + Expr::load(a, i.clone() + Expr::c(1));
        b.store(o, i, v * Expr::cf(1.0 / 3.0));
    });
    let prog = b.build();
    c.bench_function("compiler/compile_distributed", |bch| {
        bch.iter(|| {
            black_box(distda_compiler::compile(
                black_box(&prog),
                distda_compiler::PartitionMode::Distributed,
            ))
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let n = 1024usize;
    let mut b = ProgramBuilder::new("axpy");
    let x = b.array_f64("x", n);
    let y = b.array_f64("y", n);
    b.for_(0, n as i64, 1, |b, i| {
        let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
        b.store(y, i, v);
    });
    let prog = b.build();
    let init = move |mem: &mut Memory| {
        for i in 0..n {
            mem.array_mut(x)[i] = Value::F(i as f64);
        }
    };
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for kind in [ConfigKind::OoO, ConfigKind::DistDAF] {
        g.bench_function(format!("axpy_1k/{:?}", kind), |bch| {
            bch.iter(|| {
                black_box(distda_system::simulate(
                    &prog,
                    &init,
                    &RunConfig::named(kind),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cache, bench_noc, bench_compiler, bench_end_to_end);
criterion_main!(benches);
