//! Microbenchmarks of the simulator's hot components plus a small
//! end-to-end simulation, so `cargo bench` exercises the substrate.
//!
//! Dependency-free harness: each benchmark runs a short warm-up, then
//! reports the mean wall-clock time per iteration over a fixed batch.

use distda_ir::prelude::*;
use distda_mem::cache::Cache;
use distda_mem::params::CacheParams;
use distda_noc::{Mesh, NocConfig, Packet, TrafficClass};
use distda_sim::time::ClockDomain;
use distda_system::{ConfigKind, RunConfig};
use std::hint::black_box;
use std::time::Instant;

/// Times `iters` calls of `f` and prints the mean per-iteration cost.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters.div_ceil(10) {
        f(); // warm-up
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let per = total.as_nanos() as f64 / iters as f64;
    let (val, unit) = if per >= 1e6 {
        (per / 1e6, "ms")
    } else if per >= 1e3 {
        (per / 1e3, "us")
    } else {
        (per, "ns")
    };
    println!("{name:<40} {val:>10.2} {unit}/iter  ({iters} iters)");
}

fn bench_cache() {
    let mut cache = Cache::new(CacheParams {
        size_bytes: 32 * 1024,
        assoc: 8,
        latency: 2,
        mshrs: 8,
    });
    let mut line = 0u64;
    bench("cache/streaming_access", 1_000_000, || {
        if cache.access(black_box(line), false) == distda_mem::cache::Lookup::Miss {
            cache.fill(line, false);
        }
        line = (line + 1) % 4096;
    });
}

fn bench_noc() {
    let mut mesh: Mesh<u64> = Mesh::new(4, 2, NocConfig::default(), ClockDomain::from_ghz(2.0));
    let mut t = 0u64;
    bench("noc/inject_route_deliver", 200_000, || {
        let _ = mesh.try_inject(t, Packet::new(0, 7, 64, TrafficClass::AccData, t));
        mesh.tick(t);
        for n in 0..8 {
            black_box(mesh.drain_inbox(n));
        }
        t += 1;
    });
}

fn bench_compiler() {
    let mut b = ProgramBuilder::new("stencil");
    let a = b.array_f64("a", 4096);
    let o = b.array_f64("o", 4096);
    b.for_(1, 4095, 1, |b, i| {
        let v = Expr::load(a, i.clone() - Expr::c(1))
            + Expr::load(a, i.clone())
            + Expr::load(a, i.clone() + Expr::c(1));
        b.store(o, i, v * Expr::cf(1.0 / 3.0));
    });
    let prog = b.build();
    bench("compiler/compile_distributed", 2_000, || {
        black_box(distda_compiler::compile(
            black_box(&prog),
            distda_compiler::PartitionMode::Distributed,
        ));
    });
}

fn bench_end_to_end() {
    let n = 1024usize;
    let mut b = ProgramBuilder::new("axpy");
    let x = b.array_f64("x", n);
    let y = b.array_f64("y", n);
    b.for_(0, n as i64, 1, |b, i| {
        let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
        b.store(y, i, v);
    });
    let prog = b.build();
    let init = move |mem: &mut Memory| {
        for i in 0..n {
            mem.array_mut(x)[i] = Value::F(i as f64);
        }
    };
    for kind in [ConfigKind::OoO, ConfigKind::DistDAF] {
        bench(&format!("end_to_end/axpy_1k/{kind:?}"), 10, || {
            black_box(distda_system::simulate(
                &prog,
                &init,
                &RunConfig::named(kind),
            ));
        });
    }
}

fn main() {
    bench_cache();
    bench_noc();
    bench_compiler();
    bench_end_to_end();
}
