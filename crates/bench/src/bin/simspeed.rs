//! Measures the idle skip-ahead fast path: runs the paper's 12-workload x
//! 6-configuration sweep single-threaded, once with skip-ahead and once
//! tick-by-tick (interleaved per configuration so ambient load affects
//! both sides alike), and prints the per-kernel wall-clock speedup.

use distda_bench::paper_configs;
use distda_system::simulate_with_ref;
use distda_workloads::{suite, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::eval();
    let cfgs = paper_configs();
    let mut total_skip = 0.0f64;
    let mut total_base = 0.0f64;
    let mut wins = 0usize;
    let workloads = suite(&scale);
    for w in &workloads {
        let reference = w.reference_exec();
        let (mut t_skip, mut t_base) = (0.0f64, 0.0f64);
        for cfg in &cfgs {
            let t0 = Instant::now();
            let r = simulate_with_ref(&w.program, &*w.init, cfg, Some(true), Some(reference)).0;
            t_skip += t0.elapsed().as_secs_f64();
            assert!(r.validated, "{} failed under {}", w.name, cfg.label());
            let t0 = Instant::now();
            let r = simulate_with_ref(&w.program, &*w.init, cfg, Some(false), Some(reference)).0;
            t_base += t0.elapsed().as_secs_f64();
            assert!(r.validated, "{} failed under {}", w.name, cfg.label());
        }
        let speedup = t_base / t_skip;
        if speedup >= 1.5 {
            wins += 1;
        }
        println!(
            "{:<14} skip {:7.2}s  tick-by-tick {:7.2}s  speedup {:5.2}x",
            w.name, t_skip, t_base, speedup
        );
        total_skip += t_skip;
        total_base += t_base;
    }
    println!(
        "total: skip {:.1}s  tick-by-tick {:.1}s  speedup {:.2}x  ({wins}/{} kernels >= 1.5x)",
        total_skip,
        total_base,
        total_base / total_skip,
        workloads.len()
    );
}
