//! Regenerates the paper's fig08 from a full suite sweep.

use distda_bench::{emit, figures, paper_configs, run_suite_matrix};
use distda_workloads::Scale;

fn main() {
    let sweep = run_suite_matrix(&Scale::eval(), &paper_configs());
    emit("fig08_cache_accesses.txt", &figures::fig08(&sweep));
}
