//! Regenerates every table and figure of the paper's evaluation in one
//! run, writing each to `results/`.

use distda_bench::{
    emit, figures, paper_configs, run_kernel_bench, run_suite_matrix, write_simspeed,
};
use distda_workloads::Scale;

fn main() {
    let t0 = std::time::Instant::now();
    let scale = Scale::eval();
    eprintln!("[1/6] suite sweep over the six configurations...");
    let sweep = run_suite_matrix(&scale, &paper_configs());
    emit("headline.txt", &figures::headline(&sweep));
    emit("fig07_energy_efficiency.txt", &figures::fig07(&sweep));
    emit("fig08_cache_accesses.txt", &figures::fig08(&sweep));
    emit("fig09_access_distribution.txt", &figures::fig09(&sweep));
    emit("fig10_noc_traffic.txt", &figures::fig10(&sweep));
    emit("fig11a_memrate_ipc.txt", &figures::fig11a(&sweep));
    emit("fig11b_speedup.txt", &figures::fig11b(&sweep));
    emit("data_movement.txt", &figures::data_movement(&sweep));
    eprintln!("[2/6] case studies (Figure 12)...");
    emit("fig12a_case_control.txt", &figures::fig12a(&scale));
    emit(
        "fig12b_case_multithread.txt",
        &distda_bench::mt::fig12b(&scale),
    );
    eprintln!("[3/6] clock sensitivity (Figure 13)...");
    emit("fig13_clock_sensitivity.txt", &figures::fig13(&scale));
    eprintln!("[4/6] software optimizations (Figure 14)...");
    emit("fig14_sw_optimizations.txt", &figures::fig14(&scale));
    eprintln!("[5/6] tables...");
    emit("table05_interface_coverage.txt", &figures::table05(&scale));
    emit(
        "table06_offload_characteristics.txt",
        &figures::table06(&scale),
    );
    emit("table_area.txt", &figures::table_area());
    eprintln!("[6/6] working-set sweep...");
    emit("sweep_working_set.txt", &figures::sweep_working_set());
    let wall = t0.elapsed().as_secs_f64();
    eprintln!("scheduler micro-bench (busy/idle synthetic machines)...");
    let kb = run_kernel_bench();
    write_simspeed(wall, Some(&kb));
    eprintln!("done — see results/");
}
