//! Section VI-E: fdtd-2d working-set sensitivity sweep.

use distda_bench::{emit, figures};

fn main() {
    emit("sweep_working_set.txt", &figures::sweep_working_set());
}
