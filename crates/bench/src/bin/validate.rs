//! Differential validation sweep: runs every (kernel, config, skip) cell
//! through the simulator with [`CheckPolicy::full`] — golden-model
//! comparison against the IR interpreter *and* the invariant sanitizer —
//! and reports each failing cell by coordinates instead of aborting.
//!
//! ```text
//! cargo run --release --bin validate                  # 12 workloads x 6 configs x skip on/off
//! cargo run --release --bin validate -- --smoke 42    # randomized-kernel smoke at seed 42
//! ```
//!
//! Options:
//!
//! - `--scale tiny|eval`: workload input scale (default `tiny`).
//! - `--kernel NAME` (repeatable): restrict to suite kernels by name
//!   (default: all twelve).
//! - `--config LABEL` (repeatable): restrict to configurations by label
//!   (default: all six). Labels accept topology extensions in the
//!   `Dist-DA-IO:4x4:fm150:t2` form — wider meshes, far-memory pools and
//!   tenant counts sweep through the same strict-validation machinery as
//!   the paper machine.
//! - `--smoke SEED`: instead of the fixed suite, generate randomized
//!   kernels (saxpy, dot reduction, indirect gather, 3-point stencil) with
//!   sizes and constants drawn from `SEED`, and validate those across the
//!   selected configurations. The same seed always generates the same
//!   kernels.
//!
//! Exit status is nonzero if any cell fails.

use distda_system::{parse_label_extension, CheckPolicy, ConfigKind, RunConfig};
use distda_workloads::{micro, suite, Scale, Workload};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

struct Args {
    scale: String,
    kernels: Vec<String>,
    configs: Vec<String>,
    smoke: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: "tiny".to_string(),
        kernels: Vec::new(),
        configs: Vec::new(),
        smoke: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--scale" => args.scale = value("--scale")?,
            "--kernel" => args.kernels.push(value("--kernel")?),
            "--config" => args.configs.push(value("--config")?),
            "--smoke" => {
                args.smoke = Some(
                    value("--smoke")?
                        .parse()
                        .map_err(|e| format!("--smoke: {e}"))?,
                );
            }
            "--help" | "-h" => {
                return Err("usage: validate [--scale tiny|eval] [--kernel NAME]... \
                            [--config LABEL]... [--smoke SEED]"
                    .to_string())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Resolves a `--config` label: the base name must match a [`ConfigKind`],
/// and any `:`-separated topology segments (`4x4`, `b8`, `fm150x4`, `t2`)
/// reshape the machine the configuration runs on.
fn resolve_config(label: &str) -> Result<RunConfig, String> {
    let (base, topo) = parse_label_extension(label)?;
    let kind = ConfigKind::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(base))
        .ok_or_else(|| {
            format!(
                "unknown config: {base} (expected one of {})",
                ConfigKind::ALL.map(|k| k.label()).join(", ")
            )
        })?;
    Ok(RunConfig::named(kind).with_topology(topo))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let scale = match args.scale.as_str() {
        "tiny" => Scale::tiny(),
        "eval" => Scale::eval(),
        other => {
            eprintln!("unknown scale: {other} (expected tiny or eval)");
            return ExitCode::FAILURE;
        }
    };

    let mut configs: Vec<RunConfig> = Vec::new();
    if args.configs.is_empty() {
        configs = ConfigKind::ALL
            .iter()
            .map(|&k| RunConfig::named(k))
            .collect();
    } else {
        for label in &args.configs {
            match resolve_config(label) {
                Ok(cfg) => configs.push(cfg),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let mut workloads: Vec<Workload> = match args.smoke {
        Some(seed) => {
            println!("randomized smoke suite, seed {seed}");
            micro::suite(seed)
        }
        None => suite(&scale),
    };
    if !args.kernels.is_empty() {
        for name in &args.kernels {
            if !workloads.iter().any(|w| &w.name == name) {
                eprintln!(
                    "unknown kernel: {name} (available: {})",
                    workloads
                        .iter()
                        .map(|w| w.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
        workloads.retain(|w| args.kernels.contains(&w.name));
    }

    // Every (workload, config, skip) cell, skip-ahead both on and off: the
    // fast-forwarded and tick-by-tick simulations must both reproduce the
    // golden model and hold every conservation invariant.
    let cells: Vec<(usize, usize, bool)> = (0..workloads.len())
        .flat_map(|w| (0..configs.len()).flat_map(move |c| [true, false].map(move |s| (w, c, s))))
        .collect();

    // Interpret each workload once up front (single-threaded) so worker
    // threads share the cached reference instead of racing to compute it.
    for w in &workloads {
        let _ = w.reference_exec();
    }

    let threads = distda_bench::sweep_threads().min(cells.len()).max(1);
    let next = AtomicUsize::new(0);
    let failures: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(wi, ci, skip)) = cells.get(i) else {
                    break;
                };
                let (w, cfg) = (&workloads[wi], &configs[ci]);
                if let Err(e) = w.try_simulate_checked(cfg, Some(skip), CheckPolicy::full()) {
                    failures.lock().unwrap().push((
                        i,
                        format!(
                            "{} under {} (skip={}): {e}",
                            w.name,
                            cfg.label(),
                            if skip { "on" } else { "off" }
                        ),
                    ));
                }
            });
        }
    });

    let mut failures = failures.into_inner().unwrap();
    failures.sort_by_key(|(i, _)| *i);
    let total = cells.len();
    if failures.is_empty() {
        println!(
            "validate: {total} cells passed ({} kernels x {} configs x skip on/off)",
            workloads.len(),
            configs.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("validate: {}/{total} cells FAILED:", failures.len());
        for (_, msg) in &failures {
            println!("  {msg}");
        }
        ExitCode::FAILURE
    }
}
