//! Differential validation sweep: runs every (kernel, config, skip) cell
//! through the simulator with [`CheckPolicy::full`] — golden-model
//! comparison against the IR interpreter *and* the invariant sanitizer —
//! and reports each failing cell by coordinates instead of aborting.
//!
//! ```text
//! cargo run --release --bin validate                  # 12 workloads x 6 configs x skip on/off
//! cargo run --release --bin validate -- --smoke 42    # randomized-kernel smoke at seed 42
//! ```
//!
//! Options:
//!
//! - `--scale tiny|eval`: workload input scale (default `tiny`).
//! - `--kernel NAME` (repeatable): restrict to suite kernels by name
//!   (default: all twelve).
//! - `--config LABEL` (repeatable): restrict to configurations by label
//!   (default: all six).
//! - `--smoke SEED`: instead of the fixed suite, generate randomized
//!   kernels (saxpy, dot reduction, indirect gather, 3-point stencil) with
//!   sizes and constants drawn from `SEED`, and validate those across the
//!   selected configurations. The same seed always generates the same
//!   kernels.
//!
//! Exit status is nonzero if any cell fails.

use distda_ir::prelude::*;
use distda_system::{CheckPolicy, ConfigKind, RunConfig};
use distda_workloads::{gen, suite, Scale, Workload};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct Args {
    scale: String,
    kernels: Vec<String>,
    configs: Vec<String>,
    smoke: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: "tiny".to_string(),
        kernels: Vec::new(),
        configs: Vec::new(),
        smoke: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--scale" => args.scale = value("--scale")?,
            "--kernel" => args.kernels.push(value("--kernel")?),
            "--config" => args.configs.push(value("--config")?),
            "--smoke" => {
                args.smoke = Some(
                    value("--smoke")?
                        .parse()
                        .map_err(|e| format!("--smoke: {e}"))?,
                );
            }
            "--help" | "-h" => {
                return Err("usage: validate [--scale tiny|eval] [--kernel NAME]... \
                            [--config LABEL]... [--smoke SEED]"
                    .to_string())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Randomized saxpy: `y[i] = a*x[i] + y[i]`.
fn smoke_saxpy(n: usize, a: f64, seed: u64) -> Workload {
    let mut b = ProgramBuilder::new("smoke-saxpy");
    let x = b.array_f64("x", n);
    let y = b.array_f64("y", n);
    b.for_(0, n as i64, 1, |b, i| {
        let v = Expr::cf(a) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
        b.store(y, i, v);
    });
    let prog = b.build();
    Workload {
        name: "smoke-saxpy".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            for (k, v) in gen::unit_floats(n, seed).into_iter().enumerate() {
                mem.array_mut(x)[k] = v;
            }
            for (k, v) in gen::unit_floats(n, seed + 1).into_iter().enumerate() {
                mem.array_mut(y)[k] = v;
            }
        }),
    }
}

/// Randomized dot-product reduction: `out[0] = sum(x[i]*y[i])`.
fn smoke_dot(n: usize, seed: u64) -> Workload {
    let mut b = ProgramBuilder::new("smoke-dot");
    let x = b.array_f64("x", n);
    let y = b.array_f64("y", n);
    let out = b.array_f64("out", 1);
    let acc = b.scalar("acc", 0.0f64);
    b.for_(0, n as i64, 1, |b, i| {
        b.set(
            acc,
            Expr::Scalar(acc) + Expr::load(x, i.clone()) * Expr::load(y, i),
        );
    });
    b.store(out, Expr::c(0), Expr::Scalar(acc));
    let prog = b.build();
    Workload {
        name: "smoke-dot".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            for (k, v) in gen::unit_floats(n, seed).into_iter().enumerate() {
                mem.array_mut(x)[k] = v;
            }
            for (k, v) in gen::unit_floats(n, seed + 1).into_iter().enumerate() {
                mem.array_mut(y)[k] = v;
            }
        }),
    }
}

/// Randomized indirect gather: `out[i] = data[idx[i]]` over a permutation.
fn smoke_gather(n: usize, seed: u64) -> Workload {
    let mut b = ProgramBuilder::new("smoke-gather");
    let idx = b.array_i64("idx", n);
    let data = b.array_f64("data", n);
    let out = b.array_f64("out", n);
    b.for_(0, n as i64, 1, |b, i| {
        let j = Expr::load(idx, i.clone());
        b.store(out, i, Expr::load(data, j));
    });
    let prog = b.build();
    Workload {
        name: "smoke-gather".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            for (k, v) in gen::permutation_cycle(n, seed).into_iter().enumerate() {
                mem.array_mut(idx)[k] = Value::I(v);
            }
            for (k, v) in gen::unit_floats(n, seed + 1).into_iter().enumerate() {
                mem.array_mut(data)[k] = v;
            }
        }),
    }
}

/// Randomized 3-point stencil: `out[i] = c0*a[i-1] + c1*a[i] + c2*a[i+1]`.
fn smoke_stencil(n: usize, c: [f64; 3], seed: u64) -> Workload {
    let mut b = ProgramBuilder::new("smoke-stencil3");
    let a = b.array_f64("a", n);
    let out = b.array_f64("out", n);
    b.for_(1, n as i64 - 1, 1, |b, i| {
        let v = Expr::cf(c[0]) * Expr::load(a, i.clone() - Expr::c(1))
            + Expr::cf(c[1]) * Expr::load(a, i.clone())
            + Expr::cf(c[2]) * Expr::load(a, i.clone() + Expr::c(1));
        b.store(out, i, v);
    });
    let prog = b.build();
    Workload {
        name: "smoke-stencil3".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            for (k, v) in gen::unit_floats(n, seed).into_iter().enumerate() {
                mem.array_mut(a)[k] = v;
            }
        }),
    }
}

/// The randomized smoke suite for one seed: sizes and constants drawn from
/// a [`SplitMix64`](distda_sim::SplitMix64) stream, so the same seed always
/// reproduces the same kernels.
fn smoke_suite(seed: u64) -> Vec<Workload> {
    let mut r = distda_sim::SplitMix64::new(seed);
    let mut size = |lo: u64, hi: u64| (lo + r.below(hi - lo)) as usize;
    let saxpy_n = size(64, 512);
    let dot_n = size(64, 512);
    let gather_n = size(64, 512);
    let stencil_n = size(64, 512);
    let a = 0.5 + r.next_f64() * 4.0;
    let c = [r.next_f64(), r.next_f64(), r.next_f64()];
    vec![
        smoke_saxpy(saxpy_n, a, seed + 10),
        smoke_dot(dot_n, seed + 20),
        smoke_gather(gather_n, seed + 30),
        smoke_stencil(stencil_n, c, seed + 40),
    ]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let scale = match args.scale.as_str() {
        "tiny" => Scale::tiny(),
        "eval" => Scale::eval(),
        other => {
            eprintln!("unknown scale: {other} (expected tiny or eval)");
            return ExitCode::FAILURE;
        }
    };

    let mut configs: Vec<RunConfig> = Vec::new();
    if args.configs.is_empty() {
        configs = ConfigKind::ALL
            .iter()
            .map(|&k| RunConfig::named(k))
            .collect();
    } else {
        for label in &args.configs {
            match ConfigKind::ALL
                .into_iter()
                .find(|k| k.label().eq_ignore_ascii_case(label))
            {
                Some(k) => configs.push(RunConfig::named(k)),
                None => {
                    eprintln!(
                        "unknown config: {label} (expected one of {})",
                        ConfigKind::ALL.map(|k| k.label()).join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let mut workloads = match args.smoke {
        Some(seed) => {
            println!("randomized smoke suite, seed {seed}");
            smoke_suite(seed)
        }
        None => suite(&scale),
    };
    if !args.kernels.is_empty() {
        for name in &args.kernels {
            if !workloads.iter().any(|w| &w.name == name) {
                eprintln!(
                    "unknown kernel: {name} (available: {})",
                    workloads
                        .iter()
                        .map(|w| w.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
        workloads.retain(|w| args.kernels.contains(&w.name));
    }

    // Every (workload, config, skip) cell, skip-ahead both on and off: the
    // fast-forwarded and tick-by-tick simulations must both reproduce the
    // golden model and hold every conservation invariant.
    let cells: Vec<(usize, usize, bool)> = (0..workloads.len())
        .flat_map(|w| (0..configs.len()).flat_map(move |c| [true, false].map(move |s| (w, c, s))))
        .collect();

    // Interpret each workload once up front (single-threaded) so worker
    // threads share the cached reference instead of racing to compute it.
    for w in &workloads {
        let _ = w.reference_exec();
    }

    let threads = distda_bench::sweep_threads().min(cells.len()).max(1);
    let next = AtomicUsize::new(0);
    let failures: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(wi, ci, skip)) = cells.get(i) else {
                    break;
                };
                let (w, cfg) = (&workloads[wi], &configs[ci]);
                if let Err(e) = w.try_simulate_checked(cfg, Some(skip), CheckPolicy::full()) {
                    failures.lock().unwrap().push((
                        i,
                        format!(
                            "{} under {} (skip={}): {e}",
                            w.name,
                            cfg.label(),
                            if skip { "on" } else { "off" }
                        ),
                    ));
                }
            });
        }
    });

    let mut failures = failures.into_inner().unwrap();
    failures.sort_by_key(|(i, _)| *i);
    let total = cells.len();
    if failures.is_empty() {
        println!(
            "validate: {total} cells passed ({} kernels x {} configs x skip on/off)",
            workloads.len(),
            configs.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("validate: {}/{total} cells FAILED:", failures.len());
        for (_, msg) in &failures {
            println!("  {msg}");
        }
        ExitCode::FAILURE
    }
}
