//! Table VI: offload characteristics of the Dist-DA configuration
//! (code/data coverage, init overhead, buffers, microcode size).

use distda_bench::{emit, figures};
use distda_workloads::Scale;

fn main() {
    emit(
        "table06_offload_characteristics.txt",
        &figures::table06(&Scale::eval()),
    );
}
