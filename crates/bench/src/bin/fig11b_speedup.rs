//! Regenerates the paper's fig11b from a full suite sweep.

use distda_bench::{emit, figures, paper_configs, run_suite_matrix};
use distda_workloads::Scale;

fn main() {
    let sweep = run_suite_matrix(&Scale::eval(), &paper_configs());
    emit("fig11b_speedup.txt", &figures::fig11b(&sweep));
}
