//! Figure 14: software-prefetch (+SW) and allocation (+A) optimization
//! study, normalized to Dist-DA-IO.

use distda_bench::{emit, figures};
use distda_workloads::Scale;

fn main() {
    emit(
        "fig14_sw_optimizations.txt",
        &figures::fig14(&Scale::eval()),
    );
}
