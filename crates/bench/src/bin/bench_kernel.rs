//! Scheduler-loop micro-bench: times the dispatch kernel on a synthetic
//! 100%-busy machine and a 99%-idle machine separately, so busy-path
//! (calendar probe) and skip-ahead wins are visible as distinct numbers.
//! The same measurement runs at the end of `reproduce`, which embeds the
//! results in `BENCH_simspeed.json`; this binary is the quick standalone
//! form.
//!
//! ```text
//! cargo run --release -p distda-bench --bin bench_kernel
//! ```

use distda_bench::run_kernel_bench;

fn main() {
    let kb = run_kernel_bench();
    println!(
        "busy machine: {:>12} ticks in {:6.3}s  = {:>12.3e} ticks/sec (every tick executed)",
        kb.busy_ticks,
        kb.busy_secs,
        kb.busy_ticks_per_sec()
    );
    println!(
        "idle machine: {:>12} ticks in {:6.3}s  = {:>12.3e} ticks/sec (~99% skipped)",
        kb.idle_ticks,
        kb.idle_secs,
        kb.idle_ticks_per_sec()
    );
    println!("kernel_bench json block:\n{}", kb.render_json_block());
}
