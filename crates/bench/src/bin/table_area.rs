//! Section VI-E: accelerator area overhead estimates.

use distda_bench::{emit, figures};

fn main() {
    emit("table_area.txt", &figures::table_area());
}
