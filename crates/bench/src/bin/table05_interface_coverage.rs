//! Table V: which interface mechanisms each benchmark exercises
//! (C = compiler-automated, U = user-annotated case study).

use distda_bench::{emit, figures};
use distda_workloads::Scale;

fn main() {
    emit(
        "table05_interface_coverage.txt",
        &figures::table05(&Scale::eval()),
    );
}
