//! Figure 12a: speedup of the control-intensive spmv / nw case studies
//! (Dist-DA-B / -BN / -BNS), Section VI-D.

use distda_bench::{emit, figures};
use distda_workloads::Scale;

fn main() {
    emit("fig12a_case_control.txt", &figures::fig12a(&Scale::eval()));
}
