//! Traces any (kernel, config) pair: runs the simulation with a live
//! tracer attached, writes a Chrome/Perfetto JSON trace and a CSV of the
//! sampled time series, and prints a top-N summary plus a cycle-exact
//! stall/phase attribution.
//!
//! ```text
//! cargo run --release --bin trace -- \
//!     --kernel bfs --kernel pagerank --config Dist-DA-IO --scale tiny
//! ```
//!
//! Options:
//!
//! - `--kernel NAME` (repeatable): workloads to trace by suite name
//!   (`dis`, `tra`, `fdt`, `cho`, `adi`, `sei`, `pf`, `nw`, `bfs`, `pr`,
//!   `pch`, `pca`); default `fdt`, `bfs`, `pr`.
//! - `--config LABEL`: `OoO`, `Mono-CA`, `Mono-DA-IO`, `Mono-DA-F`,
//!   `Dist-DA-IO` (default) or `Dist-DA-F`.
//! - `--scale tiny|eval`: workload input scale (default `tiny`).
//! - `--filter SPEC`: component filter, as in `DISTDA_TRACE` (default
//!   `all`).
//! - `--out DIR`: output directory (default `results`).
//! - `--top N`: summary depth (default 5).
//! - `--check`: re-parse the exported JSON and verify the attribution
//!   partitions the run's ticks exactly; exit nonzero on failure.
//! - `--openmetrics`: additionally bridge the trace's counters and
//!   histograms (plus the run's headline metrics) into the fleet metrics
//!   registry and write `<stem>.om` in the OpenMetrics text format.

use distda_obs::Registry;
use distda_system::{ConfigKind, RunConfig};
use distda_trace::{chrome, csvout, json, summary, Tracer};
use distda_workloads::{suite, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    kernels: Vec<String>,
    config: String,
    scale: String,
    filter: String,
    out: PathBuf,
    top: usize,
    check: bool,
    openmetrics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        kernels: Vec::new(),
        config: "Dist-DA-IO".to_string(),
        scale: "tiny".to_string(),
        filter: "all".to_string(),
        out: PathBuf::from("results"),
        top: 5,
        check: false,
        openmetrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--kernel" => args.kernels.push(value("--kernel")?),
            "--config" => args.config = value("--config")?,
            "--scale" => args.scale = value("--scale")?,
            "--filter" => args.filter = value("--filter")?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--top" => args.top = value("--top")?.parse().map_err(|e| format!("--top: {e}"))?,
            "--check" => args.check = true,
            "--openmetrics" => args.openmetrics = true,
            "--help" | "-h" => {
                return Err("usage: trace [--kernel NAME]... [--config LABEL] \
                            [--scale tiny|eval] [--filter SPEC] [--out DIR] \
                            [--top N] [--check] [--openmetrics]"
                    .to_string())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.kernels.is_empty() {
        args.kernels = ["fdt", "bfs", "pr"].iter().map(|s| s.to_string()).collect();
    }
    Ok(args)
}

fn config_by_label(label: &str) -> Option<RunConfig> {
    ConfigKind::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(label))
        .map(RunConfig::named)
}

fn slug(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let scale = match args.scale.as_str() {
        "tiny" => Scale::tiny(),
        "eval" => Scale::eval(),
        other => {
            eprintln!("unknown scale: {other} (expected tiny or eval)");
            return ExitCode::FAILURE;
        }
    };
    let Some(cfg) = config_by_label(&args.config) else {
        eprintln!(
            "unknown config: {} (expected one of {})",
            args.config,
            ConfigKind::ALL.map(|k| k.label()).join(", ")
        );
        return ExitCode::FAILURE;
    };
    let workloads = suite(&scale);
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }

    let mut failures = 0u32;
    for name in &args.kernels {
        let Some(w) = workloads.iter().find(|w| &w.name == name) else {
            eprintln!(
                "unknown kernel: {name} (available: {})",
                workloads
                    .iter()
                    .map(|w| w.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            failures += 1;
            continue;
        };
        let tracer = Tracer::with_filter(&args.filter);
        let r = distda_system::simulate_traced(&w.program, &*w.init, &cfg, &tracer);

        let stem = format!("trace_{}_{}", slug(&r.kernel), slug(&r.config));
        let json_path = args.out.join(format!("{stem}.json"));
        let csv_path = args.out.join(format!("{stem}.csv"));
        let comps = tracer.components();
        let doc = chrome::export_components(&comps);
        let csv = csvout::export_components(&comps);
        if let Err(e) =
            std::fs::write(&json_path, &doc).and_then(|()| std::fs::write(&csv_path, &csv))
        {
            eprintln!("cannot write trace artifacts: {e}");
            failures += 1;
            continue;
        }

        println!(
            "=== {} / {} — {} ticks, validated={} ===",
            r.kernel, r.config, r.ticks, r.validated
        );
        println!("trace: {}", json_path.display());
        println!("series: {}", csv_path.display());
        print!("{}", summary::render_components(&comps, args.top));
        let attr = summary::attribution_from(&comps, r.ticks);
        print!("{}", summary::render_attribution(&attr));

        if args.openmetrics {
            let mut reg = Registry::new();
            reg.ingest_run(&r);
            reg.ingest_trace_components(&[("kernel", &r.kernel), ("config", &r.config)], &comps);
            let om_path = args.out.join(format!("{stem}.om"));
            if let Err(e) = std::fs::write(&om_path, reg.openmetrics()) {
                eprintln!("cannot write {}: {e}", om_path.display());
                failures += 1;
            } else {
                println!("openmetrics: {}", om_path.display());
            }
        }

        if args.check {
            match json::parse(&doc) {
                Ok(v) => {
                    let n = v
                        .get("traceEvents")
                        .and_then(|e| e.as_arr())
                        .map_or(0, |a| a.len());
                    println!("check: JSON ok ({n} events)");
                }
                Err(e) => {
                    eprintln!("check FAILED: exported JSON does not parse: {e}");
                    failures += 1;
                }
            }
            let total: u64 = attr.parts.iter().map(|(_, t)| t).sum();
            if total != r.ticks {
                eprintln!(
                    "check FAILED: attribution covers {total} of {} ticks",
                    r.ticks
                );
                failures += 1;
            } else {
                println!("check: attribution partitions all {} ticks", r.ticks);
            }
            if !r.validated {
                eprintln!("check FAILED: run did not validate");
                failures += 1;
            }
        }
        println!();
    }
    if failures > 0 {
        eprintln!("{failures} failure(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
