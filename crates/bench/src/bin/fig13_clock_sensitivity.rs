//! Figure 13: accelerator clock sweep (1-3 GHz), speedup and IPC
//! normalized to Dist-DA-IO@1GHz.

use distda_bench::{emit, figures};
use distda_workloads::Scale;

fn main() {
    emit(
        "fig13_clock_sensitivity.txt",
        &figures::fig13(&Scale::eval()),
    );
}
