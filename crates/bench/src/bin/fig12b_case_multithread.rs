//! Figure 12b: multithreaded bfs and pathfinder scaling (1-8 threads),
//! Section VI-D.

use distda_bench::{emit, mt};
use distda_workloads::Scale;

fn main() {
    emit("fig12b_case_multithread.txt", &mt::fig12b(&Scale::eval()));
}
