//! Regenerates the paper's fig07 from a full suite sweep.

use distda_bench::{emit, figures, paper_configs, run_suite_matrix};
use distda_workloads::Scale;

fn main() {
    let sweep = run_suite_matrix(&Scale::eval(), &paper_configs());
    emit("fig07_energy_efficiency.txt", &figures::fig07(&sweep));
}
