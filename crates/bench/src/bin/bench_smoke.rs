//! The CI smoke sweep: the full 12-benchmark suite at tiny scale under
//! two representative configurations, producing the whole observability
//! artifact family in seconds — the deterministic smoke run log, the
//! smoke `BENCH_simspeed` document the regression gate diffs, run
//! manifests, and an OpenMetrics snapshot of every run.
//!
//! ```text
//! DISTDA_PROGRESS=1 cargo run --release --bin bench_smoke
//! cargo run --release --bin obs -- gate \
//!     --baseline ci/simspeed_smoke_baseline.json \
//!     --current results/BENCH_simspeed_smoke.json \
//!     --manifests results/manifests/runs.jsonl
//! ```

use distda_bench::{try_run_matrix, write_simspeed_smoke};
use distda_obs::Registry;
use distda_system::{ConfigKind, RunConfig};
use distda_workloads::{suite, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let t0 = std::time::Instant::now();
    let workloads = suite(&Scale::tiny());
    let configs = vec![
        RunConfig::named(ConfigKind::OoO),
        RunConfig::named(ConfigKind::DistDAIO),
    ];
    let (sweep, failures) = try_run_matrix(&workloads, &configs);

    let mut reg = Registry::new();
    for r in sweep.results.values() {
        reg.ingest_run(r);
    }
    let om_path = "results/smoke.om";
    if std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(om_path, reg.openmetrics()))
        .is_ok()
    {
        eprintln!("wrote {om_path}");
    }

    write_simspeed_smoke(t0.elapsed().as_secs_f64());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAILED: {f}");
        }
        return ExitCode::FAILURE;
    }
    eprintln!(
        "smoke: {} runs ok in {:.2}s",
        sweep.results.len(),
        t0.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
