//! Ablation: horizontal placement / allocation policy (DESIGN.md
//! ablation #6). Compares interleaved (no anchoring), round-robin
//! anchoring (greedy stand-in) and affinity anchoring under Dist-DA-F.

use distda_bench::{emit, run_matrix};
use distda_system::{AllocStrategy, ConfigKind, RunConfig};
use distda_workloads::{disparity, fdtd_2d, pagerank, Scale};
use std::fmt::Write;

fn main() {
    let scale = Scale::eval();
    let ws = vec![disparity(&scale), fdtd_2d(&scale), pagerank(&scale)];
    let mut cfgs = Vec::new();
    for (alloc, tag) in [
        (AllocStrategy::Interleaved, "-interleave"),
        (AllocStrategy::RoundRobin, "-anchor"),
        (AllocStrategy::Affinity, "-affinity"),
    ] {
        let mut c = RunConfig::named(ConfigKind::DistDAF);
        c.alloc = alloc;
        c.suffix = tag;
        cfgs.push(c);
    }
    let sweep = run_matrix(&ws, &cfgs);
    let mut out = String::new();
    writeln!(out, "\n=== Ablation: object placement (Dist-DA-F) ===").unwrap();
    writeln!(
        out,
        "{:<12} {:>26} {:>12} {:>14} {:>12}",
        "kernel", "policy", "ticks", "NoC hop-bytes", "energy(nJ)"
    )
    .unwrap();
    for k in &sweep.kernels {
        for c in &sweep.configs {
            let r = sweep.get(k, c);
            writeln!(
                out,
                "{:<12} {:>26} {:>12} {:>14} {:>12.1}",
                k,
                c,
                r.ticks,
                r.counters.noc_hop_bytes,
                r.energy_pj() / 1e3
            )
            .unwrap();
        }
    }
    emit("ablation_placement.txt", &out);
}
