//! Ablation: access-unit buffer capacity (DESIGN.md ablation #4).
//! Sweeps the per-engine SRAM from 0.5 KB to 8 KB on representative
//! kernels under Dist-DA-F.

use distda_bench::{emit, run_matrix};
use distda_system::{ConfigKind, RunConfig};
use distda_workloads::{fdtd_2d, pagerank, seidel_2d, Scale};
use std::fmt::Write;

fn main() {
    let scale = Scale::eval();
    let ws = vec![fdtd_2d(&scale), seidel_2d(&scale), pagerank(&scale)];
    let mut cfgs = Vec::new();
    for lines in [8usize, 16, 32, 64, 128] {
        let mut c = RunConfig::named(ConfigKind::DistDAF);
        c.buffer_lines = lines;
        c.suffix = match lines {
            8 => "-0.5KB",
            16 => "-1KB",
            32 => "-2KB",
            64 => "-4KB",
            _ => "-8KB",
        };
        cfgs.push(c);
    }
    let sweep = run_matrix(&ws, &cfgs);
    let mut out = String::new();
    writeln!(out, "\n=== Ablation: buffer capacity (Dist-DA-F) ===").unwrap();
    writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>10} {:>10}",
        "kernel", "buffer", "ticks", "intra%", "D-A(KB)"
    )
    .unwrap();
    for k in &sweep.kernels {
        for c in &sweep.configs {
            let r = sweep.get(k, c);
            let total = (r.intra_bytes + r.da_bytes + r.aa_bytes).max(1) as f64;
            writeln!(
                out,
                "{:<12} {:>12} {:>12} {:>9.1}% {:>10}",
                k,
                c,
                r.ticks,
                100.0 * r.intra_bytes as f64 / total,
                r.da_bytes / 1024
            )
            .unwrap();
        }
    }
    emit("ablation_buffer_size.txt", &out);
}
