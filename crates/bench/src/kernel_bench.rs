//! Scheduler-loop micro-benchmarks: synthetic machines that isolate the
//! dispatch kernel from the modeled hardware.
//!
//! Two extremes bracket the tick loop's behavior:
//!
//! - **busy**: every component reports an event on every tick, so
//!   skip-ahead never fires. This times raw dispatch plus the
//!   calendar-fed wake probe's `== now` early exit — the path a
//!   saturated machine lives on.
//! - **idle**: components wake once per ~100 ticks, so ~99% of simulated
//!   time is jumped over. This times the skip-ahead path, whose cost is
//!   dominated by how fast the wake fold finds the next event.
//!
//! The two numbers land in `BENCH_simspeed.json` separately so a
//! calendar-queue win on the busy path and a skip-ahead win on the idle
//! path cannot mask each other in one blended figure.

use distda_sim::component::{Component, Instruments, Scheduler};
use distda_sim::time::Tick;
use std::time::Instant;

/// Components per synthetic machine (matches the order of magnitude of a
/// real `Machine`: delivery + host + mem + noc + a few engines).
const COMPONENTS: u64 = 8;
/// Simulated ticks for the 100%-busy machine (every tick executes).
const BUSY_TICKS: u64 = 4_000_000;
/// Simulated ticks for the 99%-idle machine (one executed tick per
/// [`IDLE_STRIDE`]).
const IDLE_TICKS: u64 = 400_000_000;
/// Gap between consecutive wakes on the idle machine, across all
/// components (each component wakes once per `COMPONENTS * IDLE_STRIDE`).
const IDLE_STRIDE: u64 = 100;

struct KWorld {
    work: u64,
}

/// Always has work at `now`: the scheduler can never skip.
struct Busy;

impl Component<KWorld> for Busy {
    fn name(&self) -> &str {
        "bench.busy"
    }
    fn tick(&mut self, _now: Tick, world: &mut KWorld, _instr: &mut Instruments) {
        world.work = world.work.wrapping_add(1);
    }
    fn next_event(&self, now: Tick, _world: &KWorld) -> Option<Tick> {
        Some(now)
    }
    fn is_quiescent(&self, _now: Tick, _world: &KWorld) -> bool {
        true
    }
}

/// Wakes on ticks where `(now + phase) % period == 0`; staggered phases
/// spread the components' wakes evenly across simulated time.
struct Idle {
    period: u64,
    phase: u64,
}

impl Component<KWorld> for Idle {
    fn name(&self) -> &str {
        "bench.idle"
    }
    fn tick(&mut self, now: Tick, world: &mut KWorld, _instr: &mut Instruments) {
        if (now + self.phase).is_multiple_of(self.period) {
            world.work = world.work.wrapping_add(1);
        }
    }
    fn next_event(&self, now: Tick, _world: &KWorld) -> Option<Tick> {
        Some(now + (self.period - (now + self.phase) % self.period) % self.period)
    }
    fn is_quiescent(&self, _now: Tick, _world: &KWorld) -> bool {
        true
    }
}

/// Wall-clock results of the two micro-benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct KernelBench {
    /// Simulated ticks advanced on the busy machine.
    pub busy_ticks: u64,
    /// Host seconds for the busy machine.
    pub busy_secs: f64,
    /// Simulated ticks advanced on the idle machine.
    pub idle_ticks: u64,
    /// Host seconds for the idle machine.
    pub idle_secs: f64,
}

impl KernelBench {
    /// Busy-machine throughput (every tick executed).
    pub fn busy_ticks_per_sec(&self) -> f64 {
        self.busy_ticks as f64 / self.busy_secs
    }

    /// Idle-machine throughput (~99% of ticks skipped).
    pub fn idle_ticks_per_sec(&self) -> f64 {
        self.idle_ticks as f64 / self.idle_secs
    }

    /// The `"kernel_bench"` JSON object embedded in `BENCH_simspeed.json`.
    pub fn render_json_block(&self) -> String {
        format!(
            concat!(
                "{{\n    \"busy_ticks\": {},\n    \"busy_secs\": {:.3},\n",
                "    \"busy_ticks_per_sec\": {:.1},\n",
                "    \"idle_ticks\": {},\n    \"idle_secs\": {:.3},\n",
                "    \"idle_ticks_per_sec\": {:.1}\n  }}"
            ),
            self.busy_ticks,
            self.busy_secs,
            self.busy_ticks_per_sec(),
            self.idle_ticks,
            self.idle_secs,
            self.idle_ticks_per_sec(),
        )
    }
}

fn time_machine(comps: impl Iterator<Item = Box<dyn Component<KWorld>>>, ticks: u64) -> f64 {
    let mut world = KWorld { work: 0 };
    let mut sched: Scheduler<KWorld> = Scheduler::new(u64::MAX, true);
    for (stage, c) in comps.enumerate() {
        sched.register(stage as u32, c, &mut world);
    }
    let t0 = Instant::now();
    sched.advance_ticks(&mut world, ticks);
    let secs = t0.elapsed().as_secs_f64();
    assert!(world.work > 0, "micro-bench machine did no work");
    secs
}

/// Runs both micro-benchmarks single-threaded and returns their timings.
pub fn run_kernel_bench() -> KernelBench {
    let busy_secs = time_machine(
        (0..COMPONENTS).map(|_| Box::new(Busy) as Box<dyn Component<KWorld>>),
        BUSY_TICKS,
    );
    let period = COMPONENTS * IDLE_STRIDE;
    let idle_secs = time_machine(
        (0..COMPONENTS).map(|i| {
            Box::new(Idle {
                period,
                phase: i * IDLE_STRIDE,
            }) as Box<dyn Component<KWorld>>
        }),
        IDLE_TICKS,
    );
    KernelBench {
        busy_ticks: BUSY_TICKS,
        busy_secs,
        idle_ticks: IDLE_TICKS,
        idle_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_machine_executes_every_tick() {
        let mut world = KWorld { work: 0 };
        let mut sched: Scheduler<KWorld> = Scheduler::new(u64::MAX, true);
        for s in 0..4u32 {
            sched.register(s, Box::new(Busy), &mut world);
        }
        sched.advance_ticks(&mut world, 1000);
        assert_eq!(world.work, 4 * 1000);
    }

    #[test]
    fn idle_machine_skips_between_staggered_wakes() {
        let mut world = KWorld { work: 0 };
        let mut sched: Scheduler<KWorld> = Scheduler::new(u64::MAX, true);
        for i in 0..4u64 {
            sched.register(
                i as u32,
                Box::new(Idle {
                    period: 40,
                    phase: i * 10,
                }),
                &mut world,
            );
        }
        // One component has work every 10 ticks; each executed tick runs
        // all four but only one counts.
        sched.advance_ticks(&mut world, 400);
        assert_eq!(world.work, 400 / 10);
    }

    #[test]
    fn json_block_carries_distinct_numbers() {
        let kb = KernelBench {
            busy_ticks: 100,
            busy_secs: 2.0,
            idle_ticks: 1000,
            idle_secs: 4.0,
        };
        assert!((kb.busy_ticks_per_sec() - 50.0).abs() < 1e-9);
        assert!((kb.idle_ticks_per_sec() - 250.0).abs() < 1e-9);
        let block = kb.render_json_block();
        assert!(block.contains("\"busy_ticks_per_sec\": 50.0"));
        assert!(block.contains("\"idle_ticks_per_sec\": 250.0"));
    }
}
