//! Renderers for every table and figure in the paper's evaluation.
//!
//! Each function returns the rendered text; binaries print and save it.
//! Normalization follows the paper: everything against OoO unless stated
//! otherwise (Figure 13 against Dist-DA-IO@1GHz, Figure 14 against
//! Dist-DA-IO).

use crate::{metric_table, run_suite_matrix, Sweep};
use distda_compiler::{compile, summarize, MechanismUse, PartitionMode};
use distda_energy::AreaModel;
use distda_system::{ConfigKind, RunConfig};
use distda_workloads::{fdtd_2d, nw_blocked, spmv, spmv_flat, suite, Scale};
use std::fmt::Write;

/// Accelerated configuration labels, in paper order.
fn accel_labels(sweep: &Sweep) -> Vec<String> {
    sweep.configs.clone()
}

/// Figure 7: normalized energy efficiency (higher is better).
pub fn fig07(sweep: &Sweep) -> String {
    metric_table(
        "Figure 7: normalized energy efficiency (vs OoO, higher = better)",
        sweep,
        &accel_labels(sweep),
        |r| r.energy_pj(),
        Some("OoO"),
        true,
    )
}

/// Figure 8: normalized cache accesses (lower is better).
pub fn fig08(sweep: &Sweep) -> String {
    metric_table(
        "Figure 8: # cache accesses normalized to OoO (lower = better)",
        sweep,
        &accel_labels(sweep),
        |r| r.cache_accesses as f64,
        Some("OoO"),
        false,
    )
}

/// Figure 9: dynamic access distribution (intra / D-A / A-A) per DA
/// configuration.
pub fn fig09(sweep: &Sweep) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "\n=== Figure 9: dynamic access distribution (% of accelerator bytes) ==="
    )
    .unwrap();
    let configs: Vec<&String> = sweep
        .configs
        .iter()
        .filter(|c| c.as_str() != "OoO")
        .collect();
    writeln!(
        out,
        "{:<14} {:<20} {:>8} {:>8} {:>8}",
        "benchmark", "config", "intra%", "D-A%", "A-A%"
    )
    .unwrap();
    for k in &sweep.kernels {
        for c in &configs {
            let r = sweep.get(k, c);
            let total = (r.intra_bytes + r.da_bytes + r.aa_bytes).max(1) as f64;
            writeln!(
                out,
                "{:<14} {:<20} {:>8.1} {:>8.1} {:>8.1}",
                k,
                c,
                100.0 * r.intra_bytes as f64 / total,
                100.0 * r.da_bytes as f64 / total,
                100.0 * r.aa_bytes as f64 / total,
            )
            .unwrap();
        }
    }
    out
}

/// Figure 10: NoC traffic breakdown, normalized to the OoO total.
pub fn fig10(sweep: &Sweep) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "\n=== Figure 10: NoC bytes by class, normalized to OoO total ==="
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:<20} {:>8} {:>8} {:>9} {:>9} {:>9} {:>8}",
        "benchmark", "config", "ctrl", "data", "acc_ctrl", "acc_data", "mem_data", "total"
    )
    .unwrap();
    for k in &sweep.kernels {
        let base: f64 = sweep.get(k, "OoO").noc_bytes.iter().sum::<u64>().max(1) as f64;
        for c in &sweep.configs {
            let r = sweep.get(k, c);
            let nb = r.noc_bytes;
            writeln!(
                out,
                "{:<14} {:<20} {:>8.3} {:>8.3} {:>9.3} {:>9.3} {:>9.3} {:>8.3}",
                k,
                c,
                nb[0] as f64 / base,
                nb[1] as f64 / base,
                nb[2] as f64 / base,
                nb[3] as f64 / base,
                nb[4] as f64 / base,
                nb.iter().sum::<u64>() as f64 / base,
            )
            .unwrap();
        }
    }
    out
}

/// Figure 11a: normalized memory-operation rate and IPC.
pub fn fig11a(sweep: &Sweep) -> String {
    let mut out = metric_table(
        "Figure 11a (left): memory-op rate normalized to OoO",
        sweep,
        &accel_labels(sweep),
        |r| r.mem_op_rate(),
        Some("OoO"),
        false,
    );
    out.push_str(&metric_table(
        "Figure 11a (right): IPC normalized to OoO",
        sweep,
        &accel_labels(sweep),
        |r| r.ipc(),
        Some("OoO"),
        false,
    ));
    out
}

/// Figure 11b: speedup over OoO.
pub fn fig11b(sweep: &Sweep) -> String {
    metric_table(
        "Figure 11b: speedup vs OoO (higher = better)",
        sweep,
        &accel_labels(sweep),
        |r| r.ticks as f64,
        Some("OoO"),
        true,
    )
}

/// Headline data-movement reduction (abstract: 2.4x / 3.5x / 1.48x).
pub fn data_movement(sweep: &Sweep) -> String {
    metric_table(
        "Data movement (bytes) normalized to OoO (lower = better)",
        sweep,
        &accel_labels(sweep),
        |r| r.data_moved_bytes as f64,
        Some("OoO"),
        false,
    )
}

/// Figure 12a: the spmv / nw control-intensive case studies.
///
/// * Dist-DA-B  — compiler-automated innermost-loop offload (one launch
///   per row): launch overhead dominates short rows.
/// * Dist-DA-BN — user-annotated loop-nest localization, modeled by the
///   nonzero-flattened kernel (one launch per matrix).
/// * Dist-DA-BNS — BN plus a user-specified fill/drain schedule, modeled
///   by deeper prefetch/MLP tuning and affinity allocation
///   (`cp_fill_ra`/`cp_drain_ra` semantics).
pub fn fig12a(scale: &Scale) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "\n=== Figure 12a: control-intensive offload case study ==="
    )
    .unwrap();
    writeln!(out, "{:<8} {:<14} {:>10}", "kernel", "config", "speedup").unwrap();

    // spmv family.
    let row = spmv(scale);
    let flat = spmv_flat(scale);
    let ooo = row.simulate(&RunConfig::named(ConfigKind::OoO));
    let b = row.simulate(&RunConfig::named(ConfigKind::DistDAIO));
    let bn = flat.simulate(&RunConfig::named(ConfigKind::DistDAIO));
    let mut bns_cfg = RunConfig::dist_da_io_sw();
    bns_cfg.alloc = distda_system::AllocStrategy::Affinity;
    let bns = flat.simulate(&bns_cfg);
    for (label, r) in [
        ("Dist-DA-B", &b),
        ("Dist-DA-BN", &bn),
        ("Dist-DA-BNS", &bns),
    ] {
        assert!(r.validated);
        writeln!(
            out,
            "{:<8} {:<14} {:>10.2}",
            "spmv",
            label,
            ooo.ticks as f64 / r.ticks as f64
        )
        .unwrap();
    }

    // nw family: short inner blocks (B) vs full-row localization (BN/BNS).
    let nw_b = nw_blocked(scale, 8);
    let nw_bn = nw_blocked(scale, scale.seq);
    let ooo_nw = nw_b.simulate(&RunConfig::named(ConfigKind::OoO));
    let b = nw_b.simulate(&RunConfig::named(ConfigKind::DistDAIO));
    let bn = nw_bn.simulate(&RunConfig::named(ConfigKind::DistDAIO));
    let bns = nw_bn.simulate(&bns_cfg);
    for (label, r) in [
        ("Dist-DA-B", &b),
        ("Dist-DA-BN", &bn),
        ("Dist-DA-BNS", &bns),
    ] {
        assert!(r.validated);
        writeln!(
            out,
            "{:<8} {:<14} {:>10.2}",
            "nw",
            label,
            ooo_nw.ticks as f64 / r.ticks as f64
        )
        .unwrap();
    }
    out
}

/// Figure 13: accelerator clock sensitivity (1-3 GHz), normalized to
/// Dist-DA-IO@1GHz.
pub fn fig13(scale: &Scale) -> String {
    let mut cfgs = Vec::new();
    for ghz in [1.0, 1.5, 2.0, 3.0] {
        cfgs.push(RunConfig {
            accel_ghz: ghz,
            ..RunConfig::named(ConfigKind::DistDAIO)
        });
        cfgs.push(RunConfig {
            accel_ghz: ghz,
            ..RunConfig::named(ConfigKind::DistDAF)
        });
    }
    let sweep = run_suite_matrix(scale, &cfgs);
    let labels = sweep.configs.clone();
    let mut out = metric_table(
        "Figure 13 (speedup): normalized to Dist-DA-IO@1GHz (higher = better)",
        &sweep,
        &labels,
        |r| r.ticks as f64,
        Some("Dist-DA-IO@1GHz"),
        true,
    );
    // The paper's Figure 13 IPC is per *accelerator* cycle: raising the
    // clock shortens the cycle, so access-dominated kernels lose IPC even
    // as wall-clock improves.
    let accel_ipc = |r: &distda_system::RunResult| {
        let ghz: f64 = r
            .config
            .rsplit('@')
            .next()
            .and_then(|s| s.trim_end_matches("GHz").parse().ok())
            .unwrap_or(2.0);
        let cycles = r.ns * ghz;
        r.total_ops as f64 / cycles.max(1.0)
    };
    out.push_str(&metric_table(
        "Figure 13 (IPC per accelerator cycle): normalized to Dist-DA-IO@1GHz",
        &sweep,
        &labels,
        accel_ipc,
        Some("Dist-DA-IO@1GHz"),
        false,
    ));
    out
}

/// Figure 14: software-optimization study, normalized to Dist-DA-IO.
pub fn fig14(scale: &Scale) -> String {
    let cfgs = vec![
        RunConfig::named(ConfigKind::DistDAIO),
        RunConfig::dist_da_io_sw(),
        RunConfig::named(ConfigKind::DistDAF),
        RunConfig::dist_da_f_alloc(),
    ];
    let sweep = run_suite_matrix(scale, &cfgs);
    let labels = sweep.configs.clone();
    let mut out = metric_table(
        "Figure 14 (speedup): normalized to Dist-DA-IO@2GHz",
        &sweep,
        &labels,
        |r| r.ticks as f64,
        Some("Dist-DA-IO@2GHz"),
        true,
    );
    out.push_str(&metric_table(
        "Figure 14 (energy efficiency): normalized to Dist-DA-IO@2GHz",
        &sweep,
        &labels,
        |r| r.energy_pj(),
        Some("Dist-DA-IO@2GHz"),
        true,
    ));
    out
}

/// Table V: coverage of interface mechanisms (C = compiler-automated,
/// U = user-annotated case study).
pub fn table05(scale: &Scale) -> String {
    let mut out = String::new();
    writeln!(out, "\n=== Table V: coverage of interface mechanisms ===").unwrap();
    let mech_names: Vec<&str> = MechanismUse::default().iter().map(|(n, _)| n).collect();
    write!(out, "{:<12}", "benchmark").unwrap();
    for n in &mech_names {
        write!(out, " {:>16}", n).unwrap();
    }
    writeln!(out).unwrap();
    for w in suite(scale) {
        let ck = compile(&w.program, PartitionMode::Distributed);
        let m = MechanismUse::of_plans(&ck.offloads);
        write!(out, "{:<12}", w.name).unwrap();
        for (_, used) in m.iter() {
            write!(out, " {:>16}", if used { "C" } else { "" }).unwrap();
        }
        writeln!(out).unwrap();
    }
    // Annotated case studies: mark the user-driven mechanisms. The
    // BNS schedule exercises cp_fill_ra/cp_drain_ra explicitly.
    for (name, w, ra) in [
        ("spmv(ann.)", spmv_flat(scale), true),
        ("nw(ann.)", nw_blocked(scale, scale.seq), true),
    ] {
        let ck = compile(&w.program, PartitionMode::Distributed);
        let mut m = MechanismUse::of_plans(&ck.offloads);
        m.cp_fill_ra = ra;
        m.cp_drain_ra = ra;
        write!(out, "{:<12}", name).unwrap();
        for (_, used) in m.iter() {
            write!(out, " {:>16}", if used { "U" } else { "" }).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Table VI: offload characteristics of the Dist-DA configuration.
pub fn table06(scale: &Scale) -> String {
    let mut out = String::new();
    writeln!(out, "\n=== Table VI: offload characteristics (Dist-DA) ===").unwrap();
    writeln!(
        out,
        "{:<14} {:>6} {:>6} {:>7} {:>5} {:>7} {:>9} {:>9}",
        "benchmark", "%cc", "%dc", "%init", "#buf", "#insts", "DFG dim", "insts(B)"
    )
    .unwrap();
    for w in suite(scale) {
        let ck = compile(&w.program, PartitionMode::Distributed);
        let dims: Vec<(usize, usize)> = ck.offloads.iter().map(|p| p.dfg_dims).collect();
        let stats = summarize(&ck.offloads, &dims);
        let ooo = w.simulate(&RunConfig::named(ConfigKind::OoO));
        let dist = w.simulate(&RunConfig::named(ConfigKind::DistDAIO));
        assert!(ooo.validated && dist.validated);
        let accel_ops = dist.total_ops - dist.host_ops;
        let host_mem = dist.report.get("host.mem_ops").unwrap_or(0.0) as u64;
        // `RunResult::mem_ops` is host mem ops + engine mem ops, and the
        // "host.mem_ops" report entry is the same host count round-tripped
        // through f64 (exact below 2^53), so the host share can never
        // exceed the total.
        debug_assert!(
            host_mem <= dist.mem_ops,
            "host mem ops {host_mem} exceed total {}",
            dist.mem_ops
        );
        let accel_mem = dist.mem_ops - host_mem;
        let cc = 100.0 * accel_ops as f64 / ooo.total_ops.max(1) as f64;
        let dc = 100.0 * accel_mem as f64 / ooo.mem_ops.max(1) as f64;
        let init = 100.0 * dist.counters.mmio_words as f64 / ooo.mem_ops.max(1) as f64;
        writeln!(
            out,
            "{:<14} {:>6.1} {:>6.2} {:>7.2} {:>5} {:>7} {:>4}x{:<4} {:>9}",
            w.name,
            cc.min(100.0),
            dc.min(100.0),
            init,
            stats.avg_buffers,
            stats.max_insts,
            stats.dfg_dims.0,
            stats.dfg_dims.1,
            stats.max_microcode_bytes,
        )
        .unwrap();
    }
    out
}

/// Section VI-E: accelerator area overheads.
pub fn table_area() -> String {
    let a = AreaModel::nominal_32nm();
    let clusters = distda_system::Topology::paper().clusters();
    let mut out = String::new();
    writeln!(out, "\n=== Section VI-E: area overheads (32 nm) ===").unwrap();
    writeln!(
        out,
        "in-order core + access unit: {:.2}% of an L3 cluster, {:.2}% of the chip ({clusters} clusters)",
        a.io_overhead_per_cluster() * 100.0,
        a.io_overhead_chip(clusters) * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "5x5 CGRA + access unit:      {:.2}% of an L3 cluster, {:.2}% of the chip ({clusters} clusters)",
        a.cgra_overhead_per_cluster() * 100.0,
        a.cgra_overhead_chip(clusters) * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "(paper reports 1.9%/0.3% for the in-order core and 2.9%/0.48% for the CGRA)"
    )
    .unwrap();
    out
}

/// Section VI-E working-set sweep on fdtd-2d.
pub fn sweep_working_set() -> String {
    let mut out = String::new();
    writeln!(out, "\n=== Section VI-E: fdtd-2d working-set sweep ===").unwrap();
    writeln!(
        out,
        "{:>6} {:>12} {:>22} {:>20}",
        "grid", "footprint", "on-chip move reduction", "energy eff (vs Mono)"
    )
    .unwrap();
    for grid in [64usize, 128, 256, 384] {
        let mut scale = Scale::big_grid(grid);
        scale.steps = 1;
        let w = fdtd_2d(&scale);
        let mono = w.simulate(&RunConfig::named(ConfigKind::MonoDAIO));
        let dist = w.simulate(&RunConfig::named(ConfigKind::DistDAF));
        assert!(mono.validated && dist.validated);
        // On-chip movement excludes DRAM bytes.
        let onchip = |r: &distda_system::RunResult| {
            (r.data_moved_bytes - 64 * r.counters.dram_accesses).max(1) as f64
        };
        writeln!(
            out,
            "{:>6} {:>10}KB {:>22.2} {:>20.3}",
            grid,
            w.program.footprint_bytes() / 1024,
            onchip(&mono) / onchip(&dist),
            mono.energy_pj() / dist.energy_pj(),
        )
        .unwrap();
    }
    out
}

/// Run the headline summary (abstract numbers).
pub fn headline(sweep: &Sweep) -> String {
    let mut out = String::new();
    writeln!(out, "\n=== Headline geometric means (paper abstract) ===").unwrap();
    let gm = |metric: &dyn Fn(&distda_system::RunResult) -> f64, cfg: &str, invert: bool| {
        distda_sim::geomean(sweep.kernels.iter().map(|k| {
            let v = metric(sweep.get(k, cfg));
            let b = metric(sweep.get(k, "OoO"));
            if invert {
                b / v
            } else {
                v / b
            }
        }))
        .unwrap_or(f64::NAN)
    };
    for (name, cfg) in [
        ("vs OoO       ", "OoO"),
        ("vs Mono-CA   ", "Mono-CA@2GHz"),
        ("vs Mono-DA-IO", "Mono-DA-IO@2GHz"),
    ] {
        let e_base = gm(&|r| r.energy_pj(), cfg, true);
        let e_dist = gm(&|r| r.energy_pj(), "Dist-DA-F@1GHz", true);
        let s_base = gm(&|r| r.ticks as f64, cfg, true);
        let s_dist = gm(&|r| r.ticks as f64, "Dist-DA-F@1GHz", true);
        let d_base = gm(&|r| r.data_moved_bytes as f64, cfg, false);
        let d_dist = gm(&|r| r.data_moved_bytes as f64, "Dist-DA-F@1GHz", false);
        writeln!(
            out,
            "Dist-DA-F {}: energy-eff {:.2}x, speedup {:.2}x, data-movement reduction {:.2}x",
            name,
            e_dist / e_base,
            s_dist / s_base,
            d_base / d_dist,
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper: vs OoO 3.3x/1.59x/2.4x; vs Mono-CA 2.46x/1.43x/3.5x; vs Mono-DA-IO 1.46x/1.65x/1.48x)"
    )
    .unwrap();
    // Compute-specialization component: Dist-DA-F vs Dist-DA-IO.
    let e = gm(&|r| r.energy_pj(), "Dist-DA-IO@2GHz", true);
    let ef = gm(&|r| r.energy_pj(), "Dist-DA-F@1GHz", true);
    writeln!(
        out,
        "compute specialization (Dist-DA-F vs Dist-DA-IO): energy-eff {:.2}x (paper: 1.23x)",
        ef / e
    )
    .unwrap();
    out
}

/// Convenience for tests: a tiny-scale suite sweep over all six configs.
pub fn tiny_sweep() -> Sweep {
    run_suite_matrix(&Scale::tiny(), &crate::paper_configs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_table_mentions_both_substrates() {
        let t = table_area();
        assert!(t.contains("CGRA") && t.contains("in-order"));
    }

    #[test]
    fn table05_marks_case_studies_user_annotated() {
        let t = table05(&Scale::tiny());
        assert!(t.contains("spmv(ann.)"));
        assert!(t.contains('U'));
        assert!(t.contains('C'));
    }
}
