//! # distda-bench
//!
//! The experiment harness: shared sweep infrastructure used by one binary
//! per paper figure/table (`fig07_energy_efficiency`, ...,
//! `table06_offload_characteristics`, `reproduce`). Each binary prints the
//! same rows/series the paper reports, normalized the same way.

pub mod figures;
pub mod kernel_bench;
pub mod mt;

pub use kernel_bench::{run_kernel_bench, KernelBench};

use distda_obs::manifest::{config_hash, ManifestRecord};
use distda_obs::Progress;
use distda_sim::geomean;
use distda_system::{ConfigKind, RunConfig, RunResult};
use distda_workloads::{suite, Scale, Workload};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Results of simulating a set of workloads under a set of configurations.
#[derive(Debug, Default)]
pub struct Sweep {
    /// Kernel names in run order.
    pub kernels: Vec<String>,
    /// Configuration labels in run order.
    pub configs: Vec<String>,
    /// Result per (kernel, config label).
    pub results: BTreeMap<(String, String), RunResult>,
}

impl Sweep {
    /// Looks up a result.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not simulated.
    pub fn get(&self, kernel: &str, config: &str) -> &RunResult {
        self.results
            .get(&(kernel.to_string(), config.to_string()))
            .unwrap_or_else(|| panic!("missing result {kernel}/{config}"))
    }

    /// Adds a result.
    pub fn insert(&mut self, r: RunResult) {
        if !self.kernels.contains(&r.kernel) {
            self.kernels.push(r.kernel.clone());
        }
        if !self.configs.contains(&r.config) {
            self.configs.push(r.config.clone());
        }
        self.results.insert((r.kernel.clone(), r.config.clone()), r);
    }
}

/// Worker count for parallel sweeps: `DISTDA_THREADS` if set to a positive
/// integer, otherwise the host's available parallelism.
pub fn sweep_threads() -> usize {
    distda_sim::env::threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Wall-clock record of one simulated (kernel, config) run.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// Kernel name.
    pub kernel: String,
    /// Configuration label.
    pub config: String,
    /// Structural hash of the full [`RunConfig`] (manifest identity).
    pub config_hash: String,
    /// Host seconds spent simulating this run.
    pub host_secs: f64,
    /// Simulated base ticks the run covered.
    pub ticks: u64,
}

static TIMINGS: Mutex<Vec<RunTiming>> = Mutex::new(Vec::new());

/// Drains the wall-clock records accumulated by [`run_matrix`] since the
/// last call (used by `reproduce` to report simulator throughput).
pub fn take_timings() -> Vec<RunTiming> {
    std::mem::take(&mut *TIMINGS.lock().unwrap())
}

/// One failed cell of a sweep: the pair that failed and why. Collected by
/// [`try_run_matrix`] so a single bad (kernel, config) combination is
/// reported with its coordinates instead of aborting the whole sweep.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// Kernel name.
    pub kernel: String,
    /// Configuration label.
    pub config: String,
    /// Rendered [`distda_system::SimError`] (or validation failure).
    pub error: String,
}

impl std::fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} under {}: {}", self.kernel, self.config, self.error)
    }
}

/// Runs `workloads x configs` across [`sweep_threads`] worker threads,
/// logging progress to stderr. Each (kernel, config) pair simulates an
/// independent machine, so results are bit-identical to the sequential
/// sweep; pairs are inserted into the [`Sweep`] in their nested-loop order
/// regardless of which worker finished first, keeping row/column order,
/// iteration order, and the failure list deterministic.
///
/// A failing cell (deadlock, invariant violation, wrong results) becomes a
/// [`SweepFailure`] naming its (kernel, config) pair; the remaining cells
/// still run and their results are returned.
pub fn try_run_matrix(workloads: &[Workload], configs: &[RunConfig]) -> (Sweep, Vec<SweepFailure>) {
    let progress = Progress::from_env(workloads.len() * configs.len());
    let out = try_run_matrix_with_progress(workloads, configs, progress.as_ref());
    if let Some(p) = progress {
        p.finish();
    }
    out
}

/// [`try_run_matrix`] with an explicit [`Progress`] reporter instead of
/// the `DISTDA_PROGRESS` policy — the programmatic entry point the
/// observability tests use. When a reporter is attached the legacy
/// per-cell `\r` counter is suppressed (the reporter owns stderr).
pub fn try_run_matrix_with_progress(
    workloads: &[Workload],
    configs: &[RunConfig],
    progress: Option<&Progress>,
) -> (Sweep, Vec<SweepFailure>) {
    let pairs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..configs.len()).map(move |c| (w, c)))
        .collect();
    let threads = sweep_threads().min(pairs.len()).max(1);
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<RunResult, SweepFailure>>>> =
        pairs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(wi, ci)) = pairs.get(i) else { break };
                let (w, cfg) = (&workloads[wi], &configs[ci]);
                if let Some(p) = progress {
                    p.cell_started();
                }
                let t0 = Instant::now();
                let outcome = match w.try_simulate(cfg) {
                    Ok(r) if !r.validated => Err(SweepFailure {
                        kernel: w.name.clone(),
                        config: cfg.label(),
                        error: "produced wrong results (golden-model mismatch)".to_string(),
                    }),
                    Ok(r) => {
                        TIMINGS.lock().unwrap().push(RunTiming {
                            kernel: r.kernel.clone(),
                            config: r.config.clone(),
                            config_hash: config_hash(cfg),
                            host_secs: t0.elapsed().as_secs_f64(),
                            ticks: r.ticks,
                        });
                        Ok(r)
                    }
                    Err(e) => Err(SweepFailure {
                        kernel: w.name.clone(),
                        config: cfg.label(),
                        error: e.to_string(),
                    }),
                };
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(p) = progress {
                    let (ok, ticks) = match &outcome {
                        Ok(r) => (true, r.ticks),
                        Err(_) => (false, 0),
                    };
                    p.cell_done(&w.name, &cfg.label(), ok, t0.elapsed().as_secs_f64(), ticks);
                } else {
                    eprint!(
                        "  sim {:<14} {:<20} [{d}/{}]\r",
                        w.name,
                        cfg.label(),
                        pairs.len()
                    );
                    std::io::stderr().flush().ok();
                }
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });
    if progress.is_none() {
        eprintln!();
    }
    let mut sweep = Sweep::default();
    let mut failures = Vec::new();
    for slot in slots {
        match slot
            .into_inner()
            .unwrap()
            .expect("every claimed pair completed")
        {
            Ok(r) => sweep.insert(r),
            Err(f) => failures.push(f),
        }
    }
    (sweep, failures)
}

/// [`try_run_matrix`] for harness code that treats any failing cell as
/// fatal: the figure binaries want a complete matrix or nothing.
///
/// # Panics
///
/// Panics if any cell failed, listing every failing (kernel, config) pair
/// (a simulation bug, never expected).
pub fn run_matrix(workloads: &[Workload], configs: &[RunConfig]) -> Sweep {
    let (sweep, failures) = try_run_matrix(workloads, configs);
    if !failures.is_empty() {
        let mut msg = format!("{} sweep cell(s) failed:\n", failures.len());
        for f in &failures {
            use std::fmt::Write as _;
            let _ = writeln!(msg, "  {f}");
        }
        panic!("{msg}");
    }
    sweep
}

/// Runs the full 12-benchmark suite under the given configurations.
pub fn run_suite_matrix(scale: &Scale, configs: &[RunConfig]) -> Sweep {
    run_matrix(&suite(scale), configs)
}

/// The six paper configurations.
pub fn paper_configs() -> Vec<RunConfig> {
    ConfigKind::ALL
        .iter()
        .map(|&k| RunConfig::named(k))
        .collect()
}

/// Renders a table of `metric(kernel, config)` with a geometric-mean row;
/// returns the rendered text (callers print and/or save it).
pub fn metric_table(
    title: &str,
    sweep: &Sweep,
    configs: &[String],
    metric: impl Fn(&RunResult) -> f64,
    normalize_to: Option<&str>,
    invert: bool,
) -> String {
    let mut out = String::new();
    use std::fmt::Write as _;
    writeln!(out, "\n=== {title} ===").unwrap();
    write!(out, "{:<14}", "benchmark").unwrap();
    for c in configs {
        write!(out, " {c:>20}").unwrap();
    }
    writeln!(out).unwrap();
    let mut per_config: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for k in &sweep.kernels {
        write!(out, "{k:<14}").unwrap();
        for c in configs {
            let raw = metric(sweep.get(k, c));
            let v = match normalize_to {
                Some(base) => {
                    let b = metric(sweep.get(k, base));
                    if invert {
                        if raw == 0.0 {
                            f64::NAN
                        } else {
                            b / raw
                        }
                    } else if b == 0.0 {
                        f64::NAN
                    } else {
                        raw / b
                    }
                }
                None => raw,
            };
            per_config.entry(c.as_str()).or_default().push(v);
            write!(out, " {v:>20.3}").unwrap();
        }
        writeln!(out).unwrap();
    }
    write!(out, "{:<14}", "geomean").unwrap();
    for c in configs {
        let g = geomean(
            per_config
                .get(c.as_str())
                .unwrap()
                .iter()
                .copied()
                .filter(|v| v.is_finite() && *v > 0.0),
        )
        .unwrap_or(f64::NAN);
        write!(out, " {g:>20.3}").unwrap();
    }
    writeln!(out).unwrap();
    out
}

/// Writes `content` to `results/<name>` (best effort) and echoes the path.
pub fn save_result(name: &str, content: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(name);
        if std::fs::write(&path, content).is_ok() {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Prints and saves a rendered table.
pub fn emit(name: &str, content: &str) {
    print!("{content}");
    save_result(name, content);
}

/// Sorts timing rows into their canonical order: (kernel, config, ticks).
/// The tick count participates so duplicate (kernel, config) labels (the
/// working-set sweep reuses labels at different scales) still order
/// deterministically regardless of which worker finished first.
fn sort_rows(rows: &mut [RunTiming]) {
    rows.sort_by(|a, b| {
        (&a.kernel, &a.config, a.ticks)
            .cmp(&(&b.kernel, &b.config, b.ticks))
            .then_with(|| a.config_hash.cmp(&b.config_hash))
    });
}

/// Renders the deterministic run log: one line per run with only
/// simulation-determined fields (kernel, config, simulated ticks), sorted
/// canonically. Byte-identical across thread counts and host speeds — the
/// reproducibility artifact `results/reproduce.log` is built from this.
pub fn render_run_log(rows: &[RunTiming]) -> String {
    let mut rows: Vec<RunTiming> = rows.to_vec();
    sort_rows(&mut rows);
    let mut log = String::new();
    use std::fmt::Write as _;
    writeln!(
        log,
        "{:<14} {:<20} {:>16}",
        "kernel", "config", "simulated_ticks"
    )
    .unwrap();
    let mut total_ticks = 0u64;
    for r in &rows {
        writeln!(log, "{:<14} {:<20} {:>16}", r.kernel, r.config, r.ticks).unwrap();
        total_ticks += r.ticks;
    }
    writeln!(
        log,
        "total: {} runs, {} simulated ticks",
        rows.len(),
        total_ticks
    )
    .unwrap();
    log
}

/// Renders the wall-clock companion log (host seconds and ticks/sec per
/// run, worker count, wall time). Inherently nondeterministic — kept out
/// of `reproduce.log` so that file stays byte-stable.
pub fn render_timing_log(rows: &[RunTiming], total_wall_secs: f64) -> String {
    let mut rows: Vec<RunTiming> = rows.to_vec();
    sort_rows(&mut rows);
    let mut log = String::new();
    use std::fmt::Write as _;
    writeln!(
        log,
        "{:<14} {:<20} {:>12} {:>16} {:>14}",
        "kernel", "config", "host_secs", "simulated_ticks", "ticks_per_sec"
    )
    .unwrap();
    let mut sim_secs = 0.0f64;
    for r in &rows {
        let tps = if r.host_secs > 0.0 {
            r.ticks as f64 / r.host_secs
        } else {
            f64::INFINITY
        };
        writeln!(
            log,
            "{:<14} {:<20} {:>12.4} {:>16} {:>14.3e}",
            r.kernel, r.config, r.host_secs, r.ticks, tps
        )
        .unwrap();
        sim_secs += r.host_secs;
    }
    writeln!(
        log,
        "total: {} runs, {:.2}s simulating across {} workers, {:.2}s wall",
        rows.len(),
        sim_secs,
        sweep_threads(),
        total_wall_secs
    )
    .unwrap();
    log
}

/// Renders the `BENCH_simspeed.json` document: the aggregate throughput
/// numbers the regression gate diffs, plus a `meta` block recording what
/// produced them (git revision, UTC date, thread count, `DISTDA_*`
/// policies in force). When scheduler micro-bench timings are supplied
/// they are embedded as a `kernel_bench` object, keeping the busy-path
/// and skip-ahead numbers distinct from the blended sweep figure.
pub fn render_simspeed_json(
    rows: &[RunTiming],
    total_wall_secs: f64,
    kernel: Option<&KernelBench>,
) -> String {
    let sim_secs: f64 = rows.iter().map(|r| r.host_secs).sum();
    let total_ticks: u64 = rows.iter().map(|r| r.ticks).sum();
    let kernel_block = match kernel {
        Some(kb) => format!("  \"kernel_bench\": {},\n", kb.render_json_block()),
        None => String::new(),
    };
    format!(
        concat!(
            "{{\n  \"threads\": {},\n  \"runs\": {},\n  \"wall_secs\": {:.3},\n",
            "  \"sim_secs_sum\": {:.3},\n  \"sims_per_sec\": {:.4},\n",
            "  \"simulated_ticks\": {},\n  \"simulated_ticks_per_sec\": {:.1},\n",
            "{}",
            "  \"meta\": {{\n    \"git_rev\": \"{}\",\n    \"date_utc\": \"{}\",\n",
            "    \"threads_env\": {},\n    \"skip\": {},\n    \"sanitize\": {},\n",
            "    \"validate\": {}\n  }}\n}}\n"
        ),
        sweep_threads(),
        rows.len(),
        total_wall_secs,
        sim_secs,
        if total_wall_secs > 0.0 {
            rows.len() as f64 / total_wall_secs
        } else {
            0.0
        },
        total_ticks,
        if total_wall_secs > 0.0 {
            total_ticks as f64 / total_wall_secs
        } else {
            0.0
        },
        kernel_block,
        distda_obs::manifest::git_rev(),
        distda_obs::manifest::utc_now_string(),
        distda_sim::env::threads().unwrap_or(0),
        distda_sim::env::skip(),
        distda_sim::env::sanitize(),
        distda_sim::env::validate(),
    )
}

/// Appends one [`ManifestRecord`] per timing row to the default manifest
/// stream (`results/manifests/runs.jsonl`). Rows only exist for runs that
/// simulated *and validated*, so every record carries `validated: true`.
fn append_manifests(rows: &[RunTiming]) {
    for r in rows {
        let rec = ManifestRecord::capture(
            &r.kernel,
            &r.config,
            r.config_hash.clone(),
            r.ticks,
            r.host_secs,
            true,
        );
        if rec.append().is_err() {
            eprintln!("warning: could not append run manifest");
            break;
        }
    }
}

fn write_speed_artifacts(
    run_log: &str,
    timing_log: &str,
    json_path: &str,
    total_wall_secs: f64,
    kernel: Option<&KernelBench>,
) {
    let mut rows = take_timings();
    sort_rows(&mut rows);
    save_result(run_log, &render_run_log(&rows));
    save_result(timing_log, &render_timing_log(&rows, total_wall_secs));
    let json = render_simspeed_json(&rows, total_wall_secs, kernel);
    if std::fs::write(json_path, &json).is_ok() {
        eprintln!("wrote {json_path}");
    }
    append_manifests(&rows);
}

/// Writes the simulator-throughput artifacts from the accumulated run
/// timings: `results/reproduce.log` gets the deterministic run log
/// (byte-identical across thread counts), `results/reproduce_timing.log`
/// the wall-clock companion, `BENCH_simspeed.json` the aggregate
/// throughput + `meta` block the regression gate diffs, and one manifest
/// record per run appends to `results/manifests/runs.jsonl`.
pub fn write_simspeed(total_wall_secs: f64, kernel: Option<&KernelBench>) {
    write_speed_artifacts(
        "reproduce.log",
        "reproduce_timing.log",
        "BENCH_simspeed.json",
        total_wall_secs,
        kernel,
    );
}

/// [`write_simspeed`] for the CI smoke sweep: same artifact family under
/// smoke names (`results/reproduce_smoke.log`,
/// `results/reproduce_smoke_timing.log`,
/// `results/BENCH_simspeed_smoke.json`) so a quick gate run never
/// clobbers the full reproduction's committed artifacts.
pub fn write_simspeed_smoke(total_wall_secs: f64) {
    write_speed_artifacts(
        "reproduce_smoke.log",
        "reproduce_smoke_timing.log",
        "results/BENCH_simspeed_smoke.json",
        total_wall_secs,
        None,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_workloads::pointer_chase;

    #[test]
    fn sweep_runs_and_indexes_results() {
        let w = pointer_chase(&Scale::tiny());
        let cfgs = vec![
            RunConfig::named(ConfigKind::OoO),
            RunConfig::named(ConfigKind::DistDAIO),
        ];
        let sweep = run_matrix(&[w], &cfgs);
        assert_eq!(sweep.kernels.len(), 1);
        assert_eq!(sweep.configs.len(), 2);
        let r = sweep.get("pointer-chase", "OoO");
        assert!(r.ticks > 0);
    }

    #[test]
    fn paper_configs_are_six() {
        assert_eq!(paper_configs().len(), 6);
    }

    #[test]
    fn metric_table_renders_geomean() {
        let w = pointer_chase(&Scale::tiny());
        let cfgs = vec![RunConfig::named(ConfigKind::OoO)];
        let sweep = run_matrix(&[w], &cfgs);
        let t = metric_table(
            "t",
            &sweep,
            &["OoO".to_string()],
            |r| r.ticks as f64,
            None,
            false,
        );
        assert!(t.contains("geomean"));
        assert!(t.contains("pointer-chase"));
    }
}
