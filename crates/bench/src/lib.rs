//! # distda-bench
//!
//! The experiment harness: shared sweep infrastructure used by one binary
//! per paper figure/table (`fig07_energy_efficiency`, ...,
//! `table06_offload_characteristics`, `reproduce`). Each binary prints the
//! same rows/series the paper reports, normalized the same way.

pub mod figures;
pub mod mt;

use distda_sim::geomean;
use distda_system::{ConfigKind, RunConfig, RunResult};
use distda_workloads::{suite, Scale, Workload};
use std::collections::BTreeMap;
use std::io::Write;

/// Results of simulating a set of workloads under a set of configurations.
#[derive(Debug, Default)]
pub struct Sweep {
    /// Kernel names in run order.
    pub kernels: Vec<String>,
    /// Configuration labels in run order.
    pub configs: Vec<String>,
    /// Result per (kernel, config label).
    pub results: BTreeMap<(String, String), RunResult>,
}

impl Sweep {
    /// Looks up a result.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not simulated.
    pub fn get(&self, kernel: &str, config: &str) -> &RunResult {
        self.results
            .get(&(kernel.to_string(), config.to_string()))
            .unwrap_or_else(|| panic!("missing result {kernel}/{config}"))
    }

    /// Adds a result.
    pub fn insert(&mut self, r: RunResult) {
        if !self.kernels.contains(&r.kernel) {
            self.kernels.push(r.kernel.clone());
        }
        if !self.configs.contains(&r.config) {
            self.configs.push(r.config.clone());
        }
        self.results.insert((r.kernel.clone(), r.config.clone()), r);
    }
}

/// Runs `workloads x configs`, logging progress to stderr.
///
/// # Panics
///
/// Panics if any run fails validation (a simulation bug, never expected).
pub fn run_matrix(workloads: &[Workload], configs: &[RunConfig]) -> Sweep {
    let mut sweep = Sweep::default();
    for w in workloads {
        for cfg in configs {
            eprint!("  sim {:<14} {:<20}\r", w.name, cfg.label());
            std::io::stderr().flush().ok();
            let r = w.simulate(cfg);
            assert!(
                r.validated,
                "{} under {} produced wrong results",
                w.name,
                cfg.label()
            );
            sweep.insert(r);
        }
    }
    eprintln!();
    sweep
}

/// Runs the full 12-benchmark suite under the given configurations.
pub fn run_suite_matrix(scale: &Scale, configs: &[RunConfig]) -> Sweep {
    run_matrix(&suite(scale), configs)
}

/// The six paper configurations.
pub fn paper_configs() -> Vec<RunConfig> {
    ConfigKind::ALL.iter().map(|&k| RunConfig::named(k)).collect()
}

/// Renders a table of `metric(kernel, config)` with a geometric-mean row;
/// returns the rendered text (callers print and/or save it).
pub fn metric_table(
    title: &str,
    sweep: &Sweep,
    configs: &[String],
    metric: impl Fn(&RunResult) -> f64,
    normalize_to: Option<&str>,
    invert: bool,
) -> String {
    let mut out = String::new();
    use std::fmt::Write as _;
    writeln!(out, "\n=== {title} ===").unwrap();
    write!(out, "{:<14}", "benchmark").unwrap();
    for c in configs {
        write!(out, " {c:>20}").unwrap();
    }
    writeln!(out).unwrap();
    let mut per_config: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for k in &sweep.kernels {
        write!(out, "{k:<14}").unwrap();
        for c in configs {
            let raw = metric(sweep.get(k, c));
            let v = match normalize_to {
                Some(base) => {
                    let b = metric(sweep.get(k, base));
                    if invert {
                        if raw == 0.0 {
                            f64::NAN
                        } else {
                            b / raw
                        }
                    } else if b == 0.0 {
                        f64::NAN
                    } else {
                        raw / b
                    }
                }
                None => raw,
            };
            per_config.entry(c.as_str()).or_default().push(v);
            write!(out, " {v:>20.3}").unwrap();
        }
        writeln!(out).unwrap();
    }
    write!(out, "{:<14}", "geomean").unwrap();
    for c in configs {
        let g = geomean(
            per_config
                .get(c.as_str())
                .unwrap()
                .iter()
                .copied()
                .filter(|v| v.is_finite() && *v > 0.0),
        )
        .unwrap_or(f64::NAN);
        write!(out, " {g:>20.3}").unwrap();
    }
    writeln!(out).unwrap();
    out
}

/// Writes `content` to `results/<name>` (best effort) and echoes the path.
pub fn save_result(name: &str, content: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(name);
        if std::fs::write(&path, content).is_ok() {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Prints and saves a rendered table.
pub fn emit(name: &str, content: &str) {
    print!("{content}");
    save_result(name, content);
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_workloads::pointer_chase;

    #[test]
    fn sweep_runs_and_indexes_results() {
        let w = pointer_chase(&Scale::tiny());
        let cfgs = vec![
            RunConfig::named(ConfigKind::OoO),
            RunConfig::named(ConfigKind::DistDAIO),
        ];
        let sweep = run_matrix(&[w], &cfgs);
        assert_eq!(sweep.kernels.len(), 1);
        assert_eq!(sweep.configs.len(), 2);
        let r = sweep.get("pointer-chase", "OoO");
        assert!(r.ticks > 0);
    }

    #[test]
    fn paper_configs_are_six() {
        assert_eq!(paper_configs().len(), 6);
    }

    #[test]
    fn metric_table_renders_geomean() {
        let w = pointer_chase(&Scale::tiny());
        let cfgs = vec![RunConfig::named(ConfigKind::OoO)];
        let sweep = run_matrix(&[w], &cfgs);
        let t = metric_table(
            "t",
            &sweep,
            &["OoO".to_string()],
            |r| r.ticks as f64,
            None,
            false,
        );
        assert!(t.contains("geomean"));
        assert!(t.contains("pointer-chase"));
    }
}
