//! The Section VI-D multithreading case study (Figure 12b).
//!
//! Models thread-level parallelism the way the paper's annotated
//! multi-threaded bfs/pathfinder do: each software thread drives its own
//! set of distributed accelerator resources, so `T` threads become `T`
//! concurrently-active plan instances sharing the NUCA L3, mesh and DRAM
//! (contention included). Host-side orchestration is serialized across
//! threads, which matches the paper's observation that per-iteration
//! scheduling limits pathfinder's scaling.

use distda_compiler::{compile, PartitionMode};
use distda_ir::interp::Memory;
use distda_ir::value::Value;
use distda_mem::MemSystem;
use distda_sim::time::ClockDomain;
use distda_system::runner::{mem_config_for, place_partitions, substrates_for};
use distda_system::{allocate, ConfigKind, Machine, RunConfig};
use distda_workloads::{gen, Scale};

/// Result of one multithreaded run.
#[derive(Debug, Clone, Copy)]
pub struct MtResult {
    /// Threads simulated.
    pub threads: usize,
    /// Total base ticks.
    pub ticks: u64,
    /// Whether results matched the reference.
    pub validated: bool,
}

/// Multithreaded level-synchronous BFS: per level, up to `threads` frontier
/// nodes' edge loops execute concurrently on distinct accelerator
/// contexts.
pub fn bfs_mt(scale: &Scale, threads: usize, cfg: &RunConfig) -> MtResult {
    let n = scale.nodes;
    let (row_ptr, col) = gen::csr_graph(n, scale.edge_factor, scale.seed + 80);
    let (dist_ref, ecc) = gen::bfs_reference(&row_ptr, &col, 0);

    // The per-node edge loop, compiled standalone: arrays aj, visited,
    // cost, updating; the node id and its edge range arrive as rf scalars.
    let mut b = distda_ir::ProgramBuilder::new("bfs-inner");
    let aj = b.array_i64("aj", col.len());
    let visited = b.array_i64("visited", n);
    let cost = b.array_i64("cost", n);
    let updating = b.array_i64("updating", n);
    let node = b.scalar("node", 0i64);
    let lo = b.scalar("lo", 0i64);
    let hi = b.scalar("hi", 0i64);
    use distda_ir::Expr;
    b.for_(Expr::Scalar(lo), Expr::Scalar(hi), 1, |b, e| {
        let id = Expr::load(aj, e);
        let vis = Expr::load(visited, id.clone());
        let newc = Expr::load(cost, Expr::Scalar(node)) + Expr::c(1);
        b.store(
            cost,
            id.clone(),
            vis.clone().select(Expr::load(cost, id.clone()), newc),
        );
        b.store(
            updating,
            id.clone(),
            vis.select(Expr::load(updating, id), Expr::c(1)),
        );
    });
    let prog = b.build();
    let plan = {
        let mode = match cfg.kind.partition_mode() {
            Some(m) => m,
            None => PartitionMode::Monolithic,
        };
        let mut ck = compile(&prog, mode);
        assert_eq!(ck.offloads.len(), 1);
        if cfg.kind.decentralize_accesses() {
            ck.offloads[0] = distda_system::decentralize(&ck.offloads[0]);
        }
        ck.offloads.remove(0)
    };

    // Machine setup (same parameters as the runner).
    let topo = &cfg.topology;
    let uncore = ClockDomain::from_ghz(2.0);
    let mut mem = MemSystem::new(
        mem_config_for(topo),
        uncore,
        topo.host_node,
        topo.memctrl_node,
    );
    let plans = vec![plan.clone()];
    let alloc = allocate(&prog, &plans, topo.clusters(), cfg.alloc, &mut mem);
    let mut img = Memory::for_program(&prog);
    for (k, v) in row_ptr.iter().enumerate() {
        let _ = (k, v); // row_ptr is host-side only in this driver
    }
    for (k, v) in col.iter().enumerate() {
        img.array_mut(aj)[k] = Value::I(*v);
    }
    img.array_mut(visited)[0] = Value::I(1);
    for v in img.array_mut(cost).iter_mut().skip(1) {
        *v = Value::I(-1);
    }
    let mut machine = Machine::new(mem, img, alloc.layout.clone(), 5, 224, topo);

    // One plan instance per thread.
    let placement = place_partitions(&plan, &alloc, cfg.kind, topo.host_node);
    let substrates = substrates_for(&plan, cfg);
    let handles: Vec<_> = (0..threads)
        .map(|_| machine.configure_plan(&plan, &placement, &substrates, &[]))
        .collect();

    // Host-side frontier state.
    let mut mask = vec![false; n];
    mask[0] = true;
    let params_of = |machine: &Machine, v: usize| -> Vec<Value> {
        machine
            .plan_params(handles[0])
            .iter()
            .map(|sym| match sym {
                distda_compiler::Sym::Scalar(s) if s.0 == node.0 => Value::I(v as i64),
                distda_compiler::Sym::Scalar(s) if s.0 == lo.0 => Value::I(row_ptr[v]),
                distda_compiler::Sym::Scalar(s) if s.0 == hi.0 => Value::I(row_ptr[v + 1]),
                _ => Value::I(0),
            })
            .collect()
    };

    for _level in 0..=ecc {
        let frontier: Vec<usize> = (0..n).filter(|&v| mask[v]).collect();
        for v in &frontier {
            mask[*v] = false;
        }
        // Threads pull frontier nodes; up to `threads` edge loops in
        // flight at once.
        let mut next = 0usize;
        let mut busy: Vec<Option<usize>> = vec![None; threads];
        loop {
            let mut active = false;
            for (t, h) in handles.iter().enumerate() {
                if busy[t].is_some() {
                    if machine.plan_done(*h) {
                        busy[t] = None;
                    } else {
                        active = true;
                        continue;
                    }
                }
                if busy[t].is_none() && next < frontier.len() {
                    let v = frontier[next];
                    next += 1;
                    let params = params_of(&machine, v);
                    let carries: Vec<Vec<Value>> = machine
                        .plan_carry_scalars(*h)
                        .iter()
                        .map(|ss| ss.iter().map(|_| Value::I(0)).collect())
                        .collect();
                    machine.launch(*h, &params, &carries, row_ptr[v], row_ptr[v + 1], 1);
                    busy[t] = Some(v);
                    active = true;
                }
            }
            if !active && next >= frontier.len() {
                break;
            }
            // One tick (as the per-tick polling loop always made), then let
            // the machine run — skipping idle ticks — until some in-flight
            // plan finishes and the scheduler above has work to do again.
            // Re-scanning on ticks where nothing completed is a no-op, so
            // this is tick-identical to polling every tick.
            machine.tick();
            let busy_handles: Vec<_> = busy
                .iter()
                .enumerate()
                .filter_map(|(t, b)| b.map(|_| handles[t]))
                .collect();
            machine
                .run_until("mt-bfs", |_, m| {
                    busy_handles.iter().any(|&h| m.plan_done(h))
                })
                .unwrap_or_else(|e| panic!("{e}"));
        }
        // Frontier rotation on the host (fast bookkeeping, not modeled as
        // offload): mask <- updating, visited |= updating.
        for (v, m) in mask.iter_mut().enumerate().take(n) {
            let upd = machine.memimg().array(updating)[v].truthy();
            if upd {
                *m = true;
                machine.memimg_mut().store(visited, v as i64, Value::I(1));
                machine.memimg_mut().store(updating, v as i64, Value::I(0));
            }
        }
    }
    machine.drain().unwrap_or_else(|e| panic!("{e}"));
    let got: Vec<i64> = machine
        .memimg()
        .array(cost)
        .iter()
        .map(|v| v.as_i64())
        .collect();
    let mut expect = dist_ref;
    expect[0] = 0;
    let validated = got
        .iter()
        .zip(expect.iter())
        .all(|(g, e)| *g == *e || (*e == 0 && *g <= 0));
    MtResult {
        threads,
        ticks: machine.now(),
        validated,
    }
}

/// Multithreaded pathfinder: each row's interior-column loop is split into
/// `threads` chunks executing concurrently (barrier per row, as the
/// paper's per-iteration scheduling does).
pub fn pathfinder_mt(scale: &Scale, threads: usize, cfg: &RunConfig) -> MtResult {
    let (rows, cols) = (scale.rows, scale.cols);
    let mut b = distda_ir::ProgramBuilder::new("pf-inner");
    let wall = b.array_f64("wall", rows * cols);
    let src = b.array_f64("src", cols);
    let dst = b.array_f64("dst", cols);
    let row = b.scalar("row", 0i64);
    let lo = b.scalar("lo", 0i64);
    let hi = b.scalar("hi", 0i64);
    use distda_ir::Expr;
    b.for_(Expr::Scalar(lo), Expr::Scalar(hi), 1, |b, j| {
        let best = Expr::load(src, j.clone() - Expr::c(1))
            .min(Expr::load(src, j.clone()))
            .min(Expr::load(src, j.clone() + Expr::c(1)));
        b.store(
            dst,
            j.clone(),
            Expr::load(wall, Expr::Scalar(row) * Expr::c(cols as i64) + j) + best,
        );
    });
    let prog = b.build();
    let mode = cfg
        .kind
        .partition_mode()
        .unwrap_or(PartitionMode::Monolithic);
    let mut ck = compile(&prog, mode);
    if cfg.kind.decentralize_accesses() {
        ck.offloads[0] = distda_system::decentralize(&ck.offloads[0]);
    }
    let plan = ck.offloads.remove(0);

    let topo = &cfg.topology;
    let uncore = ClockDomain::from_ghz(2.0);
    let mut mem = MemSystem::new(
        mem_config_for(topo),
        uncore,
        topo.host_node,
        topo.memctrl_node,
    );
    let plans = vec![plan.clone()];
    let alloc = allocate(&prog, &plans, topo.clusters(), cfg.alloc, &mut mem);
    let mut img = Memory::for_program(&prog);
    let wall_vals = gen::pixels(rows * cols, scale.seed + 60);
    img.array_mut(wall).copy_from_slice(&wall_vals);
    let mut machine = Machine::new(mem, img, alloc.layout.clone(), 5, 224, topo);

    let placement = place_partitions(&plan, &alloc, cfg.kind, topo.host_node);
    let substrates = substrates_for(&plan, cfg);
    let handles: Vec<_> = (0..threads)
        .map(|_| machine.configure_plan(&plan, &placement, &substrates, &[]))
        .collect();

    let interior = cols - 2;
    let chunk = interior.div_ceil(threads);
    for i in 0..rows {
        // Launch all chunks of this row concurrently.
        let mut launched = Vec::new();
        for (t, h) in handles.iter().enumerate() {
            let c_lo = 1 + t * chunk;
            if c_lo >= cols - 1 {
                break;
            }
            let c_hi = (c_lo + chunk).min(cols - 1);
            let params: Vec<Value> = machine
                .plan_params(*h)
                .iter()
                .map(|sym| match sym {
                    distda_compiler::Sym::Scalar(s) if s.0 == row.0 => Value::I(i as i64),
                    distda_compiler::Sym::Scalar(s) if s.0 == lo.0 => Value::I(c_lo as i64),
                    distda_compiler::Sym::Scalar(s) if s.0 == hi.0 => Value::I(c_hi as i64),
                    _ => Value::I(0),
                })
                .collect();
            let carries: Vec<Vec<Value>> = machine
                .plan_carry_scalars(*h)
                .iter()
                .map(|ss| ss.iter().map(|_| Value::I(0)).collect())
                .collect();
            machine.launch(*h, &params, &carries, c_lo as i64, c_hi as i64, 1);
            launched.push(*h);
        }
        machine
            .run_until("mt-pathfinder", |_, m| {
                launched.iter().all(|h| m.plan_done(*h))
            })
            .unwrap_or_else(|e| panic!("{e}"));
        // Host: edges + roll src <- dst.
        let w0 = machine.memimg().load(wall, (i * cols) as i64).as_f64();
        let s0 = machine.memimg().load(src, 0).as_f64();
        let s1 = machine.memimg().load(src, 1).as_f64();
        machine
            .memimg_mut()
            .store(dst, 0, Value::F(w0 + s0.min(s1)));
        let wl = machine
            .memimg()
            .load(wall, (i * cols + cols - 1) as i64)
            .as_f64();
        let sl = machine.memimg().load(src, (cols - 1) as i64).as_f64();
        let sl2 = machine.memimg().load(src, (cols - 2) as i64).as_f64();
        machine
            .memimg_mut()
            .store(dst, (cols - 1) as i64, Value::F(wl + sl.min(sl2)));
        for j in 0..cols {
            let v = machine.memimg().load(dst, j as i64);
            machine.memimg_mut().store(src, j as i64, v);
        }
    }
    machine.drain().unwrap_or_else(|e| panic!("{e}"));

    // Validate against the plain-Rust oracle.
    let mut s = vec![0.0f64; cols];
    let mut d = vec![0.0f64; cols];
    let wv: Vec<f64> = wall_vals.iter().map(|v| v.as_f64()).collect();
    for i in 0..rows {
        for j in 0..cols {
            let mut best = s[j];
            if j > 0 {
                best = best.min(s[j - 1]);
            }
            if j + 1 < cols {
                best = best.min(s[j + 1]);
            }
            d[j] = wv[i * cols + j] + best;
        }
        s.copy_from_slice(&d);
    }
    let validated =
        (0..cols).all(|j| (machine.memimg().array(src)[j].as_f64() - s[j]).abs() < 1e-9);
    MtResult {
        threads,
        ticks: machine.now(),
        validated,
    }
}

/// Renders Figure 12b: multithreaded speedups normalized to the
/// single-threaded run of the same configuration.
pub fn fig12b(scale: &Scale) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "\n=== Figure 12b: multithreading case study ===").unwrap();
    writeln!(
        out,
        "{:<12} {:<18} {:>8} {:>12} {:>10}",
        "kernel", "config", "threads", "ticks", "speedup"
    )
    .unwrap();
    for kind in [ConfigKind::DistDAIO, ConfigKind::DistDAF] {
        let cfg = RunConfig::named(kind);
        for (name, run) in [
            ("bfs", bfs_mt as fn(&Scale, usize, &RunConfig) -> MtResult),
            ("pathfinder", pathfinder_mt),
        ] {
            let mut base = 0u64;
            for threads in [1usize, 2, 4, 8] {
                let r = run(scale, threads, &cfg);
                assert!(r.validated, "{name} x{threads} failed validation");
                if threads == 1 {
                    base = r.ticks;
                }
                writeln!(
                    out,
                    "{:<12} {:<18} {:>8} {:>12} {:>10.2}",
                    name,
                    cfg.label(),
                    threads,
                    r.ticks,
                    base as f64 / r.ticks as f64
                )
                .unwrap();
            }
        }
    }
    out
}
