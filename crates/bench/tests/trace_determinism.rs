//! Determinism and validity of the tracing subsystem on real runs: the
//! exported Chrome trace must be byte-identical whether the run executes
//! alone or among concurrent worker threads, and with idle skip-ahead on
//! or off; and the export must be structurally valid trace-event JSON.

use distda_system::{simulate_traced_with_skip, simulate_with_skip, ConfigKind, RunConfig};
use distda_trace::{chrome, json, summary, Tracer};
use distda_workloads::{suite, Scale};

/// Runs `w` traced (skip-ahead default) and returns the Chrome export.
fn traced_export(w: &distda_workloads::Workload, cfg: &RunConfig, skip: Option<bool>) -> String {
    let tracer = Tracer::enabled();
    simulate_traced_with_skip(&w.program, &*w.init, cfg, skip, &tracer);
    chrome::export(&tracer)
}

/// One simulation alone vs the same simulation racing 7 sibling runs on
/// worker threads: the exported trace must be byte-identical. Each run has
/// its own tracer, so concurrency may only affect the result through
/// nondeterminism in the simulation itself — which there must be none of.
#[test]
fn trace_identical_alone_and_among_worker_threads() {
    let scale = Scale::tiny();
    let all = suite(&scale);
    let w = &all[2];
    let cfg = RunConfig::named(ConfigKind::DistDAIO);

    let alone = traced_export(w, &cfg, None);

    let mut exports: Vec<String> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| s.spawn(|| traced_export(w, &cfg, None)))
            .collect();
        for h in handles {
            exports.push(h.join().expect("worker panicked"));
        }
    });
    for (i, e) in exports.iter().enumerate() {
        assert_eq!(&alone, e, "trace diverged on worker {i}");
    }
}

/// Skip-ahead fast-forwards idle ticks; tracing must not observe the
/// difference — exports with skip forced on and forced off must be
/// byte-identical across representative configurations.
#[test]
fn trace_identical_skip_on_and_off() {
    let scale = Scale::tiny();
    let all = suite(&scale);
    let w = &all[0];
    for kind in [
        ConfigKind::MonoDAF,
        ConfigKind::DistDAIO,
        ConfigKind::DistDAF,
    ] {
        let cfg = RunConfig::named(kind);
        let fast = traced_export(w, &cfg, Some(true));
        let slow = traced_export(w, &cfg, Some(false));
        assert_eq!(fast, slow, "{} diverged under {}", w.name, cfg.label());
    }
}

/// Attaching a tracer must not perturb the simulation: every statistic of
/// the `RunResult` (modulo the `trace.*` metric keys the tracer adds) must
/// match an untraced run.
#[test]
fn tracing_does_not_perturb_results() {
    let scale = Scale::tiny();
    let all = suite(&scale);
    let w = &all[1];
    let cfg = RunConfig::named(ConfigKind::DistDAIO);
    let tracer = Tracer::enabled();
    let traced = simulate_traced_with_skip(&w.program, &*w.init, &cfg, None, &tracer);
    let (plain, _, _) = simulate_with_skip(&w.program, &*w.init, &cfg, None);
    assert_eq!(traced.ticks, plain.ticks);
    assert_eq!(traced.ns, plain.ns);
    assert_eq!(traced.validated, plain.validated);
    assert_eq!(
        format!("{:?}", traced.energy),
        format!("{:?}", plain.energy)
    );
    assert_eq!(
        format!("{:?}", traced.counters),
        format!("{:?}", plain.counters)
    );
}

/// The Chrome export of a real run parses as JSON, orders events by
/// timestamp within each track, balances every `B` with an `E`, and the
/// phase attribution over the same trace partitions the run's ticks.
#[test]
fn chrome_export_of_real_run_is_valid() {
    let scale = Scale::tiny();
    let all = suite(&scale);
    let w = all.iter().find(|w| w.name == "bfs").expect("bfs in suite");
    let cfg = RunConfig::named(ConfigKind::DistDAIO);
    let tracer = Tracer::enabled();
    let r = simulate_traced_with_skip(&w.program, &*w.init, &cfg, None, &tracer);
    assert!(r.validated);

    let doc = chrome::export(&tracer);
    let v = json::parse(&doc).expect("chrome export parses as JSON");
    let events = v
        .get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents is an array");
    assert!(!events.is_empty());

    // Per-track: start timestamps nondecreasing, B/E balanced, instants
    // flagged. `E` records carry the span's *end* tick and `C` samples
    // trail the event stream, so only opening records are order-checked.
    let mut last_ts: std::collections::BTreeMap<i64, f64> = Default::default();
    let mut depth: std::collections::BTreeMap<i64, i64> = Default::default();
    for e in events {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        if ph == "M" {
            continue;
        }
        let tid = e.get("tid").unwrap().as_num().unwrap() as i64;
        let ts = e.get("ts").unwrap().as_num().unwrap();
        if matches!(ph, "B" | "X" | "i") {
            let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
            assert!(ts >= *prev, "track {tid} went backwards: {ts} < {prev}");
            *prev = ts;
        }
        match ph {
            "B" => *depth.entry(tid).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "track {tid} closed an unopened phase");
            }
            "i" => assert_eq!(e.get("s").unwrap().as_str().unwrap(), "t"),
            _ => {}
        }
    }
    for (tid, d) in &depth {
        assert_eq!(*d, 0, "track {tid} left {d} phases open");
    }

    let attr = summary::phase_attribution(&tracer, r.ticks);
    let total: u64 = attr.parts.iter().map(|(_, t)| t).sum();
    assert_eq!(total, r.ticks, "attribution must partition the run");
    assert!(attr.complete);
}
