//! Observability must never perturb simulation: a sweep run with a live
//! progress reporter produces bit-identical results to one without, the
//! deterministic run log is byte-stable regardless of completion order,
//! and the JSONL progress stream parses.

use distda_bench::{render_run_log, take_timings, try_run_matrix_with_progress, RunTiming};
use distda_obs::{Progress, ProgressConfig};
use distda_system::{ConfigKind, RunConfig};
use distda_trace::json;
use distda_workloads::{pathfinder, pointer_chase, Scale};
use std::time::Duration;

#[test]
fn progress_reporter_does_not_perturb_sweep_results() {
    let workloads = [pathfinder(&Scale::tiny()), pointer_chase(&Scale::tiny())];
    let configs = vec![
        RunConfig::named(ConfigKind::OoO),
        RunConfig::named(ConfigKind::DistDAIO),
    ];
    let _ = take_timings();

    let (plain, plain_fail) = try_run_matrix_with_progress(&workloads, &configs, None);
    let _ = take_timings();

    let dir = std::env::temp_dir().join("distda_bench_progress_test");
    let _ = std::fs::create_dir_all(&dir);
    let stream_path = dir.join("progress.jsonl");
    let progress = Progress::start(
        workloads.len() * configs.len(),
        ProgressConfig {
            stderr: false,
            jsonl: Some(stream_path.clone()),
            period: Duration::from_millis(50),
            job: 1,
        },
    );
    let (observed, observed_fail) =
        try_run_matrix_with_progress(&workloads, &configs, Some(&progress));
    progress.finish();
    let _ = take_timings();

    assert!(plain_fail.is_empty() && observed_fail.is_empty());
    assert_eq!(
        format!("{plain:?}"),
        format!("{observed:?}"),
        "sweep results must be bit-identical with progress attached"
    );

    // The stream holds one cell event per run plus the summary, all
    // parseable, and the summary's tick total matches the sweep's.
    let stream = std::fs::read_to_string(&stream_path).unwrap();
    let lines: Vec<&str> = stream.lines().collect();
    assert_eq!(lines.len(), workloads.len() * configs.len() + 1, "{stream}");
    let total_ticks: u64 = observed.results.values().map(|r| r.ticks).sum();
    let summary = json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(
        summary.get("event").and_then(json::Value::as_str),
        Some("summary")
    );
    assert_eq!(
        summary.get("ticks").and_then(json::Value::as_num),
        Some(total_ticks as f64)
    );
    let _ = std::fs::remove_file(&stream_path);
}

#[test]
fn run_log_is_byte_stable_under_completion_order() {
    let row = |kernel: &str, config: &str, ticks: u64| RunTiming {
        kernel: kernel.to_string(),
        config: config.to_string(),
        config_hash: "fnv1a:0".to_string(),
        host_secs: ticks as f64 * 0.001, // varies run to run; must not leak
        ticks,
    };
    let a = vec![
        row("pf", "OoO", 100),
        row("pf", "Dist-DA-F@1GHz", 50),
        row("nw", "OoO", 70),
        // Duplicate (kernel, config) labels at different scales, as the
        // working-set sweep produces.
        row("pf", "OoO", 300),
    ];
    let mut b = a.clone();
    b.reverse();
    let mut c = a.clone();
    c.swap(0, 2);
    c.swap(1, 3);
    for r in &mut c {
        r.host_secs *= 7.0;
    }
    let log = render_run_log(&a);
    assert_eq!(log, render_run_log(&b));
    assert_eq!(log, render_run_log(&c));
    assert!(log.contains("total: 4 runs, 520 simulated ticks"), "{log}");
    assert!(!log.contains("host"), "wall-clock must stay out:\n{log}");
}
