//! Regression tests for the performance-engineering layer: the parallel
//! sweep must produce bit-identical results regardless of worker count,
//! and idle skip-ahead must be bit-identical to tick-by-tick execution.

use distda_bench::run_matrix;
use distda_system::{simulate_with_skip, ConfigKind, RunConfig, Topology};
use distda_workloads::{micro, suite, Scale};
use std::sync::Mutex;

/// Serializes the tests that mutate `DISTDA_THREADS` (process-global
/// state) so they cannot race each other's set/remove.
static THREADS_ENV: Mutex<()> = Mutex::new(());

/// `run_matrix` with 1 worker and with 8 workers must produce identical
/// `RunResult`s (every field: ticks, energy, NoC bytes, ...) and identical
/// row/column ordering, for 3 workloads x 3 configurations.
#[test]
fn parallel_sweep_matches_sequential() {
    let _guard = THREADS_ENV.lock().unwrap();
    let scale = Scale::tiny();
    let all = suite(&scale);
    let workloads = &all[..3];
    let configs = vec![
        RunConfig::named(ConfigKind::OoO),
        RunConfig::named(ConfigKind::MonoDAIO),
        RunConfig::named(ConfigKind::DistDAIO),
    ];
    std::env::set_var("DISTDA_THREADS", "1");
    let seq = run_matrix(workloads, &configs);
    std::env::set_var("DISTDA_THREADS", "8");
    let par = run_matrix(workloads, &configs);
    std::env::remove_var("DISTDA_THREADS");
    assert_eq!(seq.kernels, par.kernels, "kernel order diverged");
    assert_eq!(seq.configs, par.configs, "config order diverged");
    assert_eq!(seq.results.len(), par.results.len());
    for (key, a) in &seq.results {
        let b = &par.results[key];
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "results diverged for {key:?}"
        );
    }
}

/// A scenario-family sweep — wider meshes, a far-memory pool, and
/// multi-tenant cells — must also be byte-stable across `DISTDA_THREADS`:
/// per-tenant attribution and fairness metrics ride in the `RunResult`
/// report, so the same field-by-field comparison covers them.
#[test]
fn multi_tenant_sweep_is_byte_stable_across_threads() {
    let _guard = THREADS_ENV.lock().unwrap();
    let workloads = micro::suite(0xBEEF);
    let mut two_tenants = Topology::mesh(4, 4);
    two_tenants.tenants = 2;
    let mut far = Topology::mesh(8, 4);
    far.far_memory = Some(distda_system::FarMemory {
        extra_latency: 150,
        bytes_per_cycle: 2,
    });
    let configs = vec![
        RunConfig::named(ConfigKind::DistDAIO).with_topology(two_tenants),
        RunConfig::named(ConfigKind::DistDAF).with_topology(far),
    ];
    std::env::set_var("DISTDA_THREADS", "1");
    let seq = run_matrix(&workloads, &configs);
    std::env::set_var("DISTDA_THREADS", "8");
    let par = run_matrix(&workloads, &configs);
    std::env::remove_var("DISTDA_THREADS");
    assert_eq!(seq.results.len(), par.results.len());
    for (key, a) in &seq.results {
        let b = &par.results[key];
        assert!(a.validated, "{key:?} must strict-validate");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "results diverged for {key:?}"
        );
    }
}

/// Skip-ahead and tick-by-tick execution must agree on every statistic of
/// the full `RunResult` for a small kernel across representative configs.
#[test]
fn skip_ahead_matches_tick_by_tick() {
    let scale = Scale::tiny();
    let all = suite(&scale);
    let w = &all[0];
    for kind in [ConfigKind::OoO, ConfigKind::MonoDAF, ConfigKind::DistDAIO] {
        let cfg = RunConfig::named(kind);
        let (fast, _, _) = simulate_with_skip(&w.program, &*w.init, &cfg, Some(true));
        let (slow, _, _) = simulate_with_skip(&w.program, &*w.init, &cfg, Some(false));
        assert_eq!(
            format!("{fast:?}"),
            format!("{slow:?}"),
            "{} diverged under {}",
            w.name,
            cfg.label()
        );
    }
}
