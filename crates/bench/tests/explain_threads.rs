//! Explain determinism across sweep worker counts: the causal tree is
//! computed from a single run's final observation, so `DISTDA_THREADS`
//! must not leak into it — the `explain.*` report keys of every cell
//! must be byte-identical between a sequential and a parallel sweep.
//!
//! This lives in its own test binary because it mutates the
//! process-global `DISTDA_EXPLAIN`/`DISTDA_THREADS` environment.

use distda_bench::run_matrix;
use distda_system::{ConfigKind, RunConfig};
use distda_workloads::{suite, Scale};

#[test]
fn explain_trees_are_byte_stable_across_threads() {
    std::env::set_var("DISTDA_EXPLAIN", "1");
    let scale = Scale::tiny();
    let all = suite(&scale);
    let workloads = &all[..2];
    let configs = vec![
        RunConfig::named(ConfigKind::DistDAIO),
        RunConfig::named(ConfigKind::DistDAF),
    ];
    std::env::set_var("DISTDA_THREADS", "1");
    let seq = run_matrix(workloads, &configs);
    std::env::set_var("DISTDA_THREADS", "8");
    let par = run_matrix(workloads, &configs);
    std::env::remove_var("DISTDA_THREADS");
    std::env::remove_var("DISTDA_EXPLAIN");

    let explain_keys = |r: &distda_system::RunResult| -> Vec<(String, f64)> {
        r.report
            .iter()
            .filter(|(k, _)| k.starts_with("explain."))
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    };
    assert_eq!(seq.results.len(), par.results.len());
    for (key, a) in &seq.results {
        let b = &par.results[key];
        let (ka, kb) = (explain_keys(a), explain_keys(b));
        assert!(!ka.is_empty(), "{key:?} must carry explain keys");
        assert_eq!(ka, kb, "explain verdicts diverged for {key:?}");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "results diverged for {key:?}"
        );
    }

    // Env-enabled explain auto-exports per-run trees; drop the test's.
    if let Ok(entries) = std::fs::read_dir("results") {
        for e in entries.flatten() {
            if e.file_name().to_string_lossy().starts_with("explain_") {
                let _ = std::fs::remove_file(e.path());
            }
        }
        let _ = std::fs::remove_dir("results"); // only if now empty
    }
}
