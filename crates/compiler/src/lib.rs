//! # distda-compiler
//!
//! The compiler half of the Dist-DA offload model (paper Sections IV-A and
//! V): abstracts offloadable innermost loops as dataflow graphs of memory
//! objects, accessors and computations; classifies them by dependence
//! structure; partitions them with at most one memory object per partition
//! to minimize communication; and emits distributed accelerator
//! definitions plus the interface configuration the runtime lowers onto
//! `cp_*` intrinsics.
//!
//! The pass pipeline mirrors Figure 6:
//!
//! 1. region identification ([`driver::innermost_loops`])
//! 2. DFG abstraction with if-conversion ([`dfg::build_dfg`])
//! 3. scalar-evolution / affine access analysis ([`affine`])
//! 4. dependence classification ([`classify`])
//! 5. data-movement-aware partitioning ([`partition`], the Metis stand-in)
//! 6. offload configuration generation ([`plan::codegen`])
//!
//! ```
//! use distda_compiler::{compile, PartitionMode};
//! use distda_ir::prelude::*;
//!
//! let mut b = ProgramBuilder::new("axpy");
//! let x = b.array_f64("x", 64);
//! let y = b.array_f64("y", 64);
//! b.for_(0, 64, 1, |b, i| {
//!     let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
//!     b.store(y, i, v);
//! });
//! let compiled = compile(&b.build(), PartitionMode::Distributed);
//! assert_eq!(compiled.offloads.len(), 1);
//! assert_eq!(compiled.offloads[0].partitions.len(), 2); // one per object
//! ```

pub mod affine;
pub mod classify;
pub mod dfg;
pub mod driver;
pub mod partition;
pub mod plan;
pub mod stats;

pub use affine::{AffineExpr, Sym};
pub use classify::DfgClass;
pub use dfg::{build_dfg, Dfg, DfgError, DfgKind, DfgNode};
pub use driver::{compile, innermost_loops, CompiledKernel, PartitionMode};
pub use partition::{partition_monolithic, partition_object_anchored, Partitioning};
pub use plan::{AccessDef, AccessPattern, ChannelDef, OffloadPlan, PNode, PartitionDef};
pub use stats::{summarize, MechanismUse, OffloadStats};
