//! Static offload characteristics (the compiler-visible half of Table VI).

use crate::plan::{AccessPattern, OffloadPlan, PNode};

/// Static characteristics of a compiled kernel's offloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OffloadStats {
    /// Number of offloaded regions.
    pub regions: usize,
    /// Total partitions across regions.
    pub partitions: usize,
    /// Maximum instructions in any single accelerator definition
    /// (Table VI `#insts`).
    pub max_insts: usize,
    /// DFG dimensions of the largest region, `(depth, width)`.
    pub dfg_dims: (usize, usize),
    /// Maximum microcode bytes per offload (Table VI `insts(B)`).
    pub max_microcode_bytes: usize,
    /// Average buffers per partition, rounded (Table VI `#buf`).
    pub avg_buffers: usize,
    /// Total cross-partition channels.
    pub channels: usize,
    /// Streaming access configurations.
    pub stream_accesses: usize,
    /// Indirect access configurations.
    pub indirect_accesses: usize,
}

/// Summarizes a set of offload plans. `dims` should be the per-plan DFG
/// dimensions gathered at DFG-build time (pass an empty slice to skip).
pub fn summarize(plans: &[OffloadPlan], dims: &[(usize, usize)]) -> OffloadStats {
    let mut s = OffloadStats {
        regions: plans.len(),
        ..OffloadStats::default()
    };
    let mut total_buffers = 0usize;
    for p in plans {
        s.partitions += p.partitions.len();
        s.channels += p.channels.len();
        for part in &p.partitions {
            s.max_insts = s.max_insts.max(part.inst_count());
            s.max_microcode_bytes = s.max_microcode_bytes.max(part.microcode_bytes());
            total_buffers += part.buffer_count();
            for a in &part.accesses {
                match a.pattern {
                    AccessPattern::Stream { .. } => s.stream_accesses += 1,
                    AccessPattern::Indirect => s.indirect_accesses += 1,
                }
            }
        }
    }
    if let Some(avg) = (total_buffers + s.partitions / 2).checked_div(s.partitions) {
        s.avg_buffers = avg;
    }
    s.dfg_dims = dims
        .iter()
        .copied()
        .max_by_key(|&(d, w)| d * w)
        .unwrap_or((0, 0));
    s
}

/// Counts interface-mechanism usage implied by a plan (Table V row): which
/// `cp_*` intrinsics the compiled code will exercise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MechanismUse {
    pub cp_produce: bool,
    pub cp_consume: bool,
    pub cp_write: bool,
    pub cp_read: bool,
    pub cp_step: bool,
    pub cp_fill_buf: bool,
    pub cp_drain_buf: bool,
    pub cp_fill_ra: bool,
    pub cp_drain_ra: bool,
    pub cp_config: bool,
    pub cp_config_stream: bool,
    pub cp_config_random: bool,
    pub cp_set_rf: bool,
    pub cp_load_rf: bool,
    pub cp_run: bool,
}

impl MechanismUse {
    /// Mechanisms exercised by a compiled plan set (all flags here are
    /// compiler-automated, `C` entries of Table V).
    pub fn of_plans(plans: &[OffloadPlan]) -> Self {
        let mut m = Self::default();
        for p in plans {
            m.cp_config = true;
            m.cp_run = true;
            if !p.params.is_empty() || !p.liveouts.is_empty() {
                m.cp_set_rf |= !p.params.is_empty();
                m.cp_load_rf |= !p.liveouts.is_empty();
            }
            for part in &p.partitions {
                for a in &part.accesses {
                    match a.pattern {
                        AccessPattern::Stream { .. } => {
                            m.cp_config_stream = true;
                            m.cp_fill_buf |= !a.write;
                            m.cp_drain_buf |= a.write;
                            m.cp_step = true;
                        }
                        AccessPattern::Indirect => {
                            m.cp_config_random = true;
                            m.cp_read |= !a.write;
                            m.cp_write |= a.write;
                        }
                    }
                }
                for n in &part.nodes {
                    match n {
                        PNode::Send { .. } => m.cp_produce = true,
                        PNode::Recv { .. } => m.cp_consume = true,
                        PNode::LoadStream { .. } => {
                            m.cp_consume = true;
                            m.cp_step = true;
                        }
                        PNode::StoreStream { .. } => {
                            m.cp_produce = true;
                            m.cp_step = true;
                        }
                        _ => {}
                    }
                }
            }
        }
        m
    }

    /// Iterates `(mechanism name, used)` pairs in Table II order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, bool)> {
        [
            ("cp_produce", self.cp_produce),
            ("cp_consume", self.cp_consume),
            ("cp_write", self.cp_write),
            ("cp_read", self.cp_read),
            ("cp_step", self.cp_step),
            ("cp_fill_buf", self.cp_fill_buf),
            ("cp_drain_buf", self.cp_drain_buf),
            ("cp_fill_ra", self.cp_fill_ra),
            ("cp_drain_ra", self.cp_drain_ra),
            ("cp_config", self.cp_config),
            ("cp_config_stream", self.cp_config_stream),
            ("cp_config_random", self.cp_config_random),
            ("cp_set_rf", self.cp_set_rf),
            ("cp_load_rf", self.cp_load_rf),
            ("cp_run", self.cp_run),
        ]
        .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile, PartitionMode};
    use distda_ir::program::ProgramBuilder;
    use distda_ir::Expr;

    fn compiled() -> Vec<OffloadPlan> {
        let mut b = ProgramBuilder::new("mix");
        let idx = b.array_i64("idx", 8);
        let data = b.array_f64("data", 64);
        let out = b.array_f64("out", 8);
        b.for_(0, 8, 1, |b, i| {
            b.store(out, i.clone(), Expr::load(data, Expr::load(idx, i)));
        });
        compile(&b.build(), PartitionMode::Distributed).offloads
    }

    #[test]
    fn summary_counts_partitions_and_channels() {
        let plans = compiled();
        let s = summarize(&plans, &[(4, 3)]);
        assert_eq!(s.regions, 1);
        assert_eq!(s.partitions, 3);
        assert!(s.channels >= 2);
        assert!(s.max_insts > 0);
        assert_eq!(s.max_microcode_bytes, s.max_insts * 8);
        assert_eq!(s.dfg_dims, (4, 3));
        assert!(s.stream_accesses >= 2);
        assert_eq!(s.indirect_accesses, 1);
    }

    #[test]
    fn mechanism_use_reflects_plan_content() {
        let plans = compiled();
        let m = MechanismUse::of_plans(&plans);
        assert!(m.cp_config && m.cp_run && m.cp_config_stream);
        assert!(m.cp_produce && m.cp_consume && m.cp_step);
        assert!(m.cp_read, "indirect load implies cp_read");
        assert!(m.cp_config_random);
        assert!(
            !m.cp_fill_ra && !m.cp_drain_ra,
            "ra fills are user-annotated only"
        );
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = summarize(&[], &[]);
        assert_eq!(s, OffloadStats::default());
    }
}
