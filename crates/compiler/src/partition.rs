//! Data-movement-aware DFG partitioning (paper Section V-A step 3).
//!
//! Substitutes for Metis: access nodes are anchored to per-object
//! partitions ("at most one memory object per partition", Section IV-A),
//! free compute nodes are seeded by weighted-majority propagation, and a
//! bounded Kernighan–Lin/FM-style refinement sweeps boundary nodes to
//! reduce the communication cut. Replicable sources (constants, induction
//! values, parameters) cost nothing to duplicate and are excluded from the
//! cut.

use crate::dfg::{Dfg, DfgKind};
use std::collections::HashMap;

/// A partitioning of a DFG's nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// Number of partitions.
    pub k: usize,
    /// Partition index per node.
    pub assign: Vec<u32>,
    /// Total bytes/iteration crossing partitions.
    pub cut: u64,
}

/// Bytes carried by one cross-partition value edge per iteration.
const EDGE_BYTES: u64 = 8;

/// Computes the communication cut of an assignment.
pub fn cut_of(d: &Dfg, assign: &[u32]) -> u64 {
    let mut cut = 0;
    for (from, to) in d.edges() {
        if d.nodes[from as usize].kind.is_replicable() {
            continue;
        }
        if assign[from as usize] != assign[to as usize] {
            cut += EDGE_BYTES;
        }
    }
    cut
}

/// Monolithic "partitioning": everything in one partition (the Mono-DA
/// offload shape).
pub fn partition_monolithic(d: &Dfg) -> Partitioning {
    Partitioning {
        k: 1,
        assign: vec![0; d.nodes.len()],
        cut: 0,
    }
}

/// Object-anchored distributed partitioning (the Dist-DA shape): one
/// partition per accessed object, compute placed to minimize the cut.
/// Falls back to monolithic when the DFG touches at most one object.
pub fn partition_object_anchored(d: &Dfg) -> Partitioning {
    let objects = d.objects();
    let k = objects.len();
    if k <= 1 {
        return partition_monolithic(d);
    }
    let obj_part: HashMap<_, u32> = objects
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, i as u32))
        .collect();

    let n = d.nodes.len();
    let mut assign = vec![u32::MAX; n];
    let mut fixed = vec![false; n];
    for (i, node) in d.nodes.iter().enumerate() {
        if let Some(a) = node.kind.array() {
            assign[i] = obj_part[&a];
            fixed[i] = true;
        }
    }

    // Build symmetric adjacency (ignoring replicable sources).
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (from, to) in d.edges() {
        if d.nodes[from as usize].kind.is_replicable() {
            continue;
        }
        adj[from as usize].push(to);
        adj[to as usize].push(from);
    }

    // Seed free nodes by iterated weighted-majority vote of neighbors.
    for _ in 0..n.max(4) {
        let mut changed = false;
        for i in 0..n {
            if fixed[i] {
                continue;
            }
            let mut votes: HashMap<u32, u32> = HashMap::new();
            for &nb in &adj[i] {
                let p = assign[nb as usize];
                if p != u32::MAX {
                    *votes.entry(p).or_insert(0) += 1;
                }
            }
            if let Some((&best, _)) = votes
                .iter()
                .max_by_key(|&(&p, &v)| (v, std::cmp::Reverse(p)))
            {
                if assign[i] != best && assign[i] == u32::MAX {
                    assign[i] = best;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Anything still unassigned (isolated replicables etc.) joins partition 0.
    for a in &mut assign {
        if *a == u32::MAX {
            *a = 0;
        }
    }

    // Keep each carry group together: Carry(r)/SetCarry(r) live where the
    // SetCarry's operand lives (cross-partition loop recurrences would
    // deadlock decoupled pipelines).
    let mut carry_home: HashMap<u16, u32> = HashMap::new();
    for (i, node) in d.nodes.iter().enumerate() {
        if let DfgKind::SetCarry(r) = node.kind {
            let src = node.args[0] as usize;
            let home = if fixed[src] || !d.nodes[src].kind.is_replicable() {
                assign[src]
            } else {
                assign[i]
            };
            carry_home.insert(r, home);
        }
    }
    for (i, node) in d.nodes.iter().enumerate() {
        if let DfgKind::Carry(r) | DfgKind::SetCarry(r) = node.kind {
            if let Some(&home) = carry_home.get(&r) {
                assign[i] = home;
            }
        }
    }

    // FM-style refinement: greedily move free nodes to their best
    // partition while it reduces the cut.
    let carried: Vec<bool> = d
        .nodes
        .iter()
        .map(|n| matches!(n.kind, DfgKind::Carry(_) | DfgKind::SetCarry(_)))
        .collect();
    for _ in 0..8 {
        let mut improved = false;
        for i in 0..n {
            if fixed[i] || carried[i] || d.nodes[i].kind.is_replicable() {
                continue;
            }
            let mut gain: HashMap<u32, i64> = HashMap::new();
            for &nb in &adj[i] {
                let p = assign[nb as usize];
                *gain.entry(p).or_insert(0) += EDGE_BYTES as i64;
            }
            let here = gain.get(&assign[i]).copied().unwrap_or(0);
            if let Some((&best, &g)) = gain
                .iter()
                .max_by_key(|&(&p, &g)| (g, std::cmp::Reverse(p)))
            {
                if best != assign[i] && g > here {
                    assign[i] = best;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let cut = cut_of(d, &assign);
    Partitioning { k, assign, cut }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::build_dfg;
    use distda_ir::program::ProgramBuilder;
    use distda_ir::{Expr, Stmt};

    fn dfg(build: impl FnOnce(&mut ProgramBuilder)) -> Dfg {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        let p = b.build();
        let mut inner = None;
        p.visit_stmts(&mut |s| {
            if let Stmt::Loop(l) = s {
                if !l.body.iter().any(|s| matches!(s, Stmt::Loop(_))) {
                    inner = Some(l.clone());
                }
            }
        });
        build_dfg(&inner.unwrap()).unwrap()
    }

    fn three_array_kernel() -> Dfg {
        dfg(|b| {
            let x = b.array_f64("x", 8);
            let y = b.array_f64("y", 8);
            let z = b.array_f64("z", 8);
            b.for_(0, 8, 1, |b, i| {
                let v = Expr::load(x, i.clone()) * Expr::load(y, i.clone());
                b.store(z, i, v + Expr::cf(1.0));
            });
        })
    }

    #[test]
    fn k_equals_object_count() {
        let d = three_array_kernel();
        let p = partition_object_anchored(&d);
        assert_eq!(p.k, 3);
        // Every access node sits in its own object's partition.
        let mut parts: Vec<u32> = d
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind.is_access())
            .map(|(i, _)| p.assign[i])
            .collect();
        parts.sort();
        parts.dedup();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn accesses_of_one_object_share_a_partition() {
        let d = dfg(|b| {
            let a = b.array_f64("a", 16);
            let o = b.array_f64("o", 16);
            b.for_(1, 15, 1, |b, i| {
                let v =
                    Expr::load(a, i.clone() - Expr::c(1)) + Expr::load(a, i.clone() + Expr::c(1));
                b.store(o, i, v);
            });
        });
        let p = partition_object_anchored(&d);
        let a_parts: Vec<u32> = d
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, DfgKind::LoadStream { .. }))
            .map(|(i, _)| p.assign[i])
            .collect();
        assert!(a_parts.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn cut_counts_only_cross_partition_value_edges() {
        let d = three_array_kernel();
        let mono = partition_monolithic(&d);
        assert_eq!(mono.cut, 0);
        let dist = partition_object_anchored(&d);
        // x*y must cross at least once, (v+1) -> store z crosses once.
        assert!(dist.cut >= 2 * 8, "cut {}", dist.cut);
        assert_eq!(cut_of(&d, &dist.assign), dist.cut);
    }

    #[test]
    fn refinement_beats_or_matches_naive_assignment() {
        let d = three_array_kernel();
        let p = partition_object_anchored(&d);
        // Naive: all free nodes in partition 0.
        let naive: Vec<u32> = d
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| if n.kind.is_access() { p.assign[i] } else { 0 })
            .collect();
        assert!(p.cut <= cut_of(&d, &naive));
    }

    #[test]
    fn single_object_falls_back_to_monolithic() {
        let d = dfg(|b| {
            let a = b.array_f64("a", 8);
            b.for_(0, 8, 1, |b, i| {
                b.store(a, i.clone(), Expr::load(a, i) + Expr::cf(1.0));
            });
        });
        let p = partition_object_anchored(&d);
        assert_eq!(p.k, 1);
        assert!(p.assign.iter().all(|&a| a == 0));
    }

    #[test]
    fn carry_nodes_stay_together() {
        let d = dfg(|b| {
            let x = b.array_f64("x", 8);
            let y = b.array_f64("y", 8);
            let acc = b.scalar("acc", 0.0f64);
            b.for_(0, 8, 1, |b, i| {
                b.set(
                    acc,
                    Expr::Scalar(acc) + Expr::load(x, i.clone()) * Expr::load(y, i),
                );
            });
        });
        let p = partition_object_anchored(&d);
        let carry_parts: Vec<u32> = d
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, DfgKind::Carry(_) | DfgKind::SetCarry(_)))
            .map(|(i, _)| p.assign[i])
            .collect();
        assert!(!carry_parts.is_empty());
        assert!(carry_parts.windows(2).all(|w| w[0] == w[1]));
    }
}
