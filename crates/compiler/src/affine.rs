//! Affine (scalar-evolution) analysis of index expressions.
//!
//! The paper leverages LLVM's scalar evolution ("chains of recurrences") to
//! recognize address-recurrent streaming accesses. Our IR makes the same
//! information recoverable syntactically: an index expression is *affine*
//! when it is a linear combination of loop variables and loop-invariant
//! scalars with constant coefficients. The innermost-variable coefficient
//! is the stream stride; the rest is the per-invocation base the access
//! unit's FSM is configured with.

use distda_ir::expr::{BinOp, Expr, LoopVarId, ScalarId, UnOp};
use distda_ir::value::Value;
use std::collections::HashSet;

/// A symbol an affine expression may reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sym {
    /// A loop induction variable.
    Var(LoopVarId),
    /// A loop-invariant scalar (live-in, set via `cp_set_rf`).
    Scalar(ScalarId),
}

/// `c + sum(coeff_i * sym_i)` with integer coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffineExpr {
    /// Constant term.
    pub c: i64,
    /// Symbol terms, sorted by symbol, no zero coefficients, no duplicates.
    pub terms: Vec<(Sym, i64)>,
}

impl AffineExpr {
    /// The constant expression.
    pub fn constant(c: i64) -> Self {
        Self {
            c,
            terms: Vec::new(),
        }
    }

    /// A bare symbol.
    pub fn sym(s: Sym) -> Self {
        Self {
            c: 0,
            terms: vec![(s, 1)],
        }
    }

    fn normalize(mut self) -> Self {
        self.terms.sort_by_key(|&(s, _)| s);
        self.terms.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        self.terms.retain(|&(_, k)| k != 0);
        self
    }

    /// Sum of two affine expressions.
    pub fn add(&self, other: &Self) -> Self {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().copied());
        Self {
            c: self.c.wrapping_add(other.c),
            terms,
        }
        .normalize()
    }

    /// Difference.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.scale(-1))
    }

    /// Scales by a constant.
    pub fn scale(&self, k: i64) -> Self {
        Self {
            c: self.c.wrapping_mul(k),
            terms: self
                .terms
                .iter()
                .map(|&(s, c)| (s, c.wrapping_mul(k)))
                .collect(),
        }
        .normalize()
    }

    /// Coefficient of a symbol (zero if absent).
    pub fn coeff(&self, s: Sym) -> i64 {
        self.terms
            .iter()
            .find(|&&(t, _)| t == s)
            .map(|&(_, k)| k)
            .unwrap_or(0)
    }

    /// Removes a symbol's term, returning its coefficient.
    pub fn take_coeff(&mut self, s: Sym) -> i64 {
        match self.terms.iter().position(|&(t, _)| t == s) {
            Some(i) => self.terms.remove(i).1,
            None => 0,
        }
    }

    /// Whether the expression is a plain constant.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates with an environment providing symbol values.
    pub fn eval(&self, env: &impl Fn(Sym) -> i64) -> i64 {
        self.terms.iter().fold(self.c, |acc, &(s, k)| {
            acc.wrapping_add(env(s).wrapping_mul(k))
        })
    }
}

/// Attempts to express `e` as an affine function of loop variables and
/// scalars *not* in `defined_in_body` (scalars assigned inside the loop are
/// not loop-invariant, so any use makes the index data-dependent).
pub fn affine_of(e: &Expr, defined_in_body: &HashSet<ScalarId>) -> Option<AffineExpr> {
    match e {
        Expr::Const(Value::I(v)) => Some(AffineExpr::constant(*v)),
        Expr::Const(Value::F(_)) => None,
        Expr::LoopVar(v) => Some(AffineExpr::sym(Sym::Var(*v))),
        Expr::Scalar(s) => {
            if defined_in_body.contains(s) {
                None
            } else {
                Some(AffineExpr::sym(Sym::Scalar(*s)))
            }
        }
        Expr::Bin(op, a, b) => {
            let fa = affine_of(a, defined_in_body);
            let fb = affine_of(b, defined_in_body);
            match op {
                BinOp::Add => Some(fa?.add(&fb?)),
                BinOp::Sub => Some(fa?.sub(&fb?)),
                BinOp::Mul => {
                    let (fa, fb) = (fa?, fb?);
                    if fa.is_const() {
                        Some(fb.scale(fa.c))
                    } else if fb.is_const() {
                        Some(fa.scale(fb.c))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        Expr::Un(UnOp::Neg, a) => Some(affine_of(a, defined_in_body)?.scale(-1)),
        _ => None,
    }
}

/// The result of splitting an index expression against the innermost loop
/// variable: a per-iteration stride and an invariant base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamForm {
    /// Elements advanced per innermost iteration.
    pub stride: i64,
    /// Invariant base (outer vars + live-in scalars + constant).
    pub base: AffineExpr,
}

/// Splits an affine index into stream form with respect to `inner`.
pub fn stream_form(mut a: AffineExpr, inner: LoopVarId) -> StreamForm {
    let stride = a.take_coeff(Sym::Var(inner));
    StreamForm { stride, base: a }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_ir::expr::Expr as E;

    fn none() -> HashSet<ScalarId> {
        HashSet::new()
    }

    #[test]
    fn linear_combination_recognized() {
        // 3*i + 2*j + 5
        let i = LoopVarId(0);
        let j = LoopVarId(1);
        let e = E::c(3) * E::LoopVar(i) + E::c(2) * E::LoopVar(j) + E::c(5);
        let a = affine_of(&e, &none()).unwrap();
        assert_eq!(a.c, 5);
        assert_eq!(a.coeff(Sym::Var(i)), 3);
        assert_eq!(a.coeff(Sym::Var(j)), 2);
    }

    #[test]
    fn row_major_index_splits_into_stream_form() {
        // i*N + j with inner j: stride 1, base N*i.
        let i = LoopVarId(0);
        let j = LoopVarId(1);
        let e = E::LoopVar(i) * E::c(100) + E::LoopVar(j);
        let a = affine_of(&e, &none()).unwrap();
        let sf = stream_form(a, j);
        assert_eq!(sf.stride, 1);
        assert_eq!(sf.base.coeff(Sym::Var(i)), 100);
        assert_eq!(sf.base.c, 0);
    }

    #[test]
    fn column_major_has_large_stride() {
        let i = LoopVarId(0);
        let j = LoopVarId(1);
        let e = E::LoopVar(j) * E::c(64) + E::LoopVar(i);
        let sf = stream_form(affine_of(&e, &none()).unwrap(), j);
        assert_eq!(sf.stride, 64);
    }

    #[test]
    fn load_in_index_is_not_affine() {
        let e = E::load(distda_ir::ArrayId(0), E::c(0)) + E::c(1);
        assert_eq!(affine_of(&e, &none()), None);
    }

    #[test]
    fn body_defined_scalar_poisons_affinity() {
        let s = ScalarId(0);
        let mut defined = HashSet::new();
        defined.insert(s);
        let e = E::Scalar(s) + E::c(1);
        assert_eq!(affine_of(&e, &defined), None);
        // Loop-invariant scalar is fine.
        assert!(affine_of(&e, &none()).is_some());
    }

    #[test]
    fn nonlinear_products_rejected() {
        let i = LoopVarId(0);
        let e = E::LoopVar(i) * E::LoopVar(i);
        assert_eq!(affine_of(&e, &none()), None);
    }

    #[test]
    fn negation_and_subtraction() {
        let i = LoopVarId(0);
        let e = E::c(10) - E::LoopVar(i);
        let a = affine_of(&e, &none()).unwrap();
        assert_eq!(a.c, 10);
        assert_eq!(a.coeff(Sym::Var(i)), -1);
        let neg = affine_of(&(-E::LoopVar(i)), &none()).unwrap();
        assert_eq!(neg.coeff(Sym::Var(i)), -1);
    }

    #[test]
    fn eval_matches_structure() {
        let i = LoopVarId(0);
        let s = ScalarId(3);
        let a = AffineExpr {
            c: 7,
            terms: vec![(Sym::Var(i), 2), (Sym::Scalar(s), -1)],
        };
        let v = a.eval(&|sym| match sym {
            Sym::Var(_) => 10,
            Sym::Scalar(_) => 4,
        });
        assert_eq!(v, 7 + 20 - 4);
    }

    #[test]
    fn normalize_merges_and_drops_zeros() {
        let i = LoopVarId(0);
        let a = AffineExpr::sym(Sym::Var(i)).add(&AffineExpr::sym(Sym::Var(i)).scale(-1));
        assert!(a.is_const());
        assert_eq!(a.c, 0);
    }
}
