//! The end-to-end compilation driver (Figure 6): region identification,
//! DFG abstraction, classification, partitioning and offload-configuration
//! generation.

use crate::classify::{classify, DfgClass};
use crate::dfg::build_dfg;
use crate::partition::{partition_monolithic, partition_object_anchored};
use crate::plan::{codegen, OffloadPlan};
use distda_ir::program::{Loop, LoopId, Program, Stmt};

/// How computation is partitioned across accelerator resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMode {
    /// Paper's Dist-DA: one partition per memory object, sub-computation
    /// placement.
    Distributed,
    /// Paper's Mono-DA/Mono-CA: the offloaded computation stays monolithic
    /// (accesses may still be decentralized by the runtime).
    Monolithic,
}

/// Result of compiling a kernel program.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Offload plans keyed by their loop (innermost loops only).
    pub offloads: Vec<OffloadPlan>,
    /// Loops examined but not offloaded (e.g. no memory accesses).
    pub rejected: Vec<LoopId>,
}

impl CompiledKernel {
    /// Finds the plan for a loop, if that loop was offloaded.
    pub fn plan_for(&self, id: LoopId) -> Option<&OffloadPlan> {
        self.offloads.iter().find(|p| p.loop_id == id)
    }
}

/// Collects all innermost loops (loops whose body contains no loop).
pub fn innermost_loops(p: &Program) -> Vec<Loop> {
    let mut out = Vec::new();
    p.visit_stmts(&mut |s| {
        if let Stmt::Loop(l) = s {
            let has_inner = {
                let mut found = false;
                fn walk(stmts: &[Stmt], found: &mut bool) {
                    for s in stmts {
                        match s {
                            Stmt::Loop(_) => *found = true,
                            Stmt::If(_, t, e) => {
                                walk(t, found);
                                walk(e, found);
                            }
                            _ => {}
                        }
                    }
                }
                walk(&l.body, &mut found);
                found
            };
            if !has_inner {
                out.push(l.clone());
            }
        }
    });
    out
}

/// Compiles a program: every profitable innermost loop becomes an offload
/// plan under the requested partitioning mode. Serialized DFGs are always
/// monolithic regardless of mode (paper Section V-A case 2).
pub fn compile(p: &Program, mode: PartitionMode) -> CompiledKernel {
    let mut offloads = Vec::new();
    let mut rejected = Vec::new();
    for l in innermost_loops(p) {
        let Ok(dfg) = build_dfg(&l) else {
            rejected.push(l.id);
            continue;
        };
        // Profitability: a loop with no memory accesses has nothing to be
        // near; leave it on the host.
        if dfg.objects().is_empty() {
            rejected.push(l.id);
            continue;
        }
        let class = classify(&dfg);
        let parts = match (mode, class) {
            (PartitionMode::Distributed, DfgClass::Serialized) => partition_monolithic(&dfg),
            (PartitionMode::Distributed, _) => partition_object_anchored(&dfg),
            (PartitionMode::Monolithic, _) => partition_monolithic(&dfg),
        };
        let plan = codegen(&dfg, &parts, &l, class);
        debug_assert!(plan.validate().is_ok(), "{:?}", plan.validate());
        offloads.push(plan);
    }
    CompiledKernel { offloads, rejected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_ir::program::ProgramBuilder;
    use distda_ir::Expr;

    #[test]
    fn compiles_every_innermost_loop_with_accesses() {
        let mut b = ProgramBuilder::new("two-phase");
        let x = b.array_f64("x", 8);
        let y = b.array_f64("y", 8);
        b.for_(0, 8, 1, |b, i| {
            b.store(y, i.clone(), Expr::load(x, i) * Expr::cf(2.0));
        });
        b.for_(0, 8, 1, |b, i| {
            b.store(x, i.clone(), Expr::load(y, i) + Expr::cf(1.0));
        });
        let p = b.build();
        let ck = compile(&p, PartitionMode::Distributed);
        assert_eq!(ck.offloads.len(), 2);
        assert!(ck.rejected.is_empty());
    }

    #[test]
    fn pure_scalar_loop_rejected() {
        let mut b = ProgramBuilder::new("scalar-only");
        let s = b.scalar("s", 0i64);
        b.for_(0, 8, 1, |b, i| {
            b.set(s, Expr::Scalar(s) + i);
        });
        let p = b.build();
        let ck = compile(&p, PartitionMode::Distributed);
        assert!(ck.offloads.is_empty());
        assert_eq!(ck.rejected.len(), 1);
    }

    #[test]
    fn only_innermost_loops_are_extracted() {
        let mut b = ProgramBuilder::new("nest");
        let a = b.array_f64("a", 64);
        b.for_(0, 8, 1, |b, i| {
            b.for_(0, 8, 1, |b, j| {
                b.store(a, i.clone() * Expr::c(8) + j, Expr::cf(0.0));
            });
        });
        let p = b.build();
        let ck = compile(&p, PartitionMode::Distributed);
        assert_eq!(ck.offloads.len(), 1);
        let inner = innermost_loops(&p);
        assert_eq!(inner.len(), 1);
        assert_eq!(ck.offloads[0].loop_id, inner[0].id);
    }

    #[test]
    fn modes_differ_in_partition_count() {
        let mut b = ProgramBuilder::new("k3");
        let x = b.array_f64("x", 8);
        let y = b.array_f64("y", 8);
        let z = b.array_f64("z", 8);
        b.for_(0, 8, 1, |b, i| {
            b.store(z, i.clone(), Expr::load(x, i.clone()) + Expr::load(y, i));
        });
        let p = b.build();
        let dist = compile(&p, PartitionMode::Distributed);
        let mono = compile(&p, PartitionMode::Monolithic);
        assert_eq!(dist.offloads[0].partitions.len(), 3);
        assert_eq!(mono.offloads[0].partitions.len(), 1);
    }
}
