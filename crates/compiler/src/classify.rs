//! DFG classification (paper Section V-A step 2).
//!
//! Static dependence analysis conservatively sorts each DFG into:
//!
//! 1. **Parallelizable** — partitionable accesses and computations with no
//!    loop-carried memory dependence;
//! 2. **Serialized** — non-partitionable: a non-reduction scalar recurrence
//!    (e.g. a pointer chase feeding addresses) forces iteration-by-iteration
//!    execution;
//! 3. **Pipelinable** — partitionable but non-parallelizable because of
//!    irregular or loop-carried writes; decoupled partitions may still
//!    pipeline because object-level access ordering is preserved.

use crate::dfg::{Dfg, DfgKind};
use distda_ir::expr::BinOp;
use std::collections::HashMap;

/// Classification outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfgClass {
    /// No loop-carried dependences: partitions run fully decoupled.
    Parallelizable,
    /// Loop-carried or irregular writes: partitions pipeline.
    Pipelinable,
    /// Non-reduction recurrence: executes as a single sequential offload.
    Serialized,
}

/// Classifies a DFG.
pub fn classify(d: &Dfg) -> DfgClass {
    if has_serializing_recurrence(d) {
        return DfgClass::Serialized;
    }
    if has_carried_memory_dependence(d) {
        return DfgClass::Pipelinable;
    }
    DfgClass::Parallelizable
}

/// A carry register is a benign reduction when every consumer of its
/// `Carry` node is an associative combine (`+`, `*`, `min`, `max`) or a
/// predication `Select` — anything else (address computation, comparisons
/// steering other state) serializes the loop.
fn has_serializing_recurrence(d: &Dfg) -> bool {
    // consumers[n] = kinds of nodes consuming node n.
    let mut consumers: HashMap<u32, Vec<usize>> = HashMap::new();
    for (from, to) in d.edges() {
        consumers.entry(from).or_default().push(to as usize);
    }
    for (i, n) in d.nodes.iter().enumerate() {
        let DfgKind::Carry(_) = n.kind else { continue };
        let Some(users) = consumers.get(&(i as u32)) else {
            continue;
        };
        for &u in users {
            match &d.nodes[u].kind {
                DfgKind::Bin(BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max) => {}
                DfgKind::Select => {}
                DfgKind::SetCarry(_) => {}
                _ => return true,
            }
        }
    }
    false
}

fn has_carried_memory_dependence(d: &Dfg) -> bool {
    for n in &d.nodes {
        let (array, store_form) = match &n.kind {
            DfgKind::StoreIndirect { array } => (array, None),
            DfgKind::StoreStream { array, form } => (array, Some(form)),
            _ => continue,
        };
        match store_form {
            // Irregular write: conservatively pipelinable (paper case 3).
            None => return true,
            Some(sf) => {
                // Compare against every load from the same object.
                for m in &d.nodes {
                    let lf = match &m.kind {
                        DfgKind::LoadStream { array: la, form } if la == array => Some(form),
                        DfgKind::LoadIndirect { array: la } if la == array => None,
                        _ => continue,
                    };
                    match lf {
                        // Indirect read of a written object: carried.
                        None => return true,
                        Some(lf) => {
                            if lf.stride != sf.stride {
                                return true; // incommensurate: be conservative
                            }
                            let delta = lf.base.sub(&sf.base);
                            if !delta.is_const() || delta.c != 0 {
                                // Reads a different element than this
                                // iteration writes: loop-carried.
                                return true;
                            }
                        }
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::build_dfg;
    use distda_ir::program::ProgramBuilder;
    use distda_ir::{Expr, Stmt};

    fn classify_inner(build: impl FnOnce(&mut ProgramBuilder)) -> DfgClass {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        let p = b.build();
        let mut inner = None;
        p.visit_stmts(&mut |s| {
            if let Stmt::Loop(l) = s {
                if !l.body.iter().any(|s| matches!(s, Stmt::Loop(_))) {
                    inner = Some(l.clone());
                }
            }
        });
        classify(&build_dfg(&inner.unwrap()).unwrap())
    }

    #[test]
    fn streaming_map_is_parallelizable() {
        let c = classify_inner(|b| {
            let x = b.array_f64("x", 8);
            let y = b.array_f64("y", 8);
            b.for_(0, 8, 1, |b, i| {
                b.store(y, i.clone(), Expr::load(x, i) * Expr::cf(2.0));
            });
        });
        assert_eq!(c, DfgClass::Parallelizable);
    }

    #[test]
    fn reduction_is_not_serialized() {
        let c = classify_inner(|b| {
            let x = b.array_f64("x", 8);
            let acc = b.scalar("acc", 0.0f64);
            b.for_(0, 8, 1, |b, i| {
                b.set(acc, Expr::Scalar(acc) + Expr::load(x, i));
            });
        });
        assert_eq!(c, DfgClass::Parallelizable);
    }

    #[test]
    fn pointer_chase_is_serialized() {
        let c = classify_inner(|b| {
            let next = b.array_i64("next", 8);
            let p = b.scalar("p", 0i64);
            b.for_(0, 8, 1, |b, _| {
                b.set(p, Expr::load(next, Expr::Scalar(p)));
            });
        });
        assert_eq!(c, DfgClass::Serialized);
    }

    #[test]
    fn stencil_in_place_is_pipelinable() {
        // seidel-like: reads a[i-1] it wrote last iteration.
        let c = classify_inner(|b| {
            let a = b.array_f64("a", 16);
            b.for_(1, 15, 1, |b, i| {
                let v = (Expr::load(a, i.clone() - Expr::c(1))
                    + Expr::load(a, i.clone())
                    + Expr::load(a, i.clone() + Expr::c(1)))
                    / Expr::cf(3.0);
                b.store(a, i, v);
            });
        });
        assert_eq!(c, DfgClass::Pipelinable);
    }

    #[test]
    fn scatter_is_pipelinable() {
        let c = classify_inner(|b| {
            let idx = b.array_i64("idx", 8);
            let out = b.array_f64("out", 64);
            b.for_(0, 8, 1, |b, i| {
                b.store(out, Expr::load(idx, i), Expr::cf(1.0));
            });
        });
        assert_eq!(c, DfgClass::Pipelinable);
    }

    #[test]
    fn same_element_read_then_write_is_parallelizable() {
        let c = classify_inner(|b| {
            let a = b.array_f64("a", 8);
            b.for_(0, 8, 1, |b, i| {
                b.store(a, i.clone(), Expr::load(a, i) * Expr::cf(2.0));
            });
        });
        assert_eq!(c, DfgClass::Parallelizable);
    }

    #[test]
    fn conditional_count_is_not_serialized() {
        // bfs-style conditional increment through a Select.
        let c = classify_inner(|b| {
            let x = b.array_i64("x", 8);
            let n = b.scalar("n", 0i64);
            b.for_(0, 8, 1, |b, i| {
                b.when(Expr::load(x, i).lt(Expr::c(3)), |b| {
                    b.set(n, Expr::Scalar(n) + Expr::c(1));
                });
            });
        });
        assert_eq!(c, DfgClass::Parallelizable);
    }
}
