//! Offload configurations (paper Section V-A step 6): the compiler's final
//! output, bundled with the application binary.
//!
//! Each [`OffloadPlan`] describes one offloadable innermost loop: the
//! distributed accelerator definitions ([`PartitionDef`], one per
//! partition), the decoupled producer-consumer channels between them
//! ([`ChannelDef`], mapped on access-unit buffers at runtime), the access
//! configurations (`cp_config_stream`/`cp_config_random` targets), and the
//! scalar parameters the host transfers with `cp_set_rf`.

use crate::affine::{AffineExpr, Sym};
use crate::classify::DfgClass;
use crate::dfg::{Dfg, DfgKind};
use crate::partition::Partitioning;
use distda_ir::expr::{ArrayId, BinOp, Expr, LoopVarId, ScalarId, UnOp};
use distda_ir::program::{Loop, LoopId};
use distda_ir::value::Value;
use std::collections::HashMap;

/// One microcode operation of an accelerator definition. Operand fields are
/// indices of earlier nodes in the same partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PNode {
    /// Literal.
    Const(Value),
    /// Current innermost iteration value (orchestrator-provided).
    IndVar,
    /// Register-file parameter (index into [`OffloadPlan::params`]).
    Param(u16),
    /// Reads local carry register.
    Carry(u16),
    /// Updates local carry register at iteration end.
    SetCarry {
        /// Local register.
        reg: u16,
        /// Value operand.
        src: u16,
    },
    /// Next element from a streaming access (`cp_consume` semantics).
    LoadStream {
        /// Local access index.
        access: u16,
    },
    /// Data-dependent load (`cp_read` semantics).
    LoadIndirect {
        /// Local access index.
        access: u16,
        /// Element-index operand.
        addr: u16,
    },
    /// Binary ALU op.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// Unary ALU op.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        a: u16,
    },
    /// Predicated select.
    Select {
        /// Condition operand.
        c: u16,
        /// Taken value.
        t: u16,
        /// Untaken value.
        f: u16,
    },
    /// Consumes one value from a cross-partition channel (`cp_consume`).
    Recv {
        /// Global channel id.
        chan: u16,
    },
    /// Produces one value onto a cross-partition channel (`cp_produce`).
    Send {
        /// Global channel id.
        chan: u16,
        /// Value operand.
        src: u16,
    },
    /// Streaming store (`cp_produce` into a draining access).
    StoreStream {
        /// Local access index.
        access: u16,
        /// Value operand.
        val: u16,
        /// Optional predicate operand (if-converted store).
        pred: Option<u16>,
    },
    /// Data-dependent store (`cp_write`).
    StoreIndirect {
        /// Local access index.
        access: u16,
        /// Element-index operand.
        addr: u16,
        /// Value operand.
        val: u16,
        /// Optional predicate operand.
        pred: Option<u16>,
    },
}

impl PNode {
    /// Latency class of the node on a single-issue in-order accelerator.
    pub fn latency(&self) -> u64 {
        match self {
            PNode::Bin { op, .. } => op.latency(),
            PNode::Un { op, .. } => op.latency(),
            PNode::Const(_) | PNode::Param(_) | PNode::IndVar | PNode::Carry(_) => 0,
            _ => 1,
        }
    }

    /// Whether the node requires a complex (mul/div/sqrt) functional unit.
    pub fn is_complex(&self) -> bool {
        match self {
            PNode::Bin { op, .. } => op.is_complex(),
            PNode::Un { op, .. } => op.is_complex(),
            _ => false,
        }
    }
}

/// Memory access pattern of one access configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPattern {
    /// Strided: the access-unit FSM generates `base + i*stride` element
    /// addresses (configured via `cp_config_stream`).
    Stream {
        /// Loop-invariant base in elements (outer vars + rf scalars).
        base: AffineExpr,
        /// Elements per innermost iteration.
        stride: i64,
    },
    /// Data-dependent offsets supplied per access (`cp_config_random`).
    Indirect,
}

/// One access configuration of a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessDef {
    /// Accessed memory object.
    pub array: ArrayId,
    /// Address pattern.
    pub pattern: AccessPattern,
    /// Whether the access writes.
    pub write: bool,
}

/// A decoupled producer-consumer edge between two partitions, mapped onto
/// access-unit buffers at runtime (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelDef {
    /// Channel id (index into [`OffloadPlan::channels`]).
    pub id: u16,
    /// Producing partition.
    pub producer: u16,
    /// Consuming partition.
    pub consumer: u16,
}

/// One distributed accelerator definition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionDef {
    /// Partition id.
    pub id: u16,
    /// The memory object this partition is anchored at (None for pure
    /// compute partitions).
    pub object: Option<ArrayId>,
    /// Microcode in topological order, executed once per inner iteration.
    pub nodes: Vec<PNode>,
    /// Access configurations referenced by the microcode.
    pub accesses: Vec<AccessDef>,
    /// Scalar backing each local carry register (initialized from the rf).
    pub carry_scalars: Vec<ScalarId>,
}

impl PartitionDef {
    /// Number of microcode instructions (Table VI `#insts`).
    pub fn inst_count(&self) -> usize {
        self.nodes.len()
    }

    /// Encoded microcode size in bytes (8 bytes/instruction, Table VI).
    pub fn microcode_bytes(&self) -> usize {
        self.nodes.len() * 8
    }

    /// Count of complex-unit operations (CGRA resource sizing).
    pub fn complex_ops(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_complex()).count()
    }

    /// Buffers this definition needs: streaming access *groups* plus
    /// incoming channels (Table VI `#buf`). Streams on the same object
    /// with the same stride share one buffer window — the runtime's
    /// multi-access combining (Figure 2d).
    pub fn buffer_count(&self) -> usize {
        let mut groups: Vec<(ArrayId, i64)> = self
            .accesses
            .iter()
            .filter_map(|a| match &a.pattern {
                AccessPattern::Stream { stride, .. } => Some((a.array, *stride)),
                AccessPattern::Indirect => None,
            })
            .collect();
        groups.sort();
        groups.dedup();
        let recvs = self
            .nodes
            .iter()
            .filter(|n| matches!(n, PNode::Recv { .. }))
            .count();
        groups.len() + recvs
    }
}

/// A compiled offload region: one innermost loop mapped onto distributed
/// accelerator definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadPlan {
    /// Source loop.
    pub loop_id: LoopId,
    /// Innermost induction variable.
    pub inner_var: LoopVarId,
    /// Dependence classification.
    pub class: DfgClass,
    /// Accelerator definitions.
    pub partitions: Vec<PartitionDef>,
    /// Cross-partition channels.
    pub channels: Vec<ChannelDef>,
    /// Host-provided parameters (set via `cp_set_rf` before `cp_run`).
    pub params: Vec<Sym>,
    /// Live-out scalars: `(scalar, partition, local carry register)`; the
    /// host reads them back with `cp_load_rf`.
    pub liveouts: Vec<(ScalarId, u16, u16)>,
    /// Loop bounds, evaluated by the host per invocation.
    pub bounds: (Expr, Expr, i64),
    /// Communication cut of the chosen partitioning (bytes/iteration).
    pub cut_bytes: u64,
    /// Source DFG dimensions `(depth, width)` — Table VI's "DFG dim".
    pub dfg_dims: (usize, usize),
}

impl OffloadPlan {
    /// Validates internal consistency (operand ordering, channel pairing).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        for p in &self.partitions {
            for (i, n) in p.nodes.iter().enumerate() {
                let ops: Vec<u16> = match n {
                    PNode::Bin { a, b, .. } => vec![*a, *b],
                    PNode::Un { a, .. } => vec![*a],
                    PNode::Select { c, t, f } => vec![*c, *t, *f],
                    PNode::Send { src, .. } => vec![*src],
                    PNode::SetCarry { src, .. } => vec![*src],
                    PNode::LoadIndirect { addr, .. } => vec![*addr],
                    PNode::StoreStream { val, pred, .. } => {
                        let mut v = vec![*val];
                        v.extend(pred.iter());
                        v
                    }
                    PNode::StoreIndirect {
                        addr, val, pred, ..
                    } => {
                        let mut v = vec![*addr, *val];
                        v.extend(pred.iter());
                        v
                    }
                    _ => vec![],
                };
                for o in ops {
                    if o as usize >= i {
                        return Err(format!(
                            "partition {}: node {i} uses operand {o} not yet defined",
                            p.id
                        ));
                    }
                }
                match n {
                    PNode::LoadStream { access }
                    | PNode::LoadIndirect { access, .. }
                    | PNode::StoreStream { access, .. }
                    | PNode::StoreIndirect { access, .. }
                        if *access as usize >= p.accesses.len() =>
                    {
                        return Err(format!("partition {}: bad access index", p.id));
                    }
                    PNode::Carry(r) | PNode::SetCarry { reg: r, .. }
                        if *r as usize >= p.carry_scalars.len() =>
                    {
                        return Err(format!("partition {}: bad carry register", p.id));
                    }
                    PNode::Param(ix) if *ix as usize >= self.params.len() => {
                        return Err("bad param index".into());
                    }
                    _ => {}
                }
            }
        }
        // Every channel has exactly one Send in its producer and at least
        // one Recv in its consumer.
        for ch in &self.channels {
            let sends = self.partitions[ch.producer as usize]
                .nodes
                .iter()
                .filter(|n| matches!(n, PNode::Send { chan, .. } if *chan == ch.id))
                .count();
            let recvs = self.partitions[ch.consumer as usize]
                .nodes
                .iter()
                .filter(|n| matches!(n, PNode::Recv { chan } if *chan == ch.id))
                .count();
            if sends != 1 || recvs != 1 {
                return Err(format!("channel {}: {sends} sends / {recvs} recvs", ch.id));
            }
        }
        Ok(())
    }

    /// Total microcode instructions across partitions.
    pub fn total_insts(&self) -> usize {
        self.partitions.iter().map(|p| p.inst_count()).sum()
    }

    /// Largest partition's instruction count (Table VI reports the max).
    pub fn max_insts(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.inst_count())
            .max()
            .unwrap_or(0)
    }
}

/// Lowers a partitioned DFG into an offload plan.
pub fn codegen(dfg: &Dfg, parts: &Partitioning, l: &Loop, class: DfgClass) -> OffloadPlan {
    let k = parts.k;
    let assign = &parts.assign;

    // Channels: one per (producer node, consumer partition).
    let mut chan_ids: HashMap<(u32, u32), u16> = HashMap::new();
    let mut channels: Vec<ChannelDef> = Vec::new();
    for (from, to) in dfg.edges() {
        let (pf, pt) = (assign[from as usize], assign[to as usize]);
        if pf != pt && !dfg.nodes[from as usize].kind.is_replicable() {
            chan_ids.entry((from, pt)).or_insert_with(|| {
                let id = channels.len() as u16;
                channels.push(ChannelDef {
                    id,
                    producer: pf as u16,
                    consumer: pt as u16,
                });
                id
            });
        }
    }

    // Carry register ownership and local numbering.
    let mut carry_owner: HashMap<u16, u32> = HashMap::new();
    for (i, n) in dfg.nodes.iter().enumerate() {
        if let DfgKind::SetCarry(r) = n.kind {
            carry_owner.insert(r, assign[i]);
        }
    }
    let mut carry_local: HashMap<u16, u16> = HashMap::new();
    let mut carry_scalars_per_part: Vec<Vec<ScalarId>> = vec![Vec::new(); k];
    for (gr, &owner) in {
        let mut v: Vec<_> = carry_owner.iter().collect();
        v.sort();
        v
    } {
        let local = carry_scalars_per_part[owner as usize].len() as u16;
        carry_scalars_per_part[owner as usize].push(dfg.carries[*gr as usize]);
        carry_local.insert(*gr, local);
    }

    // Per-partition translation.
    let mut partitions: Vec<PartitionDef> = (0..k)
        .map(|p| PartitionDef {
            id: p as u16,
            object: None,
            nodes: Vec::new(),
            accesses: Vec::new(),
            carry_scalars: std::mem::take(&mut carry_scalars_per_part[p]),
        })
        .collect();
    // Assign each partition its anchored object (the object of its fixed
    // access nodes).
    for (i, n) in dfg.nodes.iter().enumerate() {
        if let Some(a) = n.kind.array() {
            partitions[assign[i] as usize].object = Some(a);
        }
    }

    // local[g] per partition; replicable memos are per-partition too.
    let mut local: Vec<HashMap<u32, u16>> = vec![HashMap::new(); k];
    let mut recv_memo: Vec<HashMap<u16, u16>> = vec![HashMap::new(); k];

    // Pre-compute, for each producer node, the channels it feeds.
    let mut sends_of: HashMap<u32, Vec<u16>> = HashMap::new();
    for (&(src, _), &ch) in &chan_ids {
        sends_of.entry(src).or_default().push(ch);
    }
    for v in sends_of.values_mut() {
        v.sort();
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve(
        dfg: &Dfg,
        assign: &[u32],
        p: usize,
        g: u32,
        partitions: &mut [PartitionDef],
        local: &mut [HashMap<u32, u16>],
        recv_memo: &mut [HashMap<u16, u16>],
        chan_ids: &HashMap<(u32, u32), u16>,
        carry_local: &HashMap<u16, u16>,
    ) -> u16 {
        if let Some(&ix) = local[p].get(&g) {
            return ix;
        }
        let node = &dfg.nodes[g as usize];
        if node.kind.is_replicable() {
            let pn = match &node.kind {
                DfgKind::Const(v) => PNode::Const(*v),
                DfgKind::IndVar => PNode::IndVar,
                DfgKind::Param(ix) => PNode::Param(*ix),
                _ => unreachable!("replicable kinds"),
            };
            let ix = partitions[p].nodes.len() as u16;
            partitions[p].nodes.push(pn);
            local[p].insert(g, ix);
            return ix;
        }
        if assign[g as usize] as usize != p {
            // Remote value: receive it (once per channel).
            let ch = chan_ids[&(g, p as u32)];
            if let Some(&ix) = recv_memo[p].get(&ch) {
                return ix;
            }
            let ix = partitions[p].nodes.len() as u16;
            partitions[p].nodes.push(PNode::Recv { chan: ch });
            recv_memo[p].insert(ch, ix);
            local[p].insert(g, ix);
            return ix;
        }
        // Same-partition non-replicable operands are translated before
        // their users because we walk nodes in topological order.
        if let DfgKind::Carry(r) = node.kind {
            let ix = partitions[p].nodes.len() as u16;
            partitions[p].nodes.push(PNode::Carry(carry_local[&r]));
            local[p].insert(g, ix);
            return ix;
        }
        unreachable!("operand {g} not yet translated in partition {p}");
    }

    for (g, node) in dfg.nodes.iter().enumerate() {
        let g32 = g as u32;
        if node.kind.is_replicable() {
            continue; // materialized on demand
        }
        let p = assign[g] as usize;
        let res = |gg: u32,
                   parts_: &mut Vec<PartitionDef>,
                   local_: &mut Vec<HashMap<u32, u16>>,
                   recv_: &mut Vec<HashMap<u16, u16>>| {
            resolve(
                dfg,
                assign,
                p,
                gg,
                parts_,
                local_,
                recv_,
                &chan_ids,
                &carry_local,
            )
        };
        let pn = match &node.kind {
            DfgKind::Const(_) | DfgKind::IndVar | DfgKind::Param(_) => unreachable!(),
            DfgKind::Carry(r) => {
                // Materialize the carry read if it wasn't already resolved.
                if local[p].contains_key(&g32) {
                    continue;
                }
                PNode::Carry(carry_local[r])
            }
            DfgKind::SetCarry(r) => {
                let src = res(node.args[0], &mut partitions, &mut local, &mut recv_memo);
                PNode::SetCarry {
                    reg: carry_local[r],
                    src,
                }
            }
            DfgKind::LoadStream { array, form } => {
                let access = partitions[p].accesses.len() as u16;
                partitions[p].accesses.push(AccessDef {
                    array: *array,
                    pattern: AccessPattern::Stream {
                        base: form.base.clone(),
                        stride: form.stride,
                    },
                    write: false,
                });
                PNode::LoadStream { access }
            }
            DfgKind::LoadIndirect { array } => {
                let addr = res(node.args[0], &mut partitions, &mut local, &mut recv_memo);
                let access = partitions[p].accesses.len() as u16;
                partitions[p].accesses.push(AccessDef {
                    array: *array,
                    pattern: AccessPattern::Indirect,
                    write: false,
                });
                PNode::LoadIndirect { access, addr }
            }
            DfgKind::Bin(op) => {
                let a = res(node.args[0], &mut partitions, &mut local, &mut recv_memo);
                let b = res(node.args[1], &mut partitions, &mut local, &mut recv_memo);
                PNode::Bin { op: *op, a, b }
            }
            DfgKind::Un(op) => {
                let a = res(node.args[0], &mut partitions, &mut local, &mut recv_memo);
                PNode::Un { op: *op, a }
            }
            DfgKind::Select => {
                let c = res(node.args[0], &mut partitions, &mut local, &mut recv_memo);
                let t = res(node.args[1], &mut partitions, &mut local, &mut recv_memo);
                let f = res(node.args[2], &mut partitions, &mut local, &mut recv_memo);
                PNode::Select { c, t, f }
            }
            DfgKind::StoreStream { array, form } => {
                let val = res(node.args[0], &mut partitions, &mut local, &mut recv_memo);
                let pred = node
                    .pred
                    .map(|pg| res(pg, &mut partitions, &mut local, &mut recv_memo));
                let access = partitions[p].accesses.len() as u16;
                partitions[p].accesses.push(AccessDef {
                    array: *array,
                    pattern: AccessPattern::Stream {
                        base: form.base.clone(),
                        stride: form.stride,
                    },
                    write: true,
                });
                PNode::StoreStream { access, val, pred }
            }
            DfgKind::StoreIndirect { array } => {
                let addr = res(node.args[0], &mut partitions, &mut local, &mut recv_memo);
                let val = res(node.args[1], &mut partitions, &mut local, &mut recv_memo);
                let pred = node
                    .pred
                    .map(|pg| res(pg, &mut partitions, &mut local, &mut recv_memo));
                let access = partitions[p].accesses.len() as u16;
                partitions[p].accesses.push(AccessDef {
                    array: *array,
                    pattern: AccessPattern::Indirect,
                    write: true,
                });
                PNode::StoreIndirect {
                    access,
                    addr,
                    val,
                    pred,
                }
            }
        };
        let ix = partitions[p].nodes.len() as u16;
        partitions[p].nodes.push(pn);
        local[p].insert(g32, ix);
        // Emit sends for consumers in other partitions.
        if let Some(chans) = sends_of.get(&g32) {
            for &ch in chans {
                partitions[p].nodes.push(PNode::Send { chan: ch, src: ix });
            }
        }
    }

    // Live-outs: every carried scalar, read back from its owner partition.
    let mut liveouts = Vec::new();
    for (gr, scalar) in dfg.carries.iter().enumerate() {
        let gr = gr as u16;
        if let (Some(&owner), Some(&local_reg)) = (carry_owner.get(&gr), carry_local.get(&gr)) {
            liveouts.push((*scalar, owner as u16, local_reg));
        }
    }

    OffloadPlan {
        loop_id: l.id,
        inner_var: l.var,
        class,
        partitions,
        channels,
        params: dfg.params.clone(),
        liveouts,
        bounds: (l.start.clone(), l.end.clone(), l.step),
        cut_bytes: parts.cut,
        dfg_dims: dfg.dims(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::dfg::build_dfg;
    use crate::partition::{partition_monolithic, partition_object_anchored};
    use distda_ir::program::ProgramBuilder;
    use distda_ir::{Expr, Stmt};

    fn plan_of(dist: bool, build: impl FnOnce(&mut ProgramBuilder)) -> OffloadPlan {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        let p = b.build();
        let mut inner = None;
        p.visit_stmts(&mut |s| {
            if let Stmt::Loop(l) = s {
                if !l.body.iter().any(|s| matches!(s, Stmt::Loop(_))) {
                    inner = Some(l.clone());
                }
            }
        });
        let l = inner.unwrap();
        let d = build_dfg(&l).unwrap();
        let class = classify(&d);
        let parts = if dist && class != DfgClass::Serialized {
            partition_object_anchored(&d)
        } else {
            partition_monolithic(&d)
        };
        let plan = codegen(&d, &parts, &l, class);
        plan.validate().expect("plan validates");
        plan
    }

    fn axpy(b: &mut ProgramBuilder) {
        let x = b.array_f64("x", 8);
        let y = b.array_f64("y", 8);
        b.for_(0, 8, 1, |b, i| {
            let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
            b.store(y, i, v);
        });
    }

    #[test]
    fn distributed_axpy_has_two_partitions_and_channels() {
        let plan = plan_of(true, axpy);
        assert_eq!(plan.partitions.len(), 2);
        assert!(!plan.channels.is_empty());
        // Objects are distinct per partition.
        let objs: Vec<_> = plan.partitions.iter().map(|p| p.object).collect();
        assert_ne!(objs[0], objs[1]);
    }

    #[test]
    fn monolithic_axpy_has_one_partition_no_channels() {
        let plan = plan_of(false, axpy);
        assert_eq!(plan.partitions.len(), 1);
        assert!(plan.channels.is_empty());
        assert_eq!(plan.partitions[0].accesses.len(), 3);
    }

    #[test]
    fn sends_and_recvs_pair_up() {
        let plan = plan_of(true, |b| {
            let x = b.array_f64("x", 8);
            let y = b.array_f64("y", 8);
            let z = b.array_f64("z", 8);
            b.for_(0, 8, 1, |b, i| {
                let v = Expr::load(x, i.clone()) * Expr::load(y, i.clone());
                b.store(z, i, v);
            });
        });
        assert_eq!(plan.partitions.len(), 3);
        let sends: usize = plan
            .partitions
            .iter()
            .flat_map(|p| &p.nodes)
            .filter(|n| matches!(n, PNode::Send { .. }))
            .count();
        let recvs: usize = plan
            .partitions
            .iter()
            .flat_map(|p| &p.nodes)
            .filter(|n| matches!(n, PNode::Recv { .. }))
            .count();
        assert_eq!(sends, plan.channels.len());
        assert_eq!(recvs, plan.channels.len());
    }

    #[test]
    fn reduction_liveout_maps_to_carry_register() {
        let plan = plan_of(true, |b| {
            let x = b.array_f64("x", 8);
            let acc = b.scalar("acc", 0.0f64);
            b.for_(0, 8, 1, |b, i| {
                b.set(acc, Expr::Scalar(acc) + Expr::load(x, i));
            });
        });
        assert_eq!(plan.liveouts.len(), 1);
        let (_, part, reg) = plan.liveouts[0];
        assert_eq!(
            plan.partitions[part as usize].carry_scalars.len(),
            reg as usize + 1
        );
    }

    #[test]
    fn serialized_pointer_chase_stays_monolithic() {
        let plan = plan_of(true, |b| {
            let next = b.array_i64("next", 8);
            let p = b.scalar("p", 0i64);
            b.for_(0, 8, 1, |b, _| {
                b.set(p, Expr::load(next, Expr::Scalar(p)));
            });
        });
        assert_eq!(plan.class, DfgClass::Serialized);
        assert_eq!(plan.partitions.len(), 1);
        assert!(plan.partitions[0].buffer_count() <= 1);
    }

    #[test]
    fn predicated_store_keeps_predicate_operand() {
        let plan = plan_of(false, |b| {
            let x = b.array_i64("x", 8);
            let y = b.array_i64("y", 8);
            b.for_(0, 8, 1, |b, i| {
                b.when(Expr::load(x, i.clone()).lt(Expr::c(3)), |b| {
                    b.store(y, i.clone(), Expr::c(1));
                });
            });
        });
        let has_pred_store = plan.partitions[0]
            .nodes
            .iter()
            .any(|n| matches!(n, PNode::StoreStream { pred: Some(_), .. }));
        assert!(has_pred_store);
    }

    #[test]
    fn microcode_accounting() {
        let plan = plan_of(false, axpy);
        let p = &plan.partitions[0];
        assert_eq!(p.microcode_bytes(), p.inst_count() * 8);
        assert!(plan.max_insts() >= 5);
        assert_eq!(plan.total_insts(), p.inst_count());
        assert!(p.complex_ops() >= 1); // the multiply
    }

    #[test]
    fn indirect_gather_plan_validates_with_channel_addressing() {
        let plan = plan_of(true, |b| {
            let idx = b.array_i64("idx", 8);
            let data = b.array_f64("data", 64);
            let out = b.array_f64("out", 8);
            b.for_(0, 8, 1, |b, i| {
                b.store(out, i.clone(), Expr::load(data, Expr::load(idx, i)));
            });
        });
        assert_eq!(plan.partitions.len(), 3);
        // The data partition receives its element index over a channel.
        let data_part = plan
            .partitions
            .iter()
            .find(|p| {
                p.nodes
                    .iter()
                    .any(|n| matches!(n, PNode::LoadIndirect { .. }))
            })
            .expect("indirect partition");
        assert!(data_part
            .nodes
            .iter()
            .any(|n| matches!(n, PNode::Recv { .. })));
    }
}
