//! Dataflow-graph abstraction of an offloadable innermost loop body.
//!
//! Matches the paper's Section IV-A: address computations leading to a load
//! or store are folded into *access* nodes (streams when affine, indirect
//! otherwise), the rest become *compute* nodes, and control dependencies
//! are converted to data dependencies by predication (if-conversion).
//! Loop-carried scalars become carry registers, closing reduction and
//! pointer-chase recurrences.

use crate::affine::{affine_of, stream_form, StreamForm, Sym};
use distda_ir::expr::{ArrayId, BinOp, Expr, LoopVarId, ScalarId, UnOp};
use distda_ir::program::{Loop, LoopId, Stmt};
use distda_ir::value::Value;
use std::collections::{HashMap, HashSet};

/// DFG node kinds. Operand indices live in [`DfgNode::args`]; their meaning
/// is documented per kind.
#[derive(Debug, Clone, PartialEq)]
pub enum DfgKind {
    /// Literal value.
    Const(Value),
    /// Innermost induction variable.
    IndVar,
    /// Loop-invariant parameter (outer var or live-in scalar); the index
    /// refers to [`Dfg::params`].
    Param(u16),
    /// Reads carry register [`Dfg::carries`]`[reg]` at iteration start.
    Carry(u16),
    /// Writes carry register at iteration end. `args[0]` = value.
    SetCarry(u16),
    /// Streaming load: the access unit FSM supplies one element per
    /// iteration.
    LoadStream {
        /// Accessed object.
        array: ArrayId,
        /// Stride and invariant base.
        form: StreamForm,
    },
    /// Indirect load: `args[0]` = element index.
    LoadIndirect {
        /// Accessed object.
        array: ArrayId,
    },
    /// Binary compute; `args[0..2]`.
    Bin(BinOp),
    /// Unary compute; `args[0]`.
    Un(UnOp),
    /// Predicated select; `args[0..3]` = cond, then, else.
    Select,
    /// Streaming store; `args[0]` = value.
    StoreStream {
        /// Accessed object.
        array: ArrayId,
        /// Stride and invariant base.
        form: StreamForm,
    },
    /// Indirect store; `args[0]` = element index, `args[1]` = value.
    StoreIndirect {
        /// Accessed object.
        array: ArrayId,
    },
}

impl DfgKind {
    /// Whether this node is an access (load/store).
    pub fn is_access(&self) -> bool {
        matches!(
            self,
            DfgKind::LoadStream { .. }
                | DfgKind::LoadIndirect { .. }
                | DfgKind::StoreStream { .. }
                | DfgKind::StoreIndirect { .. }
        )
    }

    /// The object an access node touches.
    pub fn array(&self) -> Option<ArrayId> {
        match self {
            DfgKind::LoadStream { array, .. }
            | DfgKind::LoadIndirect { array }
            | DfgKind::StoreStream { array, .. }
            | DfgKind::StoreIndirect { array } => Some(*array),
            _ => None,
        }
    }

    /// Whether this node may be freely replicated into any partition
    /// (costless sources: constants, induction values, parameters).
    pub fn is_replicable(&self) -> bool {
        matches!(
            self,
            DfgKind::Const(_) | DfgKind::IndVar | DfgKind::Param(_)
        )
    }

    /// Whether this node does real per-iteration work (counted in Table VI
    /// instruction counts).
    pub fn is_work(&self) -> bool {
        !self.is_replicable()
    }

    /// Whether a compute node needs a complex (mul/div/sqrt/FP) unit.
    pub fn is_complex(&self) -> bool {
        match self {
            DfgKind::Bin(op) => op.is_complex(),
            DfgKind::Un(op) => op.is_complex(),
            _ => false,
        }
    }
}

/// A DFG node.
#[derive(Debug, Clone, PartialEq)]
pub struct DfgNode {
    /// Kind and static attributes.
    pub kind: DfgKind,
    /// Operand node indices (meaning per kind).
    pub args: Vec<u32>,
    /// Predicate operand for stores/carry updates, if if-converted.
    pub pred: Option<u32>,
}

/// A complete dataflow graph for one innermost loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Dfg {
    /// The source loop.
    pub loop_id: LoopId,
    /// Innermost induction variable.
    pub inner_var: LoopVarId,
    /// Nodes in topological (creation) order.
    pub nodes: Vec<DfgNode>,
    /// Parameter table: what the host must provide via `cp_set_rf`.
    pub params: Vec<Sym>,
    /// Carry registers: loop-carried scalars (reductions, pointer chases).
    pub carries: Vec<ScalarId>,
}

/// Why a loop cannot be abstracted as a DFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// The loop contains a nested loop; only innermost loops are abstracted
    /// by the automated flow.
    NotInnermost,
}

impl std::fmt::Display for DfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfgError::NotInnermost => write!(f, "loop contains nested loops"),
        }
    }
}

impl std::error::Error for DfgError {}

impl Dfg {
    /// Iterates `(from, to)` dataflow edges (operands and predicates).
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.nodes.iter().enumerate().flat_map(|(i, n)| {
            n.args
                .iter()
                .copied()
                .chain(n.pred.iter().copied())
                .map(move |a| (a, i as u32))
        })
    }

    /// Number of work nodes (accesses + compute + carries).
    pub fn work_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_work()).count()
    }

    /// Distinct objects accessed.
    pub fn objects(&self) -> Vec<ArrayId> {
        let mut v: Vec<ArrayId> = self.nodes.iter().filter_map(|n| n.kind.array()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// (depth, width) of the DFG when levelized topologically — the "DFG
    /// dim" column of Table VI.
    pub fn dims(&self) -> (usize, usize) {
        let mut level = vec![0usize; self.nodes.len()];
        let mut width = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let l = n
                .args
                .iter()
                .chain(n.pred.iter())
                .map(|&a| level[a as usize] + 1)
                .max()
                .unwrap_or(0);
            level[i] = l;
            if self.nodes[i].kind.is_work() {
                *width.entry(l).or_insert(0usize) += 1;
            }
        }
        let depth = width.keys().max().map_or(0, |&m| m + 1);
        let max_width = width.values().max().copied().unwrap_or(0);
        (depth, max_width)
    }

    /// Sanity check: every operand precedes its user.
    pub fn is_topologically_ordered(&self) -> bool {
        self.edges().all(|(a, b)| a < b)
    }
}

struct Builder<'a> {
    inner: LoopVarId,
    assigned: &'a HashSet<ScalarId>,
    nodes: Vec<DfgNode>,
    params: Vec<Sym>,
    param_nodes: HashMap<Sym, u32>,
    carries: Vec<ScalarId>,
    carry_nodes: HashMap<u16, u32>,
    env: HashMap<ScalarId, u32>,
    indvar_node: Option<u32>,
}

impl<'a> Builder<'a> {
    fn push(&mut self, kind: DfgKind, args: Vec<u32>, pred: Option<u32>) -> u32 {
        let i = self.nodes.len() as u32;
        self.nodes.push(DfgNode { kind, args, pred });
        i
    }

    fn param(&mut self, s: Sym) -> u32 {
        if let Some(&n) = self.param_nodes.get(&s) {
            return n;
        }
        let idx = self.params.len() as u16;
        self.params.push(s);
        let n = self.push(DfgKind::Param(idx), vec![], None);
        self.param_nodes.insert(s, n);
        n
    }

    fn carry_reg(&mut self, s: ScalarId) -> u16 {
        match self.carries.iter().position(|&c| c == s) {
            Some(i) => i as u16,
            None => {
                self.carries.push(s);
                (self.carries.len() - 1) as u16
            }
        }
    }

    /// Every symbol a stream base references must be deliverable via the
    /// register file, so register each as a parameter (the Param node is a
    /// costless replicable source; the access FSM reads the rf directly).
    fn register_base_syms(&mut self, form: &StreamForm) {
        let syms: Vec<Sym> = form.base.terms.iter().map(|&(s, _)| s).collect();
        for s in syms {
            self.param(s);
        }
    }

    fn indvar(&mut self) -> u32 {
        if let Some(n) = self.indvar_node {
            return n;
        }
        let n = self.push(DfgKind::IndVar, vec![], None);
        self.indvar_node = Some(n);
        n
    }

    fn scalar_value(&mut self, s: ScalarId) -> u32 {
        if let Some(&n) = self.env.get(&s) {
            return n;
        }
        if self.assigned.contains(&s) {
            // Loop-carried: read the carry register.
            let reg = self.carry_reg(s);
            if let Some(&n) = self.carry_nodes.get(&reg) {
                return n;
            }
            let n = self.push(DfgKind::Carry(reg), vec![], None);
            self.carry_nodes.insert(reg, n);
            n
        } else {
            self.param(Sym::Scalar(s))
        }
    }

    fn expr(&mut self, e: &Expr) -> u32 {
        match e {
            Expr::Const(v) => self.push(DfgKind::Const(*v), vec![], None),
            Expr::LoopVar(v) if *v == self.inner => self.indvar(),
            Expr::LoopVar(v) => self.param(Sym::Var(*v)),
            Expr::Scalar(s) => self.scalar_value(*s),
            Expr::Load(a, idx) => match affine_of(idx, self.assigned) {
                Some(aff) => {
                    let form = stream_form(aff, self.inner);
                    self.register_base_syms(&form);
                    self.push(DfgKind::LoadStream { array: *a, form }, vec![], None)
                }
                None => {
                    let i = self.expr(idx);
                    self.push(DfgKind::LoadIndirect { array: *a }, vec![i], None)
                }
            },
            Expr::Bin(op, a, b) => {
                let na = self.expr(a);
                let nb = self.expr(b);
                self.push(DfgKind::Bin(*op), vec![na, nb], None)
            }
            Expr::Un(op, a) => {
                let na = self.expr(a);
                self.push(DfgKind::Un(*op), vec![na], None)
            }
            Expr::Select(c, a, b) => {
                let nc = self.expr(c);
                let na = self.expr(a);
                let nb = self.expr(b);
                self.push(DfgKind::Select, vec![nc, na, nb], None)
            }
        }
    }

    fn stmt(&mut self, s: &Stmt, pred: Option<u32>) -> Result<(), DfgError> {
        match s {
            Stmt::Store(a, idx, val) => {
                let v = self.expr(val);
                match affine_of(idx, self.assigned) {
                    Some(aff) => {
                        let form = stream_form(aff, self.inner);
                        self.register_base_syms(&form);
                        self.push(DfgKind::StoreStream { array: *a, form }, vec![v], pred);
                    }
                    None => {
                        let i = self.expr(idx);
                        self.push(DfgKind::StoreIndirect { array: *a }, vec![i, v], pred);
                    }
                }
                Ok(())
            }
            Stmt::SetScalar(sid, e) => {
                let v = self.expr(e);
                let v = match pred {
                    None => v,
                    Some(p) => {
                        let old = self.scalar_value(*sid);
                        self.push(DfgKind::Select, vec![p, v, old], None)
                    }
                };
                self.env.insert(*sid, v);
                Ok(())
            }
            Stmt::If(c, t, e) => {
                let nc = self.expr(c);
                let pt = match pred {
                    None => nc,
                    Some(p) => self.push(DfgKind::Bin(BinOp::And), vec![p, nc], None),
                };
                for st in t {
                    self.stmt(st, Some(pt))?;
                }
                if !e.is_empty() {
                    let not_c = self.push(DfgKind::Un(UnOp::Not), vec![nc], None);
                    let pe = match pred {
                        None => not_c,
                        Some(p) => self.push(DfgKind::Bin(BinOp::And), vec![p, not_c], None),
                    };
                    for st in e {
                        self.stmt(st, Some(pe))?;
                    }
                }
                Ok(())
            }
            Stmt::Loop(_) => Err(DfgError::NotInnermost),
        }
    }
}

fn collect_assigned(stmts: &[Stmt], out: &mut HashSet<ScalarId>) {
    for s in stmts {
        match s {
            Stmt::SetScalar(sid, _) => {
                out.insert(*sid);
            }
            Stmt::If(_, t, e) => {
                collect_assigned(t, out);
                collect_assigned(e, out);
            }
            Stmt::Loop(l) => collect_assigned(&l.body, out),
            _ => {}
        }
    }
}

/// Abstracts an innermost loop as a DFG.
///
/// # Errors
///
/// Returns [`DfgError::NotInnermost`] if the loop body contains loops.
pub fn build_dfg(l: &Loop) -> Result<Dfg, DfgError> {
    let mut assigned = HashSet::new();
    collect_assigned(&l.body, &mut assigned);
    let mut b = Builder {
        inner: l.var,
        assigned: &assigned,
        nodes: Vec::new(),
        params: Vec::new(),
        param_nodes: HashMap::new(),
        carries: Vec::new(),
        carry_nodes: HashMap::new(),
        env: HashMap::new(),
        indvar_node: None,
    };
    for s in &l.body {
        b.stmt(s, None)?;
    }
    // Close carry loops: every assigned scalar's final value updates its
    // carry register at iteration end.
    let mut order: Vec<ScalarId> = assigned.iter().copied().collect();
    order.sort();
    for s in order {
        let reg = b.carry_reg(s);
        let v = b.env.get(&s).copied().unwrap_or_else(|| {
            b.carry_nodes
                .get(&reg)
                .copied()
                .expect("assigned scalar must have env or carry node")
        });
        b.push(DfgKind::SetCarry(reg), vec![v], None);
    }
    let dfg = Dfg {
        loop_id: l.id,
        inner_var: l.var,
        nodes: b.nodes,
        params: b.params,
        carries: b.carries,
    };
    debug_assert!(dfg.is_topologically_ordered());
    Ok(dfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_ir::program::ProgramBuilder;
    use distda_ir::Stmt as IrStmt;

    /// Builds a program and returns the DFG of its (only) innermost loop.
    fn dfg_of(build: impl FnOnce(&mut ProgramBuilder)) -> Dfg {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        let p = b.build();
        // Find the innermost loop.
        let mut inner = None;
        p.visit_stmts(&mut |s| {
            if let IrStmt::Loop(l) = s {
                if !l.body.iter().any(|s| matches!(s, IrStmt::Loop(_))) {
                    inner = Some(l.clone());
                }
            }
        });
        build_dfg(&inner.expect("innermost loop")).expect("dfg")
    }

    #[test]
    fn axpy_has_two_stream_loads_one_stream_store() {
        let d = dfg_of(|b| {
            let x = b.array_f64("x", 8);
            let y = b.array_f64("y", 8);
            b.for_(0, 8, 1, |b, i| {
                let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
                b.store(y, i, v);
            });
        });
        let loads = d
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, DfgKind::LoadStream { .. }))
            .count();
        let stores = d
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, DfgKind::StoreStream { .. }))
            .count();
        assert_eq!((loads, stores), (2, 1));
        assert_eq!(d.objects().len(), 2);
        assert!(d.is_topologically_ordered());
    }

    #[test]
    fn stencil_streams_have_distinct_bases() {
        let d = dfg_of(|b| {
            let a = b.array_f64("a", 16);
            let o = b.array_f64("o", 16);
            b.for_(1, 15, 1, |b, i| {
                let v = Expr::load(a, i.clone() - Expr::c(1))
                    + Expr::load(a, i.clone())
                    + Expr::load(a, i.clone() + Expr::c(1));
                b.store(o, i, v);
            });
        });
        let bases: Vec<i64> = d
            .nodes
            .iter()
            .filter_map(|n| match &n.kind {
                DfgKind::LoadStream { form, .. } => Some(form.base.c),
                _ => None,
            })
            .collect();
        assert_eq!(bases.len(), 3);
        assert!(bases.contains(&-1) && bases.contains(&0) && bases.contains(&1));
        // All unit stride.
        for n in &d.nodes {
            if let DfgKind::LoadStream { form, .. } = &n.kind {
                assert_eq!(form.stride, 1);
            }
        }
    }

    #[test]
    fn indirect_access_consumes_stream_value() {
        let d = dfg_of(|b| {
            let idx = b.array_i64("idx", 8);
            let data = b.array_f64("data", 64);
            let out = b.array_f64("out", 8);
            b.for_(0, 8, 1, |b, i| {
                let v = Expr::load(data, Expr::load(idx, i.clone()));
                b.store(out, i, v);
            });
        });
        let ind = d
            .nodes
            .iter()
            .find(|n| matches!(n.kind, DfgKind::LoadIndirect { .. }))
            .expect("indirect load");
        let src = &d.nodes[ind.args[0] as usize];
        assert!(matches!(src.kind, DfgKind::LoadStream { .. }));
    }

    #[test]
    fn reduction_closes_through_carry() {
        let d = dfg_of(|b| {
            let x = b.array_f64("x", 8);
            let acc = b.scalar("acc", 0.0f64);
            b.for_(0, 8, 1, |b, i| {
                b.set(acc, Expr::Scalar(acc) + Expr::load(x, i));
            });
        });
        assert_eq!(d.carries.len(), 1);
        let set = d
            .nodes
            .iter()
            .find(|n| matches!(n.kind, DfgKind::SetCarry(0)))
            .expect("set carry");
        // SetCarry value is the add of Carry(0) and the load.
        let add = &d.nodes[set.args[0] as usize];
        assert!(matches!(add.kind, DfgKind::Bin(BinOp::Add)));
        assert!(add
            .args
            .iter()
            .any(|&a| matches!(d.nodes[a as usize].kind, DfgKind::Carry(0))));
    }

    #[test]
    fn if_becomes_predicated_store() {
        let d = dfg_of(|b| {
            let x = b.array_i64("x", 8);
            let y = b.array_i64("y", 8);
            b.for_(0, 8, 1, |b, i| {
                b.when(Expr::load(x, i.clone()).lt(Expr::c(3)), |b| {
                    b.store(y, i.clone(), Expr::c(1));
                });
            });
        });
        let store = d
            .nodes
            .iter()
            .find(|n| matches!(n.kind, DfgKind::StoreStream { .. }))
            .expect("store");
        assert!(store.pred.is_some(), "store must be predicated");
    }

    #[test]
    fn outer_vars_become_params() {
        let d = dfg_of(|b| {
            let a = b.array_f64("a", 64);
            b.for_(0, 8, 1, |b, i| {
                b.for_(0, 8, 1, |b, j| {
                    b.store(a, i.clone() * Expr::c(8) + j, Expr::cf(1.0));
                });
            });
        });
        // Row-major store: stride 1 wrt j, base has outer-var term; since
        // the base is handled by the access FSM, no Param node is needed,
        // but the param table must not contain the inner var.
        let store = d
            .nodes
            .iter()
            .find_map(|n| match &n.kind {
                DfgKind::StoreStream { form, .. } => Some(form.clone()),
                _ => None,
            })
            .expect("stream store");
        assert_eq!(store.stride, 1);
        assert_eq!(store.base.terms.len(), 1);
    }

    #[test]
    fn pointer_chase_is_carry_fed_indirect() {
        let d = dfg_of(|b| {
            let next = b.array_i64("next", 8);
            let p = b.scalar("p", 0i64);
            b.for_(0, 8, 1, |b, _| {
                b.set(p, Expr::load(next, Expr::Scalar(p)));
            });
        });
        let ind = d
            .nodes
            .iter()
            .find(|n| matches!(n.kind, DfgKind::LoadIndirect { .. }))
            .expect("indirect");
        assert!(matches!(
            d.nodes[ind.args[0] as usize].kind,
            DfgKind::Carry(_)
        ));
        // Table VI reports pch as a 4-instruction DFG; ours is comparably tiny.
        assert!(d.work_nodes() <= 4);
    }

    #[test]
    fn nested_loop_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let a = b.array_i64("a", 4);
        b.for_(0, 2, 1, |b, _| {
            b.for_(0, 2, 1, |b, j| {
                b.store(a, j, Expr::c(0));
            });
        });
        let p = b.build();
        let IrStmt::Loop(outer) = &p.body[0] else {
            panic!()
        };
        assert_eq!(build_dfg(outer), Err(DfgError::NotInnermost));
    }

    #[test]
    fn dims_reported() {
        let d = dfg_of(|b| {
            let x = b.array_f64("x", 8);
            let y = b.array_f64("y", 8);
            b.for_(0, 8, 1, |b, i| {
                let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
                b.store(y, i, v);
            });
        });
        let (depth, width) = d.dims();
        assert!(depth >= 3, "mul -> add -> store depth, got {depth}");
        assert!(width >= 1);
    }
}
