//! `distda-serve` — run the simulator as a service.
//!
//! ```text
//! distda-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!              [--cache N] [--cache-dir DIR|none]
//! ```
//!
//! Flags override the corresponding `DISTDA_SERVE_*` environment knobs
//! (see `distda_serve::env`). The process listens until killed.

use distda_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: distda-serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--cache N] [--cache-dir DIR|none]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServeConfig::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => {
                cfg.workers = distda_serve::env::parse_count(Some(&value("--workers")), cfg.workers)
            }
            "--queue" => {
                cfg.queue =
                    distda_serve::env::parse_count(Some(&value("--queue")), cfg.queue).max(1)
            }
            "--cache" => {
                cfg.cache_mem =
                    distda_serve::env::parse_count(Some(&value("--cache")), cfg.cache_mem)
            }
            "--cache-dir" => {
                cfg.cache_dir = distda_serve::env::parse_cache_dir(Some(&value("--cache-dir")))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    match Server::start(cfg.clone()) {
        Ok(server) => {
            println!(
                "distda-serve listening on {} (workers auto={}, queue {}, cache {} entries, dir {})",
                server.local_addr(),
                cfg.workers == 0,
                cfg.queue,
                cfg.cache_mem,
                cfg.cache_dir
                    .as_ref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| "none".to_string()),
            );
            // The accept loop runs on its own thread; park forever.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("distda-serve: bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    }
}
