//! The line-delimited JSON wire protocol.
//!
//! One JSON object per `\n`-terminated line in both directions, parsed
//! with the workspace's hand-rolled [`distda_trace::json`] (no serde; the
//! repo carries no external dependencies). Grammar:
//!
//! ```text
//! request  = ping | sweep | metrics
//! ping     = {"req":"ping"}
//! metrics  = {"req":"metrics"}
//! sweep    = {"req":"sweep",
//!             "kernels":[string...],   ; default: full 12-kernel suite
//!             "configs":[string...],   ; default: the six paper configs
//!             "scale":"tiny"|"eval",   ; default "tiny"
//!             "dedupe":bool,           ; default true
//!             "payload":bool}          ; default true
//!
//! response = pong | metrics | error | rejected
//!          | accepted cell* result* summary done   ; one sweep stream
//! ```
//!
//! `cell` events use the exact `DISTDA_PROGRESS` JSONL shape from the obs
//! crate (`{"t_ms":..,"job":..,"seq":..,"event":"cell","kernel":..,
//! "config":..,"ok":..,"host_secs":..,"ticks":..}`), so existing progress
//! consumers can tail a job stream unchanged; `ticks`/`host_secs` count
//! *new* simulation only — a cache hit reports 0 ticks. `result` lines
//! carry the canonical cache encoding of each cell (see [`crate::cache`]),
//! emitted in deterministic kernel-major submission order regardless of
//! worker completion order.
//!
//! Every line streamed after `accepted` — `cell`, `result`, `summary`,
//! `done` — carries the job id and a per-job monotonic `seq` starting at
//! 1, so interleaved streams from concurrent jobs are attributable to
//! their job and gaps or reordering are detectable ([`crate::client`]
//! rejects a stream whose `seq` is not strictly increasing). When the
//! daemon runs with `DISTDA_EXPLAIN` set, `result` lines additionally
//! carry the per-cell bottleneck verdict (`"bottleneck"` component name
//! and `"bottleneck_share"` of stall ticks) from the explain layer.
//!
//! Config labels accept either the bare kind (`"Dist-DA-F"`, matching
//! case-insensitively) or a full display label (`"Dist-DA-F@1GHz"`,
//! `"Dist-DA-IO+SW@2GHz"`), optionally extended with `:`-separated
//! topology segments (`"Dist-DA-IO:4x4:fm150:t2"` — mesh shape, bank
//! count, far-memory pool, tenant count); every resolved config passes
//! [`RunConfig::validate`] before the job is accepted.

use distda_system::{parse_label_extension, ConfigKind, RunConfig};
use distda_trace::json;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// OpenMetrics snapshot over the JSON protocol.
    Metrics,
    /// A sweep submission.
    Sweep(SweepRequest),
}

/// The `sweep` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Kernel names (empty = full suite).
    pub kernels: Vec<String>,
    /// Config labels (empty = the six paper configs).
    pub configs: Vec<String>,
    /// Input scale: `"tiny"` or `"eval"`.
    pub scale: String,
    /// Whether to consult/populate the result cache.
    pub dedupe: bool,
    /// Whether `result` lines carry the canonical payload.
    pub payload: bool,
}

fn strings(v: &json::Value, key: &str) -> Result<Vec<String>, String> {
    match v.get(key) {
        None => Ok(Vec::new()),
        Some(json::Value::Arr(items)) => items
            .iter()
            .map(|it| {
                it.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("`{key}` must be an array of strings"))
            })
            .collect(),
        Some(_) => Err(format!("`{key}` must be an array of strings")),
    }
}

fn boolean(v: &json::Value, key: &str, default: bool) -> Result<bool, String> {
    match v.get(key) {
        None => Ok(default),
        Some(json::Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("`{key}` must be a boolean")),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a message suitable for an `error` response: malformed JSON, a
/// missing/unknown `req`, or a mistyped field.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let req = v
        .get("req")
        .and_then(json::Value::as_str)
        .ok_or_else(|| "request missing string field `req`".to_string())?;
    match req {
        "ping" => Ok(Request::Ping),
        "metrics" => Ok(Request::Metrics),
        "sweep" => {
            let scale = match v.get("scale") {
                None => "tiny".to_string(),
                Some(s) => {
                    let s = s
                        .as_str()
                        .ok_or_else(|| "`scale` must be a string".to_string())?;
                    match s {
                        "tiny" | "eval" => s.to_string(),
                        other => return Err(format!("unknown scale `{other}` (tiny|eval)")),
                    }
                }
            };
            Ok(Request::Sweep(SweepRequest {
                kernels: strings(&v, "kernels")?,
                configs: strings(&v, "configs")?,
                scale,
                dedupe: boolean(&v, "dedupe", true)?,
                payload: boolean(&v, "payload", true)?,
            }))
        }
        other => Err(format!("unknown request `{other}`")),
    }
}

/// Resolves a config label to a validated [`RunConfig`]: bare kind labels
/// (`"OoO"`, `"dist-da-f"`), full display labels (`"Dist-DA-F@1GHz"`),
/// and the two Figure 14 variants (`"Dist-DA-IO+SW"`, `"Dist-DA-F+A"`).
///
/// # Errors
///
/// Returns a message for an unknown label or a config rejected by
/// [`RunConfig::validate`].
pub fn config_by_label(label: &str) -> Result<RunConfig, String> {
    let (base, topo) = parse_label_extension(label)?;
    let named = ConfigKind::ALL.into_iter().map(RunConfig::named);
    let variants = [RunConfig::dist_da_io_sw(), RunConfig::dist_da_f_alloc()];
    let cfg = named
        .chain(variants)
        .find(|c| {
            c.label().eq_ignore_ascii_case(base)
                || format!("{}{}", c.kind.label(), c.suffix).eq_ignore_ascii_case(base)
        })
        .ok_or_else(|| format!("unknown config `{base}`"))?
        .with_topology(topo);
    cfg.validate()
        .map_err(|e| format!("invalid config `{label}`: {e}"))?;
    Ok(cfg)
}

/// `{"event":"pong"}`
pub fn render_pong() -> String {
    "{\"event\":\"pong\"}".to_string()
}

/// `{"event":"error","message":...}`
pub fn render_error(message: &str) -> String {
    format!(
        "{{\"event\":\"error\",\"message\":\"{}\"}}",
        json::escape(message)
    )
}

/// `{"event":"rejected",...}` — the backpressure response.
pub fn render_rejected(queued: usize, capacity: usize, retry_after_ms: u64) -> String {
    format!(
        "{{\"event\":\"rejected\",\"reason\":\"queue full\",\"queued\":{queued},\
         \"capacity\":{capacity},\"retry_after_ms\":{retry_after_ms}}}"
    )
}

/// `{"event":"accepted",...}` — job admission.
pub fn render_accepted(job: u64, cells: usize, cached: usize, queued: usize) -> String {
    format!(
        "{{\"event\":\"accepted\",\"job\":{job},\"cells\":{cells},\
         \"cached\":{cached},\"queued\":{queued}}}"
    )
}

/// One `cell` progress event in the `DISTDA_PROGRESS` JSONL shape.
#[allow(clippy::too_many_arguments)]
pub fn render_cell(
    t_ms: u128,
    job: u64,
    seq: u64,
    kernel: &str,
    config: &str,
    ok: bool,
    host_secs: f64,
    ticks: u64,
) -> String {
    format!(
        "{{\"t_ms\":{t_ms},\"job\":{job},\"seq\":{seq},\"event\":\"cell\",\
         \"kernel\":\"{}\",\"config\":\"{}\",\
         \"ok\":{ok},\"host_secs\":{host_secs},\"ticks\":{ticks}}}",
        json::escape(kernel),
        json::escape(config),
    )
}

/// One `result` line, assembled field-by-field by [`render_result`].
#[derive(Debug, Clone, Default)]
pub struct ResultLine<'a> {
    /// Job id from the `accepted` event.
    pub job: u64,
    /// Per-job monotonic sequence number.
    pub seq: u64,
    /// Kernel display name.
    pub kernel: &'a str,
    /// Config display label.
    pub config: &'a str,
    /// The manifest config hash the cache key was derived from.
    pub config_hash: &'a str,
    /// Whether the cell was served from the cache.
    pub cached: bool,
    /// Whether the cell simulated (or was cached) successfully.
    pub ok: bool,
    /// Total simulated ticks the cell's stored run reports.
    pub ticks: u64,
    /// The failure message, when `ok` is false.
    pub error: Option<&'a str>,
    /// The canonical cache encoding, when the client asked for payloads.
    pub payload: Option<&'a str>,
    /// The explain verdict `(component, share-of-stall-ticks)`, present
    /// only when the cell ran with explain sampling on.
    pub bottleneck: Option<(&'a str, f64)>,
}

/// One `result` line: the cell's identity, provenance, verdict and
/// (optionally) its canonical payload.
pub fn render_result(r: &ResultLine) -> String {
    let mut out = format!(
        "{{\"event\":\"result\",\"job\":{},\"seq\":{},\"kernel\":\"{}\",\"config\":\"{}\",\
         \"config_hash\":\"{}\",\"cached\":{},\"ok\":{},\"ticks\":{}",
        r.job,
        r.seq,
        json::escape(r.kernel),
        json::escape(r.config),
        json::escape(r.config_hash),
        r.cached,
        r.ok,
        r.ticks,
    );
    if let Some(e) = r.error {
        out.push_str(&format!(",\"error\":\"{}\"", json::escape(e)));
    }
    if let Some((node, share)) = r.bottleneck {
        out.push_str(&format!(
            ",\"bottleneck\":\"{}\",\"bottleneck_share\":{share}",
            json::escape(node)
        ));
    }
    if let Some(p) = r.payload {
        out.push_str(&format!(",\"payload\":\"{}\"", json::escape(p)));
    }
    out.push('}');
    out
}

/// The `summary` event, mirroring the `DISTDA_PROGRESS` summary shape
/// (`ticks`/`sim_secs_sum` count new simulation only).
#[allow(clippy::too_many_arguments)]
pub fn render_summary(
    t_ms: u128,
    job: u64,
    seq: u64,
    done: usize,
    failed: usize,
    ticks: u64,
    sim_secs_sum: f64,
    elapsed_secs: f64,
) -> String {
    format!(
        "{{\"t_ms\":{t_ms},\"job\":{job},\"seq\":{seq},\"event\":\"summary\",\
         \"done\":{done},\"failed\":{failed},\
         \"ticks\":{ticks},\"sim_secs_sum\":{sim_secs_sum},\"elapsed_secs\":{elapsed_secs}}}"
    )
}

/// The final `done` event with the job's dedupe accounting.
pub fn render_done(
    job: u64,
    seq: u64,
    cells: usize,
    cache_hits: usize,
    simulated: usize,
    failed: usize,
) -> String {
    format!(
        "{{\"event\":\"done\",\"job\":{job},\"seq\":{seq},\"cells\":{cells},\
         \"cache_hits\":{cache_hits},\"simulated\":{simulated},\"failed\":{failed}}}"
    )
}

/// `{"event":"metrics","text":...}` — the OpenMetrics snapshot inline.
pub fn render_metrics(text: &str) -> String {
    format!(
        "{{\"event\":\"metrics\",\"text\":\"{}\"}}",
        json::escape(text)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ping_and_metrics() {
        assert_eq!(parse_request("{\"req\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(
            parse_request("{\"req\":\"metrics\"}").unwrap(),
            Request::Metrics
        );
        assert!(parse_request("{\"req\":\"nope\"}").is_err());
        assert!(parse_request("{}").is_err());
        assert!(parse_request("garbage").is_err());
    }

    #[test]
    fn sweep_defaults_and_fields() {
        let r = parse_request("{\"req\":\"sweep\"}").unwrap();
        let Request::Sweep(s) = r else { panic!() };
        assert!(s.kernels.is_empty() && s.configs.is_empty());
        assert_eq!(s.scale, "tiny");
        assert!(s.dedupe && s.payload);

        let r = parse_request(
            "{\"req\":\"sweep\",\"kernels\":[\"nw\"],\"configs\":[\"OoO\"],\
             \"scale\":\"eval\",\"dedupe\":false,\"payload\":false}",
        )
        .unwrap();
        let Request::Sweep(s) = r else { panic!() };
        assert_eq!(s.kernels, vec!["nw"]);
        assert_eq!(s.configs, vec!["OoO"]);
        assert_eq!(s.scale, "eval");
        assert!(!s.dedupe && !s.payload);

        assert!(parse_request("{\"req\":\"sweep\",\"scale\":\"huge\"}").is_err());
        assert!(parse_request("{\"req\":\"sweep\",\"kernels\":[1]}").is_err());
        assert!(parse_request("{\"req\":\"sweep\",\"dedupe\":\"yes\"}").is_err());
    }

    #[test]
    fn config_labels_resolve_and_validate() {
        assert_eq!(config_by_label("OoO").unwrap().kind, ConfigKind::OoO);
        assert_eq!(
            config_by_label("dist-da-f").unwrap().kind,
            ConfigKind::DistDAF
        );
        assert_eq!(
            config_by_label("Dist-DA-F@1GHz").unwrap().kind,
            ConfigKind::DistDAF
        );
        let sw = config_by_label("Dist-DA-IO+SW").unwrap();
        assert_eq!(sw.issue_width, 4);
        assert!(sw.sw_prefetch);
        let a = config_by_label("Dist-DA-F+A@1GHz").unwrap();
        assert_eq!(a.suffix, "+A");
        assert!(config_by_label("Giga-DA").is_err());
    }

    #[test]
    fn config_labels_accept_topology_extensions() {
        let wide = config_by_label("Dist-DA-IO:4x4").unwrap();
        assert_eq!(wide.topology.clusters(), 16);
        assert_eq!(wide.label(), "Dist-DA-IO@2GHz:4x4");
        let full = config_by_label("dist-da-f:8x4:fm150x4:t2").unwrap();
        assert_eq!(full.topology.clusters(), 32);
        assert_eq!(full.topology.far_memory.map(|f| f.extra_latency), Some(150));
        assert_eq!(full.topology.tenants, 2);
        assert!(config_by_label("Dist-DA-IO:0x0").is_err());
        assert!(config_by_label("Dist-DA-IO:banana").is_err());
    }

    #[test]
    fn renders_are_parseable_json() {
        use distda_trace::json;
        for line in [
            render_pong(),
            render_error("boom \"quoted\""),
            render_rejected(9, 8, 250),
            render_accepted(1, 4, 2, 2),
            render_cell(12, 1, 1, "nw", "OoO", true, 0.5, 100),
            render_result(&ResultLine {
                job: 1,
                seq: 2,
                kernel: "nw",
                config: "OoO",
                config_hash: "fnv1a:00",
                cached: true,
                ok: true,
                ticks: 100,
                payload: Some("p\nq"),
                ..ResultLine::default()
            }),
            render_result(&ResultLine {
                job: 1,
                seq: 3,
                kernel: "nw",
                config: "OoO",
                config_hash: "fnv1a:00",
                error: Some("deadlock"),
                ..ResultLine::default()
            }),
            render_result(&ResultLine {
                job: 1,
                seq: 4,
                kernel: "nw",
                config: "OoO",
                config_hash: "fnv1a:00",
                ok: true,
                ticks: 7,
                bottleneck: Some(("engine.3", 0.625)),
                ..ResultLine::default()
            }),
            render_summary(99, 1, 5, 3, 1, 1000, 0.7, 0.8),
            render_done(1, 6, 4, 2, 2, 0),
            render_metrics("# TYPE x counter\nx_total 1\n# EOF\n"),
        ] {
            let v = json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert!(v.get("event").is_some(), "{line}");
        }
    }

    #[test]
    fn streamed_lines_carry_job_and_seq() {
        use distda_trace::json;
        let lines = [
            render_cell(12, 7, 1, "nw", "OoO", true, 0.5, 100),
            render_result(&ResultLine {
                job: 7,
                seq: 2,
                kernel: "nw",
                config: "OoO",
                config_hash: "fnv1a:00",
                ok: true,
                ticks: 100,
                ..ResultLine::default()
            }),
            render_summary(99, 7, 3, 1, 0, 100, 0.7, 0.8),
            render_done(7, 4, 1, 0, 1, 0),
        ];
        for (i, line) in lines.iter().enumerate() {
            let v = json::parse(line).unwrap();
            assert_eq!(v.get("job").and_then(json::Value::as_num), Some(7.0));
            assert_eq!(
                v.get("seq").and_then(json::Value::as_num),
                Some((i + 1) as f64),
                "{line}"
            );
        }
    }

    #[test]
    fn result_payload_round_trips_through_escaping() {
        use distda_trace::json;
        let payload = "kernel nw\nconfig OoO \"x\"\nticks 5\n";
        let line = render_result(&ResultLine {
            kernel: "nw",
            config: "OoO",
            config_hash: "fnv1a:00",
            ok: true,
            ticks: 5,
            payload: Some(payload),
            bottleneck: Some(("mem", 0.5)),
            ..ResultLine::default()
        });
        let v = json::parse(&line).unwrap();
        assert_eq!(
            v.get("payload").and_then(json::Value::as_str),
            Some(payload)
        );
        assert_eq!(
            v.get("bottleneck").and_then(json::Value::as_str),
            Some("mem")
        );
        assert_eq!(
            v.get("bottleneck_share").and_then(json::Value::as_num),
            Some(0.5)
        );
    }
}
