//! `DISTDA_SERVE_*` environment knobs: typed accessors with pure,
//! testable parsers, mirroring `distda_sim::env` for the simulator knobs.
//!
//! | knob | values | default | effect |
//! |------|--------|---------|--------|
//! | `DISTDA_SERVE_ADDR` | `host:port` | `127.0.0.1:7077` | listen address |
//! | `DISTDA_SERVE_WORKERS` | integer ≥ 0 | `0` | worker threads (0 = host parallelism, capped at 8) |
//! | `DISTDA_SERVE_QUEUE` | integer ≥ 1 | `256` | bounded queue capacity (cells) |
//! | `DISTDA_SERVE_CACHE` | integer ≥ 0 | `512` | memory-LRU entries (0 = disk only) |
//! | `DISTDA_SERVE_CACHE_DIR` | path, `none` | `results/cache` | persistent layer (`none` disables) |
//! | `DISTDA_SERVE_CACHE_BYTES` | integer ≥ 0 | `67108864` | persistent-layer byte budget (0 = unbounded) |

use crate::cache::DEFAULT_CACHE_DIR;
use std::path::PathBuf;

/// Default listen address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7077";
/// Default bounded-queue capacity, in cells.
pub const DEFAULT_QUEUE: usize = 256;
/// Default memory-LRU capacity, in entries.
pub const DEFAULT_CACHE: usize = 512;
/// Default persistent-layer byte budget (64 MiB; entries are ~1-4 KiB, so
/// this holds tens of thousands of cells while bounding runaway growth).
pub const DEFAULT_CACHE_BYTES: u64 = 64 * 1024 * 1024;

fn raw(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.is_empty())
}

/// Parses a listen address: any non-empty value passes through.
pub fn parse_addr(v: Option<&str>) -> String {
    match v {
        Some(s) if !s.trim().is_empty() => s.trim().to_string(),
        _ => DEFAULT_ADDR.to_string(),
    }
}

/// Parses a non-negative integer knob, falling back to `default` on
/// anything unparseable.
pub fn parse_count(v: Option<&str>, default: usize) -> usize {
    v.and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(default)
}

/// Parses the cache directory: `none`/`off` disables persistence.
pub fn parse_cache_dir(v: Option<&str>) -> Option<PathBuf> {
    match v.map(str::trim) {
        Some("none") | Some("off") => None,
        Some(s) if !s.is_empty() => Some(PathBuf::from(s)),
        _ => Some(PathBuf::from(DEFAULT_CACHE_DIR)),
    }
}

/// `DISTDA_SERVE_ADDR`.
pub fn addr() -> String {
    parse_addr(raw("DISTDA_SERVE_ADDR").as_deref())
}

/// `DISTDA_SERVE_WORKERS` (0 = autodetect).
pub fn workers() -> usize {
    parse_count(raw("DISTDA_SERVE_WORKERS").as_deref(), 0)
}

/// `DISTDA_SERVE_QUEUE`.
pub fn queue() -> usize {
    parse_count(raw("DISTDA_SERVE_QUEUE").as_deref(), DEFAULT_QUEUE).max(1)
}

/// `DISTDA_SERVE_CACHE`.
pub fn cache() -> usize {
    parse_count(raw("DISTDA_SERVE_CACHE").as_deref(), DEFAULT_CACHE)
}

/// `DISTDA_SERVE_CACHE_DIR`.
pub fn cache_dir() -> Option<PathBuf> {
    parse_cache_dir(raw("DISTDA_SERVE_CACHE_DIR").as_deref())
}

/// Parses a byte budget: non-negative integer, 0 = unbounded.
pub fn parse_bytes(v: Option<&str>, default: u64) -> u64 {
    v.and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(default)
}

/// `DISTDA_SERVE_CACHE_BYTES` (0 = unbounded).
pub fn cache_bytes() -> u64 {
    parse_bytes(
        raw("DISTDA_SERVE_CACHE_BYTES").as_deref(),
        DEFAULT_CACHE_BYTES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_defaults_and_trims() {
        assert_eq!(parse_addr(None), DEFAULT_ADDR);
        assert_eq!(parse_addr(Some("  ")), DEFAULT_ADDR);
        assert_eq!(parse_addr(Some(" 0.0.0.0:9 ")), "0.0.0.0:9");
    }

    #[test]
    fn counts_fall_back_on_garbage() {
        assert_eq!(parse_count(None, 7), 7);
        assert_eq!(parse_count(Some("12"), 7), 12);
        assert_eq!(parse_count(Some("-3"), 7), 7);
        assert_eq!(parse_count(Some("lots"), 7), 7);
    }

    #[test]
    fn bytes_fall_back_on_garbage() {
        assert_eq!(parse_bytes(None, DEFAULT_CACHE_BYTES), DEFAULT_CACHE_BYTES);
        assert_eq!(parse_bytes(Some("1048576"), 7), 1_048_576);
        assert_eq!(parse_bytes(Some("0"), 7), 0);
        assert_eq!(parse_bytes(Some("-1"), 7), 7);
        assert_eq!(parse_bytes(Some("many"), 7), 7);
    }

    #[test]
    fn cache_dir_none_disables() {
        assert_eq!(parse_cache_dir(Some("none")), None);
        assert_eq!(parse_cache_dir(Some("off")), None);
        assert_eq!(
            parse_cache_dir(Some("/tmp/c")),
            Some(PathBuf::from("/tmp/c"))
        );
        assert_eq!(
            parse_cache_dir(None),
            Some(PathBuf::from(DEFAULT_CACHE_DIR))
        );
    }
}
