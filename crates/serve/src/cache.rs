//! The content-addressed result cache: a memory LRU over a persistent
//! layer under `results/cache/`.
//!
//! A simulated run is a pure function of its
//! [`RunConfig`](distda_system::RunConfig) and inputs (the manifests'
//! structural FNV-1a hashes prove it), so a finished
//! [`RunResult`] can be served again for any identical request. The cache
//! key combines the kernel name, the input scale and the existing
//! manifest [`config_hash`](distda_obs::manifest::config_hash) — the same
//! identity a manifest line records.
//!
//! Entries round-trip through a canonical text encoding in which every
//! `f64` is stored as its IEEE-754 bit pattern (hex), so decode(encode(r))
//! is *bit*-identical — no float-formatting fidelity risk. Each persisted
//! entry carries an FNV-1a hash of its payload in the header; the hash is
//! re-checked on every read, so a poisoned or truncated file is detected
//! and reported as a miss (the caller re-simulates and rewrites it).

use distda_energy::{EnergyBreakdown, EnergyCounters};
use distda_system::RunResult;
use distda_trace::Report;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// Default persistent cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

const MAGIC: &str = "distda-cache v1";

/// FNV-1a over raw bytes, 16 lower-case hex digits (the same rendering
/// the manifest config hashes use).
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn push_u64s(out: &mut String, key: &str, vals: &[u64]) {
    out.push_str(key);
    for v in vals {
        out.push(' ');
        out.push_str(&v.to_string());
    }
    out.push('\n');
}

fn push_f64_bits(out: &mut String, key: &str, vals: &[f64]) {
    out.push_str(key);
    for v in vals {
        out.push(' ');
        out.push_str(&format!("{:016x}", v.to_bits()));
    }
    out.push('\n');
}

/// Encodes a [`RunResult`] into the canonical cache payload. The encoding
/// is deterministic (report entries iterate in key order), so two results
/// are equal iff their encodings are byte-identical — the equality the
/// dedupe tests assert.
pub fn encode_result(r: &RunResult) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("kernel ");
    out.push_str(&r.kernel);
    out.push('\n');
    out.push_str("config ");
    out.push_str(&r.config);
    out.push('\n');
    push_u64s(&mut out, "ticks", &[r.ticks]);
    push_f64_bits(&mut out, "ns", &[r.ns]);
    let e = &r.energy;
    push_f64_bits(
        &mut out,
        "energy",
        &[e.core, e.accel, e.cache, e.noc, e.dram, e.buffers, e.mmio],
    );
    let c = &r.counters;
    push_u64s(
        &mut out,
        "counters",
        &[
            c.host_ops,
            c.io_ops,
            c.cgra_ops,
            c.l1_accesses,
            c.l2_accesses,
            c.l3_accesses,
            c.dram_accesses,
            c.noc_hop_bytes,
            c.buffer_elem_accesses,
            c.buffer_line_moves,
            c.mmio_words,
            c.flushed_lines,
        ],
    );
    push_u64s(
        &mut out,
        "totals",
        &[
            r.cache_accesses,
            r.mem_ops,
            r.total_ops,
            r.host_ops,
            r.intra_bytes,
            r.da_bytes,
            r.aa_bytes,
            r.data_moved_bytes,
        ],
    );
    push_u64s(&mut out, "noc_bytes", &r.noc_bytes);
    out.push_str(if r.validated {
        "validated true\n"
    } else {
        "validated false\n"
    });
    push_u64s(&mut out, "report", &[r.report.len() as u64]);
    for (k, v) in r.report.iter() {
        // Bits first so the key may contain spaces.
        out.push_str(&format!("r {:016x} {k}\n", v.to_bits()));
    }
    out
}

fn want<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    let line = line.ok_or_else(|| format!("cache payload truncated before `{key}`"))?;
    line.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| format!("cache payload expected `{key}`, got `{line}`"))
}

fn u64s(field: &str, n: usize) -> Result<Vec<u64>, String> {
    let vals: Result<Vec<u64>, _> = field.split(' ').map(str::parse::<u64>).collect();
    let vals = vals.map_err(|e| format!("cache payload bad integer: {e}"))?;
    if vals.len() != n {
        return Err(format!(
            "cache payload expected {n} integers, got {}",
            vals.len()
        ));
    }
    Ok(vals)
}

fn f64_bits(field: &str, n: usize) -> Result<Vec<f64>, String> {
    let vals: Result<Vec<f64>, String> = field
        .split(' ')
        .map(|t| {
            u64::from_str_radix(t, 16)
                .map(f64::from_bits)
                .map_err(|e| format!("cache payload bad f64 bits `{t}`: {e}"))
        })
        .collect();
    let vals = vals?;
    if vals.len() != n {
        return Err(format!(
            "cache payload expected {n} floats, got {}",
            vals.len()
        ));
    }
    Ok(vals)
}

/// Decodes a canonical cache payload back into a [`RunResult`].
///
/// # Errors
///
/// Returns a message naming the malformed field.
pub fn decode_result(payload: &str) -> Result<RunResult, String> {
    let mut lines = payload.lines();
    let kernel = want(lines.next(), "kernel")?.to_string();
    let config = want(lines.next(), "config")?.to_string();
    let ticks = u64s(want(lines.next(), "ticks")?, 1)?[0];
    let ns = f64_bits(want(lines.next(), "ns")?, 1)?[0];
    let e = f64_bits(want(lines.next(), "energy")?, 7)?;
    let energy = EnergyBreakdown {
        core: e[0],
        accel: e[1],
        cache: e[2],
        noc: e[3],
        dram: e[4],
        buffers: e[5],
        mmio: e[6],
    };
    let c = u64s(want(lines.next(), "counters")?, 12)?;
    let counters = EnergyCounters {
        host_ops: c[0],
        io_ops: c[1],
        cgra_ops: c[2],
        l1_accesses: c[3],
        l2_accesses: c[4],
        l3_accesses: c[5],
        dram_accesses: c[6],
        noc_hop_bytes: c[7],
        buffer_elem_accesses: c[8],
        buffer_line_moves: c[9],
        mmio_words: c[10],
        flushed_lines: c[11],
    };
    let t = u64s(want(lines.next(), "totals")?, 8)?;
    let nb = u64s(want(lines.next(), "noc_bytes")?, 5)?;
    let validated = match want(lines.next(), "validated")? {
        "true" => true,
        "false" => false,
        other => return Err(format!("cache payload bad validated flag `{other}`")),
    };
    let entries = u64s(want(lines.next(), "report")?, 1)?[0] as usize;
    let mut report = Report::new();
    for _ in 0..entries {
        let line = want(lines.next(), "r")?;
        let (bits, key) = line
            .split_once(' ')
            .ok_or_else(|| format!("cache payload bad report line `{line}`"))?;
        let v = u64::from_str_radix(bits, 16)
            .map(f64::from_bits)
            .map_err(|e| format!("cache payload bad report bits `{bits}`: {e}"))?;
        report.add(key, v);
    }
    if lines.next().is_some() {
        return Err("cache payload has trailing data".to_string());
    }
    Ok(RunResult {
        kernel,
        config,
        ticks,
        ns,
        energy,
        counters,
        cache_accesses: t[0],
        mem_ops: t[1],
        total_ops: t[2],
        host_ops: t[3],
        intra_bytes: t[4],
        da_bytes: t[5],
        aa_bytes: t[6],
        noc_bytes: [nb[0], nb[1], nb[2], nb[3], nb[4]],
        data_moved_bytes: t[7],
        validated,
        report,
    })
}

/// Renders a persisted entry: magic + payload hash header, then payload.
pub fn render_entry(payload: &str) -> String {
    format!("{MAGIC} {}\n{payload}", fnv1a_hex(payload.as_bytes()))
}

/// Splits and verifies a persisted entry, returning the payload.
///
/// # Errors
///
/// Returns a message when the magic is wrong or the payload hash does not
/// match the header (a poisoned or truncated entry).
pub fn verify_entry(contents: &str) -> Result<&str, String> {
    let (header, payload) = contents
        .split_once('\n')
        .ok_or_else(|| "cache entry has no header line".to_string())?;
    let hash = header
        .strip_prefix(MAGIC)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| format!("cache entry bad magic `{header}`"))?;
    let actual = fnv1a_hex(payload.as_bytes());
    if hash != actual {
        return Err(format!(
            "cache entry hash mismatch: header {hash}, payload {actual}"
        ));
    }
    Ok(payload)
}

fn slug(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Running totals of cache traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memory LRU.
    pub hits_mem: u64,
    /// Lookups answered from the persistent layer.
    pub hits_disk: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Persisted entries rejected by the hash re-check (poison/truncation).
    pub corrupt: u64,
    /// Persisted entries removed by disk byte-budget enforcement.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over total lookups, 0.0 when idle.
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.hits_mem + self.hits_disk;
        let total = hits + self.misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// The two-layer content-addressed cache. See the [module docs](self).
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    mem_cap: usize,
    /// Persistent-layer byte budget; 0 = unbounded.
    disk_budget: u64,
    mem: HashMap<String, String>,
    /// Keys in recency order, most recent at the back.
    lru: VecDeque<String>,
    stats: CacheStats,
}

impl ResultCache {
    /// A cache holding at most `mem_cap` in-memory entries, persisting
    /// under `dir` (`None` = memory only).
    pub fn new(mem_cap: usize, dir: Option<PathBuf>) -> Self {
        Self {
            dir,
            mem_cap,
            disk_budget: 0,
            mem: HashMap::new(),
            lru: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Bounds the persistent layer at `bytes` (0 = unbounded). When a
    /// write pushes the directory over the budget, the least recently
    /// used entries are deleted until it fits again.
    pub fn with_disk_budget(mut self, bytes: u64) -> Self {
        self.disk_budget = bytes;
        self
    }

    /// The cache key for one sweep cell: kernel, input scale and the
    /// manifest config hash.
    pub fn key(kernel: &str, scale: &str, config_hash: &str) -> String {
        format!("{kernel}/{scale}/{config_hash}")
    }

    fn path_for(dir: &Path, key: &str) -> PathBuf {
        dir.join(format!("{}.entry", slug(key)))
    }

    /// In-memory entry count.
    pub fn mem_entries(&self) -> usize {
        self.mem.len()
    }

    /// Traffic totals so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bytes currently persisted under the cache directory (0 when the
    /// persistent layer is disabled or unreadable).
    pub fn disk_bytes(&self) -> u64 {
        self.dir
            .as_deref()
            .map(|d| Self::scan_dir(d).iter().map(|(_, len, _)| len).sum())
            .unwrap_or(0)
    }

    /// Every persisted entry as (path, byte length, modified time),
    /// sorted oldest-first with the file name as a deterministic
    /// tie-break on filesystems with coarse timestamps.
    fn scan_dir(dir: &Path) -> Vec<(PathBuf, u64, std::time::SystemTime)> {
        let Ok(rd) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut entries: Vec<(PathBuf, u64, std::time::SystemTime)> = rd
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "entry"))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((e.path(), meta.len(), mtime))
            })
            .collect();
        entries.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        entries
    }

    /// Deletes least-recently-used persisted entries until the directory
    /// fits the byte budget again, never evicting `keep` (the entry the
    /// caller just wrote — a budget smaller than one entry must still
    /// hold the latest result).
    fn enforce_disk_budget(&mut self, keep: &Path) {
        if self.disk_budget == 0 {
            return;
        }
        let Some(dir) = self.dir.clone() else {
            return;
        };
        let entries = Self::scan_dir(&dir);
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        for (path, len, _) in entries {
            if total <= self.disk_budget {
                break;
            }
            if path == keep {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.stats.evictions += 1;
            }
        }
    }

    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.lru.iter().position(|k| k == key) {
            self.lru.remove(pos);
        }
        self.lru.push_back(key.to_string());
    }

    /// Looks up `key`, checking the memory LRU first, then the persistent
    /// layer (verifying the payload hash and promoting on success). A
    /// corrupt persisted entry counts as a miss — the caller re-simulates
    /// and [`ResultCache::put`] overwrites the bad file.
    pub fn get(&mut self, key: &str) -> Option<RunResult> {
        if let Some(payload) = self.mem.get(key) {
            if let Ok(r) = decode_result(payload) {
                self.stats.hits_mem += 1;
                self.touch(key);
                return Some(r);
            }
            // An undecodable in-memory payload cannot happen via put(),
            // but degrade to a miss rather than serving garbage.
            self.mem.remove(key);
        }
        if let Some(dir) = self.dir.clone() {
            let path = Self::path_for(&dir, key);
            if let Ok(contents) = std::fs::read_to_string(&path) {
                match verify_entry(&contents).and_then(|p| decode_result(p).map(|r| (p, r))) {
                    Ok((payload, r)) => {
                        self.stats.hits_disk += 1;
                        // Rewrite the entry to refresh its modified time:
                        // disk eviction is LRU over *use*, not creation.
                        if self.disk_budget > 0 {
                            let _ = std::fs::write(&path, &contents);
                        }
                        self.insert_mem(key, payload.to_string());
                        return Some(r);
                    }
                    Err(_) => {
                        self.stats.corrupt += 1;
                    }
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    fn insert_mem(&mut self, key: &str, payload: String) {
        if self.mem_cap == 0 {
            return;
        }
        if !self.mem.contains_key(key) && self.mem.len() >= self.mem_cap {
            if let Some(evict) = self.lru.pop_front() {
                self.mem.remove(&evict);
            }
        }
        self.mem.insert(key.to_string(), payload);
        self.touch(key);
    }

    /// Stores a result under `key` in both layers. Persistence is
    /// best-effort: an unwritable cache directory degrades the cache, it
    /// never fails the run.
    pub fn put(&mut self, key: &str, r: &RunResult) {
        let payload = encode_result(r);
        if let Some(dir) = self.dir.clone() {
            if std::fs::create_dir_all(&dir).is_ok() {
                let path = Self::path_for(&dir, key);
                let _ = std::fs::write(&path, render_entry(&payload));
                self.enforce_disk_budget(&path);
            }
        }
        self.insert_mem(key, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_system::{ConfigKind, RunConfig};
    use distda_workloads::{pointer_chase, Scale};

    fn tiny_result() -> RunResult {
        pointer_chase(&Scale::tiny())
            .try_simulate(&RunConfig::named(ConfigKind::OoO))
            .unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("distda-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn encode_decode_is_bit_identical() {
        let r = tiny_result();
        let payload = encode_result(&r);
        let back = decode_result(&payload).unwrap();
        // Bit-identity: re-encoding the decoded result reproduces the
        // exact payload (covers every f64 via to_bits round-trip).
        assert_eq!(encode_result(&back), payload);
        assert_eq!(back.kernel, r.kernel);
        assert_eq!(back.ticks, r.ticks);
        assert_eq!(back.report.len(), r.report.len());
        assert_eq!(back.ns.to_bits(), r.ns.to_bits());
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let payload = encode_result(&tiny_result());
        let cut = &payload[..payload.len() / 2];
        assert!(decode_result(cut).is_err());
        assert!(decode_result("not a payload").is_err());
    }

    #[test]
    fn entry_hash_detects_poisoning() {
        let payload = encode_result(&tiny_result());
        let entry = render_entry(&payload);
        assert_eq!(verify_entry(&entry).unwrap(), payload);
        // Flip one byte of the payload: the header hash no longer matches.
        let poisoned = entry.replace("validated true", "validated false");
        assert_ne!(poisoned, entry);
        assert!(verify_entry(&poisoned).is_err());
        // Truncate: either the header splits wrong or the hash mismatches.
        let truncated = &entry[..entry.len() - 10];
        assert!(verify_entry(truncated).is_err());
    }

    #[test]
    fn disk_layer_round_trips_and_survives_poison() {
        let dir = tmpdir("disk");
        // mem_cap 0: force every lookup through the persistent layer.
        let mut cache = ResultCache::new(0, Some(dir.clone()));
        let r = tiny_result();
        let key = ResultCache::key(&r.kernel, "tiny", "fnv1a:abc");
        assert!(cache.get(&key).is_none());
        cache.put(&key, &r);
        let got = cache.get(&key).expect("disk hit");
        assert_eq!(encode_result(&got), encode_result(&r));
        // Poison the file on disk: the hash re-check turns it into a miss.
        let path = dir.join(format!("{}.entry", slug(&key)));
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents = contents.replace("ticks", "tocks");
        std::fs::write(&path, contents).unwrap();
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stats().corrupt, 1);
        // Re-populating overwrites the poisoned entry.
        cache.put(&key, &r);
        assert!(cache.get(&key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_lru_evicts_oldest() {
        let mut cache = ResultCache::new(2, None);
        let r = tiny_result();
        cache.put("a", &r);
        cache.put("b", &r);
        assert!(cache.get("a").is_some()); // refresh a: b is now oldest
        cache.put("c", &r);
        assert_eq!(cache.mem_entries(), 2);
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn disk_budget_bounds_directory_and_counts_evictions() {
        let dir = tmpdir("budget");
        let r = tiny_result();
        let one_entry = render_entry(&encode_result(&r)).len() as u64;
        // Budget fits two entries but not three.
        let budget = 2 * one_entry + one_entry / 2;
        let mut cache = ResultCache::new(0, Some(dir.clone())).with_disk_budget(budget);
        cache.put("a", &r);
        cache.put("b", &r);
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.disk_bytes() <= budget);
        cache.put("c", &r);
        assert!(cache.disk_bytes() <= budget, "budget must bound the dir");
        assert_eq!(cache.stats().evictions, 1);
        // The entry just written always survives, even under pressure.
        assert!(cache.get("c").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_budget_still_holds_latest_entry() {
        let dir = tmpdir("tiny-budget");
        let r = tiny_result();
        // A budget smaller than a single entry: each put evicts all
        // older entries but keeps the one just written.
        let mut cache = ResultCache::new(0, Some(dir.clone())).with_disk_budget(1);
        cache.put("a", &r);
        cache.put("b", &r);
        assert!(cache.get("b").is_some());
        assert!(cache.get("a").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hit_ratio_counts_both_layers() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.hits_mem = 2;
        s.hits_disk = 1;
        s.misses = 1;
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }
}
