//! The daemon: TCP accept loop, per-connection protocol handling, the
//! sweep pipeline (validate → dedupe → shard → stream), and the
//! OpenMetrics endpoint.
//!
//! Strictly a control plane over the existing hot path: the daemon never
//! touches the tick loop — workers execute cells through the same
//! [`distda_bench::try_run_matrix`] the batch harness uses, and
//! everything here happens between runs, not inside them.
//!
//! The `/metrics` endpoint shares the protocol port: a connection whose
//! first line is an HTTP `GET` is answered with an HTTP/1.0 response
//! (OpenMetrics text for `/metrics`, 404 otherwise) and closed, so one
//! `curl` and one scrape config cover the daemon.

use crate::cache::{encode_result, ResultCache};
use crate::pool::{CellOutcome, CellTask, Pool};
use crate::protocol::{self, Request, SweepRequest};
use distda_obs::manifest::config_hash;
use distda_obs::Registry;
use distda_system::{RunConfig, RunResult};
use distda_trace::metrics::LogHist;
use distda_workloads::{suite, Scale, Workload};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The backpressure fallback hint handed to rejected jobs before any cell
/// has completed (no service-time history yet). Once cells have run, the
/// hint scales with queue occupancy and the observed median cell service
/// time — see `State::retry_after_ms`.
pub const RETRY_AFTER_MS: u64 = 250;

/// Upper clamp on the adaptive retry hint (one minute).
pub const RETRY_AFTER_CAP_MS: u64 = 60_000;

/// Daemon configuration. [`ServeConfig::from_env`] reads the
/// `DISTDA_SERVE_*` knobs; tests construct it directly (port 0 for an
/// ephemeral listen address, a temp cache dir).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 = ephemeral).
    pub addr: String,
    /// Worker threads (0 = host parallelism, capped at 8).
    pub workers: usize,
    /// Bounded queue capacity, in cells.
    pub queue: usize,
    /// Memory-LRU entries (0 = persistent layer only).
    pub cache_mem: usize,
    /// Persistent cache directory (`None` = memory only).
    pub cache_dir: Option<PathBuf>,
    /// Persistent-layer byte budget (0 = unbounded).
    pub cache_bytes: u64,
}

impl ServeConfig {
    /// Reads every `DISTDA_SERVE_*` knob.
    pub fn from_env() -> Self {
        Self {
            addr: crate::env::addr(),
            workers: crate::env::workers(),
            queue: crate::env::queue(),
            cache_mem: crate::env::cache(),
            cache_dir: crate::env::cache_dir(),
            cache_bytes: crate::env::cache_bytes(),
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(8)
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: crate::env::DEFAULT_ADDR.to_string(),
            workers: 0,
            queue: crate::env::DEFAULT_QUEUE,
            cache_mem: crate::env::DEFAULT_CACHE,
            cache_dir: Some(PathBuf::from(crate::cache::DEFAULT_CACHE_DIR)),
            cache_bytes: crate::env::DEFAULT_CACHE_BYTES,
        }
    }
}

struct State {
    registry: Mutex<Registry>,
    cache: Mutex<ResultCache>,
    pool: Pool,
    /// Scale name -> the suite's workloads (reference executions are
    /// shared through the workloads' `Arc`ed `OnceLock`s, so cloning one
    /// out per cell is cheap and the golden image computes once).
    suites: Mutex<HashMap<String, Vec<Workload>>>,
    jobs: AtomicU64,
    cells_submitted: AtomicU64,
    cells_deduped: AtomicU64,
    cells_completed: AtomicU64,
    cells_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    /// Log2 histogram of per-cell host simulation time, in nanoseconds —
    /// rendered at `/metrics` as `distda_serve_cell_service_ns` and the
    /// history behind the adaptive retry hint (which reads its median, so
    /// one straggler cell cannot inflate every client's backoff the way
    /// the old mean-only gauge could).
    service_ns: Mutex<LogHist>,
    /// Worker thread count, for occupancy-scaled backpressure.
    workers: usize,
}

impl State {
    /// Resolves a kernel by either its short paper abbreviation
    /// (`"pch"`) or its display name (`"pointer-chase"`, the name results
    /// and manifests carry).
    fn workload(&self, scale: &str, kernel: &str) -> Option<Workload> {
        let mut suites = self.suites.lock().unwrap();
        let ws = suites.entry(scale.to_string()).or_insert_with(|| {
            let s = if scale == "eval" {
                Scale::eval()
            } else {
                Scale::tiny()
            };
            suite(&s)
        });
        ws.iter()
            .find(|w| {
                w.name.eq_ignore_ascii_case(kernel) || w.program.name.eq_ignore_ascii_case(kernel)
            })
            .cloned()
    }

    fn kernel_names(&self, scale: &str) -> Vec<String> {
        let mut suites = self.suites.lock().unwrap();
        let ws = suites.entry(scale.to_string()).or_insert_with(|| {
            let s = if scale == "eval" {
                Scale::eval()
            } else {
                Scale::tiny()
            };
            suite(&s)
        });
        ws.iter().map(|w| w.name.clone()).collect()
    }

    /// The OpenMetrics snapshot: the ingested run registry plus the
    /// daemon's own counters and gauges, rendered fresh per scrape.
    fn metrics_text(&self) -> String {
        let mut reg = self.registry.lock().unwrap().clone();
        reg.counter_add("distda_serve_jobs", &[], self.jobs.load(Ordering::SeqCst));
        reg.counter_add(
            "distda_serve_jobs_rejected",
            &[],
            self.jobs_rejected.load(Ordering::SeqCst),
        );
        reg.counter_add(
            "distda_serve_cells_submitted",
            &[],
            self.cells_submitted.load(Ordering::SeqCst),
        );
        reg.counter_add(
            "distda_serve_cells_deduped",
            &[],
            self.cells_deduped.load(Ordering::SeqCst),
        );
        reg.counter_add(
            "distda_serve_cells_completed",
            &[],
            self.cells_completed.load(Ordering::SeqCst),
        );
        reg.counter_add(
            "distda_serve_cells_failed",
            &[],
            self.cells_failed.load(Ordering::SeqCst),
        );
        reg.gauge_set("distda_serve_queue_depth", &[], self.pool.depth() as f64);
        reg.gauge_set(
            "distda_serve_queue_capacity",
            &[],
            self.pool.capacity() as f64,
        );
        let (stats, entries, disk_bytes) = {
            let cache = self.cache.lock().unwrap();
            (cache.stats(), cache.mem_entries(), cache.disk_bytes())
        };
        reg.gauge_set("distda_serve_cache_hit_ratio", &[], stats.hit_ratio());
        reg.gauge_set("distda_serve_cache_mem_entries", &[], entries as f64);
        reg.gauge_set("distda_serve_cache_corrupt", &[], stats.corrupt as f64);
        reg.counter_add("distda_serve_cache_evictions", &[], stats.evictions);
        reg.gauge_set("distda_serve_cache_disk_bytes", &[], disk_bytes as f64);
        reg.hist_merge(
            "distda_serve_cell_service_ns",
            &[],
            &self.service_ns.lock().unwrap(),
        );
        reg.gauge_set(
            "distda_serve_retry_after_ms",
            &[],
            self.retry_after_ms() as f64,
        );
        reg.openmetrics()
    }

    /// The backpressure hint: estimated milliseconds until the queue has
    /// drained enough to admit more work — queued cells divided across
    /// the workers, times the observed *median* cell service time (the
    /// p50 bucket of the `distda_serve_cell_service_ns` histogram). Falls
    /// back to [`RETRY_AFTER_MS`] until the first cell completes; clamped
    /// to `[RETRY_AFTER_MS / 5, RETRY_AFTER_CAP_MS]` so a hiccup in
    /// either direction cannot strand clients.
    fn retry_after_ms(&self) -> u64 {
        let p50_ns = {
            let hist = self.service_ns.lock().unwrap();
            if hist.count == 0 {
                return RETRY_AFTER_MS;
            }
            hist.quantile(0.5)
        };
        let p50_ms = p50_ns as f64 / 1e6;
        let rounds = (self.pool.depth() as f64 / self.workers.max(1) as f64).max(1.0);
        let est = (rounds * p50_ms).ceil() as u64;
        est.clamp(RETRY_AFTER_MS / 5, RETRY_AFTER_CAP_MS)
    }
}

/// A running daemon. Dropping it stops the accept loop; in-flight
/// connections finish on their own.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = cfg.resolved_workers();
        let state = Arc::new(State {
            registry: Mutex::new(Registry::new()),
            cache: Mutex::new(
                ResultCache::new(cfg.cache_mem, cfg.cache_dir.clone())
                    .with_disk_budget(cfg.cache_bytes),
            ),
            pool: Pool::start(workers, cfg.queue),
            suites: Mutex::new(HashMap::new()),
            jobs: AtomicU64::new(0),
            cells_submitted: AtomicU64::new(0),
            cells_deduped: AtomicU64::new(0),
            cells_completed: AtomicU64::new(0),
            cells_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            service_ns: Mutex::new(LogHist::default()),
            workers,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = stop.clone();
            std::thread::spawn(move || accept_loop(listener, state, stop))
        };
        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_accept();
    }

    fn stop_accept(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accept();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<State>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let state = state.clone();
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &state);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(stream: TcpStream, state: &State) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client closed
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with("GET ") || trimmed.starts_with("HEAD ") {
            return serve_http(&mut writer, trimmed, state);
        }
        match protocol::parse_request(trimmed) {
            Err(e) => writeln!(writer, "{}", protocol::render_error(&e))?,
            Ok(Request::Ping) => writeln!(writer, "{}", protocol::render_pong())?,
            Ok(Request::Metrics) => writeln!(
                writer,
                "{}",
                protocol::render_metrics(&state.metrics_text())
            )?,
            Ok(Request::Sweep(req)) => handle_sweep(&mut writer, state, req)?,
        }
    }
}

fn serve_http(writer: &mut TcpStream, request_line: &str, state: &State) -> std::io::Result<()> {
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, ctype, body) = if path == "/metrics" {
        (
            "200 OK",
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            state.metrics_text(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        )
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

struct Cell {
    kernel: String,
    config_label: String,
    cfg: RunConfig,
    cfg_hash: String,
    key: String,
    workload: Workload,
}

enum CellState {
    Cached(RunResult),
    Simulated(Result<RunResult, String>),
    Pending,
}

fn handle_sweep(writer: &mut TcpStream, state: &State, req: SweepRequest) -> std::io::Result<()> {
    // Resolve configs (validated) and kernels before touching the queue:
    // a bad request is an error, never a partial job.
    let config_labels: Vec<String> = if req.configs.is_empty() {
        distda_system::ConfigKind::ALL
            .iter()
            .map(|k| k.label().to_string())
            .collect()
    } else {
        req.configs.clone()
    };
    let mut configs: Vec<RunConfig> = Vec::with_capacity(config_labels.len());
    for label in &config_labels {
        match protocol::config_by_label(label) {
            Ok(cfg) => configs.push(cfg),
            Err(e) => return writeln!(writer, "{}", protocol::render_error(&e)),
        }
    }
    let kernels: Vec<String> = if req.kernels.is_empty() {
        state.kernel_names(&req.scale)
    } else {
        req.kernels.clone()
    };
    let mut cells: Vec<Cell> = Vec::with_capacity(kernels.len() * configs.len());
    for kernel in &kernels {
        let Some(workload) = state.workload(&req.scale, kernel) else {
            return writeln!(
                writer,
                "{}",
                protocol::render_error(&format!("unknown kernel `{kernel}`"))
            );
        };
        // Events, results, and cache keys all use the display name the
        // run itself will carry, whichever alias the request used.
        let kernel = workload.program.name.clone();
        for cfg in &configs {
            let cfg_hash = config_hash(cfg);
            cells.push(Cell {
                kernel: kernel.clone(),
                config_label: cfg.label(),
                cfg: cfg.clone(),
                cfg_hash: cfg_hash.clone(),
                key: ResultCache::key(&kernel, &req.scale, &cfg_hash),
                workload: workload.clone(),
            });
        }
    }

    // Dedupe pass: identical cells within the job share one lookup slot,
    // and anything already cached is served without queueing.
    let mut states: Vec<CellState> = Vec::with_capacity(cells.len());
    if req.dedupe {
        let mut cache = state.cache.lock().unwrap();
        let mut seen_in_job: HashMap<String, usize> = HashMap::new();
        for (i, cell) in cells.iter().enumerate() {
            if let Some(&first) = seen_in_job.get(&cell.key) {
                // An identical cell earlier in this job: dedupe against
                // it whether or not it was cached (the first instance
                // will populate the cache before results render).
                let st = match &states[first] {
                    CellState::Cached(r) => CellState::Cached(r.clone()),
                    _ => CellState::Pending,
                };
                states.push(st);
                continue;
            }
            seen_in_job.insert(cell.key.clone(), i);
            match cache.get(&cell.key) {
                Some(r) => states.push(CellState::Cached(r)),
                None => states.push(CellState::Pending),
            }
        }
    } else {
        states.extend(cells.iter().map(|_| CellState::Pending));
    }

    // In-job duplicates of a pending cell simulate once; the duplicates
    // resolve from the cache after the misses land.
    let mut to_simulate: Vec<usize> = Vec::new();
    {
        let mut claimed: HashMap<&str, usize> = HashMap::new();
        for (i, st) in states.iter().enumerate() {
            if matches!(st, CellState::Pending) && req.dedupe {
                if claimed.contains_key(cells[i].key.as_str()) {
                    continue;
                }
                claimed.insert(cells[i].key.as_str(), i);
                to_simulate.push(i);
            } else if matches!(st, CellState::Pending) {
                to_simulate.push(i);
            }
        }
    }

    // Backpressure: admit the whole job or reject the whole job.
    if !state.pool.try_reserve(to_simulate.len()) {
        state.jobs_rejected.fetch_add(1, Ordering::SeqCst);
        return writeln!(
            writer,
            "{}",
            protocol::render_rejected(
                state.pool.depth(),
                state.pool.capacity(),
                state.retry_after_ms()
            )
        );
    }

    let job = state.jobs.fetch_add(1, Ordering::SeqCst) + 1;
    let cached_count = states
        .iter()
        .filter(|s| !matches!(s, CellState::Pending))
        .count();
    state
        .cells_submitted
        .fetch_add(cells.len() as u64, Ordering::SeqCst);
    state
        .cells_deduped
        .fetch_add((cells.len() - to_simulate.len()) as u64, Ordering::SeqCst);
    writeln!(
        writer,
        "{}",
        protocol::render_accepted(job, cells.len(), cached_count, to_simulate.len())
    )?;

    let t0 = Instant::now();
    // Every line after `accepted` carries the job id and a strictly
    // increasing per-job sequence number, so concurrent job streams stay
    // attributable and ordering is testable.
    let mut seq: u64 = 0;
    // Cached cells: progress events immediately, with zero *new* ticks.
    for (i, st) in states.iter().enumerate() {
        if let CellState::Cached(_) = st {
            seq += 1;
            writeln!(
                writer,
                "{}",
                protocol::render_cell(
                    t0.elapsed().as_millis(),
                    job,
                    seq,
                    &cells[i].kernel,
                    &cells[i].config_label,
                    true,
                    0.0,
                    0,
                )
            )?;
        }
    }

    // Shard the misses across the pool and stream completions as they
    // arrive (completion order is nondeterministic; result order below is
    // not).
    let (reply, outcomes) = mpsc::channel::<CellOutcome>();
    for &i in &to_simulate {
        state.pool.submit(CellTask {
            index: i,
            workload: cells[i].workload.clone(),
            cfg: cells[i].cfg.clone(),
            reply: reply.clone(),
        });
    }
    drop(reply);
    let mut new_ticks: u64 = 0;
    let mut sim_secs_sum: f64 = 0.0;
    let mut done = 0usize;
    let mut failed = 0usize;
    for outcome in outcomes.iter() {
        let i = outcome.index;
        let (ok, ticks) = match &outcome.result {
            Ok(r) => (true, r.ticks),
            Err(_) => (false, 0),
        };
        if ok {
            done += 1;
        } else {
            failed += 1;
        }
        new_ticks += ticks;
        sim_secs_sum += outcome.host_secs;
        state
            .service_ns
            .lock()
            .unwrap()
            .observe((outcome.host_secs * 1e9) as u64);
        seq += 1;
        writeln!(
            writer,
            "{}",
            protocol::render_cell(
                t0.elapsed().as_millis(),
                job,
                seq,
                &cells[i].kernel,
                &cells[i].config_label,
                ok,
                outcome.host_secs,
                ticks,
            )
        )?;
        states[i] = CellState::Simulated(outcome.result);
    }

    // Populate the cache and the registry from the fresh results.
    {
        let mut cache = req.dedupe.then(|| state.cache.lock().unwrap());
        let mut registry = state.registry.lock().unwrap();
        for (i, st) in states.iter().enumerate() {
            if let CellState::Simulated(Ok(r)) = st {
                if let Some(cache) = cache.as_mut() {
                    cache.put(&cells[i].key, r);
                }
                registry.ingest_run(r);
            }
        }
    }
    state
        .cells_completed
        .fetch_add(done as u64, Ordering::SeqCst);
    state
        .cells_failed
        .fetch_add(failed as u64, Ordering::SeqCst);

    // Results in deterministic submission order. In-job duplicates of a
    // just-simulated miss resolve from the cache here. A run that carried
    // explain sampling (daemon started with `DISTDA_EXPLAIN`) surfaces
    // its per-cell bottleneck verdict on the line.
    let ok_line = |job, seq, cell: &Cell, cached, r: &RunResult| {
        let bottleneck = distda_explain::top_bottleneck(&r.report);
        protocol::render_result(&protocol::ResultLine {
            job,
            seq,
            kernel: &cell.kernel,
            config: &cell.config_label,
            config_hash: &cell.cfg_hash,
            cached,
            ok: true,
            ticks: r.ticks,
            error: None,
            payload: req.payload.then(|| encode_result(r)).as_deref(),
            bottleneck: bottleneck.as_ref().map(|(n, s)| (n.as_str(), *s)),
        })
    };
    for (i, cell) in cells.iter().enumerate() {
        seq += 1;
        let line = match &states[i] {
            CellState::Cached(r) => ok_line(job, seq, cell, true, r),
            CellState::Simulated(Ok(r)) => ok_line(job, seq, cell, false, r),
            CellState::Simulated(Err(e)) => protocol::render_result(&protocol::ResultLine {
                job,
                seq,
                kernel: &cell.kernel,
                config: &cell.config_label,
                config_hash: &cell.cfg_hash,
                error: Some(e),
                ..protocol::ResultLine::default()
            }),
            CellState::Pending => {
                // A deduped duplicate of a miss: serve it from the cache
                // the first instance just populated.
                let fetched = state.cache.lock().unwrap().get(&cell.key);
                match fetched {
                    Some(r) => ok_line(job, seq, cell, true, &r),
                    None => protocol::render_result(&protocol::ResultLine {
                        job,
                        seq,
                        kernel: &cell.kernel,
                        config: &cell.config_label,
                        config_hash: &cell.cfg_hash,
                        cached: true,
                        error: Some("deduped against a cell that failed"),
                        ..protocol::ResultLine::default()
                    }),
                }
            }
        };
        writeln!(writer, "{line}")?;
    }

    seq += 1;
    writeln!(
        writer,
        "{}",
        protocol::render_summary(
            t0.elapsed().as_millis(),
            job,
            seq,
            done,
            failed,
            new_ticks,
            sim_secs_sum,
            t0.elapsed().as_secs_f64(),
        )
    )?;
    seq += 1;
    writeln!(
        writer,
        "{}",
        protocol::render_done(
            job,
            seq,
            cells.len(),
            cells.len() - to_simulate.len(),
            to_simulate.len(),
            failed,
        )
    )
}
