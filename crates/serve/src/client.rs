//! A small blocking client for tests, CI smoke jobs, and scripting.
//!
//! Speaks the line-delimited JSON protocol over one TCP connection and
//! collects a sweep's streamed events into a [`Transcript`]. The
//! `/metrics` endpoint is scraped over a separate plain-HTTP connection
//! ([`fetch_metrics`]), exactly as a real scraper would.

use distda_trace::json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// One `result` line, decoded.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Kernel name.
    pub kernel: String,
    /// Config display label.
    pub config: String,
    /// The manifest config hash the cache key was derived from.
    pub config_hash: String,
    /// Whether the cell was served from the cache.
    pub cached: bool,
    /// Whether the cell simulated (or was cached) successfully.
    pub ok: bool,
    /// The run's total simulated ticks (cached cells report their stored
    /// tick count here; the `cell` *event* reports 0 new ticks for them).
    pub ticks: u64,
    /// The canonical cache encoding, when `payload` was requested.
    pub payload: Option<String>,
    /// The failure message, when `ok` is false.
    pub error: Option<String>,
    /// The explain verdict `(component, share-of-stall-ticks)`, when the
    /// daemon ran the cell with explain sampling on.
    pub bottleneck: Option<(String, f64)>,
}

/// Everything a sweep streamed back, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct Transcript {
    /// Job id from the `accepted` event.
    pub job: u64,
    /// Total cells in the job.
    pub cells: usize,
    /// Cells served from the cache at admission.
    pub cached: usize,
    /// Cells queued for simulation.
    pub queued: usize,
    /// Raw `cell` progress events (JSONL lines).
    pub cell_events: Vec<String>,
    /// Decoded `result` lines, in deterministic submission order.
    pub results: Vec<CellResult>,
    /// New simulated ticks from the `summary` event.
    pub summary_ticks: u64,
    /// `done` from the `summary` event.
    pub summary_done: u64,
    /// `failed` from the `summary` event.
    pub summary_failed: u64,
    /// `cache_hits` from the `done` event.
    pub done_cache_hits: u64,
    /// `simulated` from the `done` event.
    pub done_simulated: u64,
    /// Highest `seq` the stream carried; the client has verified every
    /// streamed line arrived with a strictly increasing sequence number
    /// and the job id from `accepted`, so this equals the line count.
    pub last_seq: u64,
}

/// The terminal outcome of a sweep submission.
#[derive(Debug, Clone)]
pub enum SweepReply {
    /// The job ran; here is its full transcript.
    Done(Transcript),
    /// The queue could not take the job; retry after the hinted delay.
    Rejected {
        /// Server-suggested retry delay.
        retry_after_ms: u64,
    },
}

/// A blocking protocol client over one connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn num(v: &json::Value, key: &str) -> u64 {
    v.get(key).and_then(json::Value::as_num).unwrap_or(0.0) as u64
}

fn flag(v: &json::Value, key: &str) -> bool {
    matches!(v.get(key), Some(json::Value::Bool(true)))
}

fn text(v: &json::Value, key: &str) -> String {
    v.get(key)
        .and_then(json::Value::as_str)
        .unwrap_or_default()
        .to_string()
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))
    }

    fn recv(&mut self) -> Result<(String, json::Value), String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection".to_string()),
            Ok(_) => {
                let raw = line.trim().to_string();
                let v = json::parse(&raw).map_err(|e| format!("bad server JSON: {e}"))?;
                Ok((raw, v))
            }
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Returns a message when the server is unreachable or answers with
    /// anything but `pong`.
    pub fn ping(&mut self) -> Result<(), String> {
        self.send("{\"req\":\"ping\"}")?;
        let (_, v) = self.recv()?;
        match v.get("event").and_then(json::Value::as_str) {
            Some("pong") => Ok(()),
            _ => Err("expected pong".to_string()),
        }
    }

    /// Fetches the OpenMetrics snapshot over the JSON protocol.
    ///
    /// # Errors
    ///
    /// Returns a message on transport or protocol failure.
    pub fn metrics(&mut self) -> Result<String, String> {
        self.send("{\"req\":\"metrics\"}")?;
        let (_, v) = self.recv()?;
        match v.get("event").and_then(json::Value::as_str) {
            Some("metrics") => Ok(text(&v, "text")),
            Some("error") => Err(text(&v, "message")),
            _ => Err("expected metrics".to_string()),
        }
    }

    /// Submits a sweep and drains its stream.
    ///
    /// Empty `kernels`/`configs` select the server-side defaults (full
    /// suite / the six paper configs).
    ///
    /// # Errors
    ///
    /// Returns the server's `error` message, or a transport failure.
    pub fn sweep(
        &mut self,
        kernels: &[&str],
        configs: &[&str],
        scale: &str,
        dedupe: bool,
        payload: bool,
    ) -> Result<SweepReply, String> {
        let quote = |items: &[&str]| {
            items
                .iter()
                .map(|s| format!("\"{}\"", json::escape(s)))
                .collect::<Vec<_>>()
                .join(",")
        };
        self.send(&format!(
            "{{\"req\":\"sweep\",\"kernels\":[{}],\"configs\":[{}],\
             \"scale\":\"{}\",\"dedupe\":{dedupe},\"payload\":{payload}}}",
            quote(kernels),
            quote(configs),
            json::escape(scale),
        ))?;
        let mut t = Transcript::default();
        // Every line after `accepted` must carry the accepted job id and
        // a strictly increasing seq; a violation means the stream is
        // interleaved with another job's or the server dropped a line.
        let check_order = |t: &mut Transcript, v: &json::Value| -> Result<(), String> {
            let (job, seq) = (num(v, "job"), num(v, "seq"));
            if job != t.job {
                return Err(format!("line for job {job} inside job {}'s stream", t.job));
            }
            if seq <= t.last_seq {
                return Err(format!(
                    "seq {seq} after seq {} (not increasing)",
                    t.last_seq
                ));
            }
            t.last_seq = seq;
            Ok(())
        };
        loop {
            let (raw, v) = self.recv()?;
            match v.get("event").and_then(json::Value::as_str) {
                Some("error") => return Err(text(&v, "message")),
                Some("rejected") => {
                    return Ok(SweepReply::Rejected {
                        retry_after_ms: num(&v, "retry_after_ms"),
                    })
                }
                Some("accepted") => {
                    t.job = num(&v, "job");
                    t.cells = num(&v, "cells") as usize;
                    t.cached = num(&v, "cached") as usize;
                    t.queued = num(&v, "queued") as usize;
                }
                Some("cell") => {
                    check_order(&mut t, &v)?;
                    t.cell_events.push(raw);
                }
                Some("result") => {
                    check_order(&mut t, &v)?;
                    t.results.push(CellResult {
                        kernel: text(&v, "kernel"),
                        config: text(&v, "config"),
                        config_hash: text(&v, "config_hash"),
                        cached: flag(&v, "cached"),
                        ok: flag(&v, "ok"),
                        ticks: num(&v, "ticks"),
                        payload: v
                            .get("payload")
                            .and_then(json::Value::as_str)
                            .map(str::to_string),
                        error: v
                            .get("error")
                            .and_then(json::Value::as_str)
                            .map(str::to_string),
                        bottleneck: v.get("bottleneck").and_then(json::Value::as_str).map(|n| {
                            (
                                n.to_string(),
                                v.get("bottleneck_share")
                                    .and_then(json::Value::as_num)
                                    .unwrap_or(0.0),
                            )
                        }),
                    });
                }
                Some("summary") => {
                    check_order(&mut t, &v)?;
                    t.summary_ticks = num(&v, "ticks");
                    t.summary_done = num(&v, "done");
                    t.summary_failed = num(&v, "failed");
                }
                Some("done") => {
                    check_order(&mut t, &v)?;
                    t.done_cache_hits = num(&v, "cache_hits");
                    t.done_simulated = num(&v, "simulated");
                    return Ok(SweepReply::Done(t));
                }
                other => return Err(format!("unexpected event {other:?}")),
            }
        }
    }
}

/// Scrapes `GET /metrics` over a fresh plain-HTTP connection and returns
/// the body.
///
/// # Errors
///
/// Returns a message on transport failure or a non-200 status line.
pub fn fetch_metrics(addr: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("recv: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed HTTP response".to_string())?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains("200") {
        return Err(format!("unexpected status: {status}"));
    }
    Ok(body.to_string())
}
