//! The fixed worker pool with a bounded queue.
//!
//! Cache-miss cells are sharded across a fixed set of worker threads over
//! one shared channel. The queue is bounded by an explicit reservation
//! counter rather than a bounded channel: a sweep request reserves slots
//! for *all* of its misses atomically before submitting any, so a job is
//! either admitted whole or rejected whole with a `retry_after` hint —
//! there are no half-queued jobs to strand a client on.
//!
//! Each worker executes one cell at a time through the same
//! [`distda_bench::try_run_matrix`] path the batch harness uses (a 1x1
//! matrix), so served results are produced by exactly the code path the
//! figures are, and drains the harness's global timing buffer afterwards
//! so a long-running daemon does not accumulate it without bound.

use distda_bench::{take_timings, try_run_matrix};
use distda_system::RunConfig;
use distda_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One cache-miss cell to simulate.
pub struct CellTask {
    /// Caller-chosen index, echoed back in the outcome.
    pub index: usize,
    /// The workload to run (cheap clone: programs and reference images
    /// are behind `Arc`s).
    pub workload: Workload,
    /// The validated configuration.
    pub cfg: RunConfig,
    /// Where the worker sends the outcome.
    pub reply: Sender<CellOutcome>,
}

/// One finished cell.
pub struct CellOutcome {
    /// The submitting caller's index.
    pub index: usize,
    /// The result, or a rendered failure (deadlock, invariant violation,
    /// golden-model mismatch).
    pub result: Result<distda_system::RunResult, String>,
    /// Host seconds the cell took to simulate.
    pub host_secs: f64,
}

/// The pool. See the [module docs](self).
pub struct Pool {
    tx: Option<Sender<CellTask>>,
    depth: Arc<AtomicUsize>,
    capacity: usize,
    workers: Vec<JoinHandle<()>>,
}

fn worker_loop(rx: Arc<Mutex<Receiver<CellTask>>>, depth: Arc<AtomicUsize>) {
    loop {
        let task = match rx.lock().unwrap().recv() {
            Ok(t) => t,
            Err(_) => return, // pool dropped
        };
        let t0 = Instant::now();
        let (sweep, failures) = try_run_matrix(
            std::slice::from_ref(&task.workload),
            std::slice::from_ref(&task.cfg),
        );
        // Keep the harness's global timing buffer from growing without
        // bound in a long-running daemon.
        drop(take_timings());
        let result = match sweep.results.into_values().next() {
            Some(r) => Ok(r),
            None => Err(failures
                .first()
                .map(|f| f.error.clone())
                .unwrap_or_else(|| "cell produced no result".to_string())),
        };
        depth.fetch_sub(1, Ordering::SeqCst);
        let _ = task.reply.send(CellOutcome {
            index: task.index,
            result,
            host_secs: t0.elapsed().as_secs_f64(),
        });
    }
}

impl Pool {
    /// Starts `workers` threads behind a queue bounded at `capacity`
    /// cells.
    pub fn start(workers: usize, capacity: usize) -> Self {
        let (tx, rx) = mpsc::channel::<CellTask>();
        let rx = Arc::new(Mutex::new(rx));
        let depth = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let depth = depth.clone();
                std::thread::spawn(move || worker_loop(rx, depth))
            })
            .collect();
        Self {
            tx: Some(tx),
            depth,
            capacity: capacity.max(1),
            workers: handles,
        }
    }

    /// Cells currently queued or executing.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// The configured queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Atomically reserves `n` queue slots. Returns `false` (reserving
    /// nothing) when the queue cannot take all `n` — the caller rejects
    /// the whole job with a `retry_after` hint.
    pub fn try_reserve(&self, n: usize) -> bool {
        let mut cur = self.depth.load(Ordering::SeqCst);
        loop {
            if cur + n > self.capacity {
                return false;
            }
            match self
                .depth
                .compare_exchange(cur, cur + n, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Submits one cell against a reservation made by
    /// [`Pool::try_reserve`].
    pub fn submit(&self, task: CellTask) {
        self.tx
            .as_ref()
            .expect("pool is running")
            .send(task)
            .expect("workers alive while pool exists");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Close the channel so idle workers observe a disconnect.
        self.tx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_system::{ConfigKind, RunConfig};
    use distda_workloads::{nw, pointer_chase, Scale};

    #[test]
    fn reservation_bounds_the_queue() {
        let pool = Pool::start(1, 4);
        assert!(pool.try_reserve(3));
        assert!(!pool.try_reserve(2), "3 + 2 > 4 must be rejected whole");
        assert!(pool.try_reserve(1));
        assert_eq!(pool.depth(), 4);
        // Drain the phantom reservations so Drop joins cleanly.
        pool.depth.store(0, Ordering::SeqCst);
    }

    #[test]
    fn workers_simulate_and_reply() {
        let pool = Pool::start(2, 8);
        let scale = Scale::tiny();
        let cells = [
            (pointer_chase(&scale), RunConfig::named(ConfigKind::OoO)),
            (nw(&scale), RunConfig::named(ConfigKind::DistDAF)),
        ];
        let (reply, outcomes) = mpsc::channel();
        assert!(pool.try_reserve(cells.len()));
        for (i, (w, cfg)) in cells.iter().enumerate() {
            pool.submit(CellTask {
                index: i,
                workload: w.clone(),
                cfg: cfg.clone(),
                reply: reply.clone(),
            });
        }
        drop(reply);
        let mut got: Vec<CellOutcome> = outcomes.iter().collect();
        assert_eq!(got.len(), 2);
        got.sort_by_key(|o| o.index);
        for (o, (w, _)) in got.iter().zip(&cells) {
            let r = o.result.as_ref().expect("cell simulates");
            assert_eq!(r.kernel, w.program.name);
            assert!(r.validated);
            assert!(r.ticks > 0);
        }
        assert_eq!(pool.depth(), 0);
    }
}
