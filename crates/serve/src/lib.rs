//! distda-serve: the simulator as a long-running service.
//!
//! A daemon that accepts sweep requests over a line-delimited JSON
//! protocol on a TCP socket, dedupes identical cells through a
//! content-addressed result cache keyed by the obs manifest config hash,
//! shards cache misses across a fixed worker pool behind a bounded queue
//! (whole-job admission; reject-with-`retry_after` backpressure), streams
//! progress in the `DISTDA_PROGRESS` JSONL shape, and exposes the obs
//! [`distda_obs::Registry`] as an OpenMetrics `/metrics` endpoint on the
//! same port.
//!
//! The simulator is deterministic — a run is a pure function of its
//! configuration — so caching by content address is sound: a second
//! identical sweep returns byte-identical results with zero new simulated
//! ticks. See `DESIGN.md` §13 for the protocol grammar, the cache-key
//! derivation, and the backpressure policy.
//!
//! Module map:
//!
//! * [`protocol`] — wire grammar, request parsing, response rendering.
//! * [`cache`] — canonical result encoding and the two-layer
//!   (memory LRU + persistent) content-addressed cache.
//! * [`pool`] — the fixed worker pool and its reservation-based bounded
//!   queue.
//! * [`server`] — the daemon: accept loop, sweep pipeline, `/metrics`.
//! * [`client`] — a blocking client for tests, CI, and scripting.
//! * [`env`](mod@env) — the `DISTDA_SERVE_*` knobs.

pub mod cache;
pub mod client;
pub mod env;
pub mod pool;
pub mod protocol;
pub mod server;

pub use cache::{decode_result, encode_result, CacheStats, ResultCache};
pub use client::{fetch_metrics, CellResult, Client, SweepReply, Transcript};
pub use server::{ServeConfig, Server};
