//! End-to-end service tests: a real daemon on an ephemeral port, a real
//! client over TCP.

use distda_serve::{fetch_metrics, Client, ServeConfig, Server, SweepReply, Transcript};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("distda-serve-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(tag: &str, queue: usize) -> (Server, String, PathBuf) {
    let dir = temp_dir(tag);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue,
        cache_mem: 64,
        cache_dir: Some(dir.clone()),
        cache_bytes: 0,
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (server, addr, dir)
}

fn sweep(addr: &str, dedupe: bool) -> Transcript {
    let mut client = Client::connect(addr).expect("connect");
    match client
        .sweep(&["pch", "nw"], &["OoO", "Dist-DA-F"], "tiny", dedupe, true)
        .expect("sweep")
    {
        SweepReply::Done(t) => t,
        SweepReply::Rejected { .. } => panic!("unexpected rejection"),
    }
}

fn payloads(t: &Transcript) -> Vec<(String, String, String)> {
    t.results
        .iter()
        .map(|r| {
            (
                r.kernel.clone(),
                r.config.clone(),
                r.payload.clone().expect("payload requested"),
            )
        })
        .collect()
}

#[test]
fn second_identical_sweep_is_all_cache_hits() {
    let (server, addr, dir) = start("hits", 64);

    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("pong");

    let first = sweep(&addr, true);
    assert_eq!(first.cells, 4);
    assert_eq!(first.cached, 0);
    assert_eq!(first.queued, 4);
    assert!(first.results.iter().all(|r| r.ok && !r.cached));
    assert!(first.summary_ticks > 0, "first sweep simulates");

    let second = sweep(&addr, true);
    assert_eq!(second.cells, 4);
    assert_eq!(second.cached, 4, "everything served from cache");
    assert_eq!(second.queued, 0);
    assert_eq!(second.summary_ticks, 0, "zero new simulated ticks");
    assert!(second.results.iter().all(|r| r.ok && r.cached));
    assert_eq!(payloads(&first), payloads(&second), "byte-identical");

    // Cached cells still report their stored tick counts on result lines.
    for (f, s) in first.results.iter().zip(&second.results) {
        assert_eq!(f.ticks, s.ticks);
        assert!(s.ticks > 0);
    }

    // The client verified every streamed line carried this job's id and
    // a strictly increasing seq; both sweeps streamed 4 cell events +
    // 4 results + summary + done = 10 lines.
    assert_eq!(first.last_seq, 10);
    assert_eq!(second.last_seq, 10);
    assert!(second.job > first.job, "job ids are monotonic");

    // The HTTP endpoint exposes the daemon counters; the job accounting
    // must balance: completed + deduped == submitted.
    let metrics = fetch_metrics(&addr).expect("scrape /metrics");
    assert!(metrics.contains("# EOF"));
    assert!(metrics.contains("distda_serve_cells_submitted_total 8"));
    assert!(metrics.contains("distda_serve_cells_completed_total 4"));
    assert!(metrics.contains("distda_serve_cells_deduped_total 4"));
    assert!(metrics.contains("distda_serve_cache_hit_ratio"));
    // Per-cell service time is a log2 histogram now, one observation per
    // simulated cell, and the retry hint derives from its median.
    assert!(metrics.contains("# TYPE distda_serve_cell_service_ns histogram"));
    assert!(metrics.contains("distda_serve_cell_service_ns_count 4"));
    assert!(metrics.contains("distda_serve_retry_after_ms"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn dedupe_off_and_on_return_byte_identical_results() {
    let (server, addr, dir) = start("dedupe", 64);

    // dedupe=false bypasses the cache in both directions: every sweep
    // simulates fresh. Determinism makes them byte-identical anyway —
    // and identical to what the cache later serves.
    let off1 = sweep(&addr, false);
    let off2 = sweep(&addr, false);
    assert_eq!(off1.queued, 4);
    assert_eq!(off2.queued, 4, "dedupe=false never consults the cache");
    assert_eq!(payloads(&off1), payloads(&off2));

    let on1 = sweep(&addr, true);
    assert_eq!(on1.cached, 0, "dedupe=false must not have populated");
    let on2 = sweep(&addr, true);
    assert_eq!(on2.cached, 4);
    assert_eq!(payloads(&off1), payloads(&on1));
    assert_eq!(payloads(&on1), payloads(&on2));

    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn poisoned_cache_entries_are_transparently_resimulated() {
    let (server, addr, dir) = start("poison", 64);
    let first = sweep(&addr, true);
    server.shutdown();

    // Corrupt every persisted entry: truncate one byte off the end and
    // flip a digit, so the recorded content hash no longer matches.
    let mut poisoned = 0;
    for entry in std::fs::read_dir(&dir).expect("cache dir exists") {
        let path = entry.expect("dir entry").path();
        let text = std::fs::read_to_string(&path).expect("read entry");
        let truncated = &text[..text.len() - 1];
        std::fs::write(&path, format!("{truncated}X")).expect("poison entry");
        poisoned += 1;
    }
    assert_eq!(poisoned, 4, "one persisted entry per cell");

    // A fresh daemon on the same directory (empty memory LRU) must detect
    // the corruption on read, treat it as a miss, and re-simulate.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue: 64,
        cache_mem: 64,
        cache_dir: Some(dir.clone()),
        cache_bytes: 0,
    })
    .expect("restart");
    let addr = server.local_addr().to_string();
    let again = sweep(&addr, true);
    assert_eq!(again.cached, 0, "poisoned entries must not be served");
    assert_eq!(again.queued, 4);
    assert!(again.results.iter().all(|r| r.ok && !r.cached));
    assert_eq!(payloads(&first), payloads(&again), "re-simulation matches");

    // The rewritten entries serve the next sweep.
    let third = sweep(&addr, true);
    assert_eq!(third.cached, 4);
    assert_eq!(payloads(&first), payloads(&third));

    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn overfull_job_is_rejected_whole_with_retry_hint() {
    let (server, addr, dir) = start("reject", 1);
    // Four cells against a one-cell queue: the job must be rejected
    // atomically, not half-admitted.
    let mut client = Client::connect(&addr).expect("connect");
    match client
        .sweep(&["pch", "nw"], &["OoO", "Dist-DA-F"], "tiny", false, false)
        .expect("sweep")
    {
        SweepReply::Rejected { retry_after_ms } => assert!(retry_after_ms > 0),
        SweepReply::Done(_) => panic!("4 cells cannot fit a queue of 1"),
    }
    // A job that fits still goes through afterwards.
    match client
        .sweep(&["pch"], &["OoO"], "tiny", false, false)
        .expect("sweep")
    {
        SweepReply::Done(t) => {
            assert_eq!(t.cells, 1);
            assert!(t.results[0].ok);
        }
        SweepReply::Rejected { .. } => panic!("1 cell fits a queue of 1"),
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn in_job_duplicates_dedupe_against_each_other() {
    let (server, addr, dir) = start("injob", 64);
    let mut client = Client::connect(&addr).expect("connect");
    // The same cell requested twice in one job (short name and display
    // name aliases) simulates once; the duplicate resolves from the cache
    // the first instance populates.
    let t = match client
        .sweep(&["pch", "pointer-chase"], &["OoO"], "tiny", true, true)
        .expect("sweep")
    {
        SweepReply::Done(t) => t,
        SweepReply::Rejected { .. } => panic!("unexpected rejection"),
    };
    assert_eq!(t.cells, 2);
    assert_eq!(t.queued, 1, "aliases are one cell as far as the cache goes");
    assert!(t.results.iter().all(|r| r.ok));
    assert_eq!(t.results[0].kernel, "pointer-chase");
    assert_eq!(t.results[1].kernel, "pointer-chase");
    assert_eq!(t.results[0].payload, t.results[1].payload);
    assert_eq!(t.results[0].config_hash, t.results[1].config_hash);

    // Bad requests error without being admitted.
    let err = client
        .sweep(&["no-such-kernel"], &["OoO"], "tiny", true, false)
        .expect_err("unknown kernel");
    assert!(err.contains("no-such-kernel"));
    let err = client
        .sweep(&["pch"], &["Giga-DA"], "tiny", true, false)
        .expect_err("unknown config");
    assert!(err.contains("Giga-DA"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}
