//! # distda-check
//!
//! The invariant sanitizer: a checker layer that components of the
//! simulated machine consult at their boundaries to assert conservation
//! laws — flits injected equal flits delivered plus in flight, channel
//! credits never exceed capacity, MSHRs drain empty, cache occupancy stays
//! within geometry, timestamps never run backwards. Violations are
//! *recorded*, not panicked on: the owning run loop surfaces them through
//! its typed error so a broken invariant reports the component, the tick
//! and a diagnostic instead of aborting a whole sweep.
//!
//! A disabled [`Sanitizer`] (the default in release builds) is a `None`
//! handle: every check short-circuits on one branch, so the hot paths pay
//! nothing. The `DISTDA_SANITIZE` environment knob (parsed by
//! `distda_sim::env`, which sits above this crate) forces it on (`1`) or
//! off (`0`); when unset it follows `cfg!(debug_assertions)` so every
//! debug test run is sanitized for free.
//!
//! ```
//! use distda_check::Sanitizer;
//! let san = Sanitizer::enabled();
//! san.check(false, "noc", "flit-conservation", 42, || "lost a flit".into());
//! assert_eq!(san.count(), 1);
//! assert!(san.render().contains("flit-conservation"));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Base-clock tick count (6 GHz base tick in the Dist-DA machine).
///
/// Kept as a local alias so this crate sits below `distda-sim` in the
/// dependency order; `distda_sim::Tick` is the same `u64`.
pub type Tick = u64;

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Component that detected it (`"noc"`, `"mem"`, `"machine.chan"`, ...).
    pub component: String,
    /// Short invariant name (`"flit-conservation"`, `"mshr-drain"`, ...).
    pub invariant: &'static str,
    /// Base tick at which it was detected.
    pub tick: Tick,
    /// Human-readable diagnostic.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} at tick {}: {}",
            self.component, self.invariant, self.tick, self.detail
        )
    }
}

#[derive(Debug, Default)]
struct Inner {
    count: AtomicUsize,
    violations: Mutex<Vec<Violation>>,
}

/// Violations kept verbatim; later ones only bump the count.
const KEEP: usize = 64;

/// A cloneable handle to a shared violation log. Disabled handles make
/// every check a no-op; see the crate docs for the gating policy.
#[derive(Debug, Clone, Default)]
pub struct Sanitizer {
    inner: Option<Arc<Inner>>,
}

impl Sanitizer {
    /// A disabled sanitizer: every check is a cheap no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled sanitizer with an empty violation log.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// Whether checks are recorded.
    pub fn on(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of violations recorded so far (0 when disabled). Cheap
    /// enough to poll every run-loop iteration.
    pub fn count(&self) -> usize {
        match &self.inner {
            Some(i) => i.count.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Records a violation unconditionally (when enabled).
    pub fn flag(&self, component: &str, invariant: &'static str, tick: Tick, detail: String) {
        let Some(i) = &self.inner else { return };
        let n = i.count.fetch_add(1, Ordering::Relaxed);
        if n < KEEP {
            i.violations.lock().unwrap().push(Violation {
                component: component.to_string(),
                invariant,
                tick,
                detail,
            });
        }
    }

    /// Records a violation if `cond` is false. The diagnostic closure only
    /// runs on failure, so callers may format freely.
    pub fn check(
        &self,
        cond: bool,
        component: &str,
        invariant: &'static str,
        tick: Tick,
        detail: impl FnOnce() -> String,
    ) {
        if self.inner.is_some() && !cond {
            self.flag(component, invariant, tick, detail());
        }
    }

    /// Checked timestamp subtraction: flags an inversion (`now < earlier`)
    /// and returns the same saturating value the unchecked site computed,
    /// so recorded statistics stay bit-identical with the sanitizer on or
    /// off.
    pub fn checked_elapsed(
        &self,
        component: &str,
        invariant: &'static str,
        now: Tick,
        earlier: Tick,
    ) -> Tick {
        if self.inner.is_some() && now < earlier {
            self.flag(
                component,
                invariant,
                now,
                format!("timestamp inversion: now {now} < earlier {earlier}"),
            );
        }
        now.saturating_sub(earlier)
    }

    /// Drains the recorded violations (empty when disabled).
    pub fn take(&self) -> Vec<Violation> {
        match &self.inner {
            Some(i) => std::mem::take(&mut *i.violations.lock().unwrap()),
            None => Vec::new(),
        }
    }

    /// Renders every recorded violation, one per line, noting any that
    /// were dropped past the retention cap.
    pub fn render(&self) -> String {
        let Some(i) = &self.inner else {
            return String::new();
        };
        let total = i.count.load(Ordering::Relaxed);
        let kept = i.violations.lock().unwrap();
        let mut out = kept
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        if total > kept.len() {
            out.push_str(&format!("\n(+{} more)", total - kept.len()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let s = Sanitizer::disabled();
        s.flag("x", "inv", 0, "boom".into());
        s.check(false, "x", "inv", 0, || "boom".into());
        assert_eq!(s.count(), 0);
        assert!(s.take().is_empty());
        assert!(!s.on());
    }

    #[test]
    fn enabled_records_and_renders() {
        let s = Sanitizer::enabled();
        s.check(true, "a", "ok", 1, || unreachable!());
        s.check(false, "a", "bad", 2, || "detail".into());
        assert_eq!(s.count(), 1);
        let text = s.render();
        assert!(text.contains("[a] bad at tick 2: detail"));
        let v = s.take();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "bad");
    }

    #[test]
    fn clones_share_the_log() {
        let s = Sanitizer::enabled();
        let t = s.clone();
        t.flag("b", "shared", 7, "via clone".into());
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn checked_elapsed_matches_saturating_sub() {
        let s = Sanitizer::enabled();
        assert_eq!(s.checked_elapsed("c", "mono", 10, 4), 6);
        assert_eq!(s.count(), 0);
        // Inversion: same (saturated) value, but flagged.
        assert_eq!(s.checked_elapsed("c", "mono", 4, 10), 0);
        assert_eq!(s.count(), 1);
        // Disabled: silent and identical.
        let d = Sanitizer::disabled();
        assert_eq!(d.checked_elapsed("c", "mono", 4, 10), 0);
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn retention_cap_keeps_counting() {
        let s = Sanitizer::enabled();
        for i in 0..(KEEP + 10) {
            s.flag("x", "many", i as Tick, String::new());
        }
        assert_eq!(s.count(), KEEP + 10);
        assert!(s.render().contains("(+10 more)"));
    }
}
