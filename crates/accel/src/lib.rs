//! # distda-accel
//!
//! The accelerator substrates of the evaluated machine: access units with
//! SRAM line buffers and stream-prefetch FSMs (paper Figure 2c), the
//! partition engine that executes compiler-emitted accelerator definitions
//! on either a lightweight in-order core or a statically-mapped CGRA tile
//! ([`engine::IssueModel`]), and the CGRA modulo-mapping resource model
//! ([`cgra`]).
//!
//! Engines talk to the rest of the machine exclusively through
//! [`ctx::EngineCtx`], so they are unit-testable against
//! [`ctx::MockCtx`] and machine-integrated by `distda-system`.

pub mod buffer;
pub mod cgra;
pub mod ctx;
pub mod engine;

pub use buffer::ObjectBuffer;
pub use cgra::{map as cgra_map, CgraConfig, CgraMapping};
pub use ctx::{EngineCtx, MockCtx};
pub use engine::{EngineStats, IssueModel, PartitionEngine, Wake};
