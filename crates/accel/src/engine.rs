//! The accelerator engine: executes one distributed accelerator definition
//! ([`PartitionDef`]) with decoupled access units.
//!
//! The same engine body serves both substrates the paper evaluates — a
//! single-issue in-order core at 2 GHz and a statically-mapped CGRA tile at
//! 1 GHz — differing only in the [`IssueModel`] that paces microcode
//! execution. Streams are prefetched into the line buffer by the access
//! FSM (Figure 2c); channel operands block on credit back-pressure, which
//! is what lets partitions run ahead of each other (Section IV-B).

use crate::buffer::ObjectBuffer;
use crate::ctx::EngineCtx;
use distda_compiler::affine::Sym;
use distda_compiler::plan::{AccessPattern, PNode, PartitionDef};
use distda_ir::value::Value;
use distda_sim::arena::{Arena, Handle};
use distda_sim::time::{ClockDomain, Tick};
use distda_trace::{EventKind, StallCause, TraceSink};
use std::collections::HashSet;

/// Bytes per cache line (matches the memory hierarchy).
const LINE_BYTES: u64 = 64;
/// Lines the stream FSM runs ahead of the consumer.
const PF_AHEAD_LINES: u64 = 4;
/// Outstanding read limit per access unit.
const MAX_READS: u32 = 8;
/// Outstanding write limit per access unit.
const MAX_WRITES: u32 = 16;

/// How microcode issue is paced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueModel {
    /// In-order core issuing `width` single-cycle ops per cycle.
    InOrder {
        /// Issue width (1 in the paper's base Dist-DA-IO; 4 for +SW).
        width: u32,
    },
    /// Statically-mapped CGRA executing one iteration per initiation
    /// interval once the pipeline is primed.
    Cgra {
        /// Initiation interval in accelerator cycles.
        ii: u64,
    },
}

/// Counters for Figures 9/10/11.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Inner iterations retired.
    pub iterations: u64,
    /// Cycles in which at least one microcode op issued.
    pub busy_cycles: u64,
    /// Cycles stalled on memory (buffer miss in flight).
    pub stall_mem: u64,
    /// Cycles stalled on channel credit/emptiness.
    pub stall_chan: u64,
    /// ALU ops executed.
    pub alu_ops: u64,
    /// Memory element ops executed (loads + stores).
    pub mem_ops: u64,
    /// Bytes served from the local buffer (Figure 9 "intra").
    pub intra_bytes: u64,
    /// Bytes moved between the access unit and the cache hierarchy
    /// (Figure 9 "D-A"): line fills + drains.
    pub da_bytes: u64,
    /// Operand bytes produced onto channels (Figure 9 "A-A").
    pub aa_bytes: u64,
    /// MMIO configuration words received (`cp_set_rf`, `cp_run`).
    pub mmio_words: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    /// Waiting for a line fill; resume the node at `pc` with element `elem`.
    Line {
        line_addr: u64,
        pc: usize,
        elem: i64,
    },
    /// Waiting for channel space/data.
    Chan { pc: usize },
    /// Waiting for outstanding writes to drop below the cap.
    WriteCap { pc: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    Running,
    Draining,
    Done,
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    Fill { line_addr: u64 },
    WriteAck,
}

/// The engine's next internally-scheduled wake-up, reported after every
/// processed clock edge. This is the engine's half of the system-wide
/// `next_event` protocol: the machine may skip every base tick on which no
/// component has scheduled work, so `Wake` must name the earliest edge at
/// which this engine could act — erring early is safe, erring late breaks
/// bit-exactness with the tick-by-tick simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// The engine can make progress on its very next clock edge.
    NextEdge,
    /// Internally idle until the given tick (dependence stall, CGRA
    /// initiation interval); the first edge at or after it matters.
    At(Tick),
    /// Blocked on an external event: a memory response (`None`) or a
    /// channel becoming ready (`Some((local_chan, is_send))` — a send
    /// waits for credit, a receive for data).
    External(Option<(u16, bool)>),
    /// Nothing can happen until the engine is reconfigured (`cp_run`).
    Never,
}

/// Executes one accelerator definition. See the module docs.
#[derive(Debug)]
pub struct PartitionEngine {
    def: PartitionDef,
    param_syms: Vec<Sym>,
    model: IssueModel,
    clock: ClockDomain,
    buffer: ObjectBuffer,

    params: Vec<Value>,
    carry: Vec<Value>,
    access_base: Vec<i64>,
    stream_pf: Vec<i64>,
    /// Last line written per access (eager drain when the stream advances).
    write_line: Vec<Option<u64>>,
    start: i64,
    end: i64,
    step: i64,
    inner: i64,

    state: State,
    pc: usize,
    vals: Vec<Value>,
    /// Tick each node's result becomes available (pipelined FUs).
    ready: Vec<Tick>,
    wait: Option<Wait>,
    busy_until: Tick,
    iter_start: Tick,

    /// In-flight request records, keyed by the generation-checked handle
    /// that travels as the request id. Occupancy is bounded by the
    /// outstanding-request windows, so the slab never grows past the
    /// high-water mark and issue/complete stops touching the allocator.
    pending: Arena<Pending>,
    pending_lines: HashSet<u64>,
    pf_ahead: u64,
    max_reads: u32,
    max_writes: u32,
    next_req: u64,
    outstanding_reads: u32,
    outstanding_writes: u32,
    wb_retry: Vec<u64>,

    /// Wake-up reported after the last processed edge.
    wake: Wake,
    /// Last clock edge actually processed (for bulk stall accounting).
    last_edge: Option<Tick>,
    /// Set when a ctx memory issue failed this edge (port busy): the
    /// failure is time-dependent, so the next edge must be simulated.
    attempted: bool,

    stats: EngineStats,

    sink: TraceSink,
    /// Open stall span: when the current wait began and why. Transitions
    /// only happen on processed (never skipped) edges, so the spans are
    /// identical with skip-ahead on or off.
    wait_since: Option<(Tick, StallCause)>,
    /// Open invocation span: `(run tick, iterations at run)`.
    run_since: Option<(Tick, u64)>,
}

impl PartitionEngine {
    /// Creates an engine for a definition.
    ///
    /// `param_syms` is the plan-wide parameter table
    /// ([`distda_compiler::OffloadPlan::params`]); `buffer_lines` sizes the
    /// access-unit SRAM (64 lines = the paper's 4 KB default).
    pub fn new(
        def: PartitionDef,
        param_syms: Vec<Sym>,
        model: IssueModel,
        clock: ClockDomain,
        buffer_lines: usize,
    ) -> Self {
        let n_access = def.accesses.len();
        let n_carry = def.carry_scalars.len();
        let n_nodes = def.nodes.len();
        Self {
            def,
            param_syms,
            model,
            clock,
            buffer: ObjectBuffer::new(buffer_lines.max(1)),
            params: Vec::new(),
            carry: vec![Value::I(0); n_carry],
            access_base: vec![0; n_access],
            stream_pf: vec![0; n_access],
            write_line: vec![None; n_access],
            start: 0,
            end: 0,
            step: 1,
            inner: 0,
            state: State::Idle,
            pc: 0,
            vals: vec![Value::I(0); n_nodes],
            ready: vec![0; n_nodes],
            wait: None,
            busy_until: 0,
            iter_start: 0,
            pending: Arena::with_capacity((MAX_READS + MAX_WRITES) as usize),
            pending_lines: HashSet::new(),
            pf_ahead: PF_AHEAD_LINES,
            max_reads: MAX_READS,
            max_writes: MAX_WRITES,
            next_req: 0,
            outstanding_reads: 0,
            outstanding_writes: 0,
            wb_retry: Vec::new(),
            wake: Wake::Never,
            last_edge: None,
            attempted: false,
            stats: EngineStats::default(),
            sink: TraceSink::default(),
            wait_since: None,
            run_since: None,
        }
    }

    /// Attaches a trace sink recording stall and invocation spans. A
    /// default (disabled) sink costs nothing.
    pub fn set_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    fn cause_of(w: Wait) -> StallCause {
        match w {
            Wait::Line { .. } => StallCause::Mem,
            Wait::Chan { .. } => StallCause::Chan,
            Wait::WriteCap { .. } => StallCause::WriteCap,
        }
    }

    /// The executed definition.
    pub fn def(&self) -> &PartitionDef {
        &self.def
    }

    /// The engine's clock domain.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Tunes the access unit: prefetch distance (lines ahead) and
    /// outstanding request limits. Used by the paper's software-prefetch
    /// study (Figure 14, Dist-DA-IO+SW).
    pub fn set_tuning(&mut self, pf_ahead: u64, max_reads: u32, max_writes: u32) {
        self.pf_ahead = pf_ahead.max(1);
        self.max_reads = max_reads.max(1);
        self.max_writes = max_writes.max(1);
    }

    /// `cp_set_rf` + `cp_run`: configures one invocation of the offload.
    ///
    /// `params` must match the plan's parameter table; `carry_init` the
    /// definition's carry registers; `(start, end, step)` are the evaluated
    /// inner-loop bounds.
    ///
    /// # Panics
    ///
    /// Panics if the engine is mid-run or argument lengths mismatch.
    pub fn run(
        &mut self,
        now: Tick,
        params: &[Value],
        carry_init: &[Value],
        start: i64,
        end: i64,
        step: i64,
    ) {
        assert!(
            matches!(self.state, State::Idle | State::Done),
            "engine re-run while busy"
        );
        assert_eq!(params.len(), self.param_syms.len(), "param count");
        assert_eq!(carry_init.len(), self.carry.len(), "carry count");
        assert!(step != 0, "zero step");
        self.params = params.to_vec();
        self.carry.copy_from_slice(carry_init);
        self.stats.mmio_words += params.len() as u64 + carry_init.len() as u64 + 2;
        // Evaluate access bases with the new parameter environment.
        let env = |sym: Sym| -> i64 {
            match self.param_syms.iter().position(|&s| s == sym) {
                Some(i) => self.params[i].as_i64(),
                None => 0,
            }
        };
        for (i, a) in self.def.accesses.iter().enumerate() {
            self.access_base[i] = match &a.pattern {
                AccessPattern::Stream { base, .. } => base.eval(&env),
                AccessPattern::Indirect => 0,
            };
        }
        self.start = start;
        self.end = end;
        self.step = step;
        self.inner = start;
        self.stream_pf = vec![start; self.def.accesses.len()];
        self.write_line = vec![None; self.def.accesses.len()];
        self.pc = 0;
        self.wait = None;
        self.iter_start = now;
        self.wake = Wake::NextEdge;
        self.last_edge = None;
        self.attempted = false;
        if let Some((t0, c0)) = self.wait_since.take() {
            self.sink
                .span(t0, now, EventKind::EngineStall { cause: c0 });
        }
        if self.sink.on() {
            self.run_since = Some((now, self.stats.iterations));
        }
        self.state = if (step > 0 && start >= end) || (step < 0 && start <= end) {
            State::Draining
        } else {
            State::Running
        };
    }

    /// The engine's next internally-scheduled wake-up, as of the last
    /// processed clock edge. See [`Wake`].
    pub fn wake(&self) -> Wake {
        self.wake
    }

    /// One-line description of what the engine is doing, for deadlock
    /// reports.
    pub fn stall_debug(&self) -> String {
        format!(
            "state={:?} pc={} inner={} wait={:?} wake={:?} reads={} writes={} retries={}",
            self.state,
            self.pc,
            self.inner,
            self.wait,
            self.wake,
            self.outstanding_reads,
            self.outstanding_writes,
            self.wb_retry.len(),
        )
    }

    /// Whether the engine has completed its invocation (including drains).
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// Whether the engine has no invocation at all yet.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, State::Idle)
    }

    /// Whether the engine holds no in-flight memory state: no outstanding
    /// reads or writes, no queued writeback retries, no pending request
    /// bookkeeping. A drained machine requires this of every engine — an
    /// engine that reached `Done` with reads still outstanding means the
    /// machine stopped before the hierarchy delivered everything (the
    /// drain-leak bug).
    pub fn is_quiescent(&self) -> bool {
        self.outstanding_reads == 0
            && self.outstanding_writes == 0
            && self.wb_retry.is_empty()
            && self.pending.is_empty()
            && self.pending_lines.is_empty()
    }

    /// Reads a carry register (`cp_load_rf` after completion).
    pub fn carry_value(&self, reg: u16) -> Value {
        self.carry[reg as usize]
    }

    /// Statistics so far (cumulative across invocations).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Buffer statistics.
    pub fn buffer(&self) -> &ObjectBuffer {
        &self.buffer
    }

    fn stride_of(&self, access: usize) -> i64 {
        match &self.def.accesses[access].pattern {
            AccessPattern::Stream { stride, .. } => *stride,
            AccessPattern::Indirect => 0,
        }
    }

    fn elem_of_stream(&self, access: usize, inner_val: i64) -> i64 {
        self.access_base[access] + inner_val * self.stride_of(access)
    }

    fn issue_read(&mut self, ctx: &mut dyn EngineCtx, line_addr: u64) -> bool {
        if self.outstanding_reads >= self.max_reads || self.pending_lines.contains(&line_addr) {
            return self.pending_lines.contains(&line_addr);
        }
        let h = self.pending.alloc(Pending::Fill { line_addr });
        if ctx.mem_read(h.to_bits(), line_addr) {
            self.next_req += 1;
            self.outstanding_reads += 1;
            self.pending_lines.insert(line_addr);
            true
        } else {
            self.pending.take(h);
            self.attempted = true;
            false
        }
    }

    fn issue_write(&mut self, ctx: &mut dyn EngineCtx, line_addr: u64) {
        if self.outstanding_writes >= self.max_writes {
            self.wb_retry.push(line_addr);
            return;
        }
        let h = self.pending.alloc(Pending::WriteAck);
        if ctx.mem_write(h.to_bits(), line_addr) {
            self.next_req += 1;
            self.outstanding_writes += 1;
            self.stats.da_bytes += LINE_BYTES;
        } else {
            self.pending.take(h);
            self.attempted = true;
            self.wb_retry.push(line_addr);
        }
    }

    fn handle_completions(&mut self, ctx: &mut dyn EngineCtx) {
        while let Some(id) = ctx.poll_mem() {
            match self.pending.take(Handle::from_bits(id)) {
                Some(Pending::Fill { line_addr }) => {
                    self.outstanding_reads -= 1;
                    self.pending_lines.remove(&line_addr);
                    self.stats.da_bytes += LINE_BYTES;
                    if let Some(victim) = self.buffer.install(line_addr / LINE_BYTES) {
                        self.issue_write(ctx, victim * LINE_BYTES);
                    }
                }
                Some(Pending::WriteAck) => {
                    self.outstanding_writes -= 1;
                }
                None => {}
            }
        }
        // Retry deferred writebacks.
        while self.outstanding_writes < self.max_writes {
            let Some(line) = self.wb_retry.pop() else {
                break;
            };
            self.issue_write(ctx, line);
        }
    }

    fn prefetch_streams(&mut self, ctx: &mut dyn EngineCtx) {
        if !matches!(self.state, State::Running) {
            return;
        }
        for a in 0..self.def.accesses.len() {
            let def = &self.def.accesses[a];
            if def.write || !matches!(def.pattern, AccessPattern::Stream { .. }) {
                continue;
            }
            let stride = self.stride_of(a);
            if stride == 0 {
                // Loop-invariant element: fetch its line once.
                let elem = self.elem_of_stream(a, self.inner);
                let line = ctx.addr_of(def.array, elem) / LINE_BYTES;
                if !self.buffer.present(line) && !self.pending_lines.contains(&(line * LINE_BYTES))
                {
                    let _ = self.issue_read(ctx, line * LINE_BYTES);
                }
                continue;
            }
            let cur_elem = self.elem_of_stream(a, self.inner);
            let cur_line = ctx.addr_of(def.array, cur_elem) / LINE_BYTES;
            let mut budget = 32;
            while budget > 0 && self.outstanding_reads < self.max_reads {
                budget -= 1;
                let v = self.stream_pf[a];
                let in_range = (self.step > 0 && v < self.end) || (self.step < 0 && v > self.end);
                if !in_range {
                    break;
                }
                let elem = self.elem_of_stream(a, v);
                let addr = ctx.addr_of(self.def.accesses[a].array, elem);
                let line = addr / LINE_BYTES;
                if line.abs_diff(cur_line) > self.pf_ahead {
                    break;
                }
                if !self.buffer.present(line) && !self.issue_read(ctx, line * LINE_BYTES) {
                    break;
                }
                self.stream_pf[a] = v + self.step;
            }
        }
    }

    /// Cheap copy of every field that can change on an edge with no memory
    /// response and no channel event; used to detect quiescence. `stream_pf`
    /// is folded in because the prefetcher can advance past buffer-resident
    /// lines without issuing any request.
    #[allow(clippy::type_complexity)]
    fn snapshot(
        &self,
    ) -> (
        State,
        usize,
        i64,
        Option<Wait>,
        Tick,
        u64,
        u32,
        u32,
        usize,
        usize,
        i64,
    ) {
        (
            self.state,
            self.pc,
            self.inner,
            self.wait,
            self.busy_until,
            self.next_req,
            self.outstanding_reads,
            self.outstanding_writes,
            self.wb_retry.len(),
            self.pending_lines.len(),
            self.stream_pf.iter().fold(0i64, |a, &v| a.wrapping_add(v)),
        )
    }

    /// Charges the stall counters for edges the machine skipped while this
    /// engine sat in a wait. On every skipped edge the tick-by-tick
    /// simulation would have re-tried the blocked node and charged exactly
    /// one stall cycle; everything else on those edges is provably a no-op,
    /// so bulk accounting keeps the statistics bit-identical.
    fn account_skipped_edges(&mut self, now: Tick, ctx: &mut dyn EngineCtx) {
        let Some(last) = self.last_edge else { return };
        if !matches!(self.state, State::Running) {
            return;
        }
        let Some(w) = self.wait else { return };
        let period = self.clock.period_ticks();
        // Skipped edges lie strictly between `last` and `now`; the blocked
        // node is only re-tried (charging a stall) on edges where `execute`
        // runs, i.e. at or past `busy_until`.
        let first = (last + period).max(self.clock.next_edge(self.busy_until));
        if now < first + period {
            return;
        }
        let missed = (now - period - first) / period + 1;
        match w {
            Wait::Line { .. } | Wait::WriteCap { .. } => {
                self.stats.stall_mem += missed;
                ctx.note_mem_stall(missed);
            }
            Wait::Chan { pc } => {
                self.stats.stall_chan += missed;
                if let Some((c, _)) = self.chan_of(pc) {
                    ctx.note_chan_stall(c, missed);
                }
            }
        }
    }

    /// The channel the node at `pc` blocks on, as `(chan, is_send)`.
    fn chan_of(&self, pc: usize) -> Option<(u16, bool)> {
        match self.def.nodes[pc] {
            PNode::Recv { chan } => Some((chan, false)),
            PNode::Send { chan, .. } => Some((chan, true)),
            _ => None,
        }
    }

    fn compute_wake(&self, now: Tick, progress: bool) -> Wake {
        match self.state {
            State::Idle | State::Done => Wake::Never,
            // Still draining after the retry pass ran: write acks are in
            // flight, and only their responses can move things along.
            State::Draining => {
                if progress || self.attempted {
                    Wake::NextEdge
                } else {
                    Wake::External(None)
                }
            }
            State::Running => {
                if progress || self.attempted {
                    return Wake::NextEdge;
                }
                if let Some(w) = self.wait {
                    return match w {
                        Wait::Line { .. } | Wait::WriteCap { .. } => Wake::External(None),
                        Wait::Chan { pc } => Wake::External(self.chan_of(pc)),
                    };
                }
                if self.busy_until > now {
                    Wake::At(self.busy_until)
                } else {
                    Wake::NextEdge
                }
            }
        }
    }

    /// Advances the engine by one base tick.
    pub fn tick(&mut self, now: Tick, ctx: &mut dyn EngineCtx) {
        if !self.clock.fires_at(now) {
            return;
        }
        self.account_skipped_edges(now, ctx);
        let before = self.snapshot();
        self.attempted = false;
        self.handle_completions(ctx);
        self.prefetch_streams(ctx);
        match self.state {
            State::Idle | State::Done => {}
            State::Draining => {
                if self.outstanding_writes == 0 && self.wb_retry.is_empty() {
                    self.state = State::Done;
                    if let Some((t0, it0)) = self.run_since.take() {
                        self.sink.span(
                            t0,
                            now,
                            EventKind::EngineRun {
                                iters: self.stats.iterations - it0,
                            },
                        );
                    }
                }
            }
            State::Running => {
                if now >= self.busy_until {
                    self.execute(now, ctx);
                }
            }
        }
        if self.sink.on() {
            self.trace_wait_transition(now);
        }
        let progress = self.snapshot() != before;
        self.wake = self.compute_wake(now, progress);
        self.last_edge = Some(now);
    }

    /// Closes/opens stall spans when the wait record changed on this edge.
    fn trace_wait_transition(&mut self, now: Tick) {
        let cur = self.wait.map(Self::cause_of);
        match (self.wait_since, cur) {
            (None, Some(c)) => self.wait_since = Some((now, c)),
            (Some((t0, c0)), None) => {
                self.sink
                    .span(t0, now, EventKind::EngineStall { cause: c0 });
                self.wait_since = None;
            }
            (Some((t0, c0)), Some(c)) if c != c0 => {
                self.sink
                    .span(t0, now, EventKind::EngineStall { cause: c0 });
                self.wait_since = Some((now, c));
            }
            _ => {}
        }
    }

    fn execute(&mut self, now: Tick, ctx: &mut dyn EngineCtx) {
        let width = match self.model {
            IssueModel::InOrder { width } => width.max(1),
            IssueModel::Cgra { .. } => u32::MAX, // iteration paced by II
        };
        let mut issued = 0u32;
        while issued < width {
            if self.pc >= self.def.nodes.len() {
                self.finish_iteration(now);
                return;
            }
            // Pipelined functional units: issue is in order at one node
            // per slot, but a multi-cycle result only stalls consumers
            // that need it before it is ready.
            if matches!(self.model, IssueModel::InOrder { .. }) {
                let dep_ready = self.operands_ready(self.pc);
                if dep_ready > now {
                    self.busy_until = dep_ready;
                    if issued > 0 {
                        self.stats.busy_cycles += 1;
                    }
                    return;
                }
            }
            match self.step_node(now, ctx) {
                Ok(lat) => {
                    // Any completed step invalidates a pending wait record
                    // (a resolved channel wait is not cleared by the Recv /
                    // Send arms themselves).
                    self.wait = None;
                    issued += 1;
                    self.ready[self.pc] = now + self.clock.ticks_for_cycles(lat.max(1));
                    self.pc += 1;
                }
                Err(wait) => {
                    match wait {
                        Wait::Line { .. } | Wait::WriteCap { .. } => {
                            self.stats.stall_mem += 1;
                            ctx.note_mem_stall(1);
                        }
                        Wait::Chan { pc } => {
                            self.stats.stall_chan += 1;
                            if let Some((c, _)) = self.chan_of(pc) {
                                ctx.note_chan_stall(c, 1);
                            }
                        }
                    }
                    self.wait = Some(wait);
                    if issued > 0 {
                        self.stats.busy_cycles += 1;
                    }
                    return;
                }
            }
        }
        if issued > 0 {
            self.stats.busy_cycles += 1;
        }
    }

    /// Latest readiness tick among the operands of the node at `pc`.
    fn operands_ready(&self, pc: usize) -> Tick {
        let ops: [Option<u16>; 3] = match &self.def.nodes[pc] {
            PNode::Bin { a, b, .. } => [Some(*a), Some(*b), None],
            PNode::Un { a, .. } => [Some(*a), None, None],
            PNode::Select { c, t, f } => [Some(*c), Some(*t), Some(*f)],
            PNode::Send { src, .. } => [Some(*src), None, None],
            PNode::SetCarry { src, .. } => [Some(*src), None, None],
            PNode::LoadIndirect { addr, .. } => [Some(*addr), None, None],
            PNode::StoreStream { val, pred, .. } => [Some(*val), *pred, None],
            PNode::StoreIndirect {
                addr, val, pred, ..
            } => [Some(*addr), Some(*val), *pred],
            _ => [None, None, None],
        };
        ops.iter()
            .flatten()
            .map(|&o| self.ready[o as usize])
            .max()
            .unwrap_or(0)
    }

    fn finish_iteration(&mut self, now: Tick) {
        self.stats.iterations += 1;
        self.pc = 0;
        self.inner += self.step;
        if let IssueModel::Cgra { ii } = self.model {
            let ii_ticks = self.clock.ticks_for_cycles(ii);
            let next = (self.iter_start + ii_ticks).max(now);
            self.busy_until = next;
            self.iter_start = next;
        }
        let still =
            (self.step > 0 && self.inner < self.end) || (self.step < 0 && self.inner > self.end);
        if !still {
            // Drain dirty buffer lines before reporting completion.
            let dirty = self.buffer.drain_dirty();
            self.state = State::Draining;
            self.wait = None;
            // Issue drains now (ctx unavailable here; defer via retry list).
            self.wb_retry.extend(dirty);
        }
    }

    /// Executes the node at `self.pc`; returns its extra latency or a wait.
    fn step_node(&mut self, _now: Tick, ctx: &mut dyn EngineCtx) -> Result<u64, Wait> {
        let pc = self.pc;
        // If we were waiting on this node, fast-path the resume.
        let resumed = match self.wait {
            Some(Wait::Line {
                line_addr,
                pc: wpc,
                elem,
            }) if wpc == pc => {
                if self.buffer.present(line_addr / LINE_BYTES) {
                    self.wait = None;
                    Some(elem)
                } else {
                    // The fill may have been installed and evicted by a
                    // competing stream before we resumed: re-issue the
                    // demand fetch or we wait forever.
                    if !self.pending_lines.contains(&line_addr) {
                        let _ = self.issue_read(ctx, line_addr);
                    }
                    return Err(Wait::Line {
                        line_addr,
                        pc,
                        elem,
                    });
                }
            }
            Some(Wait::WriteCap { pc: wpc }) if wpc == pc => {
                if self.outstanding_writes < self.max_writes {
                    self.wait = None;
                    None
                } else {
                    return Err(Wait::WriteCap { pc });
                }
            }
            _ => None,
        };
        let node = self.def.nodes[pc];
        let v: Value = match node {
            PNode::Const(v) => v,
            PNode::IndVar => Value::I(self.inner),
            PNode::Param(ix) => self.params[ix as usize],
            PNode::Carry(r) => self.carry[r as usize],
            PNode::SetCarry { reg, src } => {
                self.carry[reg as usize] = self.vals[src as usize];
                self.vals[src as usize]
            }
            PNode::LoadStream { access } => {
                let a = access as usize;
                let array = self.def.accesses[a].array;
                let elem = match resumed {
                    Some(e) => e,
                    None => {
                        let elem = self.elem_of_stream(a, self.inner);
                        let addr = ctx.addr_of(array, elem);
                        let line = addr / LINE_BYTES;
                        if !self.buffer.access(line) {
                            // Demand fetch (prefetcher may be behind).
                            let _ = self.issue_read(ctx, line * LINE_BYTES);
                            return Err(Wait::Line {
                                line_addr: line * LINE_BYTES,
                                pc,
                                elem,
                            });
                        }
                        self.stats.intra_bytes += 8;
                        elem
                    }
                };
                if resumed.is_some() {
                    self.stats.intra_bytes += 8;
                }
                self.stats.mem_ops += 1;
                ctx.func_load(array, elem)
            }
            PNode::LoadIndirect { access, addr } => {
                let a = access as usize;
                let array = self.def.accesses[a].array;
                let elem = match resumed {
                    Some(e) => e,
                    None => {
                        let elem = self.vals[addr as usize].as_i64();
                        let byte = ctx.addr_of(array, elem);
                        let line = byte / LINE_BYTES;
                        if !self.buffer.access(line) {
                            let _ = self.issue_read(ctx, line * LINE_BYTES);
                            return Err(Wait::Line {
                                line_addr: line * LINE_BYTES,
                                pc,
                                elem,
                            });
                        }
                        self.stats.intra_bytes += 8;
                        elem
                    }
                };
                if resumed.is_some() {
                    self.stats.intra_bytes += 8;
                }
                self.stats.mem_ops += 1;
                ctx.func_load(array, elem)
            }
            PNode::Bin { op, a, b } => {
                self.stats.alu_ops += 1;
                let r = op.apply(self.vals[a as usize], self.vals[b as usize]);
                self.vals[pc] = r;
                return Ok(op.latency());
            }
            PNode::Un { op, a } => {
                self.stats.alu_ops += 1;
                let r = op.apply(self.vals[a as usize]);
                self.vals[pc] = r;
                return Ok(op.latency());
            }
            PNode::Select { c, t, f } => {
                self.stats.alu_ops += 1;
                if self.vals[c as usize].truthy() {
                    self.vals[t as usize]
                } else {
                    self.vals[f as usize]
                }
            }
            PNode::Recv { chan } => match ctx.try_recv(chan) {
                Some(v) => v,
                None => return Err(Wait::Chan { pc }),
            },
            PNode::Send { chan, src } => {
                let v = self.vals[src as usize];
                if !ctx.try_send(chan, v) {
                    return Err(Wait::Chan { pc });
                }
                self.stats.aa_bytes += 8;
                v
            }
            PNode::StoreStream { access, val, pred } => {
                let executed = pred.is_none_or(|p| self.vals[p as usize].truthy());
                if executed {
                    if self.outstanding_writes >= self.max_writes && resumed.is_none() {
                        return Err(Wait::WriteCap { pc });
                    }
                    let a = access as usize;
                    let array = self.def.accesses[a].array;
                    let elem = self.elem_of_stream(a, self.inner);
                    let v = self.vals[val as usize];
                    ctx.func_store(array, elem, v);
                    let line = ctx.addr_of(array, elem) / LINE_BYTES;
                    self.stats.mem_ops += 1;
                    self.stats.intra_bytes += 8;
                    if let Some(victim) = self.buffer.write(line) {
                        self.issue_write(ctx, victim * LINE_BYTES);
                    }
                    // Stream stores advance monotonically: once the write
                    // pointer leaves a line, drain it eagerly so dirty
                    // lines never pile up in the buffer (Figure 2c's drain
                    // FSM).
                    if let Some(prev) = self.write_line[a] {
                        if prev != line {
                            self.buffer.mark_clean(prev);
                            self.issue_write(ctx, prev * LINE_BYTES);
                        }
                    }
                    self.write_line[a] = Some(line);
                }
                Value::I(0)
            }
            PNode::StoreIndirect {
                access,
                addr,
                val,
                pred,
            } => {
                let executed = pred.is_none_or(|p| self.vals[p as usize].truthy());
                if executed {
                    if self.outstanding_writes >= self.max_writes && resumed.is_none() {
                        return Err(Wait::WriteCap { pc });
                    }
                    let a = access as usize;
                    let array = self.def.accesses[a].array;
                    let elem = self.vals[addr as usize].as_i64();
                    let v = self.vals[val as usize];
                    ctx.func_store(array, elem, v);
                    let line = ctx.addr_of(array, elem) / LINE_BYTES;
                    self.stats.mem_ops += 1;
                    self.stats.intra_bytes += 8;
                    if let Some(victim) = self.buffer.write(line) {
                        self.issue_write(ctx, victim * LINE_BYTES);
                    }
                }
                Value::I(0)
            }
        };
        self.vals[pc] = v;
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::MockCtx;
    use distda_compiler::{compile, PartitionMode};
    use distda_ir::prelude::*;

    fn axpy_plan() -> (Program, distda_compiler::OffloadPlan) {
        let mut b = ProgramBuilder::new("axpy");
        let x = b.array_f64("x", 32);
        let y = b.array_f64("y", 32);
        b.for_(0, 32, 1, |b, i| {
            let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
            b.store(y, i, v);
        });
        let p = b.build();
        let ck = compile(&p, PartitionMode::Monolithic);
        (p, ck.offloads[0].clone())
    }

    fn run_to_done(e: &mut PartitionEngine, ctx: &mut MockCtx, budget: u64) -> u64 {
        let mut t = 0;
        while !e.is_done() {
            e.tick(t, ctx);
            t += 1;
            assert!(t < budget, "engine hung");
        }
        t
    }

    #[test]
    fn monolithic_axpy_computes_correct_values() {
        let (_, plan) = axpy_plan();
        let mut eng = PartitionEngine::new(
            plan.partitions[0].clone(),
            plan.params.clone(),
            IssueModel::InOrder { width: 1 },
            ClockDomain::from_ghz(2.0),
            64,
        );
        let mut ctx = MockCtx::new(3);
        let x = ArrayId(0);
        let y = ArrayId(1);
        for i in 0..32 {
            ctx.set(x, i, Value::F(i as f64));
            ctx.set(y, i, Value::F(1.0));
        }
        eng.run(0, &[], &[], 0, 32, 1);
        run_to_done(&mut eng, &mut ctx, 1_000_000);
        for i in 0..32 {
            assert_eq!(ctx.func_load(y, i), Value::F(2.0 * i as f64 + 1.0));
        }
        assert_eq!(eng.stats().iterations, 32);
        assert!(
            eng.stats().intra_bytes > 0,
            "no buffer reuse on unit stride"
        );
    }

    #[test]
    fn reduction_carry_produces_sum() {
        let mut b = ProgramBuilder::new("sum");
        let x = b.array_i64("x", 16);
        let acc = b.scalar("acc", 0i64);
        b.for_(0, 16, 1, |b, i| {
            b.set(acc, Expr::Scalar(acc) + Expr::load(x, i));
        });
        let p = b.build();
        let plan = compile(&p, PartitionMode::Monolithic).offloads[0].clone();
        let mut eng = PartitionEngine::new(
            plan.partitions[0].clone(),
            plan.params.clone(),
            IssueModel::InOrder { width: 1 },
            ClockDomain::from_ghz(2.0),
            64,
        );
        let mut ctx = MockCtx::new(2);
        for i in 0..16 {
            ctx.set(ArrayId(0), i, Value::I(i + 1));
        }
        eng.run(0, &[], &[Value::I(0)], 0, 16, 1);
        run_to_done(&mut eng, &mut ctx, 1_000_000);
        let (_, _, reg) = plan.liveouts[0];
        assert_eq!(eng.carry_value(reg), Value::I(136));
    }

    #[test]
    fn empty_trip_completes_immediately() {
        let (_, plan) = axpy_plan();
        let mut eng = PartitionEngine::new(
            plan.partitions[0].clone(),
            plan.params.clone(),
            IssueModel::InOrder { width: 1 },
            ClockDomain::from_ghz(2.0),
            8,
        );
        let mut ctx = MockCtx::new(1);
        eng.run(0, &[], &[], 5, 5, 1);
        run_to_done(&mut eng, &mut ctx, 100);
        assert_eq!(eng.stats().iterations, 0);
    }

    #[test]
    fn recv_blocks_until_data_arrives() {
        // Distributed two-partition pipeline over MockCtx channels.
        let mut b = ProgramBuilder::new("pipe");
        let x = b.array_f64("x", 8);
        let y = b.array_f64("y", 8);
        b.for_(0, 8, 1, |b, i| {
            b.store(y, i.clone(), Expr::load(x, i) * Expr::cf(3.0));
        });
        let p = b.build();
        let plan = compile(&p, PartitionMode::Distributed).offloads[0].clone();
        assert_eq!(plan.partitions.len(), 2);
        let mk = |d: &distda_compiler::PartitionDef| {
            PartitionEngine::new(
                d.clone(),
                plan.params.clone(),
                IssueModel::InOrder { width: 1 },
                ClockDomain::from_ghz(2.0),
                16,
            )
        };
        let mut e0 = mk(&plan.partitions[0]);
        let mut e1 = mk(&plan.partitions[1]);
        let mut ctx = MockCtx::new(2);
        for i in 0..8 {
            ctx.set(ArrayId(0), i, Value::F(i as f64));
        }
        e0.run(0, &[], &[], 0, 8, 1);
        e1.run(0, &[], &[], 0, 8, 1);
        let mut t = 0;
        while !(e0.is_done() && e1.is_done()) {
            e0.tick(t, &mut ctx);
            e1.tick(t, &mut ctx);
            t += 1;
            assert!(t < 1_000_000, "pipeline hung");
        }
        for i in 0..8 {
            assert_eq!(ctx.func_load(ArrayId(1), i), Value::F(3.0 * i as f64));
        }
        let total_aa: u64 = e0.stats().aa_bytes + e1.stats().aa_bytes;
        assert_eq!(total_aa, 8 * 8, "one 8-byte operand per iteration");
    }

    #[test]
    fn cgra_ii_paces_iterations() {
        let (_, plan) = axpy_plan();
        let mk = |model| {
            PartitionEngine::new(
                plan.partitions[0].clone(),
                plan.params.clone(),
                model,
                ClockDomain::from_ghz(1.0),
                64,
            )
        };
        let mut fast = mk(IssueModel::Cgra { ii: 1 });
        let mut slow = mk(IssueModel::Cgra { ii: 16 });
        let mut c1 = MockCtx::new(1);
        let mut c2 = MockCtx::new(1);
        fast.run(0, &[], &[], 0, 32, 1);
        slow.run(0, &[], &[], 0, 32, 1);
        let t_fast = run_to_done(&mut fast, &mut c1, 1_000_000);
        let t_slow = run_to_done(&mut slow, &mut c2, 1_000_000);
        assert!(
            t_slow > t_fast * 2,
            "II=16 ({t_slow}) should be much slower than II=1 ({t_fast})"
        );
    }

    #[test]
    fn predicated_store_skips_memory() {
        let mut b = ProgramBuilder::new("pred");
        let x = b.array_i64("x", 8);
        let y = b.array_i64("y", 8);
        b.for_(0, 8, 1, |b, i| {
            b.when(Expr::load(x, i.clone()).lt(Expr::c(0)), |b| {
                b.store(y, i.clone(), Expr::c(1));
            });
        });
        let p = b.build();
        let plan = compile(&p, PartitionMode::Monolithic).offloads[0].clone();
        let mut eng = PartitionEngine::new(
            plan.partitions[0].clone(),
            plan.params.clone(),
            IssueModel::InOrder { width: 1 },
            ClockDomain::from_ghz(2.0),
            16,
        );
        let mut ctx = MockCtx::new(1);
        // x all non-negative: predicate always false.
        eng.run(0, &[], &[], 0, 8, 1);
        run_to_done(&mut eng, &mut ctx, 1_000_000);
        for i in 0..8 {
            assert_eq!(ctx.func_load(ArrayId(1), i), Value::I(0));
        }
    }

    #[test]
    fn wider_issue_is_faster() {
        let (_, plan) = axpy_plan();
        let mk = |w| {
            PartitionEngine::new(
                plan.partitions[0].clone(),
                plan.params.clone(),
                IssueModel::InOrder { width: w },
                ClockDomain::from_ghz(2.0),
                64,
            )
        };
        let mut narrow = mk(1);
        let mut wide = mk(4);
        let mut c1 = MockCtx::new(1);
        let mut c2 = MockCtx::new(1);
        narrow.run(0, &[], &[], 0, 32, 1);
        wide.run(0, &[], &[], 0, 32, 1);
        let tn = run_to_done(&mut narrow, &mut c1, 1_000_000);
        let tw = run_to_done(&mut wide, &mut c2, 1_000_000);
        assert!(tw < tn, "4-wide {tw} should beat 1-wide {tn}");
    }

    #[test]
    fn stats_count_memory_and_alu_ops() {
        let (_, plan) = axpy_plan();
        let mut eng = PartitionEngine::new(
            plan.partitions[0].clone(),
            plan.params.clone(),
            IssueModel::InOrder { width: 1 },
            ClockDomain::from_ghz(2.0),
            64,
        );
        let mut ctx = MockCtx::new(1);
        eng.run(0, &[], &[], 0, 32, 1);
        run_to_done(&mut eng, &mut ctx, 1_000_000);
        assert_eq!(eng.stats().mem_ops, 32 * 3);
        assert_eq!(eng.stats().alu_ops, 32 * 2);
        assert!(eng.stats().da_bytes > 0);
    }
}
