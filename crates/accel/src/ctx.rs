//! The engine's view of the rest of the machine.
//!
//! A [`PartitionEngine`](crate::engine::PartitionEngine) interacts with the
//! world through this trait: operand channels (the `cp_produce`/
//! `cp_consume` dataflow mechanisms), its accelerator coherency port into
//! the memory system, and the shared functional memory image. The machine
//! model implements it over the real NoC/hierarchy; tests use
//! [`MockCtx`].

use distda_ir::expr::ArrayId;
use distda_ir::value::Value;

/// Services provided to an engine each tick.
pub trait EngineCtx {
    /// Attempts to produce a value onto a channel (fails when the consumer
    /// has no credits — back-pressure).
    fn try_send(&mut self, chan: u16, v: Value) -> bool;

    /// Attempts to consume a value from a channel.
    fn try_recv(&mut self, chan: u16) -> Option<Value>;

    /// Issues a line read at `addr` through the ACP; `false` = retry later.
    fn mem_read(&mut self, req_id: u64, addr: u64) -> bool;

    /// Issues a line write at `addr` through the ACP; `false` = retry later.
    fn mem_write(&mut self, req_id: u64, addr: u64) -> bool;

    /// Polls one completed memory request id, if any.
    fn poll_mem(&mut self) -> Option<u64>;

    /// Functional element read (values live in the workload interpreter).
    fn func_load(&mut self, array: ArrayId, idx: i64) -> Value;

    /// Functional element write.
    fn func_store(&mut self, array: ArrayId, idx: i64, v: Value);

    /// Byte address of `array[idx]` under the current allocation.
    fn addr_of(&self, array: ArrayId, idx: i64) -> u64;

    /// Per-port stall attribution: the engine charges `n` stall cycles
    /// against the port backing channel `chan` — called at exactly the
    /// sites that charge the engine's own `stall_chan` counter, so
    /// per-port series sum to engine totals. Default: no attribution.
    fn note_chan_stall(&mut self, chan: u16, n: u64) {
        let _ = (chan, n);
    }

    /// Per-port stall attribution for memory (ACP) waits — called at
    /// exactly the sites that charge `stall_mem`. Default: no
    /// attribution.
    fn note_mem_stall(&mut self, n: u64) {
        let _ = n;
    }
}

/// A self-contained context for unit tests: channels are unbounded unless
/// capped, memory completes after a fixed delay (expressed in ticks
/// deducted per `poll_mem` call round), and functional memory is a plain
/// map.
#[derive(Debug, Default)]
pub struct MockCtx {
    /// Per-channel queues.
    pub channels: std::collections::HashMap<u16, std::collections::VecDeque<Value>>,
    /// Channel capacity (None = unbounded).
    pub chan_cap: Option<usize>,
    /// Requests in flight: (req_id, remaining polls before completion).
    pub inflight: Vec<(u64, u32)>,
    /// Polls a request takes to complete.
    pub mem_delay: u32,
    /// Functional memory.
    pub mem: std::collections::HashMap<(usize, i64), Value>,
    /// Reads issued.
    pub reads: u64,
    /// Writes issued.
    pub writes: u64,
}

impl MockCtx {
    /// Creates a mock with the given memory delay in poll rounds.
    pub fn new(mem_delay: u32) -> Self {
        Self {
            mem_delay,
            ..Self::default()
        }
    }

    /// Pre-loads functional memory.
    pub fn set(&mut self, array: ArrayId, idx: i64, v: Value) {
        self.mem.insert((array.0, idx), v);
    }
}

impl EngineCtx for MockCtx {
    fn try_send(&mut self, chan: u16, v: Value) -> bool {
        let q = self.channels.entry(chan).or_default();
        if let Some(cap) = self.chan_cap {
            if q.len() >= cap {
                return false;
            }
        }
        q.push_back(v);
        true
    }

    fn try_recv(&mut self, chan: u16) -> Option<Value> {
        self.channels.get_mut(&chan)?.pop_front()
    }

    fn mem_read(&mut self, req_id: u64, _addr: u64) -> bool {
        self.reads += 1;
        self.inflight.push((req_id, self.mem_delay));
        true
    }

    fn mem_write(&mut self, req_id: u64, _addr: u64) -> bool {
        self.writes += 1;
        self.inflight.push((req_id, self.mem_delay));
        true
    }

    fn poll_mem(&mut self) -> Option<u64> {
        for entry in &mut self.inflight {
            if entry.1 > 0 {
                entry.1 -= 1;
            }
        }
        let pos = self.inflight.iter().position(|&(_, d)| d == 0)?;
        Some(self.inflight.swap_remove(pos).0)
    }

    fn func_load(&mut self, array: ArrayId, idx: i64) -> Value {
        self.mem
            .get(&(array.0, idx))
            .copied()
            .unwrap_or(Value::I(0))
    }

    fn func_store(&mut self, array: ArrayId, idx: i64, v: Value) {
        self.mem.insert((array.0, idx), v);
    }

    fn addr_of(&self, array: ArrayId, idx: i64) -> u64 {
        (array.0 as u64) << 32 | ((idx.max(0) as u64) * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_channels_are_fifo() {
        let mut m = MockCtx::new(0);
        assert!(m.try_send(0, Value::I(1)));
        assert!(m.try_send(0, Value::I(2)));
        assert_eq!(m.try_recv(0), Some(Value::I(1)));
        assert_eq!(m.try_recv(0), Some(Value::I(2)));
        assert_eq!(m.try_recv(0), None);
    }

    #[test]
    fn mock_channel_capacity_back_pressures() {
        let mut m = MockCtx::new(0);
        m.chan_cap = Some(1);
        assert!(m.try_send(3, Value::I(1)));
        assert!(!m.try_send(3, Value::I(2)));
    }

    #[test]
    fn mock_memory_completes_after_delay() {
        let mut m = MockCtx::new(2);
        assert!(m.mem_read(42, 0x100));
        assert_eq!(m.poll_mem(), None);
        assert_eq!(m.poll_mem(), Some(42));
        assert_eq!(m.poll_mem(), None);
    }

    #[test]
    fn mock_functional_memory_roundtrips() {
        let mut m = MockCtx::new(0);
        let a = ArrayId(1);
        m.func_store(a, 3, Value::F(2.5));
        assert_eq!(m.func_load(a, 3), Value::F(2.5));
        assert_eq!(m.func_load(a, 4), Value::I(0));
    }
}
