//! The access unit's SRAM line buffer (paper Figure 2c).
//!
//! A small, line-granularity store that decouples the accelerator from the
//! memory system: stream FSMs prefetch into it, indirect accesses check it
//! before going to the cache interface, and hits in it are the
//! energy-cheap *intra* accesses of Figure 9.

use std::collections::HashMap;

/// Line-granularity buffer with LRU replacement.
///
/// # Examples
///
/// ```
/// use distda_accel::buffer::ObjectBuffer;
/// let mut b = ObjectBuffer::new(2);
/// assert!(!b.present(10));
/// b.install(10);
/// assert!(b.present(10));
/// ```
#[derive(Debug, Clone)]
pub struct ObjectBuffer {
    capacity_lines: usize,
    lines: HashMap<u64, Slot>,
    tick: u64,
    /// Element reads satisfied by the buffer (intra accesses).
    pub hits: u64,
    /// Element reads that required a fetch.
    pub misses: u64,
    /// Lines fetched from the memory system.
    pub fills: u64,
    /// Dirty lines written back to the memory system.
    pub drains: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    lru: u64,
    dirty: bool,
}

impl ObjectBuffer {
    /// Creates a buffer holding `capacity_lines` cache lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero.
    pub fn new(capacity_lines: usize) -> Self {
        assert!(capacity_lines > 0, "buffer capacity must be nonzero");
        Self {
            capacity_lines,
            lines: HashMap::with_capacity(capacity_lines),
            tick: 0,
            hits: 0,
            misses: 0,
            fills: 0,
            drains: 0,
        }
    }

    /// Whether `line` is resident. Does not update statistics.
    pub fn present(&self, line: u64) -> bool {
        self.lines.contains_key(&line)
    }

    /// Records a demand element access; returns `true` on hit.
    pub fn access(&mut self, line: u64) -> bool {
        self.tick += 1;
        if let Some(s) = self.lines.get_mut(&line) {
            s.lru = self.tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Installs a fetched line, returning an evicted dirty line if the
    /// victim needs draining.
    pub fn install(&mut self, line: u64) -> Option<u64> {
        self.tick += 1;
        self.fills += 1;
        if let Some(s) = self.lines.get_mut(&line) {
            s.lru = self.tick;
            return None;
        }
        let victim = if self.lines.len() >= self.capacity_lines {
            let (&vl, _) = self
                .lines
                .iter()
                .min_by_key(|(_, s)| s.lru)
                .expect("nonempty at capacity");
            let was_dirty = self.lines.remove(&vl).map(|s| s.dirty).unwrap_or(false);
            if was_dirty {
                self.drains += 1;
                Some(vl)
            } else {
                None
            }
        } else {
            None
        };
        self.lines.insert(
            line,
            Slot {
                lru: self.tick,
                dirty: false,
            },
        );
        victim
    }

    /// Marks a resident line dirty (element write); installs it first if
    /// absent (write-allocate), returning any dirty victim.
    pub fn write(&mut self, line: u64) -> Option<u64> {
        let victim = if self.present(line) {
            self.tick += 1;
            None
        } else {
            self.install(line)
        };
        if let Some(s) = self.lines.get_mut(&line) {
            s.lru = self.tick;
            s.dirty = true;
        }
        victim
    }

    /// Marks a resident line clean (its contents were written back).
    pub fn mark_clean(&mut self, line: u64) {
        if let Some(s) = self.lines.get_mut(&line) {
            if s.dirty {
                s.dirty = false;
                self.drains += 1;
            }
        }
    }

    /// Removes and returns all dirty lines (end-of-offload drain).
    pub fn drain_dirty(&mut self) -> Vec<u64> {
        let mut dirty: Vec<u64> = self
            .lines
            .iter()
            .filter(|(_, s)| s.dirty)
            .map(|(&l, _)| l)
            .collect();
        dirty.sort_unstable();
        for l in &dirty {
            if let Some(s) = self.lines.get_mut(l) {
                s.dirty = false;
            }
        }
        self.drains += dirty.len() as u64;
        dirty
    }

    /// Lines currently resident.
    pub fn resident(&self) -> usize {
        self.lines.len()
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.capacity_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut b = ObjectBuffer::new(4);
        assert!(!b.access(5));
        b.install(5);
        assert!(b.access(5));
        assert_eq!((b.hits, b.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut b = ObjectBuffer::new(2);
        b.install(1);
        b.install(2);
        b.access(1); // 1 becomes MRU
        b.install(3); // evicts 2
        assert!(b.present(1) && b.present(3) && !b.present(2));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut b = ObjectBuffer::new(1);
        b.write(7);
        let victim = b.install(8);
        assert_eq!(victim, Some(7));
        assert_eq!(b.drains, 1);
    }

    #[test]
    fn clean_victim_silent() {
        let mut b = ObjectBuffer::new(1);
        b.install(7);
        assert_eq!(b.install(8), None);
    }

    #[test]
    fn drain_dirty_returns_all_dirty_once() {
        let mut b = ObjectBuffer::new(4);
        b.write(1);
        b.write(2);
        b.install(3);
        let d = b.drain_dirty();
        assert_eq!(d, vec![1, 2]);
        assert!(b.drain_dirty().is_empty());
    }

    #[test]
    fn write_allocates() {
        let mut b = ObjectBuffer::new(2);
        b.write(9);
        assert!(b.present(9));
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        ObjectBuffer::new(0);
    }
}
