//! The statically-mapped CGRA substrate (paper Section VI, Dist-DA-F /
//! Mono-DA-F).
//!
//! Substitutes for CGRA-Mapper/OpenCGRA: a modulo-scheduling resource model
//! that computes the initiation interval (II) of a partition's microcode on
//! a heterogeneous tile grid. The II is the steady-state cycles per
//! iteration the [`PartitionEngine`](crate::engine::PartitionEngine) is
//! paced at via [`IssueModel::Cgra`](crate::engine::IssueModel).

use distda_compiler::plan::{PNode, PartitionDef};

/// A heterogeneous CGRA fabric description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgraConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Integer/logic ALU tiles.
    pub int_alus: usize,
    /// Complex (multiply/divide/sqrt, incl. FP) tiles.
    pub complex_alus: usize,
    /// Memory/buffer port tiles (element accesses per cycle).
    pub mem_ports: usize,
    /// Channel (produce/consume) port tiles.
    pub chan_ports: usize,
}

impl CgraConfig {
    /// The paper's per-cluster 5x5 provisioning: fifteen integer ALUs,
    /// four float plus four complex units, and I/O tiles.
    pub fn dist_da_5x5() -> Self {
        Self {
            rows: 5,
            cols: 5,
            int_alus: 15,
            complex_alus: 8,
            mem_ports: 2,
            chan_ports: 2,
        }
    }

    /// The Mono-DA-F 8x8 fabric for larger monolithic offloads.
    pub fn mono_da_8x8() -> Self {
        Self {
            rows: 8,
            cols: 8,
            int_alus: 40,
            complex_alus: 16,
            mem_ports: 4,
            chan_ports: 4,
        }
    }

    /// Total tiles.
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }
}

/// The result of mapping a partition onto a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgraMapping {
    /// Initiation interval in fabric cycles.
    pub ii: u64,
    /// Resource-constrained II component.
    pub res_ii: u64,
    /// Recurrence-constrained II component (carry cycles).
    pub rec_ii: u64,
    /// Ops mapped.
    pub ops: usize,
}

/// Counts a partition's demand per resource class.
fn demand(def: &PartitionDef) -> (u64, u64, u64, u64) {
    let (mut int_ops, mut complex_ops, mut mem_ops, mut chan_ops) = (0u64, 0, 0, 0);
    for n in &def.nodes {
        match n {
            PNode::Bin { .. } | PNode::Un { .. } | PNode::Select { .. } => {
                if n.is_complex() {
                    complex_ops += 1;
                } else {
                    int_ops += 1;
                }
            }
            PNode::LoadStream { .. }
            | PNode::LoadIndirect { .. }
            | PNode::StoreStream { .. }
            | PNode::StoreIndirect { .. } => mem_ops += 1,
            PNode::Send { .. } | PNode::Recv { .. } => chan_ops += 1,
            PNode::Carry(_) | PNode::SetCarry { .. } => int_ops += 1,
            PNode::Const(_) | PNode::Param(_) | PNode::IndVar => {}
        }
    }
    (int_ops, complex_ops, mem_ops, chan_ops)
}

/// Latency of the longest carry-to-carry recurrence path.
fn recurrence_ii(def: &PartitionDef) -> u64 {
    // Longest-latency path from any Carry to the SetCarry of any register,
    // over the (acyclic within an iteration) operand edges.
    let n = def.nodes.len();
    let mut dist = vec![0u64; n]; // longest path ending at node i, from a Carry
    let mut reaches_carry = vec![false; n];
    let mut best = 0;
    for i in 0..n {
        let node = &def.nodes[i];
        let ops: Vec<u16> = match node {
            PNode::Bin { a, b, .. } => vec![*a, *b],
            PNode::Un { a, .. } => vec![*a],
            PNode::Select { c, t, f } => vec![*c, *t, *f],
            PNode::SetCarry { src, .. } => vec![*src],
            PNode::Send { src, .. } => vec![*src],
            PNode::LoadIndirect { addr, .. } => vec![*addr],
            PNode::StoreStream { val, .. } => vec![*val],
            PNode::StoreIndirect { addr, val, .. } => vec![*addr, *val],
            _ => vec![],
        };
        if matches!(node, PNode::Carry(_)) {
            reaches_carry[i] = true;
            dist[i] = 0;
        }
        for o in ops {
            let o = o as usize;
            if reaches_carry[o] {
                reaches_carry[i] = true;
                let lat = def.nodes[i].latency().max(1);
                dist[i] = dist[i].max(dist[o] + lat);
            }
        }
        if let PNode::SetCarry { .. } = node {
            if reaches_carry[i] {
                best = best.max(dist[i]);
            }
        }
    }
    best.max(1)
}

/// Maps a partition onto a fabric, returning the achieved II.
pub fn map(def: &PartitionDef, cfg: &CgraConfig) -> CgraMapping {
    let (int_ops, complex_ops, mem_ops, chan_ops) = demand(def);
    let ops = (int_ops + complex_ops + mem_ops + chan_ops) as usize;
    let div_ceil = |a: u64, b: usize| a.div_ceil(b.max(1) as u64).max(1);
    let res_ii = [
        div_ceil(int_ops, cfg.int_alus),
        div_ceil(complex_ops, cfg.complex_alus),
        div_ceil(mem_ops, cfg.mem_ports),
        div_ceil(chan_ops, cfg.chan_ports),
        div_ceil(ops as u64, cfg.tiles()),
    ]
    .into_iter()
    .max()
    .expect("nonempty");
    let rec_ii = if def.carry_scalars.is_empty() {
        1
    } else {
        recurrence_ii(def)
    };
    CgraMapping {
        ii: res_ii.max(rec_ii),
        res_ii,
        rec_ii,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_compiler::{compile, PartitionMode};
    use distda_ir::prelude::*;

    fn mono_plan(build: impl FnOnce(&mut ProgramBuilder)) -> distda_compiler::OffloadPlan {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        compile(&b.build(), PartitionMode::Monolithic).offloads[0].clone()
    }

    #[test]
    fn small_kernel_achieves_ii_one_or_two() {
        let plan = mono_plan(|b| {
            let x = b.array_f64("x", 8);
            let y = b.array_f64("y", 8);
            b.for_(0, 8, 1, |b, i| {
                b.store(y, i.clone(), Expr::load(x, i) + Expr::cf(1.0));
            });
        });
        let m = map(&plan.partitions[0], &CgraConfig::dist_da_5x5());
        assert!(m.ii <= 2, "tiny kernel II {}", m.ii);
    }

    #[test]
    fn mem_heavy_kernel_limited_by_ports() {
        // Six streams on a 2-port fabric: II >= 3.
        let plan = mono_plan(|b| {
            let arrays: Vec<_> = (0..6).map(|k| b.array_f64(format!("a{k}"), 8)).collect();
            let out = b.array_f64("out", 8);
            b.for_(0, 8, 1, |b, i| {
                let mut acc = Expr::load(arrays[0], i.clone());
                for &a in &arrays[1..] {
                    acc = acc + Expr::load(a, i.clone());
                }
                b.store(out, i, acc);
            });
        });
        let m = map(&plan.partitions[0], &CgraConfig::dist_da_5x5());
        assert!(
            m.res_ii >= 3,
            "7 mem ops / 2 ports -> II>=4, got {}",
            m.res_ii
        );
    }

    #[test]
    fn reduction_recurrence_bounds_ii() {
        let plan = mono_plan(|b| {
            let x = b.array_f64("x", 8);
            let acc = b.scalar("acc", 0.0f64);
            b.for_(0, 8, 1, |b, i| {
                // Multiply in the recurrence: rec II >= mul latency.
                b.set(acc, Expr::Scalar(acc) * Expr::load(x, i));
            });
        });
        let m = map(&plan.partitions[0], &CgraConfig::dist_da_5x5());
        assert!(m.rec_ii >= 3, "mul-latency recurrence, got {}", m.rec_ii);
        assert!(m.ii >= m.rec_ii);
    }

    #[test]
    fn bigger_fabric_never_hurts() {
        let plan = mono_plan(|b| {
            let x = b.array_f64("x", 8);
            let y = b.array_f64("y", 8);
            let z = b.array_f64("z", 8);
            b.for_(0, 8, 1, |b, i| {
                let v = Expr::load(x, i.clone()) * Expr::load(y, i.clone()) + Expr::cf(2.0);
                b.store(z, i, v.sqrt());
            });
        });
        let small = map(&plan.partitions[0], &CgraConfig::dist_da_5x5());
        let big = map(&plan.partitions[0], &CgraConfig::mono_da_8x8());
        assert!(big.ii <= small.ii);
    }

    #[test]
    fn configs_match_paper_shapes() {
        assert_eq!(CgraConfig::dist_da_5x5().tiles(), 25);
        assert_eq!(CgraConfig::mono_da_8x8().tiles(), 64);
    }
}
