//! A set-associative, write-back, LRU tag array.
//!
//! The simulator is timing-only: functional data lives in the workload
//! interpreter, so caches track tags, validity and dirtiness but not bytes.

use crate::params::{CacheParams, LINE_BYTES};

/// Outcome of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present.
    Hit,
    /// Line absent.
    Miss,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line address of the victim.
    pub line: u64,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
}

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (lookups).
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines filled.
    pub fills: u64,
    /// Dirty evictions (writebacks generated).
    pub writebacks: u64,
    /// Lines invalidated by explicit flushes.
    pub flushed: u64,
}

impl CacheStats {
    /// Hit rate over demand accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Per-way flag bits in the packed `flags` array.
const F_VALID: u8 = 1 << 0;
const F_DIRTY: u8 = 1 << 1;
/// Filled by a prefetch and not yet demanded.
const F_PREFETCHED: u8 = 1 << 2;

/// The tag array.
///
/// Way state is laid out struct-of-arrays: the tag-compare loop that every
/// access runs scans a dense `u64` slice, with validity/dirtiness packed
/// into a parallel byte array and LRU stamps in a third — so a lookup
/// touches one cache line of tags instead of striding over padded
/// per-way structs. Slots are addressed by flat index `set * assoc + way`.
///
/// # Examples
///
/// ```
/// use distda_mem::cache::{Cache, Lookup};
/// use distda_mem::params::CacheParams;
///
/// let mut c = Cache::new(CacheParams { size_bytes: 1024, assoc: 2, latency: 1, mshrs: 4 });
/// assert_eq!(c.access(0, false), Lookup::Miss);
/// c.fill(0, false);
/// assert_eq!(c.access(0, false), Lookup::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    assoc: usize,
    /// Line address per way (flat-indexed; meaningful only when valid).
    tags: Vec<u64>,
    /// Packed `F_*` flag bits per way, parallel to `tags`.
    flags: Vec<u8>,
    /// LRU stamp per way (larger = more recently used), parallel to `tags`.
    lru: Vec<u64>,
    tick: u64,
    stats: CacheStats,
    /// Demand hits on prefetched lines (prefetch usefulness).
    useful_prefetches: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(params: CacheParams) -> Self {
        let sets = params.sets();
        let slots = sets * params.assoc;
        Self {
            sets,
            assoc: params.assoc,
            tags: vec![0; slots],
            flags: vec![0; slots],
            lru: vec![0; slots],
            tick: 0,
            stats: CacheStats::default(),
            useful_prefetches: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets as u64) as usize
    }

    /// Flat slot index of the way holding `line`, if resident.
    fn find(&self, line: u64) -> Option<usize> {
        let base = self.set_of(line) * self.assoc;
        let tags = &self.tags[base..base + self.assoc];
        let flags = &self.flags[base..base + self.assoc];
        (0..self.assoc)
            .find(|&w| flags[w] & F_VALID != 0 && tags[w] == line)
            .map(|w| base + w)
    }

    /// Demand access. Updates LRU and dirtiness on hit.
    pub fn access(&mut self, line: u64, write: bool) -> Lookup {
        self.tick += 1;
        self.stats.accesses += 1;
        if let Some(slot) = self.find(line) {
            self.stats.hits += 1;
            self.lru[slot] = self.tick;
            let was_prefetched = self.flags[slot] & F_PREFETCHED != 0;
            self.flags[slot] &= !F_PREFETCHED;
            if write {
                self.flags[slot] |= F_DIRTY;
            }
            if was_prefetched {
                self.useful_prefetches += 1;
            }
            Lookup::Hit
        } else {
            self.stats.misses += 1;
            Lookup::Miss
        }
    }

    /// Probes for presence without updating state or statistics.
    pub fn probe(&self, line: u64) -> bool {
        self.find(line).is_some()
    }

    /// Fills `line`, returning any dirty victim. `dirty` marks the fill
    /// itself dirty (write-allocate of a store).
    pub fn fill(&mut self, line: u64, dirty: bool) -> Option<Evicted> {
        self.fill_inner(line, dirty, false)
    }

    /// Fills a line fetched by the prefetcher.
    pub fn fill_prefetch(&mut self, line: u64) -> Option<Evicted> {
        self.fill_inner(line, false, true)
    }

    fn fill_inner(&mut self, line: u64, dirty: bool, prefetched: bool) -> Option<Evicted> {
        self.tick += 1;
        self.stats.fills += 1;
        if let Some(slot) = self.find(line) {
            // Already present (racing fill): just update.
            self.lru[slot] = self.tick;
            if dirty {
                self.flags[slot] |= F_DIRTY;
            }
            return None;
        }
        // Choose an invalid way, else the LRU way (first wins on ties).
        let base = self.set_of(line) * self.assoc;
        let victim = (0..self.assoc)
            .min_by_key(|&w| {
                if self.flags[base + w] & F_VALID != 0 {
                    (1, self.lru[base + w])
                } else {
                    (0, 0)
                }
            })
            .expect("assoc > 0");
        let slot = base + victim;
        let evicted = (self.flags[slot] & (F_VALID | F_DIRTY) == (F_VALID | F_DIRTY)).then(|| {
            self.stats.writebacks += 1;
            Evicted {
                line: self.tags[slot],
                dirty: true,
            }
        });
        self.tags[slot] = line;
        self.flags[slot] =
            F_VALID | if dirty { F_DIRTY } else { 0 } | if prefetched { F_PREFETCHED } else { 0 };
        self.lru[slot] = self.tick;
        evicted
    }

    /// Invalidates every line whose byte range intersects
    /// `[start, end)`, returning how many were dirty.
    pub fn flush_range(&mut self, start: u64, end: u64) -> u64 {
        let (ls, le) = (start / LINE_BYTES, end.div_ceil(LINE_BYTES));
        let mut dirty = 0;
        for slot in 0..self.tags.len() {
            if self.flags[slot] & F_VALID != 0 && self.tags[slot] >= ls && self.tags[slot] < le {
                if self.flags[slot] & F_DIRTY != 0 {
                    dirty += 1;
                }
                self.flags[slot] &= !(F_VALID | F_DIRTY);
                self.stats.flushed += 1;
            }
        }
        dirty
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Demand hits on prefetched lines.
    pub fn useful_prefetches(&self) -> u64 {
        self.useful_prefetches
    }

    /// Number of valid lines (for tests).
    pub fn resident_lines(&self) -> usize {
        self.flags.iter().filter(|&&f| f & F_VALID != 0).count()
    }

    /// Geometric capacity in lines (sets x ways); resident lines can never
    /// exceed this.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways.
        Cache::new(CacheParams {
            size_bytes: 8 * LINE_BYTES,
            assoc: 2,
            latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.access(5, false), Lookup::Miss);
        c.fill(5, false);
        assert_eq!(c.access(5, false), Lookup::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Lines 0, 4, 8 share set 0 (4 sets).
        c.fill(0, false);
        c.fill(4, false);
        c.access(0, false); // 0 now MRU
        c.fill(8, false); // must evict 4
        assert!(c.probe(0));
        assert!(!c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.fill(0, true);
        c.fill(4, false);
        let ev = c.fill(8, false).expect("dirty victim");
        assert_eq!(
            ev,
            Evicted {
                line: 0,
                dirty: true
            }
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = small();
        c.fill(0, false);
        c.fill(4, false);
        assert_eq!(c.fill(8, false), None);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = small();
        c.fill(0, false);
        c.access(0, true);
        c.fill(4, false);
        assert!(c.fill(8, false).is_some());
    }

    #[test]
    fn flush_range_invalidates_and_counts_dirty() {
        let mut c = small();
        c.fill(0, true);
        c.fill(1, false);
        c.fill(2, true);
        let dirty = c.flush_range(0, 2 * LINE_BYTES); // lines 0..2
        assert_eq!(dirty, 1);
        assert!(!c.probe(0) && !c.probe(1));
        assert!(c.probe(2));
        assert_eq!(c.stats().flushed, 2);
    }

    #[test]
    fn prefetch_usefulness_tracked() {
        let mut c = small();
        c.fill_prefetch(3);
        assert_eq!(c.useful_prefetches(), 0);
        c.access(3, false);
        assert_eq!(c.useful_prefetches(), 1);
        // Second access no longer counts.
        c.access(3, false);
        assert_eq!(c.useful_prefetches(), 1);
    }

    #[test]
    fn refill_of_resident_line_does_not_evict() {
        let mut c = small();
        c.fill(0, false);
        c.fill(4, false);
        assert_eq!(c.fill(0, true), None);
        assert!(c.probe(0) && c.probe(4));
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = small();
        c.fill(0, false);
        c.access(0, false);
        c.access(9, false);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
