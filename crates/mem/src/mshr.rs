//! Miss-status holding registers: bounded tables of outstanding line misses
//! with same-line merging. Generic over the waiter record so host-side
//! levels track `(port, id)` while NUCA clusters track full return paths.

/// A host-side waiter attached to an outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// Port that issued the demand request.
    pub port: u32,
    /// Request id, echoed in the response.
    pub id: u64,
    /// Whether the demand was a write.
    pub write: bool,
}

#[derive(Debug, Clone)]
struct Entry<W> {
    line: u64,
    waiters: Vec<W>,
    /// Whether any merged demand was a write (fill must install dirty).
    any_write: bool,
}

/// Result of attempting to register a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// A new entry was created: the caller must forward the miss downstream.
    Allocated,
    /// Merged into an existing entry for the same line: no new downstream
    /// request is needed.
    Merged,
    /// The table is full; the caller must retry later (stall).
    Full,
}

/// A bounded MSHR table.
///
/// # Examples
///
/// ```
/// use distda_mem::mshr::{Mshr, MshrAlloc, Waiter};
/// let mut m: Mshr<Waiter> = Mshr::new(2);
/// let w = Waiter { port: 0, id: 1, write: false };
/// assert_eq!(m.register(10, w, false), MshrAlloc::Allocated);
/// assert_eq!(m.register(10, Waiter { id: 2, ..w }, true), MshrAlloc::Merged);
/// let (waiters, any_write) = m.complete(10).unwrap();
/// assert_eq!(waiters.len(), 2);
/// assert!(any_write);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<W> {
    entries: Vec<Entry<W>>,
    capacity: usize,
    /// Retired waiter vectors, recycled into new entries so the
    /// allocate/complete cycle stops touching the global allocator once
    /// the table has warmed up (occupancy is bounded by `capacity`).
    pool: Vec<Vec<W>>,
    /// Stall events observed (register returned `Full`).
    pub stalls: u64,
    /// High-water mark of occupancy.
    pub high_water: usize,
}

impl<W> Mshr<W> {
    /// Creates a table with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mshr capacity must be nonzero");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            pool: Vec::with_capacity(capacity),
            stalls: 0,
            high_water: 0,
        }
    }

    /// A waiter vector for a fresh entry: recycled when possible.
    fn waiters_vec(&mut self) -> Vec<W> {
        self.pool.pop().unwrap_or_default()
    }

    /// Registers a demand miss for `line`; `write` marks store semantics.
    pub fn register(&mut self, line: u64, waiter: W, write: bool) -> MshrAlloc {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.waiters.push(waiter);
            e.any_write |= write;
            return MshrAlloc::Merged;
        }
        if self.entries.len() >= self.capacity {
            self.stalls += 1;
            return MshrAlloc::Full;
        }
        let mut waiters = self.waiters_vec();
        waiters.push(waiter);
        self.entries.push(Entry {
            line,
            waiters,
            any_write: write,
        });
        self.high_water = self.high_water.max(self.entries.len());
        MshrAlloc::Allocated
    }

    /// Registers a miss with no waiter (prefetch). Returns `Allocated`,
    /// `Merged` (already outstanding) or `Full`.
    pub fn register_prefetch(&mut self, line: u64) -> MshrAlloc {
        if self.entries.iter().any(|e| e.line == line) {
            return MshrAlloc::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrAlloc::Full;
        }
        let waiters = self.waiters_vec();
        self.entries.push(Entry {
            line,
            waiters,
            any_write: false,
        });
        self.high_water = self.high_water.max(self.entries.len());
        MshrAlloc::Allocated
    }

    /// Completes the outstanding miss for `line`, returning its waiters and
    /// whether any demand was a write. `None` if the line is not pending.
    ///
    /// The returned vector leaves the pool for good; steady-state callers
    /// use [`Mshr::complete_into`] instead.
    pub fn complete(&mut self, line: u64) -> Option<(Vec<W>, bool)> {
        let idx = self.entries.iter().position(|e| e.line == line)?;
        let e = self.entries.swap_remove(idx);
        Some((e.waiters, e.any_write))
    }

    /// Completes the outstanding miss for `line`, draining its waiters
    /// into `out` (appended) and recycling the entry's storage. Returns
    /// whether any merged demand was a write, `None` if the line is not
    /// pending. The allocation-free form of [`Mshr::complete`].
    pub fn complete_into(&mut self, line: u64, out: &mut Vec<W>) -> Option<bool> {
        let idx = self.entries.iter().position(|e| e.line == line)?;
        let mut e = self.entries.swap_remove(idx);
        out.append(&mut e.waiters);
        self.pool.push(e.waiters);
        Some(e.any_write)
    }

    /// Whether `line` has an outstanding miss.
    pub fn pending(&self, line: u64) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Lines with outstanding misses, in registration order.
    pub fn pending_lines(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.line).collect()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the table is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: Waiter = Waiter {
        port: 1,
        id: 0,
        write: false,
    };

    #[test]
    fn allocate_merge_complete_cycle() {
        let mut m: Mshr<Waiter> = Mshr::new(4);
        assert_eq!(m.register(7, W, false), MshrAlloc::Allocated);
        assert_eq!(
            m.register(7, Waiter { id: 1, ..W }, false),
            MshrAlloc::Merged
        );
        assert!(m.pending(7));
        let (ws, write) = m.complete(7).unwrap();
        assert_eq!(ws.len(), 2);
        assert!(!write);
        assert!(!m.pending(7));
        assert!(m.complete(7).is_none());
    }

    #[test]
    fn capacity_enforced_and_stall_counted() {
        let mut m: Mshr<Waiter> = Mshr::new(1);
        assert_eq!(m.register(1, W, false), MshrAlloc::Allocated);
        assert_eq!(m.register(2, W, false), MshrAlloc::Full);
        assert_eq!(m.stalls, 1);
        // Merging into the existing line still works at capacity.
        assert_eq!(m.register(1, W, false), MshrAlloc::Merged);
    }

    #[test]
    fn write_merge_propagates_dirtiness() {
        let mut m: Mshr<Waiter> = Mshr::new(2);
        m.register(3, W, false);
        m.register(3, W, true);
        let (_, any_write) = m.complete(3).unwrap();
        assert!(any_write);
    }

    #[test]
    fn prefetch_registration_has_no_waiters() {
        let mut m: Mshr<Waiter> = Mshr::new(2);
        assert_eq!(m.register_prefetch(9), MshrAlloc::Allocated);
        assert_eq!(m.register_prefetch(9), MshrAlloc::Merged);
        let (ws, _) = m.complete(9).unwrap();
        assert!(ws.is_empty());
    }

    #[test]
    fn demand_can_merge_into_prefetch() {
        let mut m: Mshr<Waiter> = Mshr::new(2);
        m.register_prefetch(5);
        assert_eq!(m.register(5, W, false), MshrAlloc::Merged);
        let (ws, _) = m.complete(5).unwrap();
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut m: Mshr<Waiter> = Mshr::new(3);
        m.register(1, W, false);
        m.register(2, W, false);
        m.complete(1);
        m.register(3, W, false);
        assert_eq!(m.high_water, 2);
    }

    #[test]
    fn complete_into_drains_and_recycles() {
        let mut m: Mshr<Waiter> = Mshr::new(2);
        m.register(7, W, false);
        m.register(7, Waiter { id: 1, ..W }, true);
        let mut out = Vec::new();
        assert_eq!(m.complete_into(7, &mut out), Some(true));
        assert_eq!(out.len(), 2);
        assert!(m.complete_into(7, &mut out).is_none());
        // The retired entry's storage is reused by the next allocation.
        assert_eq!(m.pool.len(), 1);
        m.register(9, W, false);
        assert!(m.pool.is_empty());
    }

    #[test]
    fn generic_waiter_types_work() {
        let mut m: Mshr<(usize, u64)> = Mshr::new(2);
        m.register(4, (7, 99), true);
        let (ws, w) = m.complete(4).unwrap();
        assert_eq!(ws, vec![(7, 99)]);
        assert!(w);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_panics() {
        let _ = Mshr::<Waiter>::new(0);
    }
}
