//! Physical placement of lines onto NUCA clusters.
//!
//! By default lines interleave across clusters (conventional static NUCA).
//! The slab allocator pins accelerator-visible memory objects to a *home
//! cluster* ("the home bank where they are anchored", Section IV-D), which
//! is what lets near-data placement co-locate computation with data.

use crate::params::LINE_BYTES;

/// Maps line addresses to home clusters.
///
/// # Examples
///
/// ```
/// use distda_mem::addrmap::AddressMap;
/// let mut m = AddressMap::new(8);
/// assert_eq!(m.home_cluster(0), 0);
/// assert_eq!(m.home_cluster(64), 1);
/// m.pin_region(0x10000, 0x20000, 5);
/// assert_eq!(m.home_cluster(0x10040), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    clusters: usize,
    /// Pinned byte ranges: (start, end, cluster), non-overlapping.
    regions: Vec<(u64, u64, usize)>,
}

impl AddressMap {
    /// Creates an interleaved map over `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn new(clusters: usize) -> Self {
        assert!(clusters > 0, "cluster count must be nonzero");
        Self {
            clusters,
            regions: Vec::new(),
        }
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Pins the byte range `[start, end)` to `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, the cluster is out of range, or the
    /// range overlaps an existing pinned region.
    pub fn pin_region(&mut self, start: u64, end: u64, cluster: usize) {
        assert!(start < end, "empty region");
        assert!(cluster < self.clusters, "cluster out of range");
        assert!(
            !self.regions.iter().any(|&(s, e, _)| start < e && s < end),
            "overlapping pinned region"
        );
        self.regions.push((start, end, cluster));
    }

    /// Removes all pinned regions.
    pub fn clear_regions(&mut self) {
        self.regions.clear();
    }

    /// Home cluster of the line containing byte address `addr`.
    pub fn home_cluster(&self, addr: u64) -> usize {
        for &(s, e, c) in &self.regions {
            if addr >= s && addr < e {
                return c;
            }
        }
        ((addr / LINE_BYTES) % self.clusters as u64) as usize
    }

    /// Home cluster of a line address.
    pub fn home_cluster_of_line(&self, line: u64) -> usize {
        self.home_cluster(line * LINE_BYTES)
    }

    /// Pinned regions, for inspection.
    pub fn regions(&self) -> &[(u64, u64, usize)] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_cycles_through_clusters() {
        let m = AddressMap::new(4);
        let homes: Vec<usize> = (0..8).map(|i| m.home_cluster(i * LINE_BYTES)).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn pinned_region_overrides_interleave() {
        let mut m = AddressMap::new(8);
        m.pin_region(1024, 2048, 3);
        assert_eq!(m.home_cluster(1024), 3);
        assert_eq!(m.home_cluster(2047), 3);
        assert_ne!(m.home_cluster(2048), 3); // line 32 -> cluster 0
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_rejected() {
        let mut m = AddressMap::new(2);
        m.pin_region(0, 100, 0);
        m.pin_region(50, 150, 1);
    }

    #[test]
    #[should_panic(expected = "cluster out of range")]
    fn bad_cluster_rejected() {
        let mut m = AddressMap::new(2);
        m.pin_region(0, 10, 5);
    }

    #[test]
    fn clear_restores_interleave() {
        let mut m = AddressMap::new(8);
        m.pin_region(0, 4096, 7);
        m.clear_regions();
        assert_eq!(m.home_cluster(0), 0);
    }

    #[test]
    fn line_and_byte_lookup_agree() {
        let mut m = AddressMap::new(8);
        m.pin_region(0x4000, 0x8000, 2);
        for line in 0..0x300 {
            assert_eq!(
                m.home_cluster_of_line(line),
                m.home_cluster(line * LINE_BYTES)
            );
        }
    }
}
