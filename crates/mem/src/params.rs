//! Configuration for the modeled memory hierarchy (paper Table III).

/// Cache line size used throughout the machine.
pub const LINE_BYTES: u64 = 64;

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways).
    pub assoc: usize,
    /// Access latency in memory-clock cycles.
    pub latency: u64,
    /// Miss-status holding registers (outstanding misses).
    pub mshrs: usize,
}

impl CacheParams {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into whole sets.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / LINE_BYTES;
        assert!(
            (lines as usize).is_multiple_of(self.assoc) && lines > 0,
            "cache geometry must divide into whole sets"
        );
        lines as usize / self.assoc
    }
}

/// Parameters of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Host L1 data cache (8-way, 32 KB, MSHR-8, latency 2).
    pub l1: CacheParams,
    /// Host L2 (16-way, 128 KB, MSHR-16, latency 4, stride prefetcher).
    pub l2: CacheParams,
    /// One L3 NUCA cluster (16-way, 256 KB, latency 10); 8 clusters, 64
    /// MSHRs per cluster.
    pub l3_cluster: CacheParams,
    /// Number of L3 clusters (one per mesh node).
    pub clusters: usize,
    /// Banks per cluster = L3 accesses the cluster can start per cycle.
    pub banks_per_cluster: usize,
    /// Whether the L2 stride prefetcher is enabled.
    pub l2_prefetch: bool,
    /// DRAM access latency in memory-clock cycles.
    pub dram_latency: u64,
    /// DRAM bandwidth in bytes per memory-clock cycle.
    pub dram_bytes_per_cycle: u64,
}

impl Default for MemConfig {
    /// The configuration of Table III at a 2 GHz memory/uncore clock.
    fn default() -> Self {
        Self {
            l1: CacheParams {
                size_bytes: 32 * 1024,
                assoc: 8,
                latency: 2,
                mshrs: 8,
            },
            l2: CacheParams {
                size_bytes: 128 * 1024,
                assoc: 16,
                latency: 4,
                mshrs: 16,
            },
            l3_cluster: CacheParams {
                size_bytes: 256 * 1024,
                assoc: 16,
                latency: 10,
                mshrs: 64,
            },
            clusters: 8,
            banks_per_cluster: 4,
            l2_prefetch: true,
            // LPDDR: ~50 ns access at 2 GHz memory clock; ~8.5 GB/s/channel.
            dram_latency: 100,
            dram_bytes_per_cycle: 4,
        }
    }
}

impl MemConfig {
    /// Hierarchy scaled down 4x for the reduced evaluation inputs (the
    /// standard methodology when inputs are shrunk from the paper's
    /// multi-MB sets: capacities scale together so the working-set-to-
    /// cache ratios match Table III). Latencies and MSHRs are unchanged.
    pub fn scaled_for_reduced_inputs() -> Self {
        Self {
            l1: CacheParams {
                size_bytes: 8 * 1024,
                ..Self::default().l1
            },
            l2: CacheParams {
                size_bytes: 32 * 1024,
                ..Self::default().l2
            },
            l3_cluster: CacheParams {
                size_bytes: 64 * 1024,
                ..Self::default().l3_cluster
            },
            ..Self::default()
        }
    }
}

/// Converts a byte address to its cache-line address.
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii() {
        let c = MemConfig::default();
        assert_eq!(c.l1.sets(), 64);
        assert_eq!(c.l2.sets(), 128);
        assert_eq!(c.l3_cluster.sets(), 256);
        assert_eq!(
            c.clusters * c.l3_cluster.size_bytes as usize,
            2 * 1024 * 1024
        );
        assert_eq!(c.clusters, 8);
        assert_eq!(c.banks_per_cluster, 4);
    }

    #[test]
    fn line_of_strips_offset() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_of(130), 2);
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn bad_geometry_panics() {
        CacheParams {
            size_bytes: 100,
            assoc: 3,
            latency: 1,
            mshrs: 1,
        }
        .sets();
    }
}
