//! The cycle-stepped memory hierarchy engine.
//!
//! Wires per-core private L1/L2 caches, the 8-cluster static-NUCA L3, and
//! the DRAM controller together. The engine does **not** own the mesh —
//! packets it wants to send are queued on an outgoing queue that the
//! machine model injects into the shared NoC (accelerator operand traffic
//! shares the same mesh, as in the paper), and delivered packets are handed
//! back via [`MemSystem::deliver`].
//!
//! The model is timing-only: functional bytes live in the workload
//! interpreter. Caches track tags/dirtiness; DRAM is latency + bandwidth.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use distda_check::Sanitizer;
use distda_noc::{Packet, TrafficClass};
use distda_sim::port::{Channel, PortSnapshot};
use distda_sim::time::{ClockDomain, Tick};
use distda_sim::Report;
use distda_trace::{EventKind, TraceSink, Tracer};

use crate::addrmap::AddressMap;
use crate::cache::{Cache, CacheStats, Lookup};
use crate::dram::Dram;
use crate::msg::{
    MemMsg, MemRequest, MemResponse, PortId, PortKind, ReqId, ReturnPath, HOST_L2, PF_PORT,
};
use crate::mshr::{Mshr, MshrAlloc, Waiter};
use crate::params::{line_of, MemConfig, LINE_BYTES};
use crate::prefetch::StridePrefetcher;

/// Counters not covered by per-cache statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemSysStats {
    /// Cycles a request stalled for a full L1 MSHR.
    pub l1_mshr_stalls: u64,
    /// Cycles a request stalled for a full L2 MSHR.
    pub l2_mshr_stalls: u64,
    /// Cluster bank-port conflicts (retried accesses).
    pub l3_port_conflicts: u64,
    /// Prefetch requests issued to L3.
    pub prefetch_issued: u64,
    /// Writeback messages sent toward L3/DRAM.
    pub writebacks_sent: u64,
    /// Lines invalidated by offload-boundary flushes.
    pub flushed_lines: u64,
    /// Requests accepted.
    pub requests: u64,
    /// Responses produced.
    pub responses: u64,
}

#[derive(Debug, Clone)]
enum Action {
    L1Access(MemRequest),
    L2Access {
        core: usize,
        line: u64,
    },
    ClusterAccess {
        cluster: usize,
        line: u64,
        write: bool,
        writeback: bool,
        ret: ReturnPath,
    },
    ClusterFill {
        cluster: usize,
        line: u64,
    },
    DramSend {
        cluster: usize,
        line: u64,
        write: bool,
    },
    RespondLine {
        cluster: usize,
        line: u64,
        ret: ReturnPath,
        write: bool,
    },
    HostFill {
        core: usize,
        line: u64,
    },
    L1Fill {
        core: usize,
        line: u64,
    },
    Respond(MemResponse),
    AcpAccess(MemRequest),
}

#[derive(Debug)]
struct HeapItem {
    at: Tick,
    seq: u64,
    action: Action,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug)]
struct HostCaches {
    l1: Cache,
    l2: Cache,
    l1_mshr: Mshr<Waiter>,
    l2_mshr: Mshr<()>,
    pf: StridePrefetcher,
}

#[derive(Debug)]
struct Cluster {
    cache: Cache,
    mshr: Mshr<(ReturnPath, bool)>,
    used_this_cycle: u32,
    budget_cycle: u64,
}

/// The memory hierarchy engine. See the module docs for the protocol.
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemConfig,
    clock: ClockDomain,
    host_node: usize,
    memctrl_node: usize,
    hosts: Vec<HostCaches>,
    clusters: Vec<Cluster>,
    dram: Dram,
    map: AddressMap,
    ports: Vec<PortKind>,
    /// Host-core index per port (usize::MAX for non-host ports).
    port_core: Vec<usize>,
    /// Per-requester response ports. Unbounded channels: occupancy is
    /// already limited by each requester's outstanding-request window,
    /// so back-pressure lives at the request side, not here.
    resp: Vec<Channel<MemResponse>>,
    actions: BinaryHeap<Reverse<HeapItem>>,
    seq: u64,
    /// Mesh-bound protocol packets, drained by the owning machine
    /// through the port handshake (peek, inject, accept).
    out: Channel<Packet<MemMsg>>,
    stats: MemSysStats,
    sink: TraceSink,
    san: Sanitizer,
    /// Reused waiter buffers for the fill paths (see `Mshr::complete_into`).
    w_cluster: Vec<(ReturnPath, bool)>,
    w_l1: Vec<Waiter>,
    w_l2: Vec<()>,
    /// Disjoint `[start, end)` byte ranges owned by each tenant, for
    /// attributing memory-protocol packets to the tenant whose data they
    /// move. Empty (the default) attributes everything to tenant 0.
    tenant_ranges: Vec<(u64, u64, u16)>,
}

impl MemSystem {
    /// Creates the hierarchy. `host_node` and `memctrl_node` are mesh nodes
    /// (clusters are numbered identically to mesh nodes).
    ///
    /// # Panics
    ///
    /// Panics if the node indices exceed the cluster count.
    pub fn new(cfg: MemConfig, clock: ClockDomain, host_node: usize, memctrl_node: usize) -> Self {
        assert!(host_node < cfg.clusters && memctrl_node < cfg.clusters);
        Self {
            clusters: (0..cfg.clusters)
                .map(|_| Cluster {
                    cache: Cache::new(cfg.l3_cluster),
                    mshr: Mshr::new(cfg.l3_cluster.mshrs),
                    used_this_cycle: 0,
                    budget_cycle: u64::MAX,
                })
                .collect(),
            dram: Dram::new(cfg.dram_latency, cfg.dram_bytes_per_cycle, clock),
            map: AddressMap::new(cfg.clusters),
            hosts: Vec::new(),
            ports: Vec::new(),
            port_core: Vec::new(),
            resp: Vec::new(),
            actions: BinaryHeap::new(),
            seq: 0,
            out: Channel::unbounded(),
            stats: MemSysStats::default(),
            sink: TraceSink::default(),
            san: Sanitizer::disabled(),
            w_cluster: Vec::new(),
            w_l1: Vec::new(),
            w_l2: Vec::new(),
            tenant_ranges: Vec::new(),
            cfg,
            clock,
            host_node,
            memctrl_node,
        }
    }

    /// Attaches trace sinks: misses and MSHR pressure go to `mem`, DRAM
    /// bursts and queue depth to `mem.dram`. Disabled tracers cost nothing.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.sink = tracer.sink("mem");
        self.dram.set_sink(tracer.sink("mem.dram"));
    }

    /// Attaches an invariant sanitizer consulted by
    /// [`MemSystem::check_drained`]. A disabled sanitizer costs nothing.
    pub fn set_sanitizer(&mut self, san: Sanitizer) {
        self.san = san;
    }

    /// Registers a requester port. Each `Host` port gets its own private
    /// L1/L2 pair (one per simulated core).
    ///
    /// # Panics
    ///
    /// Panics if an `Acp` port names a cluster out of range.
    pub fn register_port(&mut self, kind: PortKind) -> PortId {
        if let PortKind::Acp { cluster } = kind {
            assert!(cluster < self.cfg.clusters, "acp cluster out of range");
        }
        if matches!(kind, PortKind::Host) {
            self.hosts.push(HostCaches {
                l1: Cache::new(self.cfg.l1),
                l2: Cache::new(self.cfg.l2),
                l1_mshr: Mshr::new(self.cfg.l1.mshrs),
                l2_mshr: Mshr::new(self.cfg.l2.mshrs),
                pf: StridePrefetcher::new(8, 2),
            });
            self.port_core.push(self.hosts.len() - 1);
        } else {
            self.port_core.push(usize::MAX);
        }
        let id = PortId(self.ports.len() as u32);
        self.ports.push(kind);
        self.resp.push(Channel::unbounded());
        id
    }

    /// The mutable address map (the slab allocator pins regions here).
    pub fn addr_map_mut(&mut self) -> &mut AddressMap {
        &mut self.map
    }

    /// The address map.
    pub fn addr_map(&self) -> &AddressMap {
        &self.map
    }

    /// The uncore clock domain.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Declares the `[start, end)` byte range owned by `tenant`. Ranges
    /// must be disjoint; memory-protocol packets touching a line inside a
    /// declared range are attributed to its tenant in the NoC statistics
    /// (undeclared addresses attribute to tenant 0).
    pub fn declare_tenant_range(&mut self, start: u64, end: u64, tenant: u16) {
        self.tenant_ranges.push((start, end, tenant));
    }

    /// The tenant owning cache line `line` (0 when unclaimed).
    fn tenant_of_line(&self, line: u64) -> u16 {
        if self.tenant_ranges.is_empty() {
            return 0;
        }
        let addr = line * LINE_BYTES;
        self.tenant_ranges
            .iter()
            .find(|&&(s, e, _)| addr >= s && addr < e)
            .map(|&(_, _, t)| t)
            .unwrap_or(0)
    }

    /// Host-core index of a host port, precomputed at registration
    /// (meaningless for ACP ports, which never reach the L1 path).
    fn core_of(&self, port: PortId) -> usize {
        self.port_core[port.0 as usize]
    }

    fn schedule(&mut self, at: Tick, action: Action) {
        self.seq += 1;
        self.actions.push(Reverse(HeapItem {
            at,
            seq: self.seq,
            action,
        }));
    }

    fn cy(&self, cycles: u64) -> Tick {
        self.clock.ticks_for_cycles(cycles)
    }

    /// Presents a request. Requests are always accepted (internal queues
    /// absorb them); callers self-limit outstanding requests.
    ///
    /// # Panics
    ///
    /// Panics if the port was never registered.
    pub fn try_request(&mut self, now: Tick, req: MemRequest) -> Result<(), MemRequest> {
        let kind = *self
            .ports
            .get(req.port.0 as usize)
            .expect("unregistered port");
        self.stats.requests += 1;
        match kind {
            PortKind::Host => self.schedule(now, Action::L1Access(req)),
            PortKind::Acp { .. } => self.schedule(now + self.cy(1), Action::AcpAccess(req)),
        }
        Ok(())
    }

    /// The response port of one requester: completed responses arrive
    /// here and the requester accepts them through the port handshake.
    pub fn responses(&mut self, port: PortId) -> &mut Channel<MemResponse> {
        &mut self.resp[port.0 as usize]
    }

    /// Drains completed responses for a port into a fresh vector
    /// (test-oriented; steady-state callers accept through
    /// [`MemSystem::responses`] without touching the allocator).
    pub fn take_responses(&mut self, port: PortId) -> Vec<MemResponse> {
        let ch = &mut self.resp[port.0 as usize];
        let mut v = Vec::with_capacity(ch.len());
        let mut rx = ch.rx();
        while let Some(r) = rx.accept() {
            v.push(r);
        }
        v
    }

    /// Whether any response is waiting on `port`.
    pub fn has_responses(&self, port: PortId) -> bool {
        !self.resp[port.0 as usize].is_empty()
    }

    /// The mesh-bound packet port: the owning machine peeks the head,
    /// attempts injection, and accepts only once the mesh took the
    /// packet (so a refused injection leaves the head unchanged).
    pub fn outgoing(&mut self) -> &mut Channel<Packet<MemMsg>> {
        &mut self.out
    }

    /// All registered ports, in registration order.
    pub fn ports(&self) -> impl Iterator<Item = PortId> + '_ {
        (0..self.ports.len()).map(|i| PortId(i as u32))
    }

    /// Port statistics of the mesh-bound packet port.
    pub fn out_snapshot(&self) -> PortSnapshot {
        self.out.snapshot(distda_sim::port_names::MEM_OUT)
    }

    /// Port statistics of one requester's response port.
    pub fn resp_snapshot(&self, port: PortId) -> PortSnapshot {
        self.resp[port.0 as usize].snapshot(distda_sim::port_names::mem_resp(port.0 as usize))
    }

    /// Enqueues a mesh-bound packet on the outgoing port (unbounded:
    /// protocol progress must never deadlock on injection; the mesh's
    /// real back-pressure is applied at injection time by the machine).
    fn out_push(&mut self, pkt: Packet<MemMsg>) {
        self.out
            .tx()
            .offer(pkt)
            .expect("mem mesh port is unbounded");
    }

    /// Handles a packet delivered by the mesh to a memory component.
    pub fn deliver(&mut self, now: Tick, pkt: Packet<MemMsg>) {
        match pkt.payload {
            MemMsg::LineReq {
                line,
                write,
                writeback,
                ret,
            } => self.schedule(
                now,
                Action::ClusterAccess {
                    cluster: pkt.dst,
                    line,
                    write,
                    writeback,
                    ret,
                },
            ),
            MemMsg::LineResp {
                line,
                port,
                id,
                write,
            } => {
                if port == HOST_L2 || port == PF_PORT {
                    self.schedule(
                        now,
                        Action::HostFill {
                            core: id as usize,
                            line,
                        },
                    );
                } else {
                    self.push_response(MemResponse {
                        port: PortId(port),
                        id,
                        addr: line * LINE_BYTES,
                        write,
                    });
                }
            }
            MemMsg::DramReq {
                line,
                write,
                from_cluster,
            } => self.dram.enqueue(now, line, write, from_cluster),
            MemMsg::DramResp { line, to_cluster } => self.schedule(
                now,
                Action::ClusterFill {
                    cluster: to_cluster,
                    line,
                },
            ),
        }
    }

    fn push_response(&mut self, r: MemResponse) {
        self.stats.responses += 1;
        let p = r.port.0 as usize;
        self.resp[p]
            .tx()
            .offer(r)
            .expect("response ports are unbounded");
    }

    /// Whether work remains in flight inside the hierarchy.
    pub fn is_active(&self) -> bool {
        !self.actions.is_empty() || self.dram.pending() > 0 || !self.out.is_empty()
    }

    /// Responses produced but not yet drained by their requesters.
    ///
    /// Not part of [`MemSystem::is_active`] (the requester, not the
    /// hierarchy, must collect them), but a drained machine must have
    /// collected every one — leaving them outstanding is the drain-leak
    /// bug this accessor exists to close.
    pub fn pending_responses(&self) -> usize {
        self.resp.iter().map(|c| c.len()).sum()
    }

    /// Audits the hierarchy's drained-state invariants: every MSHR
    /// released, every response collected, no queued action, packet or
    /// DRAM burst, and cache occupancy within geometry. Flags violations
    /// on the attached sanitizer.
    pub fn check_drained(&self, now: Tick) {
        if !self.san.on() {
            return;
        }
        for (core, h) in self.hosts.iter().enumerate() {
            self.san
                .check(h.l1_mshr.is_empty(), "mem", "mshr-drain", now, || {
                    format!(
                        "host core {core} L1 MSHR holds lines {:#x?}",
                        h.l1_mshr.pending_lines()
                    )
                });
            self.san
                .check(h.l2_mshr.is_empty(), "mem", "mshr-drain", now, || {
                    format!(
                        "host core {core} L2 MSHR holds lines {:#x?}",
                        h.l2_mshr.pending_lines()
                    )
                });
            for (name, c) in [("L1", &h.l1), ("L2", &h.l2)] {
                self.san.check(
                    c.resident_lines() <= c.capacity_lines(),
                    "mem",
                    "cache-occupancy",
                    now,
                    || {
                        format!(
                            "host core {core} {name}: {} resident > {} capacity",
                            c.resident_lines(),
                            c.capacity_lines()
                        )
                    },
                );
            }
        }
        for (i, cl) in self.clusters.iter().enumerate() {
            self.san
                .check(cl.mshr.is_empty(), "mem", "mshr-drain", now, || {
                    format!(
                        "cluster {i} MSHR holds lines {:#x?}",
                        cl.mshr.pending_lines()
                    )
                });
            self.san.check(
                cl.cache.resident_lines() <= cl.cache.capacity_lines(),
                "mem",
                "cache-occupancy",
                now,
                || {
                    format!(
                        "cluster {i}: {} resident > {} capacity",
                        cl.cache.resident_lines(),
                        cl.cache.capacity_lines()
                    )
                },
            );
        }
        self.san.check(
            self.pending_responses() == 0,
            "mem",
            "response-drain",
            now,
            || format!("{} responses never collected", self.pending_responses()),
        );
        self.san
            .check(!self.is_active(), "mem", "hierarchy-drain", now, || {
                format!(
                    "still active: {} actions, {} dram bursts, {} outgoing packets",
                    self.actions.len(),
                    self.dram.pending(),
                    self.out.len()
                )
            });
        self.san.check(
            self.stats.requests == self.stats.responses,
            "mem",
            "request-response-balance",
            now,
            || {
                format!(
                    "{} requests accepted but {} responses produced",
                    self.stats.requests, self.stats.responses
                )
            },
        );
    }

    /// Earliest tick `>= now` at which [`MemSystem::tick`] would do
    /// observable work, or `None` when the hierarchy is quiescent and only
    /// a new request can wake it.
    ///
    /// Undelivered responses and outgoing packets demand an immediate tick
    /// so the owning machine moves them along the same tick it would have
    /// in lock-step execution.
    pub fn next_event(&self, now: Tick) -> Option<Tick> {
        use distda_sim::time::earliest;
        if !self.out.is_empty() || self.resp.iter().any(|c| !c.is_empty()) {
            return Some(now);
        }
        let actions = self.actions.peek().map(|Reverse(top)| top.at.max(now));
        earliest(actions, self.dram.next_event(now))
    }

    /// Invalidates host-cached copies of `[start, end)` for every core
    /// (offload-boundary flush, Section IV-D). Returns dirty lines flushed.
    pub fn flush_host_range(&mut self, start: u64, end: u64) -> u64 {
        let mut dirty = 0;
        for h in &mut self.hosts {
            dirty += h.l1.flush_range(start, end);
            dirty += h.l2.flush_range(start, end);
        }
        self.stats.flushed_lines += dirty;
        dirty
    }

    /// Advances the hierarchy to base tick `now`.
    pub fn tick(&mut self, now: Tick) {
        // DRAM completion.
        if let Some(done) = self.dram.tick(now) {
            if !done.write {
                if done.from_cluster == self.memctrl_node {
                    self.schedule(
                        now,
                        Action::ClusterFill {
                            cluster: done.from_cluster,
                            line: done.line,
                        },
                    );
                } else {
                    self.out_push(
                        Packet::new(
                            self.memctrl_node,
                            done.from_cluster,
                            LINE_BYTES as u32,
                            TrafficClass::MemData,
                            MemMsg::DramResp {
                                line: done.line,
                                to_cluster: done.from_cluster,
                            },
                        )
                        .with_tenant(self.tenant_of_line(done.line)),
                    );
                }
            }
        }
        // Ready actions.
        while let Some(Reverse(top)) = self.actions.peek() {
            if top.at > now {
                break;
            }
            let item = self.actions.pop().expect("peeked").0;
            self.handle(now, item.action);
        }
    }

    fn handle(&mut self, now: Tick, action: Action) {
        match action {
            Action::L1Access(req) => self.l1_access(now, req),
            Action::L2Access { core, line } => self.l2_access(now, core, line),
            Action::ClusterAccess {
                cluster,
                line,
                write,
                writeback,
                ret,
            } => self.cluster_access(now, cluster, line, write, writeback, ret),
            Action::ClusterFill { cluster, line } => self.cluster_fill(now, cluster, line),
            Action::DramSend {
                cluster,
                line,
                write,
            } => self.dram_send(now, cluster, line, write),
            Action::RespondLine {
                cluster,
                line,
                ret,
                write,
            } => self.respond_line(now, cluster, line, ret, write),
            Action::HostFill { core, line } => self.host_fill(now, core, line),
            Action::L1Fill { core, line } => self.l1_fill(now, core, line),
            Action::Respond(r) => self.push_response(r),
            Action::AcpAccess(req) => self.acp_access(now, req),
        }
    }

    fn l1_access(&mut self, now: Tick, req: MemRequest) {
        let core = self.core_of(req.port);
        let line = line_of(req.addr);
        let lat = self.cy(self.cfg.l1.latency);
        let h = &mut self.hosts[core];
        if !h.l1.probe(line) && h.l1_mshr.is_full() && !h.l1_mshr.pending(line) {
            self.stats.l1_mshr_stalls += 1;
            let retry = self.cy(1);
            self.schedule(now + retry, Action::L1Access(req));
            return;
        }
        let h = &mut self.hosts[core];
        match h.l1.access(line, req.write) {
            Lookup::Hit => {
                let resp = MemResponse {
                    port: req.port,
                    id: req.id,
                    addr: req.addr,
                    write: req.write,
                };
                self.schedule(now + lat, Action::Respond(resp));
            }
            Lookup::Miss => {
                let waiter = Waiter {
                    port: req.port.0,
                    id: req.id,
                    write: req.write,
                };
                let alloc = h.l1_mshr.register(line, waiter, req.write);
                if self.sink.on() {
                    self.sink.instant(
                        now,
                        EventKind::CacheMiss {
                            level: 1,
                            unit: core as u16,
                            line,
                        },
                    );
                    let occ = self.hosts[core].l1_mshr.len();
                    self.sink.sample(now, "l1_mshr", occ as f64);
                }
                match alloc {
                    MshrAlloc::Allocated => {
                        self.schedule(now + lat, Action::L2Access { core, line })
                    }
                    MshrAlloc::Merged => {}
                    MshrAlloc::Full => unreachable!("checked above"),
                }
            }
        }
    }

    fn l2_access(&mut self, now: Tick, core: usize, line: u64) {
        // Train the stride prefetcher on the demand stream into L2.
        if self.cfg.l2_prefetch {
            let candidates = self.hosts[core].pf.observe(line);
            for pl in candidates {
                self.try_issue_prefetch(now, core, pl);
            }
        }
        let lat = self.cy(self.cfg.l2.latency);
        let h = &mut self.hosts[core];
        if !h.l2.probe(line) && h.l2_mshr.is_full() && !h.l2_mshr.pending(line) {
            self.stats.l2_mshr_stalls += 1;
            let retry = self.cy(1);
            self.schedule(now + retry, Action::L2Access { core, line });
            return;
        }
        let h = &mut self.hosts[core];
        match h.l2.access(line, false) {
            Lookup::Hit => self.schedule(now + lat, Action::L1Fill { core, line }),
            Lookup::Miss => {
                let alloc = h.l2_mshr.register(line, (), false);
                if self.sink.on() {
                    self.sink.instant(
                        now,
                        EventKind::CacheMiss {
                            level: 2,
                            unit: core as u16,
                            line,
                        },
                    );
                    let occ = self.hosts[core].l2_mshr.len();
                    self.sink.sample(now, "l2_mshr", occ as f64);
                }
                match alloc {
                    MshrAlloc::Allocated => {
                        let ret = ReturnPath {
                            node: self.host_node,
                            port: HOST_L2,
                            id: core as ReqId,
                        };
                        self.send_line_req(now + lat, self.host_node, line, false, false, ret);
                    }
                    MshrAlloc::Merged => {}
                    MshrAlloc::Full => unreachable!("checked above"),
                }
            }
        }
    }

    fn try_issue_prefetch(&mut self, now: Tick, core: usize, line: u64) {
        let h = &mut self.hosts[core];
        if h.l2.probe(line) || h.l2_mshr.pending(line) {
            return;
        }
        if h.l2_mshr.register_prefetch(line) == MshrAlloc::Allocated {
            self.stats.prefetch_issued += 1;
            let ret = ReturnPath {
                node: self.host_node,
                port: PF_PORT,
                id: core as ReqId,
            };
            self.send_line_req(now, self.host_node, line, false, false, ret);
        }
    }

    /// Sends a line request (or writeback) toward the home cluster of `line`.
    fn send_line_req(
        &mut self,
        now: Tick,
        src_node: usize,
        line: u64,
        write: bool,
        writeback: bool,
        ret: ReturnPath,
    ) {
        if writeback {
            self.stats.writebacks_sent += 1;
        }
        let home = self.map.home_cluster_of_line(line);
        if home == src_node {
            // Local bus, no NoC traversal.
            self.schedule(
                now + self.cy(1),
                Action::ClusterAccess {
                    cluster: home,
                    line,
                    write,
                    writeback,
                    ret,
                },
            );
            return;
        }
        let host_side = ret.port == HOST_L2 || ret.port == PF_PORT;
        let (class, bytes) = if write || writeback {
            (
                if host_side {
                    TrafficClass::HostData
                } else {
                    TrafficClass::AccData
                },
                LINE_BYTES as u32,
            )
        } else {
            (
                if host_side {
                    TrafficClass::HostCtrl
                } else {
                    TrafficClass::AccCtrl
                },
                0,
            )
        };
        self.out_push(
            Packet::new(
                src_node,
                home,
                bytes,
                class,
                MemMsg::LineReq {
                    line,
                    write,
                    writeback,
                    ret,
                },
            )
            .with_tenant(self.tenant_of_line(line)),
        );
    }

    fn cluster_budget_ok(&mut self, cluster: usize, now: Tick) -> bool {
        let cycle = self.clock.cycles_in(now);
        let cl = &mut self.clusters[cluster];
        if cl.budget_cycle != cycle {
            cl.budget_cycle = cycle;
            cl.used_this_cycle = 0;
        }
        if cl.used_this_cycle >= self.cfg.banks_per_cluster as u32 {
            return false;
        }
        cl.used_this_cycle += 1;
        true
    }

    fn cluster_access(
        &mut self,
        now: Tick,
        cluster: usize,
        line: u64,
        write: bool,
        writeback: bool,
        ret: ReturnPath,
    ) {
        if !self.cluster_budget_ok(cluster, now) {
            self.stats.l3_port_conflicts += 1;
            let retry = self.cy(1);
            self.schedule(
                now + retry,
                Action::ClusterAccess {
                    cluster,
                    line,
                    write,
                    writeback,
                    ret,
                },
            );
            return;
        }
        if writeback {
            let cl = &mut self.clusters[cluster];
            if cl.cache.probe(line) {
                cl.cache.access(line, true);
            } else {
                // Non-allocating writeback straight to memory.
                self.schedule(
                    now,
                    Action::DramSend {
                        cluster,
                        line,
                        write: true,
                    },
                );
            }
            return;
        }
        let lat = self.cy(self.cfg.l3_cluster.latency);
        let cl = &self.clusters[cluster];
        if !cl.cache.probe(line) && cl.mshr.is_full() && !cl.mshr.pending(line) {
            let retry = self.cy(1);
            self.schedule(
                now + retry,
                Action::ClusterAccess {
                    cluster,
                    line,
                    write,
                    writeback,
                    ret,
                },
            );
            return;
        }
        let cl = &mut self.clusters[cluster];
        match cl.cache.access(line, write) {
            Lookup::Hit => self.schedule(
                now + lat,
                Action::RespondLine {
                    cluster,
                    line,
                    ret,
                    write,
                },
            ),
            Lookup::Miss => {
                let alloc = cl.mshr.register(line, (ret, write), write);
                if self.sink.on() {
                    self.sink.instant(
                        now,
                        EventKind::CacheMiss {
                            level: 3,
                            unit: cluster as u16,
                            line,
                        },
                    );
                    let occ = self.clusters[cluster].mshr.len();
                    self.sink.sample(now, "cluster_mshr", occ as f64);
                }
                match alloc {
                    MshrAlloc::Allocated => self.schedule(
                        now + lat,
                        Action::DramSend {
                            cluster,
                            line,
                            write: false,
                        },
                    ),
                    MshrAlloc::Merged => {}
                    MshrAlloc::Full => unreachable!("checked above"),
                }
            }
        }
    }

    fn dram_send(&mut self, now: Tick, cluster: usize, line: u64, write: bool) {
        if cluster == self.memctrl_node {
            self.dram.enqueue(now, line, write, cluster);
        } else {
            let bytes = if write { LINE_BYTES as u32 } else { 0 };
            self.out_push(
                Packet::new(
                    cluster,
                    self.memctrl_node,
                    bytes,
                    TrafficClass::MemData,
                    MemMsg::DramReq {
                        line,
                        write,
                        from_cluster: cluster,
                    },
                )
                .with_tenant(self.tenant_of_line(line)),
            );
        }
    }

    fn cluster_fill(&mut self, now: Tick, cluster: usize, line: u64) {
        let mut waiters = std::mem::take(&mut self.w_cluster);
        waiters.clear();
        let Some(any_write) = self.clusters[cluster]
            .mshr
            .complete_into(line, &mut waiters)
        else {
            self.w_cluster = waiters;
            return; // spurious (e.g. duplicate fill): ignore
        };
        if let Some(ev) = self.clusters[cluster].cache.fill(line, any_write) {
            self.schedule(
                now,
                Action::DramSend {
                    cluster,
                    line: ev.line,
                    write: true,
                },
            );
        }
        let lat = self.cy(1);
        for &(ret, write) in &waiters {
            self.schedule(
                now + lat,
                Action::RespondLine {
                    cluster,
                    line,
                    ret,
                    write,
                },
            );
        }
        self.w_cluster = waiters;
    }

    fn respond_line(&mut self, now: Tick, cluster: usize, line: u64, ret: ReturnPath, write: bool) {
        if ret.node == cluster {
            // Local delivery: no NoC traversal.
            if ret.port == HOST_L2 || ret.port == PF_PORT {
                self.schedule(
                    now + self.cy(1),
                    Action::HostFill {
                        core: ret.id as usize,
                        line,
                    },
                );
            } else {
                self.push_response(MemResponse {
                    port: PortId(ret.port),
                    id: ret.id,
                    addr: line * LINE_BYTES,
                    write,
                });
            }
            return;
        }
        let host_side = ret.port == HOST_L2 || ret.port == PF_PORT;
        let (class, bytes) = if write {
            // Store ack: control only.
            (
                if host_side {
                    TrafficClass::HostCtrl
                } else {
                    TrafficClass::AccCtrl
                },
                0,
            )
        } else {
            (
                if host_side {
                    TrafficClass::HostData
                } else {
                    TrafficClass::AccData
                },
                LINE_BYTES as u32,
            )
        };
        self.out_push(
            Packet::new(
                cluster,
                ret.node,
                bytes,
                class,
                MemMsg::LineResp {
                    line,
                    port: ret.port,
                    id: ret.id,
                    write,
                },
            )
            .with_tenant(self.tenant_of_line(line)),
        );
    }

    fn host_fill(&mut self, now: Tick, core: usize, line: u64) {
        self.w_l2.clear();
        if self.hosts[core]
            .l2_mshr
            .complete_into(line, &mut self.w_l2)
            .is_none()
        {
            return;
        }
        let demand = !self.w_l2.is_empty();
        let evicted = if demand {
            self.hosts[core].l2.fill(line, false)
        } else {
            self.hosts[core].l2.fill_prefetch(line)
        };
        if let Some(ev) = evicted {
            let ret = ReturnPath {
                node: self.host_node,
                port: HOST_L2,
                id: core as ReqId,
            };
            self.send_line_req(now, self.host_node, ev.line, false, true, ret);
        }
        if demand {
            self.schedule(now + self.cy(1), Action::L1Fill { core, line });
        }
    }

    fn l1_fill(&mut self, now: Tick, core: usize, line: u64) {
        let mut waiters = std::mem::take(&mut self.w_l1);
        waiters.clear();
        let Some(any_write) = self.hosts[core].l1_mshr.complete_into(line, &mut waiters) else {
            self.w_l1 = waiters;
            return;
        };
        if let Some(ev) = self.hosts[core].l1.fill(line, any_write) {
            // Dirty L1 victim: write into L2 if present, else toward L3.
            if self.hosts[core].l2.probe(ev.line) {
                self.hosts[core].l2.access(ev.line, true);
            } else {
                let ret = ReturnPath {
                    node: self.host_node,
                    port: HOST_L2,
                    id: core as ReqId,
                };
                self.send_line_req(now, self.host_node, ev.line, false, true, ret);
            }
        }
        let lat = self.cy(1);
        for &w in &waiters {
            self.schedule(
                now + lat,
                Action::Respond(MemResponse {
                    port: PortId(w.port),
                    id: w.id,
                    addr: line * LINE_BYTES,
                    write: w.write,
                }),
            );
        }
        self.w_l1 = waiters;
    }

    fn acp_access(&mut self, now: Tick, req: MemRequest) {
        let PortKind::Acp { cluster } = self.ports[req.port.0 as usize] else {
            unreachable!("acp action on non-acp port");
        };
        let line = line_of(req.addr);
        let ret = ReturnPath {
            node: cluster,
            port: req.port.0,
            id: req.id,
        };
        let home = self.map.home_cluster_of_line(line);
        if home == cluster {
            self.schedule(
                now,
                Action::ClusterAccess {
                    cluster: home,
                    line,
                    write: req.write,
                    writeback: false,
                    ret,
                },
            );
        } else {
            let (class, bytes) = if req.write {
                (TrafficClass::AccData, LINE_BYTES as u32)
            } else {
                (TrafficClass::AccCtrl, 0)
            };
            self.out_push(
                Packet::new(
                    cluster,
                    home,
                    bytes,
                    class,
                    MemMsg::LineReq {
                        line,
                        write: req.write,
                        writeback: false,
                        ret,
                    },
                )
                .with_tenant(self.tenant_of_line(line)),
            );
        }
    }

    /// Per-core L1 statistics summed across cores.
    pub fn l1_stats(&self) -> CacheStats {
        self.hosts
            .iter()
            .map(|h| h.l1.stats())
            .fold(CacheStats::default(), |mut a, s| {
                a.accesses += s.accesses;
                a.hits += s.hits;
                a.misses += s.misses;
                a.fills += s.fills;
                a.writebacks += s.writebacks;
                a.flushed += s.flushed;
                a
            })
    }

    /// Per-core L2 statistics summed across cores.
    pub fn l2_stats(&self) -> CacheStats {
        self.hosts
            .iter()
            .map(|h| h.l2.stats())
            .fold(CacheStats::default(), |mut a, s| {
                a.accesses += s.accesses;
                a.hits += s.hits;
                a.misses += s.misses;
                a.fills += s.fills;
                a.writebacks += s.writebacks;
                a.flushed += s.flushed;
                a
            })
    }

    /// L3 statistics summed across clusters.
    pub fn l3_stats(&self) -> CacheStats {
        self.clusters
            .iter()
            .map(|c| c.cache.stats())
            .fold(CacheStats::default(), |mut a, s| {
                a.accesses += s.accesses;
                a.hits += s.hits;
                a.misses += s.misses;
                a.fills += s.fills;
                a.writebacks += s.writebacks;
                a.flushed += s.flushed;
                a
            })
    }

    /// DRAM (reads, writes).
    pub fn dram_counts(&self) -> (u64, u64) {
        (self.dram.reads, self.dram.writes)
    }

    /// Miscellaneous counters.
    pub fn sys_stats(&self) -> MemSysStats {
        self.stats
    }

    /// Useful prefetches (demand hits on prefetched L2 lines).
    pub fn useful_prefetches(&self) -> u64 {
        self.hosts.iter().map(|h| h.l2.useful_prefetches()).sum()
    }

    /// Folds all statistics into a report.
    pub fn report(&self) -> Report {
        let mut r = Report::new();
        for (name, s) in [
            ("l1", self.l1_stats()),
            ("l2", self.l2_stats()),
            ("l3", self.l3_stats()),
        ] {
            r.add(format!("{name}.accesses"), s.accesses as f64);
            r.add(format!("{name}.hits"), s.hits as f64);
            r.add(format!("{name}.misses"), s.misses as f64);
            r.add(format!("{name}.writebacks"), s.writebacks as f64);
        }
        let (dr, dw) = self.dram_counts();
        r.add("dram.reads", dr as f64);
        r.add("dram.writes", dw as f64);
        r.add("mshr.l1_stalls", self.stats.l1_mshr_stalls as f64);
        r.add("mshr.l2_stalls", self.stats.l2_mshr_stalls as f64);
        r.add("l3.port_conflicts", self.stats.l3_port_conflicts as f64);
        r.add("prefetch.issued", self.stats.prefetch_issued as f64);
        r.add("prefetch.useful", self.useful_prefetches() as f64);
        r.add("flushed_lines", self.stats.flushed_lines as f64);
        r
    }
}

/// The memory system as a self-contained
/// [`Component`](distda_sim::Component): it owns its caches, MSHRs, DRAM
/// model and outgoing-packet queue, so it implements the protocol for any
/// world. A composed machine whose other components push requests into it
/// mid-tick wraps it in an adapter over shared world state instead; this
/// impl serves standalone scheduling and conformance tests.
impl<W> distda_sim::Component<W> for MemSystem {
    fn name(&self) -> &str {
        "mem"
    }

    fn attach(&mut self, _world: &mut W, instr: &distda_sim::Instruments) {
        self.set_tracer(&instr.tracer);
        self.set_sanitizer(instr.san.clone());
    }

    fn tick(&mut self, now: Tick, _world: &mut W, _instr: &mut distda_sim::Instruments) {
        MemSystem::tick(self, now);
    }

    fn next_event(&self, now: Tick, _world: &W) -> Option<Tick> {
        MemSystem::next_event(self, now)
    }

    fn is_quiescent(&self, _now: Tick, _world: &W) -> bool {
        !self.is_active() && self.pending_responses() == 0
    }

    fn audit_drained(&self, now: Tick, _world: &W, _san: &Sanitizer) {
        self.check_drained(now);
    }

    fn stall(&self, _now: Tick, _world: &W) -> Option<String> {
        self.is_active()
            .then(|| "memory hierarchy active".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_noc::{Mesh, NocConfig};

    struct Rig {
        ms: MemSystem,
        mesh: Mesh<MemMsg>,
        now: Tick,
    }

    impl Rig {
        fn new() -> Self {
            let clock = ClockDomain::from_ghz(2.0);
            Self {
                ms: MemSystem::new(MemConfig::default(), clock, 0, 7),
                mesh: Mesh::new(4, 2, NocConfig::default(), clock),
                now: 0,
            }
        }

        fn step(&mut self) {
            self.ms.tick(self.now);
            while let Some(&pkt) = self.ms.outgoing().front() {
                if self.mesh.try_inject(self.now, pkt).is_err() {
                    break;
                }
                self.ms.outgoing().rx().accept();
            }
            self.mesh.tick(self.now);
            for node in 0..self.mesh.node_count() {
                for pkt in self.mesh.drain_inbox(node) {
                    self.ms.deliver(self.now, pkt);
                }
            }
            self.now += 1;
        }

        fn run_until_response(&mut self, port: PortId, budget: u64) -> (Vec<MemResponse>, Tick) {
            let start = self.now;
            for _ in 0..budget {
                self.step();
                if self.ms.has_responses(port) {
                    return (self.ms.take_responses(port), self.now - start);
                }
            }
            panic!("no response within {budget} ticks");
        }
    }

    #[test]
    fn host_read_miss_reaches_dram_and_returns() {
        let mut rig = Rig::new();
        let p = rig.ms.register_port(PortKind::Host);
        rig.ms
            .try_request(
                0,
                MemRequest {
                    port: p,
                    id: 1,
                    addr: 0x1000,
                    write: false,
                },
            )
            .unwrap();
        let (resps, lat) = rig.run_until_response(p, 100_000);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].id, 1);
        let (dr, _) = rig.ms.dram_counts();
        assert_eq!(dr, 1);
        // Cold miss must cost far more than an L1 hit.
        assert!(lat > 100, "cold miss latency {lat} suspiciously low");
    }

    #[test]
    fn second_access_hits_l1_fast() {
        let mut rig = Rig::new();
        let p = rig.ms.register_port(PortKind::Host);
        rig.ms
            .try_request(
                0,
                MemRequest {
                    port: p,
                    id: 1,
                    addr: 0x40,
                    write: false,
                },
            )
            .unwrap();
        let (_, cold) = rig.run_until_response(p, 100_000);
        let t = rig.now;
        rig.ms
            .try_request(
                t,
                MemRequest {
                    port: p,
                    id: 2,
                    addr: 0x40,
                    write: false,
                },
            )
            .unwrap();
        let (resps, warm) = rig.run_until_response(p, 10_000);
        assert_eq!(resps[0].id, 2);
        assert!(warm < cold / 4, "warm {warm} vs cold {cold}");
        assert_eq!(rig.ms.l1_stats().hits, 1);
    }

    #[test]
    fn acp_local_cluster_is_faster_than_remote() {
        let mut rig = Rig::new();
        // Pin two regions: one at cluster 2 (local port), one at cluster 5.
        rig.ms.addr_map_mut().pin_region(0x10000, 0x20000, 2);
        rig.ms.addr_map_mut().pin_region(0x20000, 0x30000, 5);
        let p = rig.ms.register_port(PortKind::Acp { cluster: 2 });

        rig.ms
            .try_request(
                0,
                MemRequest {
                    port: p,
                    id: 1,
                    addr: 0x10000,
                    write: false,
                },
            )
            .unwrap();
        let (_, cold_local) = rig.run_until_response(p, 100_000);
        // Warm them up (first accesses go to DRAM).
        let t = rig.now;
        rig.ms
            .try_request(
                t,
                MemRequest {
                    port: p,
                    id: 2,
                    addr: 0x20000,
                    write: false,
                },
            )
            .unwrap();
        let (_, _cold_remote) = rig.run_until_response(p, 100_000);

        // Warm accesses: local L3 hit vs remote L3 hit.
        let t = rig.now;
        rig.ms
            .try_request(
                t,
                MemRequest {
                    port: p,
                    id: 3,
                    addr: 0x10000,
                    write: false,
                },
            )
            .unwrap();
        let (_, warm_local) = rig.run_until_response(p, 100_000);
        let t = rig.now;
        rig.ms
            .try_request(
                t,
                MemRequest {
                    port: p,
                    id: 4,
                    addr: 0x20000,
                    write: false,
                },
            )
            .unwrap();
        let (_, warm_remote) = rig.run_until_response(p, 100_000);
        assert!(
            warm_remote > warm_local,
            "remote {warm_remote} should exceed local {warm_local}"
        );
        let _ = cold_local;
    }

    #[test]
    fn streaming_reads_train_the_prefetcher() {
        let mut rig = Rig::new();
        let p = rig.ms.register_port(PortKind::Host);
        for i in 0..32u64 {
            let id = i + 1;
            rig.ms
                .try_request(
                    rig.now,
                    MemRequest {
                        port: p,
                        id,
                        addr: i * LINE_BYTES,
                        write: false,
                    },
                )
                .unwrap();
            rig.run_until_response(p, 200_000);
        }
        assert!(rig.ms.sys_stats().prefetch_issued > 0, "prefetcher silent");
        assert!(rig.ms.useful_prefetches() > 0, "no useful prefetches");
    }

    #[test]
    fn write_then_flush_counts_dirty_lines() {
        let mut rig = Rig::new();
        let p = rig.ms.register_port(PortKind::Host);
        rig.ms
            .try_request(
                0,
                MemRequest {
                    port: p,
                    id: 1,
                    addr: 0x80,
                    write: true,
                },
            )
            .unwrap();
        rig.run_until_response(p, 100_000);
        let dirty = rig.ms.flush_host_range(0x80, 0xC0);
        assert_eq!(dirty, 1);
        assert_eq!(rig.ms.sys_stats().flushed_lines, 1);
    }

    #[test]
    fn all_requests_eventually_answered() {
        let mut rig = Rig::new();
        let p = rig.ms.register_port(PortKind::Host);
        let mut rng = distda_sim::SplitMix64::new(99);
        let n = 200;
        let mut sent = 0;
        let mut got = 0;
        let mut id = 0;
        while got < n {
            if sent < n && sent - got < 8 {
                id += 1;
                let addr = rng.below(1 << 20) & !7;
                let write = rng.below(2) == 0;
                rig.ms
                    .try_request(
                        rig.now,
                        MemRequest {
                            port: p,
                            id,
                            addr,
                            write,
                        },
                    )
                    .unwrap();
                sent += 1;
            }
            rig.step();
            got += rig.ms.take_responses(p).len();
            assert!(rig.now < 10_000_000, "hang: {got}/{n} responses");
        }
        assert_eq!(rig.ms.sys_stats().requests, n as u64);
        assert_eq!(rig.ms.sys_stats().responses, n as u64);
    }

    #[test]
    fn acp_write_gets_acknowledged() {
        let mut rig = Rig::new();
        let p = rig.ms.register_port(PortKind::Acp { cluster: 3 });
        rig.ms
            .try_request(
                0,
                MemRequest {
                    port: p,
                    id: 9,
                    addr: 0x40 * 3,
                    write: true,
                },
            )
            .unwrap();
        let (resps, _) = rig.run_until_response(p, 200_000);
        assert!(resps[0].write);
        assert_eq!(resps[0].id, 9);
    }

    #[test]
    fn capacity_evictions_generate_writebacks() {
        let mut rig = Rig::new();
        let p = rig.ms.register_port(PortKind::Host);
        // Write far more distinct lines than L1+L2 capacity in one set
        // region: stride by L2 sets * line so everything maps to set 0.
        let stride = 128 * LINE_BYTES;
        for i in 0..64u64 {
            let id = i + 1;
            rig.ms
                .try_request(
                    rig.now,
                    MemRequest {
                        port: p,
                        id,
                        addr: i * stride,
                        write: true,
                    },
                )
                .unwrap();
            rig.run_until_response(p, 400_000);
        }
        assert!(
            rig.ms.sys_stats().writebacks_sent > 0 || rig.ms.l2_stats().writebacks > 0,
            "no writebacks after thrashing one set with stores"
        );
    }
}
