//! Request/response types at the memory-system boundary and the messages it
//! exchanges over the shared NoC.

/// Caller-chosen request identifier, echoed in the response.
pub type ReqId = u64;

/// A registered requester port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u32);

/// Sentinel "port" for L2 demand fills (internal).
pub(crate) const HOST_L2: u32 = u32::MAX;
/// Sentinel "port" for L2 prefetch fills (internal).
pub(crate) const PF_PORT: u32 = u32::MAX - 1;

/// What kind of requester a port is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortKind {
    /// The host core: requests traverse L1 -> L2 -> NUCA L3.
    Host,
    /// An accelerator coherency port attached to an L3 cluster: requests
    /// reach the local cluster in one ACP cycle; remote lines are forwarded
    /// over the NoC to their home cluster.
    Acp {
        /// Cluster the port is physically attached to.
        cluster: usize,
    },
}

/// A memory request presented to [`crate::system::MemSystem::try_request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Issuing port.
    pub port: PortId,
    /// Echoed identifier.
    pub id: ReqId,
    /// Byte address.
    pub addr: u64,
    /// Whether this is a store.
    pub write: bool,
}

/// A completed memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Port the request came from.
    pub port: PortId,
    /// Echoed identifier.
    pub id: ReqId,
    /// Byte address.
    pub addr: u64,
    /// Whether it was a store.
    pub write: bool,
}

/// Where a cluster should send the line once available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReturnPath {
    /// Mesh node of the requester.
    pub node: usize,
    /// Raw port id (`HOST_L2`/`PF_PORT` sentinels for host-side fills).
    pub port: u32,
    /// Request id to echo.
    pub id: ReqId,
}

/// Messages the memory system exchanges over the shared mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemMsg {
    /// A line request (or writeback) to a home cluster.
    LineReq {
        /// Line address.
        line: u64,
        /// Store semantics (installs dirty).
        write: bool,
        /// Eviction writeback: carries data, needs no response.
        writeback: bool,
        /// Who to respond to.
        ret: ReturnPath,
    },
    /// A line grant back to a requester node.
    LineResp {
        /// Line address.
        line: u64,
        /// Destination port (raw) and request id.
        port: u32,
        /// Request id echo.
        id: ReqId,
        /// Whether the original demand was a store (ack).
        write: bool,
    },
    /// L3 miss forwarded to the memory controller.
    DramReq {
        /// Line address.
        line: u64,
        /// Write (no response needed).
        write: bool,
        /// Issuing cluster.
        from_cluster: usize,
    },
    /// DRAM fill returned to a cluster.
    DramResp {
        /// Line address.
        line: u64,
        /// Destination cluster.
        to_cluster: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_do_not_collide_with_real_ports() {
        assert_ne!(HOST_L2, PF_PORT);
        const { assert!(HOST_L2 > 1_000_000 && PF_PORT > 1_000_000) };
    }

    #[test]
    fn request_roundtrip_fields() {
        let r = MemRequest {
            port: PortId(3),
            id: 9,
            addr: 0x40,
            write: true,
        };
        assert_eq!(r.port, PortId(3));
        assert!(r.write);
    }
}
