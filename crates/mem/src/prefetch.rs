//! The L2 stride prefetcher of Table III.
//!
//! A small table of streams keyed by 4 KB region. When three consecutive
//! accesses to a region exhibit a constant line stride, the prefetcher emits
//! prefetch candidates `degree` strides ahead of the demand stream.

/// Stride prefetcher over line addresses.
///
/// # Examples
///
/// ```
/// use distda_mem::prefetch::StridePrefetcher;
/// let mut pf = StridePrefetcher::new(8, 2);
/// assert!(pf.observe(10).is_empty());
/// assert!(pf.observe(11).is_empty()); // stride candidate
/// let out = pf.observe(12); // stride confirmed
/// assert_eq!(out, vec![13, 14]);
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    entries: Vec<Stream>,
    capacity: usize,
    degree: usize,
    /// Prefetch candidates emitted.
    pub issued: u64,
}

#[derive(Debug, Clone, Copy)]
struct Stream {
    region: u64,
    last_line: u64,
    stride: i64,
    confidence: u8,
    lru: u64,
}

/// Lines per 4 KB region used as the stream key.
const REGION_LINES: u64 = 64;

impl StridePrefetcher {
    /// Creates a prefetcher with `capacity` stream entries issuing `degree`
    /// lines ahead.
    pub fn new(capacity: usize, degree: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            degree,
            issued: 0,
        }
    }

    /// Observes a demand access to `line` and returns lines to prefetch.
    pub fn observe(&mut self, line: u64) -> Vec<u64> {
        let region = line / REGION_LINES;
        let lru_tick = self.issued + self.entries.len() as u64; // monotone enough
        match self.entries.iter_mut().find(|s| s.region == region) {
            Some(s) => {
                let stride = line as i64 - s.last_line as i64;
                if stride == 0 {
                    return Vec::new();
                }
                if stride == s.stride {
                    s.confidence = s.confidence.saturating_add(1);
                } else {
                    s.stride = stride;
                    s.confidence = 1;
                }
                s.last_line = line;
                s.lru = lru_tick;
                if s.confidence >= 2 {
                    let stride = s.stride;
                    let out: Vec<u64> = (1..=self.degree as i64)
                        .filter_map(|k| {
                            let target = line as i64 + stride * k;
                            (target >= 0).then_some(target as u64)
                        })
                        .collect();
                    self.issued += out.len() as u64;
                    out
                } else {
                    Vec::new()
                }
            }
            None => {
                if self.entries.len() >= self.capacity {
                    // Evict the least recently used stream.
                    let victim = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.lru)
                        .map(|(i, _)| i)
                        .expect("capacity > 0");
                    self.entries.swap_remove(victim);
                }
                self.entries.push(Stream {
                    region,
                    last_line: line,
                    stride: 0,
                    confidence: 0,
                    lru: lru_tick,
                });
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unit_stride() {
        let mut pf = StridePrefetcher::new(4, 2);
        pf.observe(100);
        pf.observe(101);
        assert_eq!(pf.observe(102), vec![103, 104]);
        assert_eq!(pf.observe(103), vec![104, 105]);
        assert_eq!(pf.issued, 4);
    }

    #[test]
    fn detects_negative_stride() {
        let mut pf = StridePrefetcher::new(4, 1);
        pf.observe(50);
        pf.observe(48);
        assert_eq!(pf.observe(46), vec![44]);
    }

    #[test]
    fn irregular_stream_stays_quiet() {
        let mut pf = StridePrefetcher::new(4, 2);
        pf.observe(10);
        pf.observe(17);
        pf.observe(11);
        assert!(pf.observe(29).is_empty());
        assert_eq!(pf.issued, 0);
    }

    #[test]
    fn repeated_line_is_ignored() {
        let mut pf = StridePrefetcher::new(4, 2);
        pf.observe(5);
        pf.observe(5);
        pf.observe(5);
        assert!(pf.observe(5).is_empty());
    }

    #[test]
    fn does_not_underflow_below_zero() {
        let mut pf = StridePrefetcher::new(4, 4);
        pf.observe(5);
        pf.observe(4);
        let out = pf.observe(3);
        // Candidates below line 0 are dropped, the rest survive.
        assert_eq!(out, vec![2, 1, 0]);
    }

    #[test]
    fn capacity_evicts_streams() {
        let mut pf = StridePrefetcher::new(2, 1);
        // Three distinct regions (64 lines apart).
        pf.observe(0);
        pf.observe(64);
        pf.observe(128); // evicts one
        assert!(pf.entries.len() <= 2);
    }
}
