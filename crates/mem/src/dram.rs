//! A bandwidth- and latency-limited DRAM channel (LPDDR in Table III).
//!
//! The channel serializes data transfers (bandwidth), while the access
//! latency itself pipelines across outstanding requests — so independent
//! misses overlap, which the host's memory-level parallelism depends on.

use distda_sim::time::{ClockDomain, Tick};
use distda_trace::{EventKind, TraceSink};
use std::collections::VecDeque;

/// A DRAM access completing at some future tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramDone {
    /// Line address serviced.
    pub line: u64,
    /// Whether the access was a write.
    pub write: bool,
    /// Cluster that issued the access.
    pub from_cluster: usize,
}

/// A single-channel DRAM model. See the module docs.
///
/// # Examples
///
/// ```
/// use distda_mem::dram::Dram;
/// use distda_sim::time::ClockDomain;
/// let mut d = Dram::new(100, 4, ClockDomain::from_ghz(2.0));
/// d.enqueue(0, 42, false, 0);
/// let mut t = 0;
/// loop {
///     if let Some(done) = d.tick(t) {
///         assert_eq!(done.line, 42);
///         break;
///     }
///     t += 1;
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    latency_cycles: u64,
    bytes_per_cycle: u64,
    clock: ClockDomain,
    queue: VecDeque<(u64, bool, usize)>,
    /// Completions in start order (monotone done times).
    completions: VecDeque<(Tick, DramDone)>,
    busy_until: Tick,
    /// Reads serviced.
    pub reads: u64,
    /// Writes serviced.
    pub writes: u64,
    /// Ticks the channel spent transferring data (utilization).
    pub busy_ticks: u64,
    sink: TraceSink,
}

impl Dram {
    /// Creates a channel with `latency_cycles` access latency and
    /// `bytes_per_cycle` bandwidth, both in `clock` cycles.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn new(latency_cycles: u64, bytes_per_cycle: u64, clock: ClockDomain) -> Self {
        assert!(bytes_per_cycle > 0, "dram bandwidth must be nonzero");
        Self {
            latency_cycles,
            bytes_per_cycle,
            clock,
            queue: VecDeque::new(),
            completions: VecDeque::new(),
            busy_until: 0,
            reads: 0,
            writes: 0,
            busy_ticks: 0,
            sink: TraceSink::default(),
        }
    }

    /// Attaches a trace sink recording bursts and queue depth. A default
    /// (disabled) sink costs nothing.
    pub fn set_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// Queues an access.
    pub fn enqueue(&mut self, now: Tick, line: u64, write: bool, from_cluster: usize) {
        self.queue.push_back((line, write, from_cluster));
        if self.sink.on() {
            self.sink.instant(now, EventKind::DramBurst { line, write });
            self.sink.sample(now, "pending", self.pending() as f64);
        }
    }

    /// Advances one tick; returns a completed access, if any.
    pub fn tick(&mut self, now: Tick) -> Option<DramDone> {
        // Start everything queued: the channel time-shares via busy_until,
        // and the fixed access latency pipelines.
        while let Some((line, write, from_cluster)) = self.queue.pop_front() {
            let ser = crate::params::LINE_BYTES.div_ceil(self.bytes_per_cycle);
            let ser_ticks = self.clock.ticks_for_cycles(ser);
            let start = self.busy_until.max(now);
            self.busy_until = start + ser_ticks;
            self.busy_ticks += ser_ticks;
            let done_at = self.busy_until + self.clock.ticks_for_cycles(self.latency_cycles);
            if write {
                self.writes += 1;
            } else {
                self.reads += 1;
            }
            self.completions.push_back((
                done_at,
                DramDone {
                    line,
                    write,
                    from_cluster,
                },
            ));
        }
        match self.completions.front() {
            Some(&(t, done)) if t <= now => {
                self.completions.pop_front();
                Some(done)
            }
            _ => None,
        }
    }

    /// Outstanding accesses (queued or awaiting completion).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.completions.len()
    }

    /// Earliest tick `>= now` at which [`Dram::tick`] would do observable
    /// work, or `None` if the channel is idle.
    ///
    /// Queued accesses start relative to the tick at which `tick` is next
    /// called, so a non-empty queue demands an immediate tick; completions
    /// pop at most one per call, so an overdue completion does too.
    pub fn next_event(&self, now: Tick) -> Option<Tick> {
        if !self.queue.is_empty() {
            return Some(now);
        }
        // Completions are pushed in start order, so the front is earliest.
        self.completions.front().map(|&(t, _)| t.max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(d: &mut Dram, from: Tick, budget: u64) -> Vec<(Tick, DramDone)> {
        let mut out = Vec::new();
        for t in from..from + budget {
            if let Some(done) = d.tick(t) {
                out.push((t, done));
            }
        }
        out
    }

    #[test]
    fn read_completes_after_latency_and_serialization() {
        let clock = ClockDomain::from_ghz(2.0);
        let mut d = Dram::new(100, 4, clock);
        d.enqueue(0, 1, false, 2);
        let done = drain(&mut d, 0, 10_000);
        assert_eq!(done.len(), 1);
        let (t, dd) = done[0];
        assert_eq!(
            dd,
            DramDone {
                line: 1,
                write: false,
                from_cluster: 2
            }
        );
        // 16 cycles serialization + 100 latency = 116 cycles = 348 ticks.
        assert!(t >= clock.ticks_for_cycles(116));
        assert_eq!(d.reads, 1);
    }

    #[test]
    fn latency_pipelines_across_requests() {
        let clock = ClockDomain::from_ghz(2.0);
        let mut d = Dram::new(100, 4, clock);
        for i in 0..4 {
            d.enqueue(0, i, false, 0);
        }
        let done = drain(&mut d, 0, 100_000);
        assert_eq!(done.len(), 4);
        // Completions are spaced by the serialization time (16 cycles),
        // not the full access latency.
        let gap = done[1].0 - done[0].0;
        assert!(
            gap <= clock.ticks_for_cycles(20),
            "latency must pipeline; gap was {gap} ticks"
        );
        // Total far below 4 serial accesses.
        assert!(done[3].0 < clock.ticks_for_cycles(116 * 3));
    }

    #[test]
    fn bandwidth_serializes_back_to_back_accesses() {
        let clock = ClockDomain::from_ghz(2.0);
        let mut d = Dram::new(10, 4, clock);
        d.enqueue(0, 1, false, 0);
        d.enqueue(0, 2, false, 0);
        let done = drain(&mut d, 0, 100_000);
        assert_eq!(done.len(), 2);
        let gap = done[1].0 - done[0].0;
        // Second access serialized behind the first by >= 16 cycles.
        assert!(gap >= clock.ticks_for_cycles(16));
    }

    #[test]
    fn writes_counted_separately() {
        let mut d = Dram::new(1, 64, ClockDomain::from_ghz(2.0));
        d.enqueue(0, 5, true, 1);
        let done = drain(&mut d, 0, 1000);
        assert!(done[0].1.write);
        assert_eq!((d.reads, d.writes), (0, 1));
    }

    #[test]
    fn pending_counts_queue_and_in_flight() {
        let mut d = Dram::new(100, 4, ClockDomain::from_ghz(2.0));
        d.enqueue(0, 1, false, 0);
        d.enqueue(0, 2, false, 0);
        assert_eq!(d.pending(), 2);
        d.tick(0);
        assert_eq!(d.pending(), 2); // both started, none completed
    }

    #[test]
    fn utilization_tracked() {
        let clock = ClockDomain::from_ghz(2.0);
        let mut d = Dram::new(10, 4, clock);
        d.enqueue(0, 1, false, 0);
        drain(&mut d, 0, 10_000);
        assert_eq!(d.busy_ticks, clock.ticks_for_cycles(16));
    }
}
