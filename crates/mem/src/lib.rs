//! # distda-mem
//!
//! The memory hierarchy of the evaluated machine (paper Table III): per-core
//! private L1/L2 with MSHRs and an L2 stride prefetcher, a 2 MB static-NUCA
//! L3 split into 8 clusters on the mesh, and an LPDDR-style DRAM channel.
//!
//! The hierarchy is timing-only (tags, not bytes) and communicates with the
//! rest of the machine through [`system::MemSystem`]'s request/response
//! ports plus an outgoing-packet queue the machine injects into the shared
//! NoC. Accelerator coherency ports ([`msg::PortKind::Acp`]) attach directly
//! to an L3 cluster, which is what makes near-data placement pay off.
//!
//! ```
//! use distda_mem::{MemConfig, MemSystem};
//! use distda_mem::msg::{MemRequest, PortKind};
//! use distda_sim::time::ClockDomain;
//!
//! let mut ms = MemSystem::new(MemConfig::default(), ClockDomain::from_ghz(2.0), 0, 7);
//! let port = ms.register_port(PortKind::Host);
//! ms.try_request(0, MemRequest { port, id: 1, addr: 0x40, write: false }).unwrap();
//! assert!(ms.is_active());
//! ```

pub mod addrmap;
pub mod cache;
pub mod dram;
pub mod msg;
pub mod mshr;
pub mod params;
pub mod prefetch;
pub mod system;

pub use addrmap::AddressMap;
pub use cache::{Cache, CacheStats};
pub use msg::{MemMsg, MemRequest, MemResponse, PortId, PortKind, ReqId};
pub use params::{CacheParams, MemConfig, LINE_BYTES};
pub use system::MemSystem;
