//! Host-side functional evaluation with incremental trace emission.
//!
//! The program walker executes non-offloaded statements here: values take
//! effect on the shared memory image immediately, and one [`DynOp`] per
//! retired operation is appended to the current *segment*. Segments are
//! handed to the [`HostCore`](crate::host::HostCore) timing model at
//! offload boundaries (dependences never need to cross a segment because
//! boundaries are synchronization points).

use distda_ir::expr::{ArrayId, Expr, ScalarId};
use distda_ir::interp::Memory;
use distda_ir::program::Program;
use distda_ir::trace::{DynOp, Layout, OpKind, NO_DEP};
use distda_ir::value::Value;

/// Incremental host evaluator. See the module docs.
#[derive(Debug)]
pub struct HostEval {
    layout: Layout,
    /// Current scalar values.
    pub scalars: Vec<Value>,
    scalar_src: Vec<u32>,
    /// Current loop-variable values.
    pub loop_vars: Vec<i64>,
    seg: Vec<DynOp>,
    /// Sparse last-store tracking: (epoch, op) per element.
    store_stamp: Vec<Vec<(u32, u32)>>,
    epoch: u32,
}

impl HostEval {
    /// Creates an evaluator for a program under `layout`.
    pub fn new(prog: &Program, layout: Layout) -> Self {
        Self {
            layout,
            scalars: prog.scalars.iter().map(|s| s.init).collect(),
            scalar_src: vec![NO_DEP; prog.scalars.len()],
            loop_vars: vec![0; prog.loop_var_count],
            seg: Vec::new(),
            store_stamp: prog
                .arrays
                .iter()
                .map(|a| vec![(0, NO_DEP); a.len])
                .collect(),
            epoch: 1,
        }
    }

    /// The address layout in use.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Removes and returns the current segment, resetting dependence state.
    pub fn take_segment(&mut self) -> Vec<DynOp> {
        self.epoch += 1;
        for s in &mut self.scalar_src {
            *s = NO_DEP;
        }
        std::mem::take(&mut self.seg)
    }

    /// Ops accumulated in the current segment.
    pub fn segment_len(&self) -> usize {
        self.seg.len()
    }

    fn emit(&mut self, kind: OpKind, dep1: u32, dep2: u32) -> u32 {
        let i = self.seg.len() as u32;
        self.seg.push(DynOp { kind, dep1, dep2 });
        i
    }

    /// Emits a loop-control overhead op (induction increment + branch).
    pub fn emit_loop_overhead(&mut self) {
        self.emit(OpKind::Alu { lat: 1 }, NO_DEP, NO_DEP);
    }

    /// Marks a scalar as externally updated (offload live-out read back).
    pub fn set_scalar_external(&mut self, s: ScalarId, v: Value) {
        self.scalars[s.0] = v;
        self.scalar_src[s.0] = NO_DEP;
    }

    /// Evaluates an expression, returning its value and producing-op index.
    pub fn eval(&mut self, e: &Expr, mem: &mut Memory) -> (Value, u32) {
        match e {
            Expr::Const(v) => (*v, NO_DEP),
            Expr::LoopVar(lv) => (Value::I(self.loop_vars[lv.0]), NO_DEP),
            Expr::Scalar(s) => (self.scalars[s.0], self.scalar_src[s.0]),
            Expr::Load(a, idx) => {
                let (iv, idep) = self.eval(idx, mem);
                let i = iv.as_i64();
                let addr = self.layout.addr(*a, i);
                let slot = i.max(0) as usize;
                let mdep = match self.store_stamp[a.0].get(slot) {
                    Some(&(ep, op)) if ep == self.epoch => op,
                    _ => NO_DEP,
                };
                let op = self.emit(OpKind::Load { addr }, idep, mdep);
                (mem.load(*a, i), op)
            }
            Expr::Bin(op, a, b) => {
                let (va, da) = self.eval(a, mem);
                let (vb, db) = self.eval(b, mem);
                let lat = op.latency() as u8;
                let i = self.emit(OpKind::Alu { lat }, da, db);
                (op.apply(va, vb), i)
            }
            Expr::Un(op, a) => {
                let (va, da) = self.eval(a, mem);
                let lat = op.latency() as u8;
                let i = self.emit(OpKind::Alu { lat }, da, NO_DEP);
                (op.apply(va), i)
            }
            Expr::Select(c, a, b) => {
                let (vc, dc) = self.eval(c, mem);
                let (va, da) = self.eval(a, mem);
                let (vb, db) = self.eval(b, mem);
                let chosen = if vc.truthy() { da } else { db };
                let i = self.emit(OpKind::Alu { lat: 1 }, dc, chosen);
                (if vc.truthy() { va } else { vb }, i)
            }
        }
    }

    /// Executes `array[idx] = value` on the host.
    pub fn store(&mut self, a: ArrayId, idx: &Expr, val: &Expr, mem: &mut Memory) {
        let (iv, idep) = self.eval(idx, mem);
        let (v, vdep) = self.eval(val, mem);
        let i = iv.as_i64();
        let addr = self.layout.addr(a, i);
        let op = self.emit(OpKind::Store { addr }, vdep, idep);
        let slot = i.max(0) as usize;
        if let Some(st) = self.store_stamp[a.0].get_mut(slot) {
            *st = (self.epoch, op);
        }
        mem.store(a, i, v);
    }

    /// Executes `scalar = value` on the host.
    pub fn set_scalar(&mut self, s: ScalarId, val: &Expr, mem: &mut Memory) {
        let (v, dep) = self.eval(val, mem);
        self.scalars[s.0] = v;
        self.scalar_src[s.0] = dep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_ir::prelude::*;

    fn setup() -> (Program, HostEval, Memory) {
        let mut b = ProgramBuilder::new("t");
        let x = b.array_i64("x", 8);
        b.scalar("s", 0i64);
        let p = b.build();
        let layout = Layout::new(&p, 0x1000);
        let mut mem = Memory::for_program(&p);
        for i in 0..8 {
            mem.array_mut(x)[i] = Value::I(i as i64 * 10);
        }
        let eval = HostEval::new(&p, layout);
        (p, eval, mem)
    }

    #[test]
    fn eval_emits_ops_and_values() {
        let (_, mut ev, mut mem) = setup();
        let e = Expr::load(ArrayId(0), Expr::c(3)) + Expr::c(1);
        let (v, dep) = ev.eval(&e, &mut mem);
        assert_eq!(v, Value::I(31));
        assert_ne!(dep, distda_ir::NO_DEP);
        assert_eq!(ev.segment_len(), 2); // load + add
    }

    #[test]
    fn store_then_load_has_memory_dep() {
        let (_, mut ev, mut mem) = setup();
        ev.store(ArrayId(0), &Expr::c(2), &Expr::c(7), &mut mem);
        let (v, _) = ev.eval(&Expr::load(ArrayId(0), Expr::c(2)), &mut mem);
        assert_eq!(v, Value::I(7));
        let seg = ev.take_segment();
        let load = seg
            .iter()
            .find(|o| matches!(o.kind, distda_ir::OpKind::Load { .. }))
            .unwrap();
        // dep2 is the memory dep on the store (op 0).
        assert_eq!(load.dep2, 0);
    }

    #[test]
    fn segments_reset_dependences() {
        let (_, mut ev, mut mem) = setup();
        ev.store(ArrayId(0), &Expr::c(1), &Expr::c(9), &mut mem);
        ev.take_segment();
        let (_, _) = ev.eval(&Expr::load(ArrayId(0), Expr::c(1)), &mut mem);
        let seg = ev.take_segment();
        assert_eq!(seg[0].dep2, distda_ir::NO_DEP, "cross-segment dep dropped");
    }

    #[test]
    fn scalar_updates_thread_dependences() {
        let (_, mut ev, mut mem) = setup();
        let s = ScalarId(0);
        ev.set_scalar(s, &(Expr::c(1) + Expr::c(2)), &mut mem);
        assert_eq!(ev.scalars[0], Value::I(3));
        let (v, dep) = ev.eval(&Expr::Scalar(s), &mut mem);
        assert_eq!(v, Value::I(3));
        assert_ne!(dep, distda_ir::NO_DEP);
        ev.set_scalar_external(s, Value::I(42));
        let (v2, dep2) = ev.eval(&Expr::Scalar(s), &mut mem);
        assert_eq!(v2, Value::I(42));
        assert_eq!(dep2, distda_ir::NO_DEP);
    }
}
