//! Payloads on the shared mesh and the runtime state of cross-partition
//! operand channels.

use distda_ir::value::Value;
use distda_mem::MemMsg;
use distda_sim::{Channel, CreditLoop};

/// Everything the shared NoC carries: memory-system messages, channel
/// operands, channel credits, and configuration MMIOs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetMsg {
    /// Cache/DRAM protocol message.
    Mem(MemMsg),
    /// One operand produced onto a cross-partition channel.
    ChanData {
        /// Channel index.
        chan: u16,
        /// The operand.
        v: Value,
    },
    /// Credits returned by a consumer (batched: one packet per
    /// `CREDIT_BATCH` consumes, as real designs piggyback flow control).
    ChanCredit {
        /// Channel index.
        chan: u16,
        /// Number of credits carried.
        n: u16,
    },
    /// A host-initiated configuration write (effect applied immediately;
    /// the packet exists for traffic accounting).
    Mmio,
}

/// Runtime state of one decoupled producer-consumer channel (paper
/// Figure 4): a consumer-side handshaked buffer ([`Channel`]) plus the
/// producer-visible credit ring ([`CreditLoop`]).
#[derive(Debug, Clone)]
pub struct ChanState {
    /// Cluster of the producing partition.
    pub producer_cluster: usize,
    /// Cluster of the consuming partition.
    pub consumer_cluster: usize,
    /// Consumer-side operand buffer.
    pub queue: Channel<Value>,
    /// Credit flow control: producer spends, consumer returns (batched
    /// into credit packets for remote channels).
    pub flow: CreditLoop,
}

impl ChanState {
    /// Creates a channel with `capacity` operand slots.
    pub fn new(producer_cluster: usize, consumer_cluster: usize, capacity: usize) -> Self {
        Self {
            producer_cluster,
            consumer_cluster,
            queue: Channel::bounded(capacity),
            flow: CreditLoop::new(capacity, Self::CREDIT_BATCH),
        }
    }

    /// Credits returned per packet.
    pub const CREDIT_BATCH: usize = 8;

    /// Whether producer and consumer share a cluster (no NoC traversal).
    pub fn is_local(&self) -> bool {
        self.producer_cluster == self.consumer_cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_credits_start_at_capacity() {
        let c = ChanState::new(1, 2, 8);
        assert_eq!(c.flow.credits(), 8);
        assert!(!c.is_local());
        assert!(ChanState::new(3, 3, 4).is_local());
    }
}
