//! The slab allocator for accelerator-visible memory objects (paper
//! Section IV-D).
//!
//! Accelerator configurations anchor each data structure at a *home
//! cluster*: the allocator hands out a large contiguous region per cluster
//! and pins object ranges there, which both minimizes translation requests
//! and gives near-data placement its target. The conventional
//! (interleaved) layout is used by the OoO and Mono-CA baselines.

use distda_compiler::OffloadPlan;
use distda_ir::expr::ArrayId;
use distda_ir::program::Program;
use distda_ir::trace::Layout;
use distda_mem::MemSystem;

/// Object placement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocStrategy {
    /// Conventional static-NUCA line interleaving; no anchoring.
    Interleaved,
    /// Objects anchored round-robin across clusters (the default greedy
    /// first-touch stand-in; deterministic).
    RoundRobin,
    /// Objects co-used by one offload placed in adjacent clusters
    /// (the Figure 14 "+A" manual-allocation optimization).
    Affinity,
}

/// The outcome of allocation: byte layout plus per-object home cluster.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Byte addresses per array.
    pub layout: Layout,
    /// Home cluster per array (`None` = interleaved).
    pub home: Vec<Option<usize>>,
}

/// Base of the slab region (tenant 0; later tenants stack above it).
const SLAB_BASE: u64 = 0x4000_0000;
/// Bytes reserved per cluster.
const SLAB_PER_CLUSTER: u64 = 0x0400_0000;
/// Base of the interleaved (non-anchored) region for tenant 0.
const INTERLEAVED_BASE: u64 = 0x1000_0000;
/// Interleaved-region bytes reserved per tenant.
const INTERLEAVED_PER_TENANT: u64 = 0x0200_0000;

/// Allocates every array of `prog` and pins anchored regions in `mem`'s
/// address map.
///
/// # Panics
///
/// Panics if an object exceeds the per-cluster slab.
pub fn allocate(
    prog: &Program,
    plans: &[OffloadPlan],
    clusters: usize,
    strategy: AllocStrategy,
    mem: &mut MemSystem,
) -> Allocation {
    allocate_for_tenant(prog, plans, clusters, strategy, mem, 0)
}

/// [`allocate`] on behalf of `tenant`: the tenant gets its own disjoint
/// address band (interleaved region and per-cluster slabs), its anchored
/// objects rotate home clusters by the tenant index so co-scheduled
/// tenants don't all pile onto the same NUCA banks, and the band is
/// declared to `mem` for per-tenant traffic attribution. Tenant 0
/// reproduces [`allocate`] exactly.
///
/// # Panics
///
/// Panics if an object exceeds the per-cluster slab or the interleaved
/// region overflows its per-tenant band.
pub fn allocate_for_tenant(
    prog: &Program,
    plans: &[OffloadPlan],
    clusters: usize,
    strategy: AllocStrategy,
    mem: &mut MemSystem,
    tenant: u16,
) -> Allocation {
    let n = prog.arrays.len();
    let order: Vec<ArrayId> = match strategy {
        AllocStrategy::Interleaved => {
            let base = INTERLEAVED_BASE + tenant as u64 * INTERLEAVED_PER_TENANT;
            let total: u64 = prog
                .arrays
                .iter()
                .map(|a| (a.len as u64 * Program::ELEM_BYTES + 63) & !63)
                .sum();
            assert!(
                total <= INTERLEAVED_PER_TENANT,
                "program footprint overflows the per-tenant interleaved region"
            );
            if tenant > 0 {
                mem.declare_tenant_range(base, base + INTERLEAVED_PER_TENANT, tenant);
            }
            return Allocation {
                layout: Layout::new(prog, base),
                home: vec![None; n],
            };
        }
        AllocStrategy::RoundRobin => (0..n).map(ArrayId).collect(),
        AllocStrategy::Affinity => affinity_order(n, plans),
    };
    let slab0 = SLAB_BASE + tenant as u64 * clusters as u64 * SLAB_PER_CLUSTER;
    let mut home = vec![None; n];
    let mut cursor = vec![0u64; clusters];
    let mut bases = vec![0u64; n];
    for (k, a) in order.iter().enumerate() {
        let c = (k + tenant as usize) % clusters;
        let bytes = (prog.arrays[a.0].len as u64 * Program::ELEM_BYTES + 63) & !63;
        assert!(
            cursor[c] + bytes <= SLAB_PER_CLUSTER,
            "object {} overflows cluster slab",
            prog.arrays[a.0].name
        );
        let base = slab0 + c as u64 * SLAB_PER_CLUSTER + cursor[c];
        cursor[c] += bytes;
        bases[a.0] = base;
        home[a.0] = Some(c);
        if bytes > 0 {
            mem.addr_map_mut().pin_region(base, base + bytes, c);
        }
    }
    if tenant > 0 {
        mem.declare_tenant_range(slab0, slab0 + clusters as u64 * SLAB_PER_CLUSTER, tenant);
    }
    Allocation {
        layout: Layout::from_bases(bases),
        home,
    }
}

/// Orders arrays so objects co-used by the same offload land in adjacent
/// clusters.
fn affinity_order(n: usize, plans: &[OffloadPlan]) -> Vec<ArrayId> {
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for plan in plans {
        for part in &plan.partitions {
            for acc in &part.accesses {
                if !seen[acc.array.0] {
                    seen[acc.array.0] = true;
                    order.push(acc.array);
                }
            }
        }
    }
    for (i, s) in seen.iter().enumerate().take(n) {
        if !s {
            order.push(ArrayId(i));
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_ir::prelude::*;
    use distda_mem::MemConfig;
    use distda_sim::time::ClockDomain;

    fn prog() -> Program {
        let mut b = ProgramBuilder::new("t");
        b.array_f64("a", 100);
        b.array_f64("b", 100);
        b.array_f64("c", 100);
        b.build()
    }

    fn fresh_mem() -> MemSystem {
        MemSystem::new(MemConfig::default(), ClockDomain::from_ghz(2.0), 0, 7)
    }

    #[test]
    fn interleaved_has_no_homes() {
        let p = prog();
        let mut mem = fresh_mem();
        let a = allocate(&p, &[], 8, AllocStrategy::Interleaved, &mut mem);
        assert!(a.home.iter().all(|h| h.is_none()));
        assert!(mem.addr_map().regions().is_empty());
    }

    #[test]
    fn round_robin_spreads_homes() {
        let p = prog();
        let mut mem = fresh_mem();
        let a = allocate(&p, &[], 8, AllocStrategy::RoundRobin, &mut mem);
        assert_eq!(a.home, vec![Some(0), Some(1), Some(2)]);
        // Address map agrees with the recorded homes.
        for (i, h) in a.home.iter().enumerate() {
            let base = a.layout.base(ArrayId(i));
            assert_eq!(mem.addr_map().home_cluster(base), h.unwrap());
        }
    }

    #[test]
    fn anchored_objects_are_line_aligned_and_disjoint() {
        let p = prog();
        let mut mem = fresh_mem();
        let a = allocate(&p, &[], 8, AllocStrategy::RoundRobin, &mut mem);
        let mut ranges: Vec<(u64, u64)> = (0..3).map(|i| a.layout.range(&p, ArrayId(i))).collect();
        ranges.sort();
        for r in &ranges {
            assert_eq!(r.0 % 64, 0);
        }
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap");
        }
    }

    #[test]
    fn affinity_orders_by_plan_usage() {
        use distda_compiler::{compile, PartitionMode};
        let mut b = ProgramBuilder::new("t");
        let _a0 = b.array_f64("unused", 8);
        let x = b.array_f64("x", 8);
        let y = b.array_f64("y", 8);
        b.for_(0, 8, 1, |b, i| {
            b.store(y, i.clone(), Expr::load(x, i));
        });
        let p = b.build();
        let ck = compile(&p, PartitionMode::Distributed);
        let order = affinity_order(3, &ck.offloads);
        // Used arrays come first, then the unused one.
        assert_eq!(order.last(), Some(&ArrayId(0)));
    }
}
