//! The full machine model: host core + NUCA hierarchy + mesh + distributed
//! accelerator engines + operand channels, advanced in lock-step on the
//! 6 GHz base tick.
//!
//! The machine also implements the host-initiated half of the Table II
//! interface: [`Machine::configure_plan`] (`cp_config`,
//! `cp_config_stream/random`), [`Machine::launch`] (`cp_set_rf`, `cp_run`)
//! and [`Machine::read_liveouts`] (`cp_load_rf`), with MMIO traffic and
//! host occupancy charged for each.
//!
//! ## Composition
//!
//! Structurally the machine is a [`Scheduler`] over a [`MachineState`]
//! world. Each intra-tick phase — inbox delivery, host issue, engine
//! execution, memory hierarchy, packet injection, mesh routing — is a
//! registered [`Component`] with a fixed stage number; the scheduler owns
//! the clock, the skip-ahead wake probe, the tick budget, the drain loop
//! and the drain audit. Adding a component to the machine is a single
//! [`Scheduler::register`] call: the tick loop, wake probe, drain
//! predicate and drain audit all follow from the component's own
//! protocol implementation, so none of them can silently forget it.

use crate::config::Topology;
use crate::error::SimError;
use crate::host::HostCore;
use crate::netmsg::{ChanState, NetMsg};
use distda_accel::{EngineCtx, IssueModel, PartitionEngine, Wake};
use distda_check::Sanitizer;
use distda_compiler::plan::OffloadPlan;
use distda_energy::EnergyCounters;
use distda_ir::expr::ArrayId;
use distda_ir::interp::Memory;
use distda_ir::trace::{DynOp, Layout};
use distda_ir::value::Value;
use distda_mem::{MemRequest, MemSystem, PortId, PortKind};
use distda_noc::{Mesh, NocConfig, Packet, TrafficClass};
use distda_sim::component::{Component, Instruments, Scheduler, Stop};
use distda_sim::port::{Channel, PortSnapshot};
use distda_sim::port_names;
use distda_sim::time::{ClockDomain, Tick};
use distda_sim::Sampler;
use distda_trace::{EventKind, TraceSink, Tracer};
use std::collections::BTreeMap;

/// Operand slots per channel buffer.
pub const CHAN_CAPACITY: usize = 64;
/// Host cycles charged per MMIO configuration word.
const MMIO_CYCLES_PER_WORD: u64 = 1;
/// Base ticks (10 simulated seconds) before a run loop is declared hung.
const TICK_BUDGET: u64 = 60_000_000_000;

/// Intra-tick phase stages. Components tick in ascending stage order;
/// the numbers are spaced so future components can slot between phases.
mod stage {
    /// Deliver last tick's mesh arrivals to memory/channels.
    pub const DELIVERY: u32 = 0;
    /// Host core issues.
    pub const HOST: u32 = 10;
    /// Accelerator engines execute (registered later, one per engine).
    pub const ENGINE: u32 = 20;
    /// Memory hierarchy advances and injects its outgoing packets.
    pub const MEM: u32 = 30;
    /// Machine-level packets (channel data/credits, MMIO) inject.
    pub const NET_OUT: u32 = 40;
    /// Mesh routes.
    pub const MESH: u32 = 50;
    /// Windowed port/counter sampling freezes the tick's final state
    /// (registered lazily, only when explain sampling is on).
    pub const SAMPLE: u32 = 60;
}

/// Handle to a configured offload plan.
pub type PlanHandle = usize;

/// How one partition is realized in hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Substrate {
    /// Issue pacing (in-order width or CGRA II).
    pub model: IssueModel,
    /// Clock domain.
    pub clock: ClockDomain,
    /// Access-unit buffer capacity in lines.
    pub buffer_lines: usize,
    /// Whether this partition is a bare access node (FSM, not a core) —
    /// its ops are charged as buffer energy, not core energy.
    pub is_access_node: bool,
    /// Prefetch depth / outstanding limits (pf_ahead, max_reads,
    /// max_writes).
    pub tuning: (u64, u32, u32),
}

#[derive(Debug)]
struct EngineSlot {
    eng: PartitionEngine,
    cluster: usize,
    port: PortId,
    resp: Vec<u64>,
    chan_base: usize,
    is_access_node: bool,
    is_cgra: bool,
    /// Tenant this engine executes for (0 on single-tenant machines).
    /// Selects the functional image/layout view and tags outbound traffic.
    tenant: u16,
    /// Engine cycles stalled waiting on this slot's ACP port (mirrors the
    /// engine's `stall_mem` so per-port stall series sum to machine
    /// totals).
    mem_stalls: u64,
    /// Engine cycles stalled per global operand channel, charged at the
    /// same retry sites as the engine's `stall_chan` counter — the
    /// per-waiter attribution the explain blame edges carry (a channel
    /// port's raw counter mixes producer, consumer and delivery stalls).
    chan_stalls: BTreeMap<usize, u64>,
}

#[derive(Debug)]
struct PlanInst {
    engines: Vec<usize>,
    /// Live-outs: (scalar, engine slot index, carry register).
    liveouts: Vec<(distda_ir::expr::ScalarId, usize, u16)>,
    /// Carry scalars per engine (for `cp_set_rf` initialization).
    carry_scalars: Vec<Vec<distda_ir::expr::ScalarId>>,
    params: Vec<distda_compiler::affine::Sym>,
    /// Tenant the plan was configured for (0 on single-tenant machines).
    tenant: u16,
}

/// The shared world state every machine component operates on: the
/// structural units (mesh, memory hierarchy, host core, engines, operand
/// channels) plus the functional image and address layout.
///
/// Run-loop exit conditions receive `&MachineState` (plus the current
/// tick), so everything a condition might poll is readable here.
#[derive(Debug)]
pub struct MachineState {
    mesh: Mesh<NetMsg>,
    mem: MemSystem,
    host: HostCore,
    memimg: Memory,
    layout: Layout,
    chans: Vec<ChanState>,
    engines: Vec<EngineSlot>,
    plans: Vec<PlanInst>,
    /// Machine-level injection port into the mesh (channel operands,
    /// credits, MMIO). Bounded: producers observe back-pressure through
    /// the port handshake instead of an elastic queue.
    net_out: Channel<Packet<NetMsg>>,
    host_node: usize,
    mmio_words: u64,
    /// Functional image + layout views for tenants 1.. (tenant 0 uses the
    /// machine's primary `memimg`/`layout`). Index = tenant - 1.
    tenant_views: Vec<(Memory, Layout)>,
    /// Producer/consumer engine slot per global operand channel
    /// (parallel to `chans`) — the blame topology of the `chan{g}`
    /// ports, recorded at plan-configuration time.
    chan_engines: Vec<(usize, usize)>,
    /// Machine track: kernel phases, MMIO transfers, offload dispatches.
    sink: TraceSink,
    /// Host track: segment loads.
    host_sink: TraceSink,
    /// Channel track: per-channel occupancy series.
    chan_sink: TraceSink,
}

impl MachineState {
    /// Whether every engine of a plan has finished its invocation.
    pub fn plan_done(&self, handle: PlanHandle) -> bool {
        self.plans[handle]
            .engines
            .iter()
            .all(|&ei| self.engines[ei].eng.is_done())
    }

    /// The functional memory image.
    pub fn memimg(&self) -> &Memory {
        &self.memimg
    }

    /// Whether the host core's current trace segment has drained by `now`.
    pub fn host_segment_drained(&self, now: Tick) -> bool {
        self.host.segment_drained(now)
    }

    /// Freezes the statistics of every handshaked port in the machine —
    /// operand channels, the machine injection port, the memory system's
    /// mesh port and per-requester response ports, and the mesh inboxes.
    /// Engine-side ACP stall cycles are folded onto the matching
    /// response port so per-port stall series sum to the machine's
    /// `stall_mem`/`stall_chan` totals.
    pub fn port_snapshots(&self) -> Vec<PortSnapshot> {
        let mut out = Vec::new();
        for (g, ch) in self.chans.iter().enumerate() {
            out.push(ch.queue.snapshot(port_names::chan(g)));
        }
        out.push(self.net_out.snapshot(port_names::NET_OUT));
        out.push(self.mem.out_snapshot());
        for p in self.mem.ports() {
            let mut s = self.mem.resp_snapshot(p);
            if let Some(slot) = self.engines.iter().find(|s| s.port == p) {
                s.stalls = slot.mem_stalls;
            }
            out.push(s);
        }
        out.extend(self.mesh.inbox_snapshots());
        out
    }
}

/// Stage [`stage::DELIVERY`]: hands last tick's mesh arrivals to their
/// owners — memory-protocol messages to the hierarchy, operands and
/// credits to the channel buffers (checking credit conservation), MMIO
/// packets to nobody (their effect was applied at issue; the packet
/// exists for traffic accounting).
struct DeliveryComp;

impl Component<MachineState> for DeliveryComp {
    fn name(&self) -> &str {
        "delivery"
    }

    fn tick(&mut self, now: Tick, st: &mut MachineState, instr: &mut Instruments) {
        let san = &instr.san;
        let MachineState {
            mesh, mem, chans, ..
        } = st;
        mesh.for_each_delivered(|_node, pkt| {
            match pkt.payload {
                NetMsg::Mem(m) => {
                    let wrapped = Packet::new(pkt.src, pkt.dst, pkt.bytes, pkt.class, m)
                        .with_tenant(pkt.tenant);
                    mem.deliver(now, wrapped);
                }
                NetMsg::ChanData { chan, v } => {
                    if chans[chan as usize].queue.tx().offer(v).is_err() {
                        // Credits bound occupancy; an arrival beyond
                        // capacity means a credit was double-issued.
                        // With the sanitizer on this becomes a typed
                        // error (the operand is dropped — the run is
                        // already condemned); off, fail loudly as
                        // before.
                        if san.on() {
                            san.flag(
                                "machine.chan",
                                "credit-overflow",
                                now,
                                format!(
                                    "channel {chan} received an operand beyond its credited capacity"
                                ),
                            );
                        } else {
                            panic!("channel {chan} overflowed its credited capacity");
                        }
                    }
                }
                NetMsg::ChanCredit { chan, n } => {
                    chans[chan as usize].flow.grant(n as usize);
                    if san.on() {
                        let ch = &chans[chan as usize];
                        san.check(
                            ch.flow.conserves(ch.queue.len()),
                            "machine.chan",
                            "credit-conservation",
                            now,
                            || {
                                format!(
                                    "channel {chan}: credits {} + debt {} + queued {} > capacity {}",
                                    ch.flow.credits(),
                                    ch.flow.debt(),
                                    ch.queue.len(),
                                    ch.queue.capacity()
                                )
                            },
                        );
                    }
                }
                NetMsg::Mmio => {}
            }
        });
    }

    fn next_event(&self, now: Tick, st: &MachineState) -> Option<Tick> {
        st.mesh.has_inbox_pending().then_some(now)
    }

    fn is_quiescent(&self, _now: Tick, st: &MachineState) -> bool {
        !st.mesh.has_inbox_pending()
    }
}

/// Stage [`stage::HOST`]: the out-of-order host core collects memory
/// responses and issues into the hierarchy.
struct HostComp;

impl Component<MachineState> for HostComp {
    fn name(&self) -> &str {
        "host"
    }

    fn attach(&mut self, st: &mut MachineState, instr: &Instruments) {
        st.host_sink = instr.tracer.sink("host");
    }

    fn tick(&mut self, now: Tick, st: &mut MachineState, _instr: &mut Instruments) {
        let MachineState { host, mem, .. } = st;
        host.tick(now, mem);
    }

    fn next_event(&self, now: Tick, st: &MachineState) -> Option<Tick> {
        st.host.next_event(now)
    }

    fn is_quiescent(&self, now: Tick, st: &MachineState) -> bool {
        st.host.segment_drained(now)
    }

    fn stall(&self, now: Tick, st: &MachineState) -> Option<String> {
        (!st.host.segment_drained(now)).then(|| "host segment undrained".to_string())
    }
}

/// Passive component owning the operand-channel *audit*: channels are
/// advanced by the engines (producer/consumer sides) and the delivery
/// stage, never tick on their own, and were never part of the machine's
/// exit conditions — but a drained machine must leave every queue empty
/// and every credit conserved, which this component asserts.
struct ChannelsComp;

impl Component<MachineState> for ChannelsComp {
    fn name(&self) -> &str {
        "machine.chan"
    }

    fn attach(&mut self, st: &mut MachineState, instr: &Instruments) {
        st.chan_sink = instr.tracer.sink("machine.chan");
    }

    fn tick(&mut self, _now: Tick, _st: &mut MachineState, _instr: &mut Instruments) {}

    fn passive(&self) -> bool {
        true
    }

    fn next_event(&self, _now: Tick, _st: &MachineState) -> Option<Tick> {
        None
    }

    fn is_quiescent(&self, _now: Tick, _st: &MachineState) -> bool {
        true
    }

    fn audit_drained(&self, now: Tick, st: &MachineState, san: &Sanitizer) {
        for (g, ch) in st.chans.iter().enumerate() {
            san.check(
                ch.queue.is_empty(),
                "machine.chan",
                "channel-drain",
                now,
                || format!("channel {g} still holds {} operands", ch.queue.len()),
            );
            san.check(
                ch.flow.drained(),
                "machine.chan",
                "credit-conservation",
                now,
                || {
                    format!(
                        "channel {g}: credits {} + debt {} != capacity {CHAN_CAPACITY}",
                        ch.flow.credits(),
                        ch.flow.debt()
                    )
                },
            );
        }
        // The generic handshake audit over every machine port: no value
        // lost outside the TxPort/RxPort handshake, no occupancy beyond
        // the configured bound, nothing stranded after a drain.
        for v in distda_sim::conformance::check_ports(&st.port_snapshots(), now, true) {
            san.flag(&v.comp, v.rule, v.now, v.detail);
        }
    }
}

/// Stage [`stage::ENGINE`], one per configured engine: collects the
/// engine's port responses and executes one tick against its
/// [`EngineCtx`] view of the world.
struct EngineComp {
    index: usize,
    name: String,
}

impl Component<MachineState> for EngineComp {
    fn name(&self) -> &str {
        &self.name
    }

    fn attach(&mut self, st: &mut MachineState, instr: &Instruments) {
        st.engines[self.index]
            .eng
            .set_sink(instr.tracer.sink(&self.name));
    }

    fn tick(&mut self, now: Tick, st: &mut MachineState, _instr: &mut Instruments) {
        let MachineState {
            engines,
            mem,
            chans,
            net_out,
            memimg,
            layout,
            tenant_views,
            chan_sink,
            ..
        } = st;
        let slot = &mut engines[self.index];
        {
            let mut rx = mem.responses(slot.port).rx();
            while let Some(r) = rx.accept() {
                slot.resp.push(r.id);
            }
        }
        // Off the engine's clock edge `eng.tick` is a guaranteed no-op (it
        // gates on `fires_at` before touching anything), so the context
        // setup below would be built and thrown away — skip it.
        if !slot.eng.clock().fires_at(now) {
            return;
        }
        // The engine reads and writes its tenant's functional view.
        let (memimg, layout) = match slot.tenant {
            0 => (memimg, &*layout),
            t => {
                let (img, lay) = &mut tenant_views[t as usize - 1];
                (img, &*lay)
            }
        };
        let mut ctx = Ctx {
            now,
            port: slot.port,
            chan_base: slot.chan_base,
            tenant: slot.tenant,
            mem,
            chans,
            net_out,
            memimg,
            layout,
            resp: &mut slot.resp,
            chan_sink,
            mem_stalls: &mut slot.mem_stalls,
            chan_stalls: &mut slot.chan_stalls,
        };
        slot.eng.tick(now, &mut ctx);
    }

    fn next_event(&self, now: Tick, st: &MachineState) -> Option<Tick> {
        let slot = &st.engines[self.index];
        let clock = slot.eng.clock();
        if !slot.resp.is_empty() {
            // A response is waiting at the engine's port; it must be
            // handed over on the engine's next edge.
            return Some(clock.next_edge(now));
        }
        match slot.eng.wake() {
            Wake::Never => None,
            Wake::NextEdge => Some(clock.next_edge(now)),
            Wake::At(t) => Some(clock.next_edge(t.max(now))),
            Wake::External(chan) => {
                let ready = match chan {
                    Some((c, is_send)) => {
                        let ch = &st.chans[slot.chan_base + c as usize];
                        if is_send {
                            ch.flow.credits() > 0
                        } else {
                            !ch.queue.is_empty()
                        }
                    }
                    None => false,
                };
                ready.then(|| clock.next_edge(now))
            }
        }
    }

    fn is_quiescent(&self, _now: Tick, st: &MachineState) -> bool {
        let slot = &st.engines[self.index];
        slot.eng.is_quiescent() && slot.resp.is_empty()
    }

    fn audit_drained(&self, now: Tick, st: &MachineState, san: &Sanitizer) {
        let i = self.index;
        let slot = &st.engines[i];
        san.check(
            slot.eng.is_done() || slot.eng.is_idle(),
            "engine",
            "engine-settled",
            now,
            || format!("engine {i} mid-invocation: {}", slot.eng.stall_debug()),
        );
        san.check(
            slot.eng.is_quiescent(),
            "engine",
            "engine-quiescent",
            now,
            || {
                format!(
                    "engine {i} leaked in-flight memory: {}",
                    slot.eng.stall_debug()
                )
            },
        );
        san.check(
            slot.resp.is_empty(),
            "engine",
            "response-drain",
            now,
            || format!("engine {i}: {} responses never consumed", slot.resp.len()),
        );
    }

    fn stall(&self, _now: Tick, st: &MachineState) -> Option<String> {
        let slot = &st.engines[self.index];
        (!slot.eng.is_done() && !slot.eng.is_idle()).then(|| {
            format!(
                "engine {} (cluster {}): {}",
                self.index,
                slot.cluster,
                slot.eng.stall_debug()
            )
        })
    }
}

/// Stage [`stage::MEM`]: the memory hierarchy advances, then injects its
/// outgoing protocol packets into the mesh (back-pressured: a refused
/// packet returns to the front of the queue).
struct MemComp;

impl Component<MachineState> for MemComp {
    fn name(&self) -> &str {
        "mem"
    }

    fn attach(&mut self, st: &mut MachineState, instr: &Instruments) {
        st.mem.set_tracer(&instr.tracer);
        st.mem.set_sanitizer(instr.san.clone());
    }

    fn tick(&mut self, now: Tick, st: &mut MachineState, _instr: &mut Instruments) {
        // With no queued action, DRAM burst or outgoing packet, both the
        // hierarchy tick and the injection loop below are no-ops
        // (undrained responses are the requester's job, not ours).
        if !st.mem.is_active() {
            return;
        }
        st.mem.tick(now);
        // Peek-then-accept: the packet leaves the memory system's port
        // only once the mesh accepts it, so a refused injection leaves
        // the exact same packet at the head (stable data).
        while let Some(&p) = st.mem.outgoing().front() {
            let wrapped = Packet::new(p.src, p.dst, p.bytes, p.class, NetMsg::Mem(p.payload))
                .with_tenant(p.tenant);
            if st.mesh.try_inject(now, wrapped).is_err() {
                st.mem.outgoing().note_stalls(1);
                break;
            }
            st.mem.outgoing().rx().accept();
        }
    }

    fn next_event(&self, now: Tick, st: &MachineState) -> Option<Tick> {
        st.mem.next_event(now)
    }

    fn is_quiescent(&self, _now: Tick, st: &MachineState) -> bool {
        !st.mem.is_active() && st.mem.pending_responses() == 0
    }

    fn audit_drained(&self, now: Tick, st: &MachineState, _san: &Sanitizer) {
        st.mem.check_drained(now);
    }

    fn stall(&self, _now: Tick, st: &MachineState) -> Option<String> {
        st.mem
            .is_active()
            .then(|| "memory hierarchy active".to_string())
    }
}

/// Stage [`stage::NET_OUT`]: machine-level packets (channel operands,
/// credits, MMIO) inject into the mesh, back-pressured like memory
/// traffic.
struct NetOutComp;

impl Component<MachineState> for NetOutComp {
    fn name(&self) -> &str {
        "net-out"
    }

    fn tick(&mut self, now: Tick, st: &mut MachineState, _instr: &mut Instruments) {
        // Peek-then-accept, as in [`MemComp`]: a refused injection leaves
        // the packet at the head unchanged and charges an injection-stall
        // cycle to the port.
        while let Some(&p) = st.net_out.front() {
            if st.mesh.try_inject(now, p).is_err() {
                st.net_out.note_stalls(1);
                break;
            }
            st.net_out.rx().accept();
        }
    }

    fn next_event(&self, now: Tick, st: &MachineState) -> Option<Tick> {
        (!st.net_out.is_empty()).then_some(now)
    }

    fn is_quiescent(&self, _now: Tick, st: &MachineState) -> bool {
        st.net_out.is_empty()
    }

    fn stall(&self, _now: Tick, st: &MachineState) -> Option<String> {
        (!st.net_out.is_empty())
            .then(|| format!("{} packets queued for injection", st.net_out.len()))
    }
}

/// Stage [`stage::MESH`]: the mesh routes in-flight packets.
struct MeshComp;

impl Component<MachineState> for MeshComp {
    fn name(&self) -> &str {
        "noc"
    }

    fn attach(&mut self, st: &mut MachineState, instr: &Instruments) {
        st.mesh.set_sink(instr.tracer.sink("noc"));
        st.mesh.set_sanitizer(instr.san.clone());
    }

    fn tick(&mut self, now: Tick, st: &mut MachineState, _instr: &mut Instruments) {
        st.mesh.tick(now);
    }

    fn next_event(&self, now: Tick, st: &MachineState) -> Option<Tick> {
        st.mesh.next_event(now)
    }

    fn is_quiescent(&self, _now: Tick, st: &MachineState) -> bool {
        !st.mesh.is_active() && !st.mesh.has_inbox_pending()
    }

    fn audit_drained(&self, now: Tick, st: &MachineState, _san: &Sanitizer) {
        st.mesh.check_drained(now);
    }

    fn stall(&self, _now: Tick, st: &MachineState) -> Option<String> {
        st.mesh.is_active().then(|| "mesh active".to_string())
    }
}

/// Stage `stage::SAMPLE`: freezes the cumulative state of every port
/// plus per-engine busy/stall totals into the windowed sampler ring at
/// each window boundary. Registered lazily by [`Machine::set_sampler`],
/// so a machine without explain sampling carries no trace of it in the
/// hot loop. Ticking last in stage order makes the record the tick's
/// *final* state, identical whether the scheduler stepped or skipped to
/// the boundary (skipped ticks are provably no-ops).
///
/// The component's wake (`next_event`) is the next window boundary —
/// always finite, so with sampling on a genuine deadlock degrades to a
/// tick-budget error instead of an immediate deadlock diagnosis. That
/// trade-off only exists on explain runs.
struct SamplerComp {
    sampler: Sampler,
    /// Cached copy of the sampler's next boundary, refreshed after each
    /// record so the per-tick gate is a field compare, not a lock.
    boundary: Tick,
}

impl Component<MachineState> for SamplerComp {
    fn name(&self) -> &str {
        "sampler"
    }

    fn tick(&mut self, now: Tick, st: &mut MachineState, _instr: &mut Instruments) {
        if now < self.boundary {
            return;
        }
        let ports = st.port_snapshots();
        let mut counters = Vec::with_capacity(st.engines.len() * 3);
        for (i, s) in st.engines.iter().enumerate() {
            let es = s.eng.stats();
            let period = s.eng.clock().period_ticks();
            let name = port_names::engine(i);
            counters.push((format!("{name}.busy_ticks"), es.busy_cycles * period));
            counters.push((format!("{name}.stall_mem_ticks"), es.stall_mem * period));
            counters.push((format!("{name}.stall_chan_ticks"), es.stall_chan * period));
        }
        let refs: Vec<(&str, u64)> = counters.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        self.sampler.record_at(now, &ports, &refs);
        self.boundary = self.sampler.next_boundary();
    }

    fn next_event(&self, _now: Tick, _st: &MachineState) -> Option<Tick> {
        Some(self.boundary)
    }

    fn is_quiescent(&self, _now: Tick, _st: &MachineState) -> bool {
        true
    }
}

/// The machine: a [`Scheduler`] composed over [`MachineState`]. Construct
/// with [`Machine::new`], configure plans, then alternate host segments
/// and offload invocations.
#[derive(Debug)]
pub struct Machine {
    sched: Scheduler<MachineState>,
    st: MachineState,
    /// The attached windowed sampler (disabled unless
    /// [`Machine::set_sampler`] ran with an enabled one).
    sampler: Sampler,
}

impl Machine {
    /// Builds the machine described by `topo`: a `mesh_cols x mesh_rows`
    /// mesh with one NUCA cluster per node, the host at
    /// `topo.host_node` and the memory controller at `topo.memctrl_node`
    /// ([`Topology::paper`] reproduces Table III's 4x2 shape). The caller
    /// supplies the (already allocated) memory system, functional image
    /// and layout.
    ///
    /// # Panics
    ///
    /// Panics if the memory system was built for a different cluster
    /// count than `topo` describes.
    pub fn new(
        mem: MemSystem,
        memimg: Memory,
        layout: Layout,
        host_width: u32,
        host_rob: usize,
        topo: &Topology,
    ) -> Self {
        assert_eq!(
            mem.config().clusters,
            topo.clusters(),
            "memory system built for a different cluster count than the topology"
        );
        let uncore = mem.clock();
        let mut mem = mem;
        let host_port = mem.register_port(PortKind::Host);
        let host = HostCore::new(uncore, host_width, host_rob, host_port);
        let mut st = MachineState {
            mesh: Mesh::new(topo.mesh_cols, topo.mesh_rows, NocConfig::default(), uncore),
            mem,
            host,
            memimg,
            layout,
            chans: Vec::new(),
            engines: Vec::new(),
            plans: Vec::new(),
            // Base provisioning covers host MMIO bursts; configuring a
            // plan grows the bound by each remote channel's worst-case
            // in-flight traffic (see `configure_plan_for_tenant`).
            net_out: Channel::bounded(64.max(2 * topo.clusters())),
            host_node: topo.host_node,
            mmio_words: 0,
            tenant_views: Vec::new(),
            chan_engines: Vec::new(),
            sink: TraceSink::default(),
            host_sink: TraceSink::default(),
            chan_sink: TraceSink::default(),
        };
        let mut sched = Scheduler::new(TICK_BUDGET, distda_sim::env::skip());
        // Registration order is also instrument-attach order (stable trace
        // track IDs); stages give the intra-tick phase order.
        sched.register(stage::DELIVERY, Box::new(DeliveryComp), &mut st);
        sched.register(stage::HOST, Box::new(HostComp), &mut st);
        sched.register(stage::NET_OUT, Box::new(ChannelsComp), &mut st);
        sched.register(stage::MEM, Box::new(MemComp), &mut st);
        sched.register(stage::NET_OUT, Box::new(NetOutComp), &mut st);
        sched.register(stage::MESH, Box::new(MeshComp), &mut st);
        Self {
            sched,
            st,
            sampler: Sampler::disabled(),
        }
    }

    /// Current base tick.
    pub fn now(&self) -> Tick {
        self.sched.now()
    }

    /// Attaches a tracer to every component. Call before
    /// [`Machine::configure_plan`] so engine sinks are created too; a
    /// disabled tracer (the default) costs nothing.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        // The machine's own track registers first so track IDs are stable.
        self.st.sink = tracer.sink("machine");
        let san = self.sched.instruments().san.clone();
        let prof = self.sched.instruments().prof.clone();
        self.sched
            .set_instruments(&mut self.st, Instruments { tracer, san, prof });
    }

    /// The attached tracer (disabled unless [`Machine::set_tracer`] ran).
    pub fn tracer(&self) -> &Tracer {
        &self.sched.instruments().tracer
    }

    /// Attaches an invariant sanitizer to every component. With it on, the
    /// run loops stop with [`SimError::InvariantViolation`] as soon as a
    /// conservation law breaks, and [`Machine::drain`] audits the drained
    /// state. A disabled sanitizer (the default) costs nothing.
    pub fn set_sanitizer(&mut self, san: Sanitizer) {
        let tracer = self.sched.instruments().tracer.clone();
        let prof = self.sched.instruments().prof.clone();
        self.sched
            .set_instruments(&mut self.st, Instruments { tracer, san, prof });
    }

    /// Attaches a scheduler self-profiler: every registered component's
    /// `tick()` is timed against the host monotonic clock, wake targets and
    /// skip spans are counted. A disabled profiler (the default) costs one
    /// branch per tick. Profiling never perturbs simulated results.
    pub fn set_profiler(&mut self, prof: distda_sim::Profiler) {
        let tracer = self.sched.instruments().tracer.clone();
        let san = self.sched.instruments().san.clone();
        self.sched
            .set_instruments(&mut self.st, Instruments { tracer, san, prof });
    }

    /// Snapshot of the attached self-profiler (`None` when disabled),
    /// with the utilization window closed at the current tick.
    pub fn profile(&self) -> Option<distda_sim::ProfileSnapshot> {
        self.sched.instruments().prof.snapshot_at(self.sched.now())
    }

    /// Attaches a windowed port/counter sampler. An enabled sampler
    /// registers a `stage::SAMPLE` component that freezes cumulative
    /// port and engine statistics at every window boundary; a disabled
    /// one (the default) registers nothing, so the tick loop is exactly
    /// the un-sampled one and results stay byte-identical. Call at most
    /// once per machine, before running.
    ///
    /// # Panics
    ///
    /// Panics if an enabled sampler was already attached.
    pub fn set_sampler(&mut self, sampler: Sampler) {
        if !sampler.on() {
            return;
        }
        assert!(!self.sampler.on(), "sampler already attached");
        self.sampler = sampler.clone();
        let boundary = sampler.next_boundary();
        self.sched.register(
            stage::SAMPLE,
            Box::new(SamplerComp { sampler, boundary }),
            &mut self.st,
        );
    }

    /// The attached sampler (disabled unless [`Machine::set_sampler`]
    /// ran with an enabled one).
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// The blame topology of every handshaked port: which component
    /// accumulated stall cycles there, how many (per-waiter attribution,
    /// in the waiter's clock cycles), and which component those cycles
    /// indict. Operand channels get one edge per side from the
    /// configured plans — a send-blocked producer blames the consumer
    /// (back-pressure), a recv-starved consumer blames the producer —
    /// each carrying that engine's own attributed stalls. The structural
    /// ports are fixed: injection back-pressure indicts the mesh,
    /// response starvation indicts the memory system, inbox pressure
    /// indicts delivery; their stalls are the raw port counters (base
    /// ticks).
    pub fn port_topology(&self) -> Vec<distda_explain::Edge> {
        use distda_explain::Edge;
        let attributed = |ei: usize, g: usize| -> u64 {
            self.st.engines[ei]
                .chan_stalls
                .get(&g)
                .copied()
                .unwrap_or(0)
        };
        let mut edges = Vec::new();
        for (g, &(p, c)) in self.st.chan_engines.iter().enumerate() {
            edges.push(Edge::new(
                port_names::chan(g),
                port_names::engine(p),
                port_names::engine(c),
                attributed(p, g),
            ));
            if c != p {
                edges.push(Edge::new(
                    port_names::chan(g),
                    port_names::engine(c),
                    port_names::engine(p),
                    attributed(c, g),
                ));
            }
        }
        edges.push(Edge::new(
            port_names::NET_OUT,
            port_names::HOST,
            port_names::NOC,
            self.st.net_out.snapshot(port_names::NET_OUT).stalls,
        ));
        edges.push(Edge::new(
            port_names::MEM_OUT,
            port_names::MEM,
            port_names::NOC,
            self.st.mem.out_snapshot().stalls,
        ));
        for p in self.st.mem.ports() {
            let (waiter, stalls) = match self.st.engines.iter().position(|s| s.port == p) {
                Some(i) => (port_names::engine(i), self.st.engines[i].mem_stalls),
                None => (
                    port_names::HOST.to_string(),
                    self.st.mem.resp_snapshot(p).stalls,
                ),
            };
            edges.push(Edge::new(
                port_names::mem_resp(p.0 as usize),
                waiter,
                port_names::MEM,
                stalls,
            ));
        }
        for s in self.st.mesh.inbox_snapshots() {
            let stalls = s.stalls;
            edges.push(Edge::new(
                s.name,
                port_names::NOC,
                port_names::DELIVERY,
                stalls,
            ));
        }
        edges
    }

    /// Per-engine totals converted to base ticks, the engine half of an
    /// explain [`Observation`](distda_explain::Observation).
    pub fn engine_observations(&self) -> Vec<distda_explain::EngineObs> {
        self.st
            .engines
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let es = s.eng.stats();
                let period = s.eng.clock().period_ticks();
                distda_explain::EngineObs {
                    name: port_names::engine(i),
                    busy_ticks: es.busy_cycles * period,
                    stall_mem_ticks: es.stall_mem * period,
                    stall_chan_ticks: es.stall_chan * period,
                    period_ticks: period,
                }
            })
            .collect()
    }

    /// The full explain observation of this machine's run so far:
    /// ports, blame topology, engine accounting and (when a sampler was
    /// attached) the windowed time series.
    pub fn observation(&self) -> distda_explain::Observation {
        distda_explain::Observation {
            ticks: self.now(),
            ports: self.port_snapshots(),
            edges: self.port_topology(),
            engines: self.engine_observations(),
            samples: self.sampler.dump(),
        }
    }

    fn san(&self) -> &Sanitizer {
        &self.sched.instruments().san
    }

    /// Fails with [`SimError::InvariantViolation`] if the sanitizer has
    /// recorded anything.
    fn check_sanitizer(&self, phase: &'static str) -> Result<(), SimError> {
        let count = self.san().count();
        if count > 0 {
            return Err(SimError::InvariantViolation {
                phase,
                now: self.now(),
                count,
                report: self.san().render(),
            });
        }
        Ok(())
    }

    fn map_stop(phase: &'static str, stop: Stop) -> SimError {
        match stop {
            Stop::Budget {
                now,
                budget,
                stalled,
            } => SimError::TickBudgetExhausted {
                phase,
                now,
                budget,
                stalled,
            },
            Stop::Deadlock { now, stalled } => SimError::Deadlock {
                phase,
                now,
                stalled,
            },
            Stop::Invariant { now, count, report } => SimError::InvariantViolation {
                phase,
                now,
                count,
                report,
            },
        }
    }

    /// Enables or disables idle skip-ahead (on by default; `DISTDA_SKIP=0`
    /// disables it process-wide). Simulated results are bit-identical
    /// either way — skipping only avoids spending host time on base ticks
    /// during which no component can do observable work.
    pub fn set_skip(&mut self, on: bool) {
        self.sched.set_skip(on);
    }

    /// The scheduler (clock, registered components, instruments).
    pub fn scheduler(&self) -> &Scheduler<MachineState> {
        &self.sched
    }

    /// The machine's world state.
    pub fn state(&self) -> &MachineState {
        &self.st
    }

    /// The functional memory image.
    pub fn memimg(&self) -> &Memory {
        &self.st.memimg
    }

    /// Mutable functional memory (used by the host evaluator).
    pub fn memimg_mut(&mut self) -> &mut Memory {
        &mut self.st.memimg
    }

    /// Consumes the machine, returning the final memory image.
    pub fn into_memimg(self) -> Memory {
        self.st.memimg
    }

    /// The address layout.
    pub fn layout(&self) -> &Layout {
        &self.st.layout
    }

    /// The memory hierarchy (for statistics).
    pub fn mem(&self) -> &MemSystem {
        &self.st.mem
    }

    /// NoC statistics.
    pub fn noc_stats(&self) -> &distda_noc::NocStats {
        self.st.mesh.stats()
    }

    /// Host core statistics.
    pub fn host_stats(&self) -> crate::host::HostStats {
        self.st.host.stats()
    }

    /// Total MMIO configuration words issued.
    pub fn mmio_words(&self) -> u64 {
        self.st.mmio_words
    }

    /// `cp_config` + `cp_config_stream/random`: allocates engines for a
    /// plan, placing partition `i` at `placement[i]` with `substrates[i]`.
    /// Flushes host-cached copies of every accessed object (Section IV-D)
    /// and charges configuration MMIO.
    ///
    /// # Panics
    ///
    /// Panics if placements/substrates lengths mismatch the plan.
    pub fn configure_plan(
        &mut self,
        plan: &OffloadPlan,
        placement: &[usize],
        substrates: &[Substrate],
        object_ranges: &[(u64, u64)],
    ) -> PlanHandle {
        self.configure_plan_for_tenant(plan, placement, substrates, object_ranges, 0)
    }

    /// Registers an additional tenant with its own functional image and
    /// address layout, returning its tenant id. The machine's primary
    /// image/layout is tenant 0; tenants added here execute through their
    /// own views while sharing the fabric, NUCA banks and DRAM with
    /// everyone else.
    pub fn add_tenant(&mut self, memimg: Memory, layout: Layout) -> u16 {
        self.st.tenant_views.push((memimg, layout));
        self.st.tenant_views.len() as u16
    }

    /// The functional memory image of `tenant` (0 = the primary image).
    pub fn tenant_memimg(&self, tenant: u16) -> &Memory {
        if tenant == 0 {
            &self.st.memimg
        } else {
            &self.st.tenant_views[tenant as usize - 1].0
        }
    }

    /// Mutable [`Machine::tenant_memimg`], for host-phase execution on a
    /// tenant's functional view.
    pub fn tenant_memimg_mut(&mut self, tenant: u16) -> &mut Memory {
        if tenant == 0 {
            &mut self.st.memimg
        } else {
            &mut self.st.tenant_views[tenant as usize - 1].0
        }
    }

    /// Per-engine statistics summed over the engines owned by `tenant`.
    pub fn tenant_engine_totals(&self, tenant: u16) -> distda_accel::EngineStats {
        let mut t = distda_accel::EngineStats::default();
        for s in self.st.engines.iter().filter(|s| s.tenant == tenant) {
            let es = s.eng.stats();
            t.iterations += es.iterations;
            t.busy_cycles += es.busy_cycles;
            t.stall_mem += es.stall_mem;
            t.stall_chan += es.stall_chan;
            t.alu_ops += es.alu_ops;
            t.mem_ops += es.mem_ops;
            t.intra_bytes += es.intra_bytes;
            t.da_bytes += es.da_bytes;
            t.aa_bytes += es.aa_bytes;
            t.mmio_words += es.mmio_words;
        }
        t
    }

    /// [`Machine::configure_plan`] on behalf of `tenant`: the plan's
    /// engines read and write the tenant's functional view, and all
    /// traffic they cause is attributed to the tenant in the NoC stats.
    ///
    /// # Panics
    ///
    /// Panics if placements/substrates lengths mismatch the plan or the
    /// tenant was never registered.
    pub fn configure_plan_for_tenant(
        &mut self,
        plan: &OffloadPlan,
        placement: &[usize],
        substrates: &[Substrate],
        object_ranges: &[(u64, u64)],
        tenant: u16,
    ) -> PlanHandle {
        assert!(
            tenant as usize <= self.st.tenant_views.len(),
            "tenant {tenant} not registered"
        );
        assert_eq!(placement.len(), plan.partitions.len());
        assert_eq!(substrates.len(), plan.partitions.len());
        let chan_base = self.st.chans.len();
        for ch in &plan.channels {
            let c = ChanState::new(
                placement[ch.producer as usize],
                placement[ch.consumer as usize],
                CHAN_CAPACITY,
            );
            if !c.is_local() {
                // Size the injection port for this channel's worst-case
                // in-flight traffic: every credited operand plus the
                // credit-return packets they can provoke. The bound stays
                // real (a hostile producer cannot queue beyond it) while
                // provably never refusing well-behaved channel traffic.
                self.st
                    .net_out
                    .grow(CHAN_CAPACITY + CHAN_CAPACITY / ChanState::CREDIT_BATCH);
            }
            self.st.chans.push(c);
        }
        let handle = self.st.plans.len();
        let mut engine_ids = Vec::new();
        let mut carry_scalars = Vec::new();
        let mut config_words = 0u64;
        for (i, part) in plan.partitions.iter().enumerate() {
            let sub = substrates[i];
            let port = self.st.mem.register_port(PortKind::Acp {
                cluster: placement[i],
            });
            let mut eng = PartitionEngine::new(
                part.clone(),
                plan.params.clone(),
                sub.model,
                sub.clock,
                sub.buffer_lines,
            );
            let (pf, mr, mw) = sub.tuning;
            eng.set_tuning(pf, mr, mw);
            let index = self.st.engines.len();
            engine_ids.push(index);
            carry_scalars.push(part.carry_scalars.clone());
            self.st.engines.push(EngineSlot {
                eng,
                cluster: placement[i],
                port,
                resp: Vec::new(),
                chan_base,
                is_access_node: sub.is_access_node,
                is_cgra: matches!(sub.model, IssueModel::Cgra { .. }),
                tenant,
                mem_stalls: 0,
                chan_stalls: BTreeMap::new(),
            });
            // Registration wires the engine into the tick loop, wake
            // probe, drain predicate and drain audit — and attaches the
            // current instruments (its trace sink).
            self.sched.register(
                stage::ENGINE,
                Box::new(EngineComp {
                    index,
                    name: format!("engine.{index}"),
                }),
                &mut self.st,
            );
            // Configuration traffic: microcode + one word per access.
            let words = (part.microcode_bytes() / 8 + part.accesses.len() + 1) as u64;
            config_words += words;
            self.push_mmio_packet(placement[i], (words * 8) as u32, tenant);
        }
        // Offload-boundary flush of host-cached object lines.
        for &(s, e) in object_ranges {
            self.st.mem.flush_host_range(s, e);
        }
        // Blame topology of the just-created channels: the producer
        // engine accumulates stall cycles, the consumer engine is
        // indicted (it failed to drain the ring).
        for ch in &plan.channels {
            self.st.chan_engines.push((
                engine_ids[ch.producer as usize],
                engine_ids[ch.consumer as usize],
            ));
        }
        let liveouts = plan
            .liveouts
            .iter()
            .map(|&(s, p, r)| (s, engine_ids[p as usize], r))
            .collect();
        let engine_count = engine_ids.len() as u32;
        self.st.plans.push(PlanInst {
            engines: engine_ids,
            liveouts,
            carry_scalars,
            params: plan.params.clone(),
            tenant,
        });
        self.st.sink.instant(
            self.now(),
            EventKind::OffloadDispatch {
                plan: handle as u32,
                engines: engine_count,
                config_words,
            },
        );
        self.charge_mmio(config_words);
        handle
    }

    fn push_mmio_packet(&mut self, cluster: usize, bytes: u32, tenant: u16) {
        if cluster == self.st.host_node {
            return;
        }
        let mut pkt = Packet::new(
            self.st.host_node,
            cluster,
            bytes,
            TrafficClass::HostCtrl,
            NetMsg::Mmio,
        )
        .with_tenant(tenant);
        // The host blocks on a full injection port — real back-pressure
        // on the configuration path instead of an elastic queue. The
        // re-offered packet is the refused one, unchanged (stable data).
        loop {
            match self.st.net_out.tx().offer(pkt) {
                Ok(()) => return,
                Err(back) => {
                    pkt = back;
                    self.advance_ticks(1);
                }
            }
        }
    }

    fn charge_mmio(&mut self, words: u64) {
        self.st.mmio_words += words;
        let ticks = self
            .st
            .mem
            .clock()
            .ticks_for_cycles(words * MMIO_CYCLES_PER_WORD);
        let t0 = self.now();
        self.advance_ticks(ticks);
        if words > 0 {
            self.st
                .sink
                .span(t0, self.now(), EventKind::MmioTransfer { words });
        }
    }

    /// Carry scalars of each partition of a configured plan (the values the
    /// host must pass to [`Machine::launch`]).
    pub fn plan_carry_scalars(&self, handle: PlanHandle) -> &[Vec<distda_ir::expr::ScalarId>] {
        &self.st.plans[handle].carry_scalars
    }

    /// The plan's parameter table.
    pub fn plan_params(&self, handle: PlanHandle) -> &[distda_compiler::affine::Sym] {
        &self.st.plans[handle].params
    }

    /// `cp_set_rf` + `cp_run` on every partition of a plan.
    ///
    /// # Panics
    ///
    /// Panics if any engine of the plan is still busy.
    pub fn launch(
        &mut self,
        handle: PlanHandle,
        params: &[Value],
        carry_init: &[Vec<Value>],
        start: i64,
        end: i64,
        step: i64,
    ) {
        // Between invocations all queues have drained; restore any credits
        // still batched on the consumer side.
        for ch in &mut self.st.chans {
            ch.flow.restore();
        }
        let engine_ids = self.st.plans[handle].engines.clone();
        let tenant = self.st.plans[handle].tenant;
        let mut words = 0u64;
        for (k, &ei) in engine_ids.iter().enumerate() {
            let now = self.now();
            let cluster = self.st.engines[ei].cluster;
            self.st.engines[ei]
                .eng
                .run(now, params, &carry_init[k], start, end, step);
            words += params.len() as u64 + carry_init[k].len() as u64 + 2;
            self.push_mmio_packet(
                cluster,
                ((params.len() + carry_init[k].len() + 2) * 8) as u32,
                tenant,
            );
        }
        self.charge_mmio(words);
    }

    /// Whether every engine of a plan has finished its invocation.
    pub fn plan_done(&self, handle: PlanHandle) -> bool {
        self.st.plan_done(handle)
    }

    /// Runs the machine until the plan's engines finish (the host blocking
    /// on `cp_consume`, Section V-B).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the tick budget is exhausted or skip-ahead
    /// proves the plan can never finish.
    pub fn run_offload(&mut self, handle: PlanHandle) -> Result<(), SimError> {
        self.run_until("offload", move |_, st| st.plan_done(handle))
    }

    /// Runs the machine until `done(now, state)` holds, checked before
    /// every tick, with the budget/deadlock guards of the other run
    /// loops. `phase` labels any resulting [`SimError`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on budget exhaustion or a proven deadlock.
    pub fn run_until(
        &mut self,
        phase: &'static str,
        done: impl FnMut(Tick, &MachineState) -> bool,
    ) -> Result<(), SimError> {
        let t0 = self.now();
        let r = self
            .sched
            .run_until(&mut self.st, done)
            .map_err(|s| Self::map_stop(phase, s));
        if r.is_ok() {
            self.st
                .sink
                .span(t0, self.now(), EventKind::KernelPhase { phase });
            // A violation flagged on the final tick (after the loop's last
            // check) must still fail the phase.
            self.check_sanitizer(phase)?;
        }
        r
    }

    /// `cp_load_rf`: reads live-out scalars after completion.
    pub fn read_liveouts(&mut self, handle: PlanHandle) -> Vec<(distda_ir::expr::ScalarId, Value)> {
        let outs: Vec<_> = self.st.plans[handle]
            .liveouts
            .iter()
            .map(|&(s, ei, reg)| (s, self.st.engines[ei].eng.carry_value(reg)))
            .collect();
        self.charge_mmio(outs.len() as u64);
        outs
    }

    /// Executes a host trace segment to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the segment cannot drain within the budget.
    pub fn run_host_segment(&mut self, ops: Vec<DynOp>) -> Result<(), SimError> {
        if ops.is_empty() {
            return Ok(());
        }
        let now = self.now();
        self.st.host_sink.instant(
            now,
            EventKind::HostSegment {
                ops: ops.len() as u64,
            },
        );
        self.st.host.load_segment(now, ops);
        self.run_until("host-segment", |now, st| st.host.segment_drained(now))
    }

    /// Advances the machine `n` base ticks.
    pub fn advance_ticks(&mut self, n: u64) {
        self.sched.advance_ticks(&mut self.st, n);
    }

    /// Drains all in-flight work (end of program): runs until every
    /// registered component is quiescent, then audits the drained state
    /// against every conservation invariant (a fold of each component's
    /// audit; a no-op with the sanitizer off).
    ///
    /// The exit condition requires every produced memory response to be
    /// collected, every mesh inbox to be empty, and every engine to be
    /// quiescent — quiescence is each component's own
    /// [`Component::is_quiescent`], so a component with a hidden queue
    /// cannot be forgotten by this loop (the bug class that twice
    /// produced "drained" machines with stranded packets).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if in-flight work cannot drain within the
    /// budget, or if the sanitizer finds the drained state violating a
    /// conservation invariant.
    pub fn drain(&mut self) -> Result<(), SimError> {
        let t0 = self.now();
        self.sched
            .drain(&mut self.st)
            .map_err(|s| Self::map_stop("drain", s))?;
        self.st
            .sink
            .span(t0, self.now(), EventKind::KernelPhase { phase: "drain" });
        Ok(())
    }

    /// One base tick.
    pub fn tick(&mut self) {
        self.sched.tick(&mut self.st);
    }

    /// Drives the machine to quiescence under the component-conformance
    /// harness (see [`distda_sim::conformance`]), returning every
    /// protocol violation observed: wake times in the past, broken wake
    /// promises, components active with no scheduled event, or failure
    /// to drain within `budget` ticks. Test-oriented; prefer
    /// [`Machine::drain`] in simulation flows.
    pub fn run_conformance(&mut self, budget: u64) -> Vec<distda_sim::conformance::Violation> {
        distda_sim::conformance::run_to_quiescence(&mut self.sched, &mut self.st, budget)
    }

    /// Aggregates energy-relevant event counts.
    pub fn energy_counters(&self) -> EnergyCounters {
        let mut c = EnergyCounters {
            host_ops: self.st.host.stats().retired,
            ..Default::default()
        };
        c.l1_accesses = self.st.mem.l1_stats().accesses;
        c.l2_accesses = self.st.mem.l2_stats().accesses;
        c.l3_accesses = self.st.mem.l3_stats().accesses;
        let (dr, dw) = self.st.mem.dram_counts();
        c.dram_accesses = dr + dw;
        c.noc_hop_bytes = self.st.mesh.stats().total_hop_bytes();
        c.flushed_lines = self.st.mem.sys_stats().flushed_lines;
        c.mmio_words = self.st.mmio_words;
        for s in &self.st.engines {
            let es = s.eng.stats();
            // Element accesses and line moves are access-unit work in every
            // configuration (the FSM performs them, Figure 2c) — stream
            // loads/stores are therefore charged as buffer energy, not as
            // core microcode ops, for Mono and Dist alike.
            c.buffer_elem_accesses += es.intra_bytes / 8;
            c.buffer_line_moves += es.da_bytes / 64;
            let chan_ops = es.aa_bytes / 4; // sends + matching recvs
            if s.is_access_node {
                c.buffer_elem_accesses += es.alu_ops;
            } else if s.is_cgra {
                c.cgra_ops += es.alu_ops + chan_ops;
            } else {
                c.io_ops += es.alu_ops + chan_ops;
            }
        }
        c
    }

    /// Sums engine traffic: (intra bytes, D-A bytes, A-A bytes) — Figure 9.
    pub fn access_distribution(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for s in &self.st.engines {
            let es = s.eng.stats();
            t.0 += es.intra_bytes;
            t.1 += es.da_bytes;
            t.2 += es.aa_bytes;
        }
        t
    }

    /// Statistics of every handshaked port in the machine (see
    /// [`MachineState::port_snapshots`]).
    pub fn port_snapshots(&self) -> Vec<PortSnapshot> {
        self.st.port_snapshots()
    }

    /// Per-port occupancy/stall statistics as a report (`<port>.pushed`,
    /// `<port>.high_water`, `<port>.stalls`), merged under the `port.`
    /// prefix into run reports and exported by the obs registry as
    /// `distda_port_*` series. Ports that never moved a value are
    /// omitted to keep reports proportional to the traffic that existed.
    pub fn port_report(&self) -> distda_sim::Report {
        let mut r = distda_sim::Report::new();
        for s in self.port_snapshots() {
            if s.pushed == 0 && s.stalls == 0 {
                continue;
            }
            r.add(format!("{}.pushed", s.name), s.pushed as f64);
            r.add(format!("{}.high_water", s.name), s.high_water as f64);
            r.add(format!("{}.stalls", s.name), s.stalls as f64);
        }
        r
    }

    /// Sums accelerator-side statistics.
    pub fn engine_totals(&self) -> distda_accel::EngineStats {
        let mut t = distda_accel::EngineStats::default();
        for s in &self.st.engines {
            let es = s.eng.stats();
            t.iterations += es.iterations;
            t.busy_cycles += es.busy_cycles;
            t.stall_mem += es.stall_mem;
            t.stall_chan += es.stall_chan;
            t.alu_ops += es.alu_ops;
            t.mem_ops += es.mem_ops;
            t.intra_bytes += es.intra_bytes;
            t.da_bytes += es.da_bytes;
            t.aa_bytes += es.aa_bytes;
            t.mmio_words += es.mmio_words;
        }
        t
    }
}

struct Ctx<'a> {
    now: Tick,
    port: PortId,
    chan_base: usize,
    tenant: u16,
    mem: &'a mut MemSystem,
    chans: &'a mut Vec<ChanState>,
    net_out: &'a mut Channel<Packet<NetMsg>>,
    memimg: &'a mut Memory,
    layout: &'a Layout,
    resp: &'a mut Vec<u64>,
    chan_sink: &'a TraceSink,
    mem_stalls: &'a mut u64,
    chan_stalls: &'a mut BTreeMap<usize, u64>,
}

impl EngineCtx for Ctx<'_> {
    fn try_send(&mut self, chan: u16, v: Value) -> bool {
        let g = self.chan_base + chan as usize;
        let ch = &mut self.chans[g];
        if ch.flow.credits() == 0 {
            return false;
        }
        if ch.is_local() {
            if !ch.flow.take() {
                return false;
            }
            // Credits bound occupancy, so the offer cannot be refused.
            assert!(ch.queue.tx().offer(v).is_ok(), "credits bound occupancy");
            if self.chan_sink.on() {
                self.chan_sink
                    .sample(self.now, &port_names::chan(g), ch.queue.len() as f64);
            }
        } else {
            // The operand packet must win a slot at the injection port
            // *before* the credit is spent — a refused offer leaves the
            // channel state untouched and the engine simply retries.
            let pkt = Packet::new(
                ch.producer_cluster,
                ch.consumer_cluster,
                8,
                TrafficClass::AccData,
                NetMsg::ChanData { chan: g as u16, v },
            )
            .with_tenant(self.tenant);
            if self.net_out.tx().offer(pkt).is_err() {
                return false;
            }
            assert!(ch.flow.take(), "credit checked above");
        }
        true
    }

    fn try_recv(&mut self, chan: u16) -> Option<Value> {
        let g = self.chan_base + chan as usize;
        let ch = &mut self.chans[g];
        if !ch.is_local() && ch.flow.defer_would_flush() && !self.net_out.tx().ready() {
            // Accepting this operand would flush a credit batch that the
            // injection port cannot take; refuse the pop (the operand
            // stays at the head — stable data) and retry next cycle.
            return None;
        }
        let v = ch.queue.rx().accept()?;
        if self.chan_sink.on() {
            self.chan_sink
                .sample(self.now, &port_names::chan(g), ch.queue.len() as f64);
        }
        if ch.is_local() {
            ch.flow.put();
        } else if let Some(n) = ch.flow.defer() {
            let pkt = Packet::new(
                ch.consumer_cluster,
                ch.producer_cluster,
                0,
                TrafficClass::AccCtrl,
                NetMsg::ChanCredit {
                    chan: g as u16,
                    n: n as u16,
                },
            )
            .with_tenant(self.tenant);
            // Ready-checked above before the pop committed.
            assert!(
                self.net_out.tx().offer(pkt).is_ok(),
                "injection port readiness checked before accepting"
            );
        }
        Some(v)
    }

    fn note_chan_stall(&mut self, chan: u16, n: u64) {
        let g = self.chan_base + chan as usize;
        self.chans[g].queue.note_stalls(n);
        *self.chan_stalls.entry(g).or_insert(0) += n;
    }

    fn note_mem_stall(&mut self, n: u64) {
        *self.mem_stalls += n;
    }

    fn mem_read(&mut self, req_id: u64, addr: u64) -> bool {
        self.mem
            .try_request(
                self.now,
                MemRequest {
                    port: self.port,
                    id: req_id,
                    addr,
                    write: false,
                },
            )
            .is_ok()
    }

    fn mem_write(&mut self, req_id: u64, addr: u64) -> bool {
        self.mem
            .try_request(
                self.now,
                MemRequest {
                    port: self.port,
                    id: req_id,
                    addr,
                    write: true,
                },
            )
            .is_ok()
    }

    fn poll_mem(&mut self) -> Option<u64> {
        self.resp.pop()
    }

    fn func_load(&mut self, array: ArrayId, idx: i64) -> Value {
        self.memimg.load(array, idx)
    }

    fn func_store(&mut self, array: ArrayId, idx: i64, v: Value) {
        self.memimg.store(array, idx, v);
    }

    fn addr_of(&self, array: ArrayId, idx: i64) -> u64 {
        self.layout.addr(array, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_compiler::{compile, PartitionMode};
    use distda_ir::prelude::*;
    use distda_mem::MemConfig;

    fn axpy_setup() -> (
        Program,
        distda_compiler::CompiledKernel,
        Machine,
        ArrayId,
        ArrayId,
    ) {
        let mut b = ProgramBuilder::new("axpy");
        let x = b.array_f64("x", 64);
        let y = b.array_f64("y", 64);
        b.for_(0, 64, 1, |b, i| {
            let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
            b.store(y, i, v);
        });
        let p = b.build();
        let ck = compile(&p, PartitionMode::Distributed);
        let uncore = ClockDomain::from_ghz(2.0);
        let mut mem = MemSystem::new(MemConfig::default(), uncore, 0, 7);
        let alloc = crate::alloc::allocate(
            &p,
            &ck.offloads,
            8,
            crate::alloc::AllocStrategy::RoundRobin,
            &mut mem,
        );
        let mut img = Memory::for_program(&p);
        for i in 0..64 {
            img.array_mut(x)[i] = Value::F(i as f64);
            img.array_mut(y)[i] = Value::F(1.0);
        }
        let machine = Machine::new(mem, img, alloc.layout, 5, 224, &Topology::paper());
        (p, ck, machine, x, y)
    }

    fn io_substrate(access_node: bool) -> Substrate {
        Substrate {
            model: IssueModel::InOrder { width: 1 },
            clock: ClockDomain::from_ghz(2.0),
            buffer_lines: 64,
            is_access_node: access_node,
            tuning: (4, 8, 16),
        }
    }

    #[test]
    fn distributed_axpy_runs_to_completion_with_correct_values() {
        let (_p, ck, mut m, _x, y) = axpy_setup();
        let plan = &ck.offloads[0];
        let placement = vec![0usize, 1];
        let subs = vec![io_substrate(false); 2];
        let h = m.configure_plan(plan, &placement, &subs, &[]);
        m.launch(h, &[], &[vec![], vec![]], 0, 64, 1);
        m.run_offload(h).unwrap();
        for i in 0..64 {
            assert_eq!(m.memimg().array(y)[i], Value::F(2.0 * i as f64 + 1.0));
        }
        // Cross-cluster operand traffic must have used the mesh.
        let stats = m.noc_stats();
        assert!(stats.bytes[TrafficClass::AccData.index()] > 0);
    }

    #[test]
    fn co_located_partitions_avoid_channel_noc_traffic() {
        // Same kernel twice: partitions split across clusters vs co-located.
        // Co-location eliminates the channel's share of AccData (remote ACP
        // line fills remain in both).
        let run = |placement: [usize; 2]| {
            let (_p, ck, mut m, _x, _y) = axpy_setup();
            let plan = &ck.offloads[0];
            let h = m.configure_plan(plan, &placement, &[io_substrate(false); 2], &[]);
            m.launch(h, &[], &[vec![], vec![]], 0, 64, 1);
            m.run_offload(h).unwrap();
            m.noc_stats().bytes[TrafficClass::AccData.index()]
        };
        let split = run([2, 5]);
        let colocated = run([2, 2]);
        assert!(
            colocated < split,
            "co-located {colocated} should move fewer operand bytes than split {split}"
        );
    }

    #[test]
    fn host_segment_and_offload_interleave() {
        let (_p, ck, mut m, x, _y) = axpy_setup();
        // Host writes x[0..4] first (trace ops), then offload runs.
        use distda_ir::trace::{DynOp, OpKind, NO_DEP};
        let base = m.layout().base(x);
        let ops: Vec<DynOp> = (0..4)
            .map(|i| DynOp {
                kind: OpKind::Store { addr: base + i * 8 },
                dep1: NO_DEP,
                dep2: NO_DEP,
            })
            .collect();
        m.run_host_segment(ops).unwrap();
        let t_after_host = m.now();
        assert!(t_after_host > 0);
        let plan = &ck.offloads[0];
        let h = m.configure_plan(plan, &[0, 1], &[io_substrate(false); 2], &[]);
        m.launch(h, &[], &[vec![], vec![]], 0, 64, 1);
        m.run_offload(h).unwrap();
        assert!(m.now() > t_after_host);
        assert_eq!(m.host_stats().retired, 4);
    }

    #[test]
    fn reduction_liveout_read_back() {
        let mut b = ProgramBuilder::new("sum");
        let x = b.array_i64("x", 32);
        let acc = b.scalar("acc", 0i64);
        b.for_(0, 32, 1, |b, i| {
            b.set(acc, Expr::Scalar(acc) + Expr::load(x, i));
        });
        let p = b.build();
        let ck = compile(&p, PartitionMode::Distributed);
        let uncore = ClockDomain::from_ghz(2.0);
        let mut mem = MemSystem::new(MemConfig::default(), uncore, 0, 7);
        let alloc = crate::alloc::allocate(
            &p,
            &ck.offloads,
            8,
            crate::alloc::AllocStrategy::RoundRobin,
            &mut mem,
        );
        let mut img = Memory::for_program(&p);
        for i in 0..32 {
            img.array_mut(x)[i] = Value::I(i as i64);
        }
        let mut m = Machine::new(mem, img, alloc.layout, 5, 224, &Topology::paper());
        let plan = &ck.offloads[0];
        let placements: Vec<usize> = (0..plan.partitions.len()).collect();
        let subs = vec![io_substrate(false); plan.partitions.len()];
        let h = m.configure_plan(plan, &placements, &subs, &[]);
        let carries: Vec<Vec<Value>> = m
            .plan_carry_scalars(h)
            .iter()
            .map(|ss| ss.iter().map(|_| Value::I(0)).collect())
            .collect();
        m.launch(h, &[], &carries, 0, 32, 1);
        m.run_offload(h).unwrap();
        let outs = m.read_liveouts(h);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].1, Value::I((0..32).sum::<i64>()));
    }

    #[test]
    fn energy_counters_populated() {
        let (_p, ck, mut m, _x, _y) = axpy_setup();
        let plan = &ck.offloads[0];
        let h = m.configure_plan(plan, &[0, 1], &[io_substrate(false); 2], &[]);
        m.launch(h, &[], &[vec![], vec![]], 0, 64, 1);
        m.run_offload(h).unwrap();
        m.drain().unwrap();
        let c = m.energy_counters();
        assert!(c.io_ops > 0);
        assert!(c.l3_accesses > 0, "ACP traffic must reach L3");
        assert!(c.dram_accesses > 0, "cold data comes from DRAM");
        assert!(c.mmio_words > 0);
        let (intra, da, aa) = m.access_distribution();
        assert!(intra > 0 && da > 0 && aa > 0);
    }

    #[test]
    fn adding_components_needs_only_registration() {
        // The tick loop, wake probe, drain predicate and drain audit all
        // derive from the registered component set: a machine configured
        // with more engines has more registered components, with no other
        // machine code aware of the count.
        let (_p, ck, m, _x, _y) = axpy_setup();
        let before: Vec<String> = m
            .scheduler()
            .components()
            .map(|c| c.name().to_string())
            .collect();
        assert_eq!(
            before,
            ["delivery", "host", "mem", "machine.chan", "net-out", "noc"]
        );
        let (_p2, ck2, mut m2, _x2, _y2) = axpy_setup();
        let plan = &ck2.offloads[0];
        let h = m2.configure_plan(plan, &[0, 1], &[io_substrate(false); 2], &[]);
        let after: Vec<String> = m2
            .scheduler()
            .components()
            .map(|c| c.name().to_string())
            .collect();
        assert_eq!(
            after,
            [
                "delivery",
                "host",
                "engine.0",
                "engine.1",
                "mem",
                "machine.chan",
                "net-out",
                "noc"
            ]
        );
        let _ = (h, ck);
    }
}
