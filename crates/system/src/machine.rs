//! The full machine model: host core + NUCA hierarchy + mesh + distributed
//! accelerator engines + operand channels, advanced in lock-step on the
//! 6 GHz base tick.
//!
//! The machine also implements the host-initiated half of the Table II
//! interface: [`Machine::configure_plan`] (`cp_config`,
//! `cp_config_stream/random`), [`Machine::launch`] (`cp_set_rf`, `cp_run`)
//! and [`Machine::read_liveouts`] (`cp_load_rf`), with MMIO traffic and
//! host occupancy charged for each.

use crate::error::SimError;
use crate::host::HostCore;
use crate::netmsg::{ChanState, NetMsg};
use distda_accel::{EngineCtx, IssueModel, PartitionEngine, Wake};
use distda_check::Sanitizer;
use distda_compiler::plan::OffloadPlan;
use distda_energy::EnergyCounters;
use distda_ir::expr::ArrayId;
use distda_ir::interp::Memory;
use distda_ir::trace::{DynOp, Layout};
use distda_ir::value::Value;
use distda_mem::{MemRequest, MemSystem, PortId, PortKind};
use distda_noc::{Mesh, NocConfig, Packet, TrafficClass};
use distda_sim::time::{ClockDomain, Tick};
use distda_trace::{EventKind, TraceSink, Tracer};

/// Operand slots per channel buffer.
pub const CHAN_CAPACITY: usize = 64;
/// Host cycles charged per MMIO configuration word.
const MMIO_CYCLES_PER_WORD: u64 = 1;

/// Handle to a configured offload plan.
pub type PlanHandle = usize;

/// How one partition is realized in hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Substrate {
    /// Issue pacing (in-order width or CGRA II).
    pub model: IssueModel,
    /// Clock domain.
    pub clock: ClockDomain,
    /// Access-unit buffer capacity in lines.
    pub buffer_lines: usize,
    /// Whether this partition is a bare access node (FSM, not a core) —
    /// its ops are charged as buffer energy, not core energy.
    pub is_access_node: bool,
    /// Prefetch depth / outstanding limits (pf_ahead, max_reads,
    /// max_writes).
    pub tuning: (u64, u32, u32),
}

#[derive(Debug)]
struct EngineSlot {
    eng: PartitionEngine,
    cluster: usize,
    port: PortId,
    resp: Vec<u64>,
    chan_base: usize,
    is_access_node: bool,
    is_cgra: bool,
}

#[derive(Debug)]
struct PlanInst {
    engines: Vec<usize>,
    /// Live-outs: (scalar, engine slot index, carry register).
    liveouts: Vec<(distda_ir::expr::ScalarId, usize, u16)>,
    /// Carry scalars per engine (for `cp_set_rf` initialization).
    carry_scalars: Vec<Vec<distda_ir::expr::ScalarId>>,
    params: Vec<distda_compiler::affine::Sym>,
}

/// The machine. Construct with [`Machine::new`], configure plans, then
/// alternate host segments and offload invocations.
#[derive(Debug)]
pub struct Machine {
    /// Current base tick.
    pub now: Tick,
    mesh: Mesh<NetMsg>,
    mem: MemSystem,
    host: HostCore,
    memimg: Memory,
    layout: Layout,
    chans: Vec<ChanState>,
    engines: Vec<EngineSlot>,
    plans: Vec<PlanInst>,
    net_out: std::collections::VecDeque<Packet<NetMsg>>,
    host_node: usize,
    mmio_words: u64,
    tick_budget: u64,
    /// Idle skip-ahead: jump the clock over provably idle base ticks.
    skip: bool,
    tracer: Tracer,
    /// Machine track: kernel phases, MMIO transfers, offload dispatches.
    sink: TraceSink,
    /// Host track: segment loads.
    host_sink: TraceSink,
    /// Channel track: per-channel occupancy series.
    chan_sink: TraceSink,
    /// Invariant sanitizer; disabled by default (zero cost).
    san: Sanitizer,
}

impl Machine {
    /// Builds the Table III machine: 4x2 mesh, host at node 0, memory
    /// controller at node 7. The caller supplies the (already allocated)
    /// memory system, functional image and layout.
    pub fn new(
        mem: MemSystem,
        memimg: Memory,
        layout: Layout,
        host_width: u32,
        host_rob: usize,
    ) -> Self {
        let uncore = mem.clock();
        let mut mem = mem;
        let host_port = mem.register_port(PortKind::Host);
        let host = HostCore::new(uncore, host_width, host_rob, host_port);
        Self {
            now: 0,
            mesh: Mesh::new(4, 2, NocConfig::default(), uncore),
            mem,
            host,
            memimg,
            layout,
            chans: Vec::new(),
            engines: Vec::new(),
            plans: Vec::new(),
            net_out: std::collections::VecDeque::new(),
            host_node: 0,
            mmio_words: 0,
            tick_budget: 60_000_000_000,
            skip: std::env::var("DISTDA_SKIP").map_or(true, |v| v != "0"),
            tracer: Tracer::disabled(),
            sink: TraceSink::default(),
            host_sink: TraceSink::default(),
            chan_sink: TraceSink::default(),
            san: Sanitizer::disabled(),
        }
    }

    /// Attaches a tracer to every component. Call before
    /// [`Machine::configure_plan`] so engine sinks are created too; a
    /// disabled tracer (the default) costs nothing.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.sink = tracer.sink("machine");
        self.host_sink = tracer.sink("host");
        self.chan_sink = tracer.sink("machine.chan");
        self.mem.set_tracer(&tracer);
        self.mesh.set_sink(tracer.sink("noc"));
        for (i, slot) in self.engines.iter_mut().enumerate() {
            slot.eng.set_sink(tracer.sink(&format!("engine.{i}")));
        }
        self.tracer = tracer;
    }

    /// The attached tracer (disabled unless [`Machine::set_tracer`] ran).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attaches an invariant sanitizer to every component. With it on, the
    /// run loops stop with [`SimError::InvariantViolation`] as soon as a
    /// conservation law breaks, and [`Machine::drain`] audits the drained
    /// state. A disabled sanitizer (the default) costs nothing.
    pub fn set_sanitizer(&mut self, san: Sanitizer) {
        self.mem.set_sanitizer(san.clone());
        self.mesh.set_sanitizer(san.clone());
        self.san = san;
    }

    /// Fails with [`SimError::InvariantViolation`] if the sanitizer has
    /// recorded anything.
    fn check_sanitizer(&self, phase: &'static str) -> Result<(), SimError> {
        let count = self.san.count();
        if count > 0 {
            return Err(SimError::InvariantViolation {
                phase,
                now: self.now,
                count,
                report: self.san.render(),
            });
        }
        Ok(())
    }

    /// Enables or disables idle skip-ahead (on by default; `DISTDA_SKIP=0`
    /// disables it process-wide). Simulated results are bit-identical
    /// either way — skipping only avoids spending host time on base ticks
    /// during which no component can do observable work.
    pub fn set_skip(&mut self, on: bool) {
        self.skip = on;
    }

    /// The functional memory image.
    pub fn memimg(&self) -> &Memory {
        &self.memimg
    }

    /// Mutable functional memory (used by the host evaluator).
    pub fn memimg_mut(&mut self) -> &mut Memory {
        &mut self.memimg
    }

    /// Consumes the machine, returning the final memory image.
    pub fn into_memimg(self) -> Memory {
        self.memimg
    }

    /// The address layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The memory hierarchy (for statistics).
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// NoC statistics.
    pub fn noc_stats(&self) -> &distda_noc::NocStats {
        self.mesh.stats()
    }

    /// Host core statistics.
    pub fn host_stats(&self) -> crate::host::HostStats {
        self.host.stats()
    }

    /// Total MMIO configuration words issued.
    pub fn mmio_words(&self) -> u64 {
        self.mmio_words
    }

    /// `cp_config` + `cp_config_stream/random`: allocates engines for a
    /// plan, placing partition `i` at `placement[i]` with `substrates[i]`.
    /// Flushes host-cached copies of every accessed object (Section IV-D)
    /// and charges configuration MMIO.
    ///
    /// # Panics
    ///
    /// Panics if placements/substrates lengths mismatch the plan.
    pub fn configure_plan(
        &mut self,
        plan: &OffloadPlan,
        placement: &[usize],
        substrates: &[Substrate],
        object_ranges: &[(u64, u64)],
    ) -> PlanHandle {
        assert_eq!(placement.len(), plan.partitions.len());
        assert_eq!(substrates.len(), plan.partitions.len());
        let chan_base = self.chans.len();
        for ch in &plan.channels {
            self.chans.push(ChanState::new(
                placement[ch.producer as usize],
                placement[ch.consumer as usize],
                CHAN_CAPACITY,
            ));
        }
        let handle = self.plans.len();
        let mut engine_ids = Vec::new();
        let mut carry_scalars = Vec::new();
        let mut config_words = 0u64;
        for (i, part) in plan.partitions.iter().enumerate() {
            let sub = substrates[i];
            let port = self.mem.register_port(PortKind::Acp {
                cluster: placement[i],
            });
            let mut eng = PartitionEngine::new(
                part.clone(),
                plan.params.clone(),
                sub.model,
                sub.clock,
                sub.buffer_lines,
            );
            let (pf, mr, mw) = sub.tuning;
            eng.set_tuning(pf, mr, mw);
            if self.tracer.is_enabled() {
                eng.set_sink(self.tracer.sink(&format!("engine.{}", self.engines.len())));
            }
            engine_ids.push(self.engines.len());
            carry_scalars.push(part.carry_scalars.clone());
            self.engines.push(EngineSlot {
                eng,
                cluster: placement[i],
                port,
                resp: Vec::new(),
                chan_base,
                is_access_node: sub.is_access_node,
                is_cgra: matches!(sub.model, IssueModel::Cgra { .. }),
            });
            // Configuration traffic: microcode + one word per access.
            let words = (part.microcode_bytes() / 8 + part.accesses.len() + 1) as u64;
            config_words += words;
            self.push_mmio_packet(placement[i], (words * 8) as u32);
        }
        // Offload-boundary flush of host-cached object lines.
        for &(s, e) in object_ranges {
            self.mem.flush_host_range(s, e);
        }
        let liveouts = plan
            .liveouts
            .iter()
            .map(|&(s, p, r)| (s, engine_ids[p as usize], r))
            .collect();
        let engine_count = engine_ids.len() as u32;
        self.plans.push(PlanInst {
            engines: engine_ids,
            liveouts,
            carry_scalars,
            params: plan.params.clone(),
        });
        self.sink.instant(
            self.now,
            EventKind::OffloadDispatch {
                plan: handle as u32,
                engines: engine_count,
                config_words,
            },
        );
        self.charge_mmio(config_words);
        handle
    }

    fn push_mmio_packet(&mut self, cluster: usize, bytes: u32) {
        if cluster != self.host_node {
            self.net_out.push_back(Packet::new(
                self.host_node,
                cluster,
                bytes,
                TrafficClass::HostCtrl,
                NetMsg::Mmio,
            ));
        }
    }

    fn charge_mmio(&mut self, words: u64) {
        self.mmio_words += words;
        let ticks = self
            .mem
            .clock()
            .ticks_for_cycles(words * MMIO_CYCLES_PER_WORD);
        let t0 = self.now;
        self.advance_ticks(ticks);
        if words > 0 {
            self.sink
                .span(t0, self.now, EventKind::MmioTransfer { words });
        }
    }

    /// Carry scalars of each partition of a configured plan (the values the
    /// host must pass to [`Machine::launch`]).
    pub fn plan_carry_scalars(&self, handle: PlanHandle) -> &[Vec<distda_ir::expr::ScalarId>] {
        &self.plans[handle].carry_scalars
    }

    /// The plan's parameter table.
    pub fn plan_params(&self, handle: PlanHandle) -> &[distda_compiler::affine::Sym] {
        &self.plans[handle].params
    }

    /// `cp_set_rf` + `cp_run` on every partition of a plan.
    ///
    /// # Panics
    ///
    /// Panics if any engine of the plan is still busy.
    pub fn launch(
        &mut self,
        handle: PlanHandle,
        params: &[Value],
        carry_init: &[Vec<Value>],
        start: i64,
        end: i64,
        step: i64,
    ) {
        // Between invocations all queues have drained; restore any credits
        // still batched on the consumer side.
        for ch in &mut self.chans {
            if ch.credit_debt > 0 {
                ch.credits += ch.credit_debt;
                ch.credit_debt = 0;
            }
        }
        let engine_ids = self.plans[handle].engines.clone();
        let mut words = 0u64;
        for (k, &ei) in engine_ids.iter().enumerate() {
            let now = self.now;
            let cluster = self.engines[ei].cluster;
            self.engines[ei]
                .eng
                .run(now, params, &carry_init[k], start, end, step);
            words += params.len() as u64 + carry_init[k].len() as u64 + 2;
            self.push_mmio_packet(
                cluster,
                ((params.len() + carry_init[k].len() + 2) * 8) as u32,
            );
        }
        self.charge_mmio(words);
    }

    /// Whether every engine of a plan has finished its invocation.
    pub fn plan_done(&self, handle: PlanHandle) -> bool {
        self.plans[handle]
            .engines
            .iter()
            .all(|&ei| self.engines[ei].eng.is_done())
    }

    /// Runs the machine until the plan's engines finish (the host blocking
    /// on `cp_consume`, Section V-B).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the tick budget is exhausted or skip-ahead
    /// proves the plan can never finish.
    pub fn run_offload(&mut self, handle: PlanHandle) -> Result<(), SimError> {
        self.run_until("offload", |m| m.plan_done(handle))
    }

    /// Runs the machine until `done` holds, checked before every tick, with
    /// the budget/deadlock guards of the other run loops. `phase` labels
    /// any resulting [`SimError`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on budget exhaustion or a proven deadlock.
    pub fn run_until(
        &mut self,
        phase: &'static str,
        done: impl Fn(&Machine) -> bool,
    ) -> Result<(), SimError> {
        let t0 = self.now;
        let r = self.run_until_inner(phase, done);
        if r.is_ok() {
            self.sink
                .span(t0, self.now, EventKind::KernelPhase { phase });
            // A violation flagged on the final tick (after the loop's last
            // check) must still fail the phase.
            self.check_sanitizer(phase)?;
        }
        r
    }

    fn run_until_inner(
        &mut self,
        phase: &'static str,
        done: impl Fn(&Machine) -> bool,
    ) -> Result<(), SimError> {
        loop {
            self.check_sanitizer(phase)?;
            if done(self) {
                return Ok(());
            }
            if self.now >= self.tick_budget {
                return Err(SimError::TickBudgetExhausted {
                    phase,
                    now: self.now,
                    budget: self.tick_budget,
                    stalled: self.stall_report(),
                });
            }
            if self.skip {
                match self.next_wake() {
                    None => {
                        return Err(SimError::Deadlock {
                            phase,
                            now: self.now,
                            stalled: self.stall_report(),
                        })
                    }
                    Some(w) if w > self.now => {
                        // Jump, then tick at the wake tick without
                        // re-probing (the probe would just report `w`
                        // again). The done/budget checks must still run
                        // at the new time first: tick-by-tick execution
                        // would have evaluated them before reaching the
                        // tick at `w`.
                        self.now = w;
                        if done(self) {
                            return Ok(());
                        }
                        if self.now >= self.tick_budget {
                            return Err(SimError::TickBudgetExhausted {
                                phase,
                                now: self.now,
                                budget: self.tick_budget,
                                stalled: self.stall_report(),
                            });
                        }
                    }
                    _ => {}
                }
            }
            self.tick();
        }
    }

    /// Earliest base tick `>= self.now` at which [`Machine::tick`] would do
    /// observable work, or `None` if no component will ever act again
    /// without new input. This folds every component's `next_event` /
    /// [`Wake`] report; any in-flight message (mesh, memory, channel,
    /// undrained response) forces an immediate tick so skip-ahead executes
    /// exactly the ticks the lock-step loop would have made observable.
    fn next_wake(&self) -> Option<Tick> {
        use distda_sim::time::earliest;
        let now = self.now;
        if !self.net_out.is_empty() {
            return Some(now);
        }
        // Every candidate below is clamped to `>= now`, so a component
        // reporting `now` is already the global minimum — stop folding.
        // This keeps the per-tick wake probe O(1) while the machine is
        // busy, where the probe cannot pay for itself by skipping.
        let mut w = self.mem.next_event(now);
        if w == Some(now) {
            return w;
        }
        w = earliest(w, self.mesh.next_event(now));
        if w == Some(now) {
            return w;
        }
        w = earliest(w, self.host.next_event(now));
        if w == Some(now) {
            return w;
        }
        for slot in &self.engines {
            let clock = slot.eng.clock();
            let cand = if !slot.resp.is_empty() {
                // A response is waiting at the engine's port; it must be
                // handed over on the engine's next edge.
                Some(clock.next_edge(now))
            } else {
                match slot.eng.wake() {
                    Wake::Never => None,
                    Wake::NextEdge => Some(clock.next_edge(now)),
                    Wake::At(t) => Some(clock.next_edge(t.max(now))),
                    Wake::External(chan) => {
                        let ready = match chan {
                            Some((c, is_send)) => {
                                let ch = &self.chans[slot.chan_base + c as usize];
                                if is_send {
                                    ch.credits > 0
                                } else {
                                    !ch.queue.is_empty()
                                }
                            }
                            None => false,
                        };
                        ready.then(|| clock.next_edge(now))
                    }
                }
            };
            w = earliest(w, cand);
            if w == Some(now) {
                return w;
            }
        }
        w
    }

    /// Describes everything still in flight, for [`SimError`] reports.
    fn stall_report(&self) -> String {
        let mut parts = Vec::new();
        for (i, s) in self.engines.iter().enumerate() {
            if !s.eng.is_done() && !s.eng.is_idle() {
                parts.push(format!(
                    "engine {i} (cluster {}): {}",
                    s.cluster,
                    s.eng.stall_debug()
                ));
            }
        }
        if !self.host.segment_drained(self.now) {
            parts.push("host segment undrained".to_string());
        }
        if self.mem.is_active() {
            parts.push("memory hierarchy active".to_string());
        }
        if self.mesh.is_active() {
            parts.push("mesh active".to_string());
        }
        if !self.net_out.is_empty() {
            parts.push(format!(
                "{} packets queued for injection",
                self.net_out.len()
            ));
        }
        if parts.is_empty() {
            "nothing visibly stalled".to_string()
        } else {
            parts.join("; ")
        }
    }

    /// `cp_load_rf`: reads live-out scalars after completion.
    pub fn read_liveouts(&mut self, handle: PlanHandle) -> Vec<(distda_ir::expr::ScalarId, Value)> {
        let outs: Vec<_> = self.plans[handle]
            .liveouts
            .iter()
            .map(|&(s, ei, reg)| (s, self.engines[ei].eng.carry_value(reg)))
            .collect();
        self.charge_mmio(outs.len() as u64);
        outs
    }

    /// Executes a host trace segment to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the segment cannot drain within the budget.
    pub fn run_host_segment(&mut self, ops: Vec<DynOp>) -> Result<(), SimError> {
        if ops.is_empty() {
            return Ok(());
        }
        let now = self.now;
        self.host_sink.instant(
            now,
            EventKind::HostSegment {
                ops: ops.len() as u64,
            },
        );
        self.host.load_segment(now, ops);
        self.run_until("host-segment", |m| m.host.segment_drained(m.now))
    }

    /// Advances the machine `n` base ticks.
    pub fn advance_ticks(&mut self, n: u64) {
        let target = self.now + n;
        while self.now < target {
            if self.skip {
                match self.next_wake() {
                    None => {
                        self.now = target;
                        return;
                    }
                    Some(w) if w > self.now => {
                        self.now = w.min(target);
                        continue;
                    }
                    _ => {}
                }
            }
            self.tick();
        }
    }

    /// Drains all in-flight work (end of program).
    ///
    /// The exit condition also requires every produced memory response to
    /// be collected, every mesh inbox to be empty, and every engine to be
    /// quiescent. The old condition stopped on the very tick the hierarchy
    /// pushed its last response — before any engine consumed it — so a
    /// "drained" machine could still hold outstanding reads and undelivered
    /// responses (invisible in the stats, but a real leak the sanitizer now
    /// rejects). Likewise [`distda_noc::Mesh::is_active`] excludes packets
    /// already ejected into a node inbox, so stopping on the tick the mesh
    /// delivered its last packet stranded that packet undelivered (seen as
    /// an MSHR entry whose DRAM request never reached the controller).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if in-flight work cannot drain within the
    /// budget, or if the sanitizer finds the drained state violating a
    /// conservation invariant.
    pub fn drain(&mut self) -> Result<(), SimError> {
        self.run_until("drain", |m| {
            !m.mem.is_active()
                && m.mem.pending_responses() == 0
                && !m.mesh.is_active()
                && !m.mesh.has_inbox_pending()
                && m.net_out.is_empty()
                && m.engines_quiescent()
        })?;
        self.check_drained();
        self.check_sanitizer("drain")
    }

    /// Whether every engine has released all in-flight memory state and
    /// has no response waiting at its port.
    fn engines_quiescent(&self) -> bool {
        self.engines
            .iter()
            .all(|s| s.eng.is_quiescent() && s.resp.is_empty())
    }

    /// Audits the drained machine against every conservation invariant
    /// (no-op with the sanitizer off).
    fn check_drained(&self) {
        if !self.san.on() {
            return;
        }
        let now = self.now;
        self.mesh.check_conservation(now);
        for node in 0..self.mesh.node_count() {
            self.san.check(
                self.mesh.inbox_len(node) == 0,
                "noc",
                "inbox-drain",
                now,
                || {
                    format!(
                        "node {node} inbox holds {} undelivered packets",
                        self.mesh.inbox_len(node)
                    )
                },
            );
        }
        self.mem.check_drained(now);
        for (g, ch) in self.chans.iter().enumerate() {
            self.san.check(
                ch.queue.is_empty(),
                "machine.chan",
                "channel-drain",
                now,
                || format!("channel {g} still holds {} operands", ch.queue.len()),
            );
            self.san.check(
                ch.credits + ch.credit_debt == CHAN_CAPACITY,
                "machine.chan",
                "credit-conservation",
                now,
                || {
                    format!(
                        "channel {g}: credits {} + debt {} != capacity {CHAN_CAPACITY}",
                        ch.credits, ch.credit_debt
                    )
                },
            );
        }
        for (i, slot) in self.engines.iter().enumerate() {
            self.san.check(
                slot.eng.is_done() || slot.eng.is_idle(),
                "engine",
                "engine-settled",
                now,
                || format!("engine {i} mid-invocation: {}", slot.eng.stall_debug()),
            );
            self.san.check(
                slot.eng.is_quiescent(),
                "engine",
                "engine-quiescent",
                now,
                || {
                    format!(
                        "engine {i} leaked in-flight memory: {}",
                        slot.eng.stall_debug()
                    )
                },
            );
            self.san.check(
                slot.resp.is_empty(),
                "engine",
                "response-drain",
                now,
                || format!("engine {i}: {} responses never consumed", slot.resp.len()),
            );
        }
    }

    /// One base tick.
    pub fn tick(&mut self) {
        let now = self.now;
        // 1. Deliver last tick's mesh arrivals.
        for node in 0..self.mesh.node_count() {
            for pkt in self.mesh.drain_inbox(node) {
                match pkt.payload {
                    NetMsg::Mem(m) => {
                        let wrapped = Packet::new(pkt.src, pkt.dst, pkt.bytes, pkt.class, m);
                        self.mem.deliver(now, wrapped);
                    }
                    NetMsg::ChanData { chan, v } => {
                        if self.chans[chan as usize].queue.try_push(v).is_err() {
                            // Credits bound occupancy; an arrival beyond
                            // capacity means a credit was double-issued.
                            // With the sanitizer on this becomes a typed
                            // error (the operand is dropped — the run is
                            // already condemned); off, fail loudly as
                            // before.
                            if self.san.on() {
                                self.san.flag(
                                    "machine.chan",
                                    "credit-overflow",
                                    now,
                                    format!(
                                        "channel {chan} received an operand beyond its credited capacity"
                                    ),
                                );
                            } else {
                                panic!("channel {chan} overflowed its credited capacity");
                            }
                        }
                    }
                    NetMsg::ChanCredit { chan, n } => {
                        self.chans[chan as usize].credits += n as usize;
                        if self.san.on() {
                            let ch = &self.chans[chan as usize];
                            self.san.check(
                                ch.credits + ch.credit_debt + ch.queue.len()
                                    <= ch.queue.capacity(),
                                "machine.chan",
                                "credit-conservation",
                                now,
                                || {
                                    format!(
                                        "channel {chan}: credits {} + debt {} + queued {} > capacity {}",
                                        ch.credits,
                                        ch.credit_debt,
                                        ch.queue.len(),
                                        ch.queue.capacity()
                                    )
                                },
                            );
                        }
                    }
                    NetMsg::Mmio => {}
                }
            }
        }
        // 2. Host issues.
        self.host.tick(now, &mut self.mem);
        // 3. Engines.
        let Machine {
            engines,
            mem,
            chans,
            net_out,
            memimg,
            layout,
            chan_sink,
            ..
        } = self;
        for slot in engines.iter_mut() {
            for r in mem.take_responses(slot.port) {
                slot.resp.push(r.id);
            }
            let mut ctx = Ctx {
                now,
                port: slot.port,
                chan_base: slot.chan_base,
                mem,
                chans,
                net_out,
                memimg,
                layout,
                resp: &mut slot.resp,
                chan_sink,
            };
            slot.eng.tick(now, &mut ctx);
        }
        // 4. Memory hierarchy.
        self.mem.tick(now);
        // 5. Inject memory packets.
        while let Some(p) = self.mem.pop_outgoing() {
            let wrapped = Packet::new(p.src, p.dst, p.bytes, p.class, NetMsg::Mem(p.payload));
            if let Err(back) = self.mesh.try_inject(now, wrapped) {
                let NetMsg::Mem(m) = back.payload else {
                    unreachable!()
                };
                self.mem.push_front_outgoing(Packet::new(
                    back.src, back.dst, back.bytes, back.class, m,
                ));
                break;
            }
        }
        // 6. Inject machine packets (channel data/credits, MMIO).
        while let Some(p) = self.net_out.pop_front() {
            if let Err(back) = self.mesh.try_inject(now, p) {
                self.net_out.push_front(back);
                break;
            }
        }
        // 7. Mesh.
        self.mesh.tick(now);
        self.now += 1;
    }

    /// Aggregates energy-relevant event counts.
    pub fn energy_counters(&self) -> EnergyCounters {
        let mut c = EnergyCounters {
            host_ops: self.host.stats().retired,
            ..Default::default()
        };
        c.l1_accesses = self.mem.l1_stats().accesses;
        c.l2_accesses = self.mem.l2_stats().accesses;
        c.l3_accesses = self.mem.l3_stats().accesses;
        let (dr, dw) = self.mem.dram_counts();
        c.dram_accesses = dr + dw;
        c.noc_hop_bytes = self.mesh.stats().total_hop_bytes();
        c.flushed_lines = self.mem.sys_stats().flushed_lines;
        c.mmio_words = self.mmio_words;
        for s in &self.engines {
            let es = s.eng.stats();
            // Element accesses and line moves are access-unit work in every
            // configuration (the FSM performs them, Figure 2c) — stream
            // loads/stores are therefore charged as buffer energy, not as
            // core microcode ops, for Mono and Dist alike.
            c.buffer_elem_accesses += es.intra_bytes / 8;
            c.buffer_line_moves += es.da_bytes / 64;
            let chan_ops = es.aa_bytes / 4; // sends + matching recvs
            if s.is_access_node {
                c.buffer_elem_accesses += es.alu_ops;
            } else if s.is_cgra {
                c.cgra_ops += es.alu_ops + chan_ops;
            } else {
                c.io_ops += es.alu_ops + chan_ops;
            }
        }
        c
    }

    /// Sums engine traffic: (intra bytes, D-A bytes, A-A bytes) — Figure 9.
    pub fn access_distribution(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for s in &self.engines {
            let es = s.eng.stats();
            t.0 += es.intra_bytes;
            t.1 += es.da_bytes;
            t.2 += es.aa_bytes;
        }
        t
    }

    /// Sums accelerator-side statistics.
    pub fn engine_totals(&self) -> distda_accel::EngineStats {
        let mut t = distda_accel::EngineStats::default();
        for s in &self.engines {
            let es = s.eng.stats();
            t.iterations += es.iterations;
            t.busy_cycles += es.busy_cycles;
            t.stall_mem += es.stall_mem;
            t.stall_chan += es.stall_chan;
            t.alu_ops += es.alu_ops;
            t.mem_ops += es.mem_ops;
            t.intra_bytes += es.intra_bytes;
            t.da_bytes += es.da_bytes;
            t.aa_bytes += es.aa_bytes;
            t.mmio_words += es.mmio_words;
        }
        t
    }
}

struct Ctx<'a> {
    now: Tick,
    port: PortId,
    chan_base: usize,
    mem: &'a mut MemSystem,
    chans: &'a mut Vec<ChanState>,
    net_out: &'a mut std::collections::VecDeque<Packet<NetMsg>>,
    memimg: &'a mut Memory,
    layout: &'a Layout,
    resp: &'a mut Vec<u64>,
    chan_sink: &'a TraceSink,
}

impl EngineCtx for Ctx<'_> {
    fn try_send(&mut self, chan: u16, v: Value) -> bool {
        let g = self.chan_base + chan as usize;
        let ch = &mut self.chans[g];
        if ch.credits == 0 {
            return false;
        }
        ch.credits -= 1;
        if ch.is_local() {
            ch.queue.try_push(v).expect("credits bound occupancy");
            if self.chan_sink.on() {
                self.chan_sink
                    .sample(self.now, &format!("chan{g}"), ch.queue.len() as f64);
            }
        } else {
            self.net_out.push_back(Packet::new(
                ch.producer_cluster,
                ch.consumer_cluster,
                8,
                TrafficClass::AccData,
                NetMsg::ChanData { chan: g as u16, v },
            ));
        }
        true
    }

    fn try_recv(&mut self, chan: u16) -> Option<Value> {
        let g = self.chan_base + chan as usize;
        let ch = &mut self.chans[g];
        let v = ch.queue.pop()?;
        if self.chan_sink.on() {
            self.chan_sink
                .sample(self.now, &format!("chan{g}"), ch.queue.len() as f64);
        }
        if ch.is_local() {
            ch.credits += 1;
        } else {
            ch.credit_debt += 1;
            if ch.credit_debt >= crate::netmsg::ChanState::CREDIT_BATCH {
                let n = ch.credit_debt as u16;
                ch.credit_debt = 0;
                self.net_out.push_back(Packet::new(
                    ch.consumer_cluster,
                    ch.producer_cluster,
                    0,
                    TrafficClass::AccCtrl,
                    NetMsg::ChanCredit { chan: g as u16, n },
                ));
            }
        }
        Some(v)
    }

    fn mem_read(&mut self, req_id: u64, addr: u64) -> bool {
        self.mem
            .try_request(
                self.now,
                MemRequest {
                    port: self.port,
                    id: req_id,
                    addr,
                    write: false,
                },
            )
            .is_ok()
    }

    fn mem_write(&mut self, req_id: u64, addr: u64) -> bool {
        self.mem
            .try_request(
                self.now,
                MemRequest {
                    port: self.port,
                    id: req_id,
                    addr,
                    write: true,
                },
            )
            .is_ok()
    }

    fn poll_mem(&mut self) -> Option<u64> {
        self.resp.pop()
    }

    fn func_load(&mut self, array: ArrayId, idx: i64) -> Value {
        self.memimg.load(array, idx)
    }

    fn func_store(&mut self, array: ArrayId, idx: i64, v: Value) {
        self.memimg.store(array, idx, v);
    }

    fn addr_of(&self, array: ArrayId, idx: i64) -> u64 {
        self.layout.addr(array, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_compiler::{compile, PartitionMode};
    use distda_ir::prelude::*;
    use distda_mem::MemConfig;

    fn axpy_setup() -> (
        Program,
        distda_compiler::CompiledKernel,
        Machine,
        ArrayId,
        ArrayId,
    ) {
        let mut b = ProgramBuilder::new("axpy");
        let x = b.array_f64("x", 64);
        let y = b.array_f64("y", 64);
        b.for_(0, 64, 1, |b, i| {
            let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
            b.store(y, i, v);
        });
        let p = b.build();
        let ck = compile(&p, PartitionMode::Distributed);
        let uncore = ClockDomain::from_ghz(2.0);
        let mut mem = MemSystem::new(MemConfig::default(), uncore, 0, 7);
        let alloc = crate::alloc::allocate(
            &p,
            &ck.offloads,
            8,
            crate::alloc::AllocStrategy::RoundRobin,
            &mut mem,
        );
        let mut img = Memory::for_program(&p);
        for i in 0..64 {
            img.array_mut(x)[i] = Value::F(i as f64);
            img.array_mut(y)[i] = Value::F(1.0);
        }
        let machine = Machine::new(mem, img, alloc.layout.clone(), 5, 224);
        (p, ck, machine, x, y)
    }

    fn io_substrate(access_node: bool) -> Substrate {
        Substrate {
            model: IssueModel::InOrder { width: 1 },
            clock: ClockDomain::from_ghz(2.0),
            buffer_lines: 64,
            is_access_node: access_node,
            tuning: (4, 8, 16),
        }
    }

    #[test]
    fn distributed_axpy_runs_to_completion_with_correct_values() {
        let (_p, ck, mut m, _x, y) = axpy_setup();
        let plan = &ck.offloads[0];
        let placement = vec![0usize, 1];
        let subs = vec![io_substrate(false); 2];
        let h = m.configure_plan(plan, &placement, &subs, &[]);
        m.launch(h, &[], &[vec![], vec![]], 0, 64, 1);
        m.run_offload(h).unwrap();
        for i in 0..64 {
            assert_eq!(m.memimg().array(y)[i], Value::F(2.0 * i as f64 + 1.0));
        }
        // Cross-cluster operand traffic must have used the mesh.
        let stats = m.noc_stats();
        assert!(stats.bytes[TrafficClass::AccData.index()] > 0);
    }

    #[test]
    fn co_located_partitions_avoid_channel_noc_traffic() {
        // Same kernel twice: partitions split across clusters vs co-located.
        // Co-location eliminates the channel's share of AccData (remote ACP
        // line fills remain in both).
        let run = |placement: [usize; 2]| {
            let (_p, ck, mut m, _x, _y) = axpy_setup();
            let plan = &ck.offloads[0];
            let h = m.configure_plan(plan, &placement, &[io_substrate(false); 2], &[]);
            m.launch(h, &[], &[vec![], vec![]], 0, 64, 1);
            m.run_offload(h).unwrap();
            m.noc_stats().bytes[TrafficClass::AccData.index()]
        };
        let split = run([2, 5]);
        let colocated = run([2, 2]);
        assert!(
            colocated < split,
            "co-located {colocated} should move fewer operand bytes than split {split}"
        );
    }

    #[test]
    fn host_segment_and_offload_interleave() {
        let (_p, ck, mut m, x, _y) = axpy_setup();
        // Host writes x[0..4] first (trace ops), then offload runs.
        use distda_ir::trace::{DynOp, OpKind, NO_DEP};
        let base = m.layout().base(x);
        let ops: Vec<DynOp> = (0..4)
            .map(|i| DynOp {
                kind: OpKind::Store { addr: base + i * 8 },
                dep1: NO_DEP,
                dep2: NO_DEP,
            })
            .collect();
        m.run_host_segment(ops).unwrap();
        let t_after_host = m.now;
        assert!(t_after_host > 0);
        let plan = &ck.offloads[0];
        let h = m.configure_plan(plan, &[0, 1], &[io_substrate(false); 2], &[]);
        m.launch(h, &[], &[vec![], vec![]], 0, 64, 1);
        m.run_offload(h).unwrap();
        assert!(m.now > t_after_host);
        assert_eq!(m.host_stats().retired, 4);
    }

    #[test]
    fn reduction_liveout_read_back() {
        let mut b = ProgramBuilder::new("sum");
        let x = b.array_i64("x", 32);
        let acc = b.scalar("acc", 0i64);
        b.for_(0, 32, 1, |b, i| {
            b.set(acc, Expr::Scalar(acc) + Expr::load(x, i));
        });
        let p = b.build();
        let ck = compile(&p, PartitionMode::Distributed);
        let uncore = ClockDomain::from_ghz(2.0);
        let mut mem = MemSystem::new(MemConfig::default(), uncore, 0, 7);
        let alloc = crate::alloc::allocate(
            &p,
            &ck.offloads,
            8,
            crate::alloc::AllocStrategy::RoundRobin,
            &mut mem,
        );
        let mut img = Memory::for_program(&p);
        for i in 0..32 {
            img.array_mut(x)[i] = Value::I(i as i64);
        }
        let mut m = Machine::new(mem, img, alloc.layout.clone(), 5, 224);
        let plan = &ck.offloads[0];
        let placements: Vec<usize> = (0..plan.partitions.len()).collect();
        let subs = vec![io_substrate(false); plan.partitions.len()];
        let h = m.configure_plan(plan, &placements, &subs, &[]);
        let carries: Vec<Vec<Value>> = m
            .plan_carry_scalars(h)
            .iter()
            .map(|ss| ss.iter().map(|_| Value::I(0)).collect())
            .collect();
        m.launch(h, &[], &carries, 0, 32, 1);
        m.run_offload(h).unwrap();
        let outs = m.read_liveouts(h);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].1, Value::I((0..32).sum::<i64>()));
    }

    #[test]
    fn energy_counters_populated() {
        let (_p, ck, mut m, _x, _y) = axpy_setup();
        let plan = &ck.offloads[0];
        let h = m.configure_plan(plan, &[0, 1], &[io_substrate(false); 2], &[]);
        m.launch(h, &[], &[vec![], vec![]], 0, 64, 1);
        m.run_offload(h).unwrap();
        m.drain().unwrap();
        let c = m.energy_counters();
        assert!(c.io_ops > 0);
        assert!(c.l3_accesses > 0, "ACP traffic must reach L3");
        assert!(c.dram_accesses > 0, "cold data comes from DRAM");
        assert!(c.mmio_words > 0);
        let (intra, da, aa) = m.access_distribution();
        assert!(intra > 0 && da > 0 && aa > 0);
    }
}
