//! The six evaluated configurations (paper Section VI-A) plus the
//! sensitivity-study knobs.

use crate::alloc::AllocStrategy;
use distda_compiler::PartitionMode;

/// The architecture models of Figure 1 / Section VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigKind {
    /// Out-of-order host only (the normalization baseline).
    OoO,
    /// Monolithic accelerator on the L3 bus, centralized stream-specialized
    /// accesses, 8 KB private buffer, 2 GHz.
    MonoCA,
    /// Monolithic compute, decentralized access nodes; in-order core at
    /// 2 GHz.
    MonoDAIO,
    /// Monolithic compute, decentralized accesses; 8x8 CGRA at 1 GHz.
    MonoDAF,
    /// Distributed compute + decentralized accesses; in-order cores at
    /// 2 GHz.
    DistDAIO,
    /// Distributed compute + decentralized accesses; 5x5 CGRA per cluster
    /// at 1 GHz.
    DistDAF,
}

impl ConfigKind {
    /// All kinds in the paper's presentation order.
    pub const ALL: [ConfigKind; 6] = [
        ConfigKind::OoO,
        ConfigKind::MonoCA,
        ConfigKind::MonoDAIO,
        ConfigKind::MonoDAF,
        ConfigKind::DistDAIO,
        ConfigKind::DistDAF,
    ];

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            ConfigKind::OoO => "OoO",
            ConfigKind::MonoCA => "Mono-CA",
            ConfigKind::MonoDAIO => "Mono-DA-IO",
            ConfigKind::MonoDAF => "Mono-DA-F",
            ConfigKind::DistDAIO => "Dist-DA-IO",
            ConfigKind::DistDAF => "Dist-DA-F",
        }
    }

    /// Compiler partitioning mode for this configuration.
    pub fn partition_mode(self) -> Option<PartitionMode> {
        match self {
            ConfigKind::OoO => None,
            ConfigKind::MonoCA | ConfigKind::MonoDAIO | ConfigKind::MonoDAF => {
                Some(PartitionMode::Monolithic)
            }
            ConfigKind::DistDAIO | ConfigKind::DistDAF => Some(PartitionMode::Distributed),
        }
    }

    /// Whether accesses are decentralized into access nodes (Mono-DA).
    pub fn decentralize_accesses(self) -> bool {
        matches!(self, ConfigKind::MonoDAIO | ConfigKind::MonoDAF)
    }

    /// Whether the compute substrate is a CGRA fabric.
    pub fn is_cgra(self) -> bool {
        matches!(self, ConfigKind::MonoDAF | ConfigKind::DistDAF)
    }
}

/// One simulated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// The architecture model.
    pub kind: ConfigKind,
    /// Accelerator clock in GHz (Figure 13 sweeps this).
    pub accel_ghz: f64,
    /// Access-unit buffer lines (64 = 4 KB; Mono-CA uses 128 = 8 KB).
    pub buffer_lines: usize,
    /// In-order accelerator issue width (Figure 14 +SW uses 4).
    pub issue_width: u32,
    /// Deeper prefetch + more MLP in the access units (Figure 14 +SW).
    pub sw_prefetch: bool,
    /// Object allocation policy (Figure 14 +A uses `Affinity`).
    pub alloc: AllocStrategy,
    /// Optional label suffix for variants.
    pub suffix: &'static str,
}

impl RunConfig {
    /// The paper's default settings for a configuration kind.
    pub fn named(kind: ConfigKind) -> Self {
        // Buffer capacities follow the 4x-scaled hierarchy (paper: 4 KB
        // per access unit, 8 KB private for Mono-CA).
        let (accel_ghz, buffer_lines, issue_width) = match kind {
            ConfigKind::OoO => (2.0, 32, 1),
            ConfigKind::MonoCA => (2.0, 64, 4),
            ConfigKind::MonoDAIO => (2.0, 32, 1),
            ConfigKind::MonoDAF => (1.0, 32, 1),
            ConfigKind::DistDAIO => (2.0, 32, 1),
            ConfigKind::DistDAF => (1.0, 32, 1),
        };
        let alloc = match kind {
            ConfigKind::OoO | ConfigKind::MonoCA => AllocStrategy::Interleaved,
            _ => AllocStrategy::RoundRobin,
        };
        Self {
            kind,
            accel_ghz,
            buffer_lines,
            issue_width,
            sw_prefetch: false,
            alloc,
            suffix: "",
        }
    }

    /// The Figure 14 `Dist-DA-IO+SW` variant: 4-issue with software
    /// prefetching.
    pub fn dist_da_io_sw() -> Self {
        Self {
            issue_width: 4,
            sw_prefetch: true,
            suffix: "+SW",
            ..Self::named(ConfigKind::DistDAIO)
        }
    }

    /// The Figure 14 `Dist-DA-F+A` variant: affinity-aware allocation.
    pub fn dist_da_f_alloc() -> Self {
        Self {
            alloc: AllocStrategy::Affinity,
            suffix: "+A",
            ..Self::named(ConfigKind::DistDAF)
        }
    }

    /// Checks the configuration for internal consistency.
    ///
    /// Decentralized-access and distributed configurations require
    /// cluster-anchored allocation: their access plans route requests to
    /// each object's home cluster, so `Interleaved` (no homes) would leave
    /// every partition with nowhere to run. This used to be an
    /// `unreachable!()` deep in allocation; now it is a typed error the
    /// runner reports before simulating anything.
    pub fn validate(&self) -> Result<(), crate::error::SimError> {
        let needs_homes = matches!(
            self.kind,
            ConfigKind::MonoDAIO | ConfigKind::MonoDAF | ConfigKind::DistDAIO | ConfigKind::DistDAF
        );
        if needs_homes && self.alloc == AllocStrategy::Interleaved {
            return Err(crate::error::SimError::InvalidConfig {
                detail: format!(
                    "{} requires cluster-anchored allocation (RoundRobin or Affinity), \
                     but alloc is Interleaved: decentralized access plans need a home \
                     cluster per object",
                    self.label()
                ),
            });
        }
        Ok(())
    }

    /// Display label (`Dist-DA-F@1GHz` style).
    pub fn label(&self) -> String {
        if self.kind == ConfigKind::OoO {
            return "OoO".to_string();
        }
        format!(
            "{}{}@{}GHz",
            self.kind.label(),
            self.suffix,
            if self.accel_ghz.fract() == 0.0 {
                format!("{}", self.accel_ghz as u64)
            } else {
                format!("{}", self.accel_ghz)
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RunConfig::named(ConfigKind::DistDAF);
        assert_eq!(c.accel_ghz, 1.0);
        assert_eq!(c.label(), "Dist-DA-F@1GHz");
        let ca = RunConfig::named(ConfigKind::MonoCA);
        assert_eq!(ca.buffer_lines, 64);
        assert_eq!(RunConfig::named(ConfigKind::OoO).label(), "OoO");
    }

    #[test]
    fn partition_modes() {
        assert_eq!(ConfigKind::OoO.partition_mode(), None);
        assert_eq!(
            ConfigKind::MonoDAIO.partition_mode(),
            Some(PartitionMode::Monolithic)
        );
        assert_eq!(
            ConfigKind::DistDAF.partition_mode(),
            Some(PartitionMode::Distributed)
        );
        assert!(ConfigKind::MonoDAF.decentralize_accesses());
        assert!(!ConfigKind::DistDAIO.decentralize_accesses());
        assert!(ConfigKind::DistDAF.is_cgra());
    }

    #[test]
    fn variants_label_correctly() {
        assert_eq!(RunConfig::dist_da_io_sw().label(), "Dist-DA-IO+SW@2GHz");
        assert_eq!(RunConfig::dist_da_f_alloc().label(), "Dist-DA-F+A@1GHz");
    }

    #[test]
    fn interleaved_alloc_only_valid_without_decentralized_accesses() {
        use crate::error::SimError;
        for kind in ConfigKind::ALL {
            let cfg = RunConfig {
                alloc: AllocStrategy::Interleaved,
                ..RunConfig::named(kind)
            };
            let ok = matches!(kind, ConfigKind::OoO | ConfigKind::MonoCA);
            match cfg.validate() {
                Ok(()) => assert!(ok, "{} should reject Interleaved", cfg.label()),
                Err(SimError::InvalidConfig { detail }) => {
                    assert!(!ok, "{} should accept Interleaved", cfg.label());
                    assert!(detail.contains(&cfg.label()));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            // The paper defaults always validate.
            RunConfig::named(kind).validate().unwrap();
        }
    }
}
