//! The six evaluated configurations (paper Section VI-A) plus the
//! sensitivity-study knobs.

use crate::alloc::AllocStrategy;
use distda_compiler::PartitionMode;

/// The architecture models of Figure 1 / Section VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigKind {
    /// Out-of-order host only (the normalization baseline).
    OoO,
    /// Monolithic accelerator on the L3 bus, centralized stream-specialized
    /// accesses, 8 KB private buffer, 2 GHz.
    MonoCA,
    /// Monolithic compute, decentralized access nodes; in-order core at
    /// 2 GHz.
    MonoDAIO,
    /// Monolithic compute, decentralized accesses; 8x8 CGRA at 1 GHz.
    MonoDAF,
    /// Distributed compute + decentralized accesses; in-order cores at
    /// 2 GHz.
    DistDAIO,
    /// Distributed compute + decentralized accesses; 5x5 CGRA per cluster
    /// at 1 GHz.
    DistDAF,
}

impl ConfigKind {
    /// All kinds in the paper's presentation order.
    pub const ALL: [ConfigKind; 6] = [
        ConfigKind::OoO,
        ConfigKind::MonoCA,
        ConfigKind::MonoDAIO,
        ConfigKind::MonoDAF,
        ConfigKind::DistDAIO,
        ConfigKind::DistDAF,
    ];

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            ConfigKind::OoO => "OoO",
            ConfigKind::MonoCA => "Mono-CA",
            ConfigKind::MonoDAIO => "Mono-DA-IO",
            ConfigKind::MonoDAF => "Mono-DA-F",
            ConfigKind::DistDAIO => "Dist-DA-IO",
            ConfigKind::DistDAF => "Dist-DA-F",
        }
    }

    /// Compiler partitioning mode for this configuration.
    pub fn partition_mode(self) -> Option<PartitionMode> {
        match self {
            ConfigKind::OoO => None,
            ConfigKind::MonoCA | ConfigKind::MonoDAIO | ConfigKind::MonoDAF => {
                Some(PartitionMode::Monolithic)
            }
            ConfigKind::DistDAIO | ConfigKind::DistDAF => Some(PartitionMode::Distributed),
        }
    }

    /// Whether accesses are decentralized into access nodes (Mono-DA).
    pub fn decentralize_accesses(self) -> bool {
        matches!(self, ConfigKind::MonoDAIO | ConfigKind::MonoDAF)
    }

    /// Whether the compute substrate is a CGRA fabric.
    pub fn is_cgra(self) -> bool {
        matches!(self, ConfigKind::MonoDAF | ConfigKind::DistDAF)
    }
}

/// A disaggregated far-memory pool behind the memory-controller node:
/// every DRAM access pays an extra network crossing to the remote pool,
/// and the pool link's bandwidth replaces local DRAM bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarMemory {
    /// Extra uncore cycles per DRAM access (the remote hop, both ways).
    pub extra_latency: u64,
    /// Far-pool link bandwidth in bytes per uncore cycle.
    pub bytes_per_cycle: u64,
}

/// The machine shape: mesh dimensions, NUCA banking, where the host and
/// the memory controller sit, plus the scenario-family knobs (far-memory
/// pool, tenant count). One L3 cluster per mesh node, so the cluster
/// count is always `mesh_cols * mesh_rows`.
///
/// [`Topology::paper`] reproduces the Table III machine exactly (4x2
/// mesh, 8 clusters x 4 banks, host at node 0, memory controller at node
/// 7); every paper figure runs on it byte-identically to the
/// pre-parametric code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Mesh width (columns).
    pub mesh_cols: usize,
    /// Mesh height (rows).
    pub mesh_rows: usize,
    /// NUCA banks per L3 cluster.
    pub banks_per_cluster: usize,
    /// Mesh node hosting the OoO core and its private hierarchy.
    pub host_node: usize,
    /// Mesh node fronting DRAM (or the far-memory pool).
    pub memctrl_node: usize,
    /// Disaggregated far-memory pool behind the controller, if any.
    pub far_memory: Option<FarMemory>,
    /// Independent co-scheduled copies of the workload sharing the fabric
    /// (1 = the classic single-tenant machine).
    pub tenants: usize,
}

impl Topology {
    /// The Table III machine: 4x2 mesh, host at node 0, controller at 7.
    pub fn paper() -> Self {
        Self {
            mesh_cols: 4,
            mesh_rows: 2,
            banks_per_cluster: 4,
            host_node: 0,
            memctrl_node: 7,
            far_memory: None,
            tenants: 1,
        }
    }

    /// An arbitrary mesh, host at node 0 and the memory controller at the
    /// opposite corner (the paper's convention generalized).
    pub fn mesh(cols: usize, rows: usize) -> Self {
        Self {
            mesh_cols: cols,
            mesh_rows: rows,
            memctrl_node: (cols * rows).saturating_sub(1),
            ..Self::paper()
        }
    }

    /// Cluster count (one cluster per mesh node).
    pub fn clusters(&self) -> usize {
        self.mesh_cols * self.mesh_rows
    }

    /// Checks the topology for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`](crate::error::SimError) naming
    /// the violated rule.
    pub fn validate(&self) -> Result<(), crate::error::SimError> {
        let fail = |detail: String| Err(crate::error::SimError::InvalidConfig { detail });
        if self.mesh_cols == 0 || self.mesh_rows == 0 {
            return fail(format!(
                "mesh must be at least 1x1, got {}x{}",
                self.mesh_cols, self.mesh_rows
            ));
        }
        if self.clusters() > 1024 {
            return fail(format!(
                "mesh {}x{} exceeds 1024 clusters",
                self.mesh_cols, self.mesh_rows
            ));
        }
        if self.banks_per_cluster == 0 || self.banks_per_cluster > 64 {
            return fail(format!(
                "banks_per_cluster must be in 1..=64, got {}",
                self.banks_per_cluster
            ));
        }
        if self.host_node >= self.clusters() || self.memctrl_node >= self.clusters() {
            return fail(format!(
                "host node {} / memctrl node {} out of range for {} clusters",
                self.host_node,
                self.memctrl_node,
                self.clusters()
            ));
        }
        if self.tenants == 0 || self.tenants > 16 {
            return fail(format!("tenants must be in 1..=16, got {}", self.tenants));
        }
        if let Some(fm) = self.far_memory {
            if fm.bytes_per_cycle == 0 {
                return fail("far-memory bytes_per_cycle must be nonzero".to_string());
            }
        }
        Ok(())
    }

    /// The label segments for the non-paper knobs (`:4x4:fm150:t2`
    /// style), empty for the paper machine. Host/controller placement is
    /// not rendered: labels cover the sweepable axes, and
    /// [`Topology::apply_segment`] re-derives placement from the mesh.
    pub fn label_suffix(&self) -> String {
        let paper = Self::paper();
        let mut out = String::new();
        if (self.mesh_cols, self.mesh_rows) != (paper.mesh_cols, paper.mesh_rows) {
            out.push_str(&format!(":{}x{}", self.mesh_cols, self.mesh_rows));
        }
        if self.banks_per_cluster != paper.banks_per_cluster {
            out.push_str(&format!(":b{}", self.banks_per_cluster));
        }
        if let Some(fm) = self.far_memory {
            out.push_str(&format!(":fm{}", fm.extra_latency));
            if fm.bytes_per_cycle != FAR_MEMORY_BYTES_PER_CYCLE {
                out.push_str(&format!("x{}", fm.bytes_per_cycle));
            }
        }
        if self.tenants > 1 {
            out.push_str(&format!(":t{}", self.tenants));
        }
        out
    }

    /// Applies one extended-label segment: `<C>x<R>` (mesh dimensions,
    /// host/controller re-derived as in [`Topology::mesh`]), `b<N>`
    /// (banks per cluster), `fm<LAT>[x<BW>]` (far-memory pool), or
    /// `t<N>` (tenant count).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed segment.
    pub fn apply_segment(&mut self, seg: &str) -> Result<(), String> {
        let bad = |what: &str| Err(format!("bad topology segment `{seg}`: {what}"));
        if let Some(rest) = seg.strip_prefix("fm") {
            let (lat, bw) = match rest.split_once('x') {
                Some((l, b)) => (l, Some(b)),
                None => (rest, None),
            };
            let Ok(extra_latency) = lat.parse::<u64>() else {
                return bad("expected fm<LATENCY>[x<BYTES_PER_CYCLE>]");
            };
            let bytes_per_cycle = match bw {
                Some(b) => match b.parse::<u64>() {
                    Ok(v) => v,
                    Err(_) => return bad("expected fm<LATENCY>[x<BYTES_PER_CYCLE>]"),
                },
                None => FAR_MEMORY_BYTES_PER_CYCLE,
            };
            self.far_memory = Some(FarMemory {
                extra_latency,
                bytes_per_cycle,
            });
            return Ok(());
        }
        if let Some(rest) = seg.strip_prefix('t') {
            if let Ok(n) = rest.parse::<usize>() {
                self.tenants = n;
                return Ok(());
            }
        }
        if let Some(rest) = seg.strip_prefix('b') {
            if let Ok(n) = rest.parse::<usize>() {
                self.banks_per_cluster = n;
                return Ok(());
            }
        }
        if let Some((c, r)) = seg.split_once('x') {
            if let (Ok(cols), Ok(rows)) = (c.parse::<usize>(), r.parse::<usize>()) {
                let banks = self.banks_per_cluster;
                let (fm, tenants) = (self.far_memory, self.tenants);
                *self = Self::mesh(cols, rows);
                self.banks_per_cluster = banks;
                self.far_memory = fm;
                self.tenants = tenants;
                return Ok(());
            }
        }
        bad("expected <C>x<R>, b<N>, fm<LAT>[x<BW>] or t<N>")
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::paper()
    }
}

/// Default far-pool link bandwidth (bytes per uncore cycle) when an
/// extended label gives only a latency (`:fm150`).
pub const FAR_MEMORY_BYTES_PER_CYCLE: u64 = 2;

/// Splits an extended configuration label (`<base>[:<segment>]...`) into
/// the base label and the topology built from its segments.
///
/// # Errors
///
/// Returns a description of the first malformed segment.
pub fn parse_label_extension(label: &str) -> Result<(&str, Topology), String> {
    let mut parts = label.split(':');
    let base = parts.next().unwrap_or(label);
    let mut topo = Topology::paper();
    for seg in parts {
        topo.apply_segment(seg)?;
    }
    Ok((base, topo))
}

/// One simulated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// The architecture model.
    pub kind: ConfigKind,
    /// Accelerator clock in GHz (Figure 13 sweeps this).
    pub accel_ghz: f64,
    /// Access-unit buffer lines (64 = 4 KB; Mono-CA uses 128 = 8 KB).
    pub buffer_lines: usize,
    /// In-order accelerator issue width (Figure 14 +SW uses 4).
    pub issue_width: u32,
    /// Deeper prefetch + more MLP in the access units (Figure 14 +SW).
    pub sw_prefetch: bool,
    /// Object allocation policy (Figure 14 +A uses `Affinity`).
    pub alloc: AllocStrategy,
    /// Optional label suffix for variants.
    pub suffix: &'static str,
    /// Machine shape and scenario family ([`Topology::paper`] by default).
    pub topology: Topology,
}

impl RunConfig {
    /// The paper's default settings for a configuration kind.
    pub fn named(kind: ConfigKind) -> Self {
        // Buffer capacities follow the 4x-scaled hierarchy (paper: 4 KB
        // per access unit, 8 KB private for Mono-CA).
        let (accel_ghz, buffer_lines, issue_width) = match kind {
            ConfigKind::OoO => (2.0, 32, 1),
            ConfigKind::MonoCA => (2.0, 64, 4),
            ConfigKind::MonoDAIO => (2.0, 32, 1),
            ConfigKind::MonoDAF => (1.0, 32, 1),
            ConfigKind::DistDAIO => (2.0, 32, 1),
            ConfigKind::DistDAF => (1.0, 32, 1),
        };
        let alloc = match kind {
            ConfigKind::OoO | ConfigKind::MonoCA => AllocStrategy::Interleaved,
            _ => AllocStrategy::RoundRobin,
        };
        Self {
            kind,
            accel_ghz,
            buffer_lines,
            issue_width,
            sw_prefetch: false,
            alloc,
            suffix: "",
            topology: Topology::paper(),
        }
    }

    /// A copy of this configuration on a different machine shape.
    pub fn with_topology(self, topology: Topology) -> Self {
        Self { topology, ..self }
    }

    /// The Figure 14 `Dist-DA-IO+SW` variant: 4-issue with software
    /// prefetching.
    pub fn dist_da_io_sw() -> Self {
        Self {
            issue_width: 4,
            sw_prefetch: true,
            suffix: "+SW",
            ..Self::named(ConfigKind::DistDAIO)
        }
    }

    /// The Figure 14 `Dist-DA-F+A` variant: affinity-aware allocation.
    pub fn dist_da_f_alloc() -> Self {
        Self {
            alloc: AllocStrategy::Affinity,
            suffix: "+A",
            ..Self::named(ConfigKind::DistDAF)
        }
    }

    /// Checks the configuration for internal consistency.
    ///
    /// Decentralized-access and distributed configurations require
    /// cluster-anchored allocation: their access plans route requests to
    /// each object's home cluster, so `Interleaved` (no homes) would leave
    /// every partition with nowhere to run. This used to be an
    /// `unreachable!()` deep in allocation; now it is a typed error the
    /// runner reports before simulating anything.
    pub fn validate(&self) -> Result<(), crate::error::SimError> {
        let needs_homes = matches!(
            self.kind,
            ConfigKind::MonoDAIO | ConfigKind::MonoDAF | ConfigKind::DistDAIO | ConfigKind::DistDAF
        );
        if needs_homes && self.alloc == AllocStrategy::Interleaved {
            return Err(crate::error::SimError::InvalidConfig {
                detail: format!(
                    "{} requires cluster-anchored allocation (RoundRobin or Affinity), \
                     but alloc is Interleaved: decentralized access plans need a home \
                     cluster per object",
                    self.label()
                ),
            });
        }
        self.topology.validate()?;
        if self.topology.tenants > 1 && self.kind.partition_mode().is_none() {
            return Err(crate::error::SimError::InvalidConfig {
                detail: format!(
                    "{} cannot run {} tenants: multi-tenant co-scheduling needs an \
                     offload configuration (the single host core would serialize \
                     everything)",
                    self.label(),
                    self.topology.tenants
                ),
            });
        }
        Ok(())
    }

    /// Display label (`Dist-DA-F@1GHz` style), with `:`-separated topology
    /// segments appended for non-paper machine shapes
    /// (`Dist-DA-F@1GHz:4x4:fm150:t2` style, see
    /// [`Topology::label_suffix`]).
    pub fn label(&self) -> String {
        let base = if self.kind == ConfigKind::OoO {
            "OoO".to_string()
        } else {
            format!(
                "{}{}@{}GHz",
                self.kind.label(),
                self.suffix,
                if self.accel_ghz.fract() == 0.0 {
                    format!("{}", self.accel_ghz as u64)
                } else {
                    format!("{}", self.accel_ghz)
                }
            )
        };
        format!("{base}{}", self.topology.label_suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RunConfig::named(ConfigKind::DistDAF);
        assert_eq!(c.accel_ghz, 1.0);
        assert_eq!(c.label(), "Dist-DA-F@1GHz");
        let ca = RunConfig::named(ConfigKind::MonoCA);
        assert_eq!(ca.buffer_lines, 64);
        assert_eq!(RunConfig::named(ConfigKind::OoO).label(), "OoO");
    }

    #[test]
    fn partition_modes() {
        assert_eq!(ConfigKind::OoO.partition_mode(), None);
        assert_eq!(
            ConfigKind::MonoDAIO.partition_mode(),
            Some(PartitionMode::Monolithic)
        );
        assert_eq!(
            ConfigKind::DistDAF.partition_mode(),
            Some(PartitionMode::Distributed)
        );
        assert!(ConfigKind::MonoDAF.decentralize_accesses());
        assert!(!ConfigKind::DistDAIO.decentralize_accesses());
        assert!(ConfigKind::DistDAF.is_cgra());
    }

    #[test]
    fn variants_label_correctly() {
        assert_eq!(RunConfig::dist_da_io_sw().label(), "Dist-DA-IO+SW@2GHz");
        assert_eq!(RunConfig::dist_da_f_alloc().label(), "Dist-DA-F+A@1GHz");
    }

    #[test]
    fn interleaved_alloc_only_valid_without_decentralized_accesses() {
        use crate::error::SimError;
        for kind in ConfigKind::ALL {
            let cfg = RunConfig {
                alloc: AllocStrategy::Interleaved,
                ..RunConfig::named(kind)
            };
            let ok = matches!(kind, ConfigKind::OoO | ConfigKind::MonoCA);
            match cfg.validate() {
                Ok(()) => assert!(ok, "{} should reject Interleaved", cfg.label()),
                Err(SimError::InvalidConfig { detail }) => {
                    assert!(!ok, "{} should accept Interleaved", cfg.label());
                    assert!(detail.contains(&cfg.label()));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            // The paper defaults always validate.
            RunConfig::named(kind).validate().unwrap();
        }
    }

    #[test]
    fn paper_topology_matches_table_iii_and_labels_stay_bare() {
        let t = Topology::paper();
        assert_eq!((t.mesh_cols, t.mesh_rows), (4, 2));
        assert_eq!(t.clusters(), 8);
        assert_eq!(t.banks_per_cluster, 4);
        assert_eq!((t.host_node, t.memctrl_node), (0, 7));
        assert_eq!(t.label_suffix(), "");
        // The paper configs must keep their exact pre-parametric labels.
        assert_eq!(
            RunConfig::named(ConfigKind::DistDAF).label(),
            "Dist-DA-F@1GHz"
        );
        assert_eq!(RunConfig::named(ConfigKind::OoO).label(), "OoO");
    }

    #[test]
    fn topology_labels_round_trip_through_parse() {
        let mut t = Topology::mesh(8, 4);
        t.banks_per_cluster = 8;
        t.far_memory = Some(FarMemory {
            extra_latency: 150,
            bytes_per_cycle: 2,
        });
        t.tenants = 3;
        let cfg = RunConfig::named(ConfigKind::DistDAF).with_topology(t);
        let label = cfg.label();
        assert_eq!(label, "Dist-DA-F@1GHz:8x4:b8:fm150:t3");
        let (base, parsed) = parse_label_extension(&label).unwrap();
        assert_eq!(base, "Dist-DA-F@1GHz");
        assert_eq!(parsed, t);
        // Non-default far-memory bandwidth renders and parses too.
        t.far_memory = Some(FarMemory {
            extra_latency: 80,
            bytes_per_cycle: 1,
        });
        let label = cfg.with_topology(t).label();
        assert_eq!(label, "Dist-DA-F@1GHz:8x4:b8:fm80x1:t3");
        assert_eq!(parse_label_extension(&label).unwrap().1, t);
    }

    #[test]
    fn mesh_derives_corner_controller() {
        let t = Topology::mesh(4, 4);
        assert_eq!(t.clusters(), 16);
        assert_eq!((t.host_node, t.memctrl_node), (0, 15));
        t.validate().unwrap();
        // 4x2 via the constructor is exactly the paper machine.
        assert_eq!(Topology::mesh(4, 2), Topology::paper());
    }

    #[test]
    fn invalid_topologies_are_typed_errors() {
        use crate::error::SimError;
        let reject = |t: Topology, needle: &str| match t.validate() {
            Err(SimError::InvalidConfig { detail }) => {
                assert!(detail.contains(needle), "{detail} should mention {needle}")
            }
            other => panic!("{t:?} should be rejected, got {other:?}"),
        };
        reject(Topology::mesh(0, 2), "1x1");
        reject(Topology::mesh(64, 64), "1024");
        reject(
            Topology {
                banks_per_cluster: 0,
                ..Topology::paper()
            },
            "banks_per_cluster",
        );
        reject(
            Topology {
                memctrl_node: 8,
                ..Topology::paper()
            },
            "out of range",
        );
        reject(
            Topology {
                tenants: 0,
                ..Topology::paper()
            },
            "tenants",
        );
        reject(
            Topology {
                far_memory: Some(FarMemory {
                    extra_latency: 10,
                    bytes_per_cycle: 0,
                }),
                ..Topology::paper()
            },
            "bytes_per_cycle",
        );
        // Multi-tenant needs an offload configuration.
        let mut cfg = RunConfig::named(ConfigKind::OoO);
        cfg.topology.tenants = 2;
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidConfig { .. })
        ));
        let mut cfg = RunConfig::named(ConfigKind::DistDAF);
        cfg.topology.tenants = 2;
        cfg.validate().unwrap();
    }

    #[test]
    fn malformed_segments_are_rejected() {
        let mut t = Topology::paper();
        assert!(t.apply_segment("4xq").is_err());
        assert!(t.apply_segment("fmx3").is_err());
        assert!(t.apply_segment("zz").is_err());
        assert!(parse_label_extension("Dist-DA-F@1GHz:what").is_err());
    }
}
