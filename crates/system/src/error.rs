//! Typed simulation errors for the machine's run loops.
//!
//! The machine used to guard against modeling deadlocks with bare
//! `assert!(now < tick_budget)` calls, which reported nothing about *what*
//! was stuck. [`SimError`] carries the run-loop phase, the tick, and a
//! description of every stalled component so a hung plan can be diagnosed
//! from the error alone.

use distda_sim::time::Tick;

/// A fatal condition detected while running the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The tick budget ran out before the run loop's exit condition held —
    /// almost always a deadlock or livelock in the modeled machine.
    TickBudgetExhausted {
        /// Which run loop was executing (`"offload"`, `"host-segment"`,
        /// `"drain"`).
        phase: &'static str,
        /// Tick at which the budget was exhausted.
        now: Tick,
        /// The configured budget.
        budget: u64,
        /// Description of every component still stalled.
        stalled: String,
    },
    /// Skip-ahead proved the machine can never make progress again: every
    /// component reported no internally scheduled event and no external
    /// event is in flight, yet the exit condition still does not hold.
    Deadlock {
        /// Which run loop was executing.
        phase: &'static str,
        /// Tick at which the deadlock was detected.
        now: Tick,
        /// Description of every component still stalled.
        stalled: String,
    },
    /// The invariant sanitizer recorded one or more conservation-law
    /// violations (lost flits, leaked MSHRs, over-credited channels,
    /// timestamp inversions, ...).
    InvariantViolation {
        /// Which run loop (or drain check) detected the violations.
        phase: &'static str,
        /// Tick at which the run was stopped.
        now: Tick,
        /// Total number of violations recorded.
        count: usize,
        /// Rendered violation log, one per line.
        report: String,
    },
    /// Differential validation failed: the simulated machine's memory
    /// image (or live-out scalars) disagree with the IR interpreter's
    /// golden execution of the same program.
    ValidationMismatch {
        /// Workload name.
        kernel: String,
        /// Configuration label.
        config: String,
        /// First mismatching object/scalar with expected vs actual.
        detail: String,
    },
    /// The run configuration is inconsistent and cannot be simulated
    /// (e.g. a distributed-accelerator config with interleaved DRAM
    /// allocation, which leaves arrays without cluster homes).
    InvalidConfig {
        /// What is wrong with the configuration.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TickBudgetExhausted {
                phase,
                now,
                budget,
                stalled,
            } => write!(
                f,
                "tick budget exhausted in {phase} at tick {now} (budget {budget}); stalled: {stalled}"
            ),
            SimError::Deadlock { phase, now, stalled } => {
                write!(f, "deadlock in {phase} at tick {now}; stalled: {stalled}")
            }
            SimError::InvariantViolation {
                phase,
                now,
                count,
                report,
            } => write!(
                f,
                "{count} invariant violation(s) in {phase} at tick {now}:\n{report}"
            ),
            SimError::ValidationMismatch {
                kernel,
                config,
                detail,
            } => write!(
                f,
                "differential validation mismatch for {kernel} under {config}: {detail}"
            ),
            SimError::InvalidConfig { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}
