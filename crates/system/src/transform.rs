//! Plan transforms that realize the paper's baseline offload shapes.
//!
//! [`decentralize`] turns a monolithic offload (one accelerator doing both
//! compute and access) into the Mono-DA shape: stream accesses move into
//! per-object access nodes at their data structures' home clusters,
//! forwarding operands to the single compute partition over dataflow
//! channels — computation stays monolithic, accesses decentralize (paper
//! Figure 1c). All accesses to one object share one access node, which
//! preserves the object-level access ordering the paper guarantees ("one
//! serializing point per memory object", Section IV-D).

use distda_compiler::plan::{AccessPattern, ChannelDef, OffloadPlan, PNode, PartitionDef};
use distda_ir::expr::ArrayId;
use std::collections::HashMap;

/// Splits a monolithic plan's stream accesses into per-object access-node
/// partitions.
///
/// Partition 0 remains the compute partition. Indirect accesses stay with
/// the compute partition (the Mono-DA paradigm does not offload
/// data-dependent accesses, Section II).
///
/// # Panics
///
/// Panics if the plan is not monolithic.
pub fn decentralize(plan: &OffloadPlan) -> OffloadPlan {
    assert_eq!(
        plan.partitions.len(),
        1,
        "decentralize takes a monolithic plan"
    );
    let comp = &plan.partitions[0];

    let mut channels: Vec<ChannelDef> = Vec::new();
    let mut access_parts: Vec<PartitionDef> = Vec::new();
    let mut part_of_array: HashMap<ArrayId, usize> = HashMap::new();
    let mut new_nodes: Vec<PNode> = Vec::new();
    let mut remap: Vec<u16> = Vec::with_capacity(comp.nodes.len());
    let mut kept_accesses = Vec::new();
    let mut acc_remap: Vec<Option<u16>> = vec![None; comp.accesses.len()];

    // Objects with indirect accesses keep ALL their accesses in the
    // compute partition so object-level ordering is preserved.
    let indirect_objects: std::collections::HashSet<ArrayId> = comp
        .accesses
        .iter()
        .filter(|a| matches!(a.pattern, AccessPattern::Indirect))
        .map(|a| a.array)
        .collect();

    let keep_access = |acc: u16,
                       kept: &mut Vec<distda_compiler::plan::AccessDef>,
                       acc_remap: &mut Vec<Option<u16>>|
     -> u16 {
        if let Some(k) = acc_remap[acc as usize] {
            return k;
        }
        let k = kept.len() as u16;
        kept.push(comp.accesses[acc as usize].clone());
        acc_remap[acc as usize] = Some(k);
        k
    };

    // Gets (or creates) the access-node partition for an object.
    fn object_part<'a>(
        array: ArrayId,
        part_of_array: &mut HashMap<ArrayId, usize>,
        access_parts: &'a mut Vec<PartitionDef>,
    ) -> &'a mut PartitionDef {
        let idx = *part_of_array.entry(array).or_insert_with(|| {
            access_parts.push(PartitionDef {
                id: (access_parts.len() + 1) as u16,
                object: Some(array),
                nodes: Vec::new(),
                accesses: Vec::new(),
                carry_scalars: Vec::new(),
            });
            access_parts.len() - 1
        });
        &mut access_parts[idx]
    }

    for node in comp.nodes.iter() {
        let new_idx = new_nodes.len() as u16;
        let moveable = |acc: u16| {
            let def = &comp.accesses[acc as usize];
            matches!(def.pattern, AccessPattern::Stream { .. })
                && !indirect_objects.contains(&def.array)
        };
        match node {
            PNode::LoadStream { access } if moveable(*access) => {
                let def = comp.accesses[*access as usize].clone();
                let array = def.array;
                let ap = object_part(array, &mut part_of_array, &mut access_parts);
                let part_id = ap.id;
                let chan = channels.len() as u16;
                channels.push(ChannelDef {
                    id: chan,
                    producer: part_id,
                    consumer: 0,
                });
                let local_access = ap.accesses.len() as u16;
                ap.accesses.push(def);
                let load_idx = ap.nodes.len() as u16;
                ap.nodes.push(PNode::LoadStream {
                    access: local_access,
                });
                ap.nodes.push(PNode::Send {
                    chan,
                    src: load_idx,
                });
                new_nodes.push(PNode::Recv { chan });
                remap.push(new_idx);
            }
            PNode::StoreStream { access, val, pred } if moveable(*access) => {
                let def = comp.accesses[*access as usize].clone();
                let array = def.array;
                let (part_id, local_access, recv_positions) = {
                    let ap = object_part(array, &mut part_of_array, &mut access_parts);
                    let part_id = ap.id;
                    let local_access = ap.accesses.len() as u16;
                    ap.accesses.push(def);
                    (part_id, local_access, ap.nodes.len() as u16)
                };
                let chan_v = channels.len() as u16;
                channels.push(ChannelDef {
                    id: chan_v,
                    producer: 0,
                    consumer: part_id,
                });
                let pred_chan = pred.map(|_| {
                    let chan_p = channels.len() as u16;
                    channels.push(ChannelDef {
                        id: chan_p,
                        producer: 0,
                        consumer: part_id,
                    });
                    chan_p
                });
                {
                    let ap = object_part(array, &mut part_of_array, &mut access_parts);
                    ap.nodes.push(PNode::Recv { chan: chan_v });
                    if let Some(chan_p) = pred_chan {
                        ap.nodes.push(PNode::Recv { chan: chan_p });
                    }
                    ap.nodes.push(PNode::StoreStream {
                        access: local_access,
                        val: recv_positions,
                        pred: pred_chan.map(|_| recv_positions + 1),
                    });
                }
                new_nodes.push(PNode::Send {
                    chan: chan_v,
                    src: remap[*val as usize],
                });
                if let (Some(p), Some(chan_p)) = (pred, pred_chan) {
                    new_nodes.push(PNode::Send {
                        chan: chan_p,
                        src: remap[*p as usize],
                    });
                }
                remap.push(new_idx);
            }
            other => {
                let mapped = match *other {
                    PNode::Bin { op, a, b } => PNode::Bin {
                        op,
                        a: remap[a as usize],
                        b: remap[b as usize],
                    },
                    PNode::Un { op, a } => PNode::Un {
                        op,
                        a: remap[a as usize],
                    },
                    PNode::Select { c, t, f } => PNode::Select {
                        c: remap[c as usize],
                        t: remap[t as usize],
                        f: remap[f as usize],
                    },
                    PNode::SetCarry { reg, src } => PNode::SetCarry {
                        reg,
                        src: remap[src as usize],
                    },
                    PNode::Send { chan, src } => PNode::Send {
                        chan,
                        src: remap[src as usize],
                    },
                    PNode::LoadStream { access } => PNode::LoadStream {
                        access: keep_access(access, &mut kept_accesses, &mut acc_remap),
                    },
                    PNode::StoreStream { access, val, pred } => PNode::StoreStream {
                        access: keep_access(access, &mut kept_accesses, &mut acc_remap),
                        val: remap[val as usize],
                        pred: pred.map(|p| remap[p as usize]),
                    },
                    PNode::LoadIndirect { access, addr } => PNode::LoadIndirect {
                        access: keep_access(access, &mut kept_accesses, &mut acc_remap),
                        addr: remap[addr as usize],
                    },
                    PNode::StoreIndirect {
                        access,
                        addr,
                        val,
                        pred,
                    } => PNode::StoreIndirect {
                        access: keep_access(access, &mut kept_accesses, &mut acc_remap),
                        addr: remap[addr as usize],
                        val: remap[val as usize],
                        pred: pred.map(|p| remap[p as usize]),
                    },
                    simple @ (PNode::Const(_)
                    | PNode::IndVar
                    | PNode::Param(_)
                    | PNode::Carry(_)
                    | PNode::Recv { .. }) => simple,
                };
                new_nodes.push(mapped);
                remap.push(new_idx);
            }
        }
    }

    let compute = PartitionDef {
        id: 0,
        object: None,
        nodes: new_nodes,
        accesses: kept_accesses,
        carry_scalars: comp.carry_scalars.clone(),
    };
    let mut partitions = vec![compute];
    partitions.extend(access_parts);
    let out = OffloadPlan {
        loop_id: plan.loop_id,
        inner_var: plan.inner_var,
        class: plan.class,
        partitions,
        channels,
        params: plan.params.clone(),
        liveouts: plan.liveouts.clone(),
        bounds: plan.bounds.clone(),
        cut_bytes: plan.cut_bytes,
        dfg_dims: plan.dfg_dims,
    };
    debug_assert!(out.validate().is_ok(), "{:?}", out.validate());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_compiler::{compile, PartitionMode};
    use distda_ir::prelude::*;

    fn mono(build: impl FnOnce(&mut ProgramBuilder)) -> OffloadPlan {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        compile(&b.build(), PartitionMode::Monolithic).offloads[0].clone()
    }

    #[test]
    fn axpy_objects_split_into_access_nodes() {
        let plan = mono(|b| {
            let x = b.array_f64("x", 8);
            let y = b.array_f64("y", 8);
            b.for_(0, 8, 1, |b, i| {
                let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
                b.store(y, i, v);
            });
        });
        let da = decentralize(&plan);
        da.validate().expect("valid");
        // 1 compute + 2 per-object access partitions (x; y load+store).
        assert_eq!(da.partitions.len(), 3);
        assert_eq!(da.channels.len(), 3);
        assert!(da.partitions[0].accesses.is_empty());
        let y_part = da
            .partitions
            .iter()
            .find(|p| p.accesses.len() == 2)
            .expect("y access node holds load and store");
        assert!(y_part.object.is_some());
    }

    #[test]
    fn same_object_accesses_keep_program_order() {
        // Read-then-write of one object: the access node must load before
        // storing in every iteration.
        let plan = mono(|b| {
            let a = b.array_f64("a", 8);
            let o = b.array_f64("o", 8);
            b.for_(0, 8, 1, |b, i| {
                let v = Expr::load(a, i.clone());
                b.store(a, i.clone(), v.clone() * Expr::cf(2.0));
                b.store(o, i, v);
            });
        });
        let da = decentralize(&plan);
        da.validate().expect("valid");
        let a_part = da
            .partitions
            .iter()
            .find(|p| p.accesses.iter().any(|acc| acc.write) && p.accesses.len() >= 2)
            .expect("object a partition");
        let load_pos = a_part
            .nodes
            .iter()
            .position(|n| matches!(n, PNode::LoadStream { .. }))
            .unwrap();
        let store_pos = a_part
            .nodes
            .iter()
            .position(|n| matches!(n, PNode::StoreStream { .. }))
            .unwrap();
        assert!(load_pos < store_pos, "program order violated");
    }

    #[test]
    fn indirect_accesses_stay_with_compute() {
        let plan = mono(|b| {
            let idx = b.array_i64("idx", 8);
            let data = b.array_f64("data", 64);
            let out = b.array_f64("out", 8);
            b.for_(0, 8, 1, |b, i| {
                b.store(out, i.clone(), Expr::load(data, Expr::load(idx, i)));
            });
        });
        let da = decentralize(&plan);
        da.validate().expect("valid");
        assert!(da.partitions[0]
            .nodes
            .iter()
            .any(|n| matches!(n, PNode::LoadIndirect { .. })));
        assert_eq!(da.partitions[0].accesses.len(), 1);
        assert_eq!(da.partitions.len(), 3);
    }

    #[test]
    fn object_with_indirect_access_is_not_split() {
        // data has both a stream and an indirect access: both must stay in
        // the compute partition to preserve ordering.
        let plan = mono(|b| {
            let idx = b.array_i64("idx", 8);
            let data = b.array_f64("data", 64);
            b.for_(0, 8, 1, |b, i| {
                let v = Expr::load(data, i.clone()) + Expr::load(data, Expr::load(idx, i.clone()));
                b.store(data, i, v);
            });
        });
        let da = decentralize(&plan);
        da.validate().expect("valid");
        // Only idx is decentralized.
        assert_eq!(da.partitions.len(), 2);
        assert_eq!(da.partitions[0].accesses.len(), 3);
    }

    #[test]
    fn predicated_store_forwards_predicate() {
        let plan = mono(|b| {
            let x = b.array_i64("x", 8);
            let y = b.array_i64("y", 8);
            b.for_(0, 8, 1, |b, i| {
                b.when(Expr::load(x, i.clone()).lt(Expr::c(3)), |b| {
                    b.store(y, i.clone(), Expr::c(1));
                });
            });
        });
        let da = decentralize(&plan);
        da.validate().expect("valid");
        let store_part = da
            .partitions
            .iter()
            .find(|p| {
                p.nodes
                    .iter()
                    .any(|n| matches!(n, PNode::StoreStream { .. }))
            })
            .expect("store partition");
        let recvs = store_part
            .nodes
            .iter()
            .filter(|n| matches!(n, PNode::Recv { .. }))
            .count();
        assert_eq!(recvs, 2, "value + predicate channels");
    }

    #[test]
    fn carry_registers_stay_with_compute() {
        let plan = mono(|b| {
            let x = b.array_f64("x", 8);
            let acc = b.scalar("acc", 0.0f64);
            b.for_(0, 8, 1, |b, i| {
                b.set(acc, Expr::Scalar(acc) + Expr::load(x, i));
            });
        });
        let da = decentralize(&plan);
        da.validate().expect("valid");
        assert_eq!(da.partitions[0].carry_scalars.len(), 1);
        assert!(da.liveouts.iter().all(|&(_, p, _)| p == 0));
    }
}
