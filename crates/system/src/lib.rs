//! # distda-system
//!
//! The full-machine integration of the Dist-DA reproduction: the host
//! out-of-order core, the slab allocator that anchors memory objects at
//! NUCA home clusters, the Table II offload interface (configuration,
//! register-file and dataflow mechanisms with MMIO accounting), the plan
//! transforms realizing the Mono-DA baseline, and the [`runner::simulate`]
//! entry point that executes a kernel under any of the paper's six
//! configurations and validates it against the reference interpreter.
//!
//! ```no_run
//! use distda_system::{simulate, ConfigKind, RunConfig};
//! use distda_ir::prelude::*;
//!
//! let mut b = ProgramBuilder::new("axpy");
//! let x = b.array_f64("x", 1024);
//! let y = b.array_f64("y", 1024);
//! b.for_(0, 1024, 1, |b, i| {
//!     let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
//!     b.store(y, i, v);
//! });
//! let prog = b.build();
//! let r = simulate(&prog, &|_m| {}, &RunConfig::named(ConfigKind::DistDAF));
//! assert!(r.validated);
//! ```

pub mod alloc;
pub mod config;
pub mod error;
pub mod host;
pub mod hosteval;
pub mod machine;
pub mod netmsg;
pub mod runner;
pub mod transform;

pub use alloc::{allocate, allocate_for_tenant, AllocStrategy, Allocation};
pub use config::{
    parse_label_extension, ConfigKind, FarMemory, RunConfig, Topology, FAR_MEMORY_BYTES_PER_CYCLE,
};
pub use error::SimError;
pub use machine::{Machine, MachineState, PlanHandle, Substrate, CHAN_CAPACITY};
pub use runner::{
    mem_config_for, simulate, simulate_capture, simulate_capture_with_ref, simulate_traced,
    simulate_traced_with_ref, simulate_traced_with_skip, simulate_with_ref, simulate_with_skip,
    try_simulate, try_simulate_capture_with_ref, try_simulate_checked, try_simulate_explained,
    try_simulate_instrumented, try_simulate_profiled, try_simulate_with_policy, CheckPolicy,
    RunResult,
};
pub use transform::decentralize;
