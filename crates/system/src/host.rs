//! The host out-of-order core timing model (Table III: 2 GHz, 5-wide,
//! Ice-Lake-class window).
//!
//! Trace-driven one-pass model: each dynamic op is *assigned* an issue time
//! once its dependences and ROB slot are known — ALU completion times are
//! then analytic, while memory ops fire real requests into the cycle-level
//! hierarchy at their issue time and complete when the response returns.
//! This preserves the memory-level parallelism and ROB-limited latency
//! tolerance that the paper's OoO baseline derives its performance from,
//! at O(1) amortized cost per instruction.

use distda_ir::trace::{DynOp, OpKind, NO_DEP};
use distda_mem::{MemRequest, MemSystem, PortId};
use distda_sim::time::{ClockDomain, Tick};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const UNASSIGNED: Tick = u64::MAX;
const PENDING: Tick = u64::MAX - 1;
/// Memory requests the core may start per cycle (L1 ports).
const FIRES_PER_CYCLE: u32 = 2;

/// Host core statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Dynamic instructions retired.
    pub retired: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
    /// Segments executed.
    pub segments: u64,
}

/// The OoO host model. One instance per simulated hardware thread.
#[derive(Debug)]
pub struct HostCore {
    clock: ClockDomain,
    width: u32,
    rob: usize,
    port: PortId,
    trace: Vec<DynOp>,
    done: Vec<Tick>,
    /// Store-forwarding time per op (stores only; data available to
    /// dependents one cycle after issue, via the store buffer).
    fwd: Vec<Tick>,
    next_assign: usize,
    fire: BinaryHeap<Reverse<(Tick, u32)>>,
    bw_cycle: u64,
    bw_used: u32,
    inflight: usize,
    finish_time: Tick,
    /// Set when new work arrived (segment load or memory response) that the
    /// next clock edge must process; cleared after each processed edge.
    dirty: bool,
    stats: HostStats,
}

impl HostCore {
    /// Creates a core with the given issue width and reorder window,
    /// attached to a registered host memory port.
    pub fn new(clock: ClockDomain, width: u32, rob: usize, port: PortId) -> Self {
        Self {
            clock,
            width: width.max(1),
            rob: rob.max(1),
            port,
            trace: Vec::new(),
            done: Vec::new(),
            fwd: Vec::new(),
            next_assign: 0,
            fire: BinaryHeap::new(),
            bw_cycle: 0,
            bw_used: 0,
            inflight: 0,
            finish_time: 0,
            dirty: false,
            stats: HostStats::default(),
        }
    }

    /// The memory port this core issues through.
    pub fn port(&self) -> PortId {
        self.port
    }

    /// Statistics so far.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// Loads the next host-executed trace segment.
    ///
    /// # Panics
    ///
    /// Panics if the previous segment has not drained.
    pub fn load_segment(&mut self, now: Tick, ops: Vec<DynOp>) {
        assert!(self.segment_drained(now), "segment loaded while busy");
        self.done.clear();
        self.done.resize(ops.len(), UNASSIGNED);
        self.fwd.clear();
        self.fwd.resize(ops.len(), UNASSIGNED);
        self.trace = ops;
        self.next_assign = 0;
        self.bw_cycle = self.clock.cycles_in(now);
        self.bw_used = 0;
        self.finish_time = now;
        self.dirty = true;
        self.stats.segments += 1;
    }

    /// Earliest tick `>= now` at which [`HostCore::tick`] would make
    /// progress on its own, or `None` when only a memory response (an
    /// external event) can unblock it.
    ///
    /// The assign pass blocks only on in-flight loads, so a quiescent core
    /// has exactly three internally scheduled wake-ups: the next edge after
    /// new work arrived (`dirty`), the next due fire, and the analytic
    /// `finish_time` that completes the segment.
    pub fn next_event(&self, now: Tick) -> Option<Tick> {
        use distda_sim::time::earliest;
        if self.dirty {
            return Some(self.clock.next_edge(now));
        }
        let fire = self
            .fire
            .peek()
            .map(|&Reverse((t, _))| self.clock.next_edge(t.max(now)));
        let finish = (self.next_assign == self.trace.len()
            && self.inflight == 0
            && self.fire.is_empty()
            && self.finish_time > now)
            .then_some(self.finish_time);
        earliest(fire, finish)
    }

    /// Whether every op of the current segment has completed by `now`.
    pub fn segment_drained(&self, now: Tick) -> bool {
        self.next_assign == self.trace.len()
            && self.inflight == 0
            && self.fire.is_empty()
            && now >= self.finish_time
    }

    /// Time the last ALU op completes (only meaningful once assigned).
    pub fn finish_time(&self) -> Tick {
        self.finish_time
    }

    /// Earliest time op `j`'s result is visible to dependents, or `None`
    /// if unknown (in-flight load). Stores forward from the store buffer.
    fn known_time(&self, j: usize) -> Option<Tick> {
        let d = self.done[j];
        if d < PENDING {
            return Some(d);
        }
        if d == PENDING && self.fwd[j] != UNASSIGNED {
            return Some(self.fwd[j]);
        }
        None
    }

    /// Advances one base tick, firing memory requests into `mem`.
    pub fn tick(&mut self, now: Tick, mem: &mut MemSystem) {
        // Memory completions arrive on any tick.
        {
            let mut rx = mem.responses(self.port).rx();
            while let Some(resp) = rx.accept() {
                let idx = resp.id as usize;
                if idx < self.done.len() && self.done[idx] == PENDING {
                    self.done[idx] = now;
                    self.finish_time = self.finish_time.max(now);
                    self.inflight -= 1;
                    self.dirty = true;
                }
            }
        }
        if !self.clock.fires_at(now) {
            return;
        }
        self.dirty = false;
        self.assign(now);
        // Fire due memory requests, bounded by L1 ports.
        let mut fired = 0;
        while fired < FIRES_PER_CYCLE {
            let Some(&Reverse((t, idx))) = self.fire.peek() else {
                break;
            };
            if t > now {
                break;
            }
            self.fire.pop();
            let op = self.trace[idx as usize];
            let (addr, write) = match op.kind {
                OpKind::Load { addr } => (addr, false),
                OpKind::Store { addr } => (addr, true),
                OpKind::Alu { .. } => unreachable!("only memory ops are queued"),
            };
            mem.try_request(
                now,
                MemRequest {
                    port: self.port,
                    id: idx as u64,
                    addr,
                    write,
                },
            )
            .expect("host port accepts requests");
            self.inflight += 1;
            fired += 1;
        }
    }

    fn assign(&mut self, now: Tick) {
        while self.next_assign < self.trace.len() {
            let i = self.next_assign;
            // ROB: op i waits for op i-rob to have a known completion.
            // Stores retire into the store buffer at issue, so they do not
            // hold the window open while their miss drains.
            let mut ready: Tick = now;
            if i >= self.rob {
                let j = i - self.rob;
                match self.known_time(j) {
                    Some(t) => ready = ready.max(t),
                    None => return,
                }
            }
            let op = self.trace[i];
            for dep in [op.dep1, op.dep2] {
                if dep != NO_DEP {
                    match self.known_time(dep as usize) {
                        Some(t) => ready = ready.max(t),
                        None => return,
                    }
                }
            }
            // Issue bandwidth.
            let ready_cycle = self.clock.cycles_in(ready) + u64::from(!self.clock.fires_at(ready));
            let mut issue_cycle = ready_cycle.max(self.bw_cycle);
            if issue_cycle == self.bw_cycle && self.bw_used >= self.width {
                issue_cycle += 1;
            }
            if issue_cycle > self.bw_cycle {
                self.bw_cycle = issue_cycle;
                self.bw_used = 0;
            }
            self.bw_used += 1;
            let issue_tick = self.clock.ticks_for_cycles(issue_cycle);
            match op.kind {
                OpKind::Alu { lat } => {
                    let d = issue_tick + self.clock.ticks_for_cycles(lat as u64);
                    self.done[i] = d;
                    self.finish_time = self.finish_time.max(d);
                }
                OpKind::Load { .. } => {
                    self.done[i] = PENDING;
                    self.fire.push(Reverse((issue_tick, i as u32)));
                    self.stats.mem_ops += 1;
                }
                OpKind::Store { .. } => {
                    self.done[i] = PENDING;
                    // Data forwards from the store buffer next cycle.
                    self.fwd[i] = issue_tick + self.clock.ticks_for_cycles(1);
                    self.fire.push(Reverse((issue_tick, i as u32)));
                    self.stats.mem_ops += 1;
                }
            }
            self.stats.retired += 1;
            self.next_assign += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_ir::trace::{DynOp, OpKind};
    use distda_mem::{MemConfig, PortKind};

    fn rig() -> (HostCore, MemSystem, distda_noc::Mesh<distda_mem::MemMsg>) {
        let clock = ClockDomain::from_ghz(2.0);
        let mut mem = MemSystem::new(MemConfig::default(), clock, 0, 7);
        let port = mem.register_port(PortKind::Host);
        let host = HostCore::new(clock, 5, 224, port);
        let mesh = distda_noc::Mesh::new(4, 2, distda_noc::NocConfig::default(), clock);
        (host, mem, mesh)
    }

    fn pump(
        host: &mut HostCore,
        mem: &mut MemSystem,
        mesh: &mut distda_noc::Mesh<distda_mem::MemMsg>,
        start: Tick,
        budget: Tick,
    ) -> Tick {
        let mut t = start;
        while !host.segment_drained(t) {
            host.tick(t, mem);
            mem.tick(t);
            {
                let out = mem.outgoing();
                while let Some(&p) = out.front() {
                    if mesh.try_inject(t, p).is_err() {
                        out.note_stalls(1);
                        break;
                    }
                    out.rx().accept();
                }
            }
            mesh.tick(t);
            for n in 0..mesh.node_count() {
                for pkt in mesh.drain_inbox(n) {
                    mem.deliver(t, pkt);
                }
            }
            t += 1;
            assert!(t < start + budget, "host hung");
        }
        t
    }

    fn alu(dep1: u32, dep2: u32) -> DynOp {
        DynOp {
            kind: OpKind::Alu { lat: 1 },
            dep1,
            dep2,
        }
    }

    #[test]
    fn independent_alu_ops_ipc_near_width() {
        let (mut host, mut mem, mut mesh) = rig();
        let n = 1000;
        let ops = vec![alu(NO_DEP, NO_DEP); n];
        host.load_segment(0, ops);
        let end = pump(&mut host, &mut mem, &mut mesh, 0, 100_000);
        let cycles = ClockDomain::from_ghz(2.0).cycles_in(end);
        let ipc = n as f64 / cycles as f64;
        assert!(
            ipc > 3.0,
            "5-wide core should near width on no-dep ALU, got {ipc}"
        );
    }

    #[test]
    fn dependence_chain_serializes() {
        let (mut host, mut mem, mut mesh) = rig();
        let n = 500;
        let ops: Vec<DynOp> = (0..n)
            .map(|i| alu(if i == 0 { NO_DEP } else { i as u32 - 1 }, NO_DEP))
            .collect();
        host.load_segment(0, ops);
        let end = pump(&mut host, &mut mem, &mut mesh, 0, 1_000_000);
        let cycles = ClockDomain::from_ghz(2.0).cycles_in(end);
        assert!(
            cycles >= n as u64,
            "chain must serialize, got {cycles} cycles"
        );
    }

    #[test]
    fn independent_loads_overlap() {
        // 8 loads to different lines should not take 8x a single load.
        let mk_loads = |k: usize| -> Vec<DynOp> {
            (0..k)
                .map(|i| DynOp {
                    kind: OpKind::Load {
                        addr: 0x10_0000 + (i as u64) * 4096,
                    },
                    dep1: NO_DEP,
                    dep2: NO_DEP,
                })
                .collect()
        };
        let (mut h1, mut m1, mut mesh1) = rig();
        h1.load_segment(0, mk_loads(1));
        let t1 = pump(&mut h1, &mut m1, &mut mesh1, 0, 1_000_000);
        let (mut h8, mut m8, mut mesh8) = rig();
        h8.load_segment(0, mk_loads(8));
        let t8 = pump(&mut h8, &mut m8, &mut mesh8, 0, 1_000_000);
        assert!(
            t8 < t1 * 4,
            "8 independent loads ({t8}) should overlap vs one load ({t1})"
        );
    }

    #[test]
    fn dependent_loads_serialize() {
        // Pointer-chase: each load's address dep on previous load.
        let ops: Vec<DynOp> = (0..8)
            .map(|i| DynOp {
                kind: OpKind::Load {
                    addr: 0x20_0000 + (i as u64) * 8192,
                },
                dep1: if i == 0 { NO_DEP } else { i as u32 - 1 },
                dep2: NO_DEP,
            })
            .collect();
        let (mut hs, mut ms, mut meshs) = rig();
        hs.load_segment(0, ops);
        let serial = pump(&mut hs, &mut ms, &mut meshs, 0, 10_000_000);

        let indep: Vec<DynOp> = (0..8)
            .map(|i| DynOp {
                kind: OpKind::Load {
                    addr: 0x20_0000 + (i as u64) * 8192,
                },
                dep1: NO_DEP,
                dep2: NO_DEP,
            })
            .collect();
        let (mut hp, mut mp, mut meshp) = rig();
        hp.load_segment(0, indep);
        let parallel = pump(&mut hp, &mut mp, &mut meshp, 0, 10_000_000);
        assert!(
            serial > parallel * 2,
            "chased loads {serial} vs independent {parallel}"
        );
    }

    #[test]
    fn segments_chain_cleanly() {
        let (mut host, mut mem, mut mesh) = rig();
        host.load_segment(0, vec![alu(NO_DEP, NO_DEP); 10]);
        let t1 = pump(&mut host, &mut mem, &mut mesh, 0, 100_000);
        host.load_segment(t1, vec![alu(NO_DEP, NO_DEP); 10]);
        let t2 = pump(&mut host, &mut mem, &mut mesh, t1, 100_000);
        assert!(t2 > t1);
        assert_eq!(host.stats().retired, 20);
        assert_eq!(host.stats().segments, 2);
    }

    #[test]
    fn empty_segment_is_immediately_drained() {
        let (mut host, _mem, _mesh) = rig();
        host.load_segment(0, Vec::new());
        assert!(host.segment_drained(0));
    }
}
