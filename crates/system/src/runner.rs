//! End-to-end simulation of one kernel under one configuration: compile,
//! allocate, place, execute (host segments interleaved with offload
//! invocations), validate against the reference interpreter, and collect
//! every metric the paper's figures need.

use crate::alloc::{allocate, allocate_for_tenant, Allocation};
use crate::config::{ConfigKind, RunConfig, Topology};
use crate::error::SimError;
use crate::hosteval::HostEval;
use crate::machine::{Machine, PlanHandle, Substrate};
use crate::transform::decentralize;
use distda_accel::{cgra_map, CgraConfig, IssueModel};
use distda_check::Sanitizer;
use distda_compiler::affine::Sym;
use distda_compiler::plan::OffloadPlan;
use distda_compiler::{compile, CompiledKernel, PNode};
use distda_energy::{EnergyBreakdown, EnergyCounters, EnergyModel};
use distda_ir::interp::{self, Memory};
use distda_ir::program::{LoopId, Program, Stmt};
use distda_ir::value::Value;
use distda_mem::{MemConfig, MemSystem};
use distda_noc::TrafficClass;
use distda_sim::time::{ticks_to_ns, ClockDomain, Tick};
use distda_sim::Report;
use distda_trace::Tracer;
use std::collections::HashMap;

/// Flush the host trace segment when it grows past this many ops.
const SEGMENT_FLUSH_OPS: usize = 1 << 20;

/// Which correctness machinery a run engages (the `distda-check`
/// subsystem).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckPolicy {
    /// Attach an enabled invariant sanitizer to the machine: conservation
    /// violations become [`SimError::InvariantViolation`] instead of
    /// silent corruption or panics.
    pub sanitize: bool,
    /// Treat a golden-model mismatch (simulated memory image or live-out
    /// scalars != the IR interpreter's) as
    /// [`SimError::ValidationMismatch`] instead of only recording
    /// `validated = false`.
    pub strict_validate: bool,
}

impl CheckPolicy {
    /// The environment-driven policy every standard entry point uses:
    /// `sanitize` follows `DISTDA_SANITIZE` (default: on in debug builds),
    /// `strict_validate` follows `DISTDA_VALIDATE` (default: off).
    pub fn from_env() -> Self {
        Self {
            sanitize: distda_sim::env::sanitize(),
            strict_validate: distda_sim::env::validate(),
        }
    }

    /// Everything on — what the `validate` bin and the differential tests
    /// use regardless of environment.
    pub fn full() -> Self {
        Self {
            sanitize: true,
            strict_validate: true,
        }
    }
}

/// Everything measured in one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Kernel name.
    pub kernel: String,
    /// Configuration label.
    pub config: String,
    /// Total simulated base ticks.
    pub ticks: Tick,
    /// Simulated nanoseconds.
    pub ns: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Raw event counters.
    pub counters: EnergyCounters,
    /// Demand accesses across L1+L2+L3 (Figure 8).
    pub cache_accesses: u64,
    /// Element memory operations (host + accelerators).
    pub mem_ops: u64,
    /// Total retired operations (host + accelerators).
    pub total_ops: u64,
    /// Host-retired operations.
    pub host_ops: u64,
    /// Figure 9 components, in bytes.
    pub intra_bytes: u64,
    /// Accelerator <-> cache-hierarchy bytes.
    pub da_bytes: u64,
    /// Accelerator <-> accelerator operand bytes.
    pub aa_bytes: u64,
    /// NoC payload bytes per traffic class (Figure 10 order).
    pub noc_bytes: [u64; 5],
    /// Total bytes moved (headline data-movement metric).
    pub data_moved_bytes: u64,
    /// Final memory image matched the reference interpreter.
    pub validated: bool,
    /// Full statistics dump.
    pub report: Report,
}

impl RunResult {
    /// Total dynamic energy in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.energy.total()
    }

    /// Instructions per host-equivalent (2 GHz) cycle.
    pub fn ipc(&self) -> f64 {
        let cycles = (self.ticks / 3).max(1);
        self.total_ops as f64 / cycles as f64
    }

    /// Memory operations per nanosecond (Figure 11a's memory-op rate).
    pub fn mem_op_rate(&self) -> f64 {
        self.mem_ops as f64 / self.ns.max(1e-9)
    }
}

/// Simulates `prog` (inputs installed by `init`) under `cfg`.
///
/// # Panics
///
/// Panics if the machine deadlocks (internal tick budget), the sanitizer
/// flags an invariant violation, or strict validation is enabled and
/// fails. Use [`try_simulate`] to handle these as [`SimError`]s.
pub fn simulate(prog: &Program, init: &dyn Fn(&mut Memory), cfg: &RunConfig) -> RunResult {
    simulate_capture(prog, init, cfg).0
}

/// Fallible [`simulate`]: deadlocks, budget exhaustion, invariant
/// violations, invalid configurations and (under `DISTDA_VALIDATE`)
/// golden-model mismatches come back as [`SimError`] instead of a panic,
/// so one failing cell of a sweep can be reported without aborting the
/// rest.
///
/// # Errors
///
/// Returns [`SimError`] as described above.
pub fn try_simulate(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
) -> Result<RunResult, SimError> {
    try_simulate_capture_with_ref(prog, init, cfg, None).map(|out| out.0)
}

/// Like [`simulate`], but also returns the simulated final memory image and
/// scalar values (for debugging and differential tests).
///
/// With `DISTDA_CHECK_SKIP=1` every run is executed twice — once with idle
/// skip-ahead and once tick-by-tick — and the simulated results are
/// asserted bit-identical (the skip-ahead debug cross-check).
pub fn simulate_capture(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
) -> (RunResult, Memory, Vec<Value>) {
    simulate_capture_with_ref(prog, init, cfg, None)
}

/// [`simulate_capture`] with an optional precomputed reference execution
/// (final memory image + scalar values from the interpreter). Sweeps run
/// one workload under many configurations; interpreting the kernel once
/// and sharing the result removes the dominant per-run cost for short
/// kernels. `None` recomputes the reference inline.
pub fn simulate_capture_with_ref(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    reference: Option<&(Memory, Vec<Value>)>,
) -> (RunResult, Memory, Vec<Value>) {
    try_simulate_capture_with_ref(prog, init, cfg, reference).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`simulate_capture_with_ref`]: the standard pipeline —
/// env-driven tracer with auto-export, env-driven [`CheckPolicy`], and the
/// `DISTDA_CHECK_SKIP` skip-ahead cross-check — with every failure
/// returned as [`SimError`].
///
/// # Errors
///
/// Returns [`SimError`] on deadlock, budget exhaustion, invariant
/// violation, invalid configuration, or strict-validation mismatch.
pub fn try_simulate_capture_with_ref(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    reference: Option<&(Memory, Vec<Value>)>,
) -> Result<(RunResult, Memory, Vec<Value>), SimError> {
    // `DISTDA_TRACE` turns on tracing for any run that goes through the
    // standard entry points; the trace is auto-exported under `results/`.
    let tracer = distda_sim::env::tracer();
    let policy = CheckPolicy::from_env();
    let out = try_simulate_checked(prog, init, cfg, None, reference, &tracer, policy)?;
    if tracer.is_enabled() {
        auto_export(&tracer, &out.0);
    }
    if distda_sim::env::check_skip() {
        // The tick-by-tick cross-check run gets a disabled tracer: its
        // purpose is comparing simulated results, and tracing it would
        // double-emit into the same components.
        let base = try_simulate_checked(
            prog,
            init,
            cfg,
            Some(false),
            reference,
            &Tracer::disabled(),
            policy,
        )?;
        let key = |r: &RunResult| {
            format!(
                "{:?} {:?}",
                (r.ticks, &r.counters, &r.energy, r.cache_accesses),
                (
                    r.mem_ops,
                    r.total_ops,
                    r.host_ops,
                    r.intra_bytes,
                    r.da_bytes,
                    r.aa_bytes,
                    r.noc_bytes,
                    r.data_moved_bytes,
                    r.validated,
                )
            )
        };
        assert_eq!(
            key(&out.0),
            key(&base.0),
            "skip-ahead diverged from tick-by-tick on {} / {}",
            out.0.kernel,
            out.0.config
        );
    }
    Ok(out)
}

/// [`simulate_capture`] with an explicit skip-ahead override (`None` keeps
/// the machine default / `DISTDA_SKIP` setting). Used by the skip-ahead
/// equivalence tests and the debug cross-check.
pub fn simulate_with_skip(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    skip: Option<bool>,
) -> (RunResult, Memory, Vec<Value>) {
    simulate_with_ref(prog, init, cfg, skip, None)
}

/// Fallible [`simulate_with_skip`] with an explicit [`CheckPolicy`] —
/// what the `validate` bin sweeps (skip on and off, everything checked).
///
/// # Errors
///
/// Returns [`SimError`] on deadlock, budget exhaustion, invariant
/// violation, invalid configuration, or strict-validation mismatch.
pub fn try_simulate_with_policy(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    skip: Option<bool>,
    reference: Option<&(Memory, Vec<Value>)>,
    policy: CheckPolicy,
) -> Result<(RunResult, Memory, Vec<Value>), SimError> {
    try_simulate_checked(
        prog,
        init,
        cfg,
        skip,
        reference,
        &Tracer::disabled(),
        policy,
    )
}

/// [`simulate_with_skip`] with an optional precomputed reference execution
/// (see [`simulate_capture_with_ref`]).
pub fn simulate_with_ref(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    skip: Option<bool>,
    reference: Option<&(Memory, Vec<Value>)>,
) -> (RunResult, Memory, Vec<Value>) {
    simulate_traced_with_ref(prog, init, cfg, skip, reference, &Tracer::disabled())
}

/// [`simulate`] with an explicit tracer attached to the machine. The
/// tracer's components fill up during the run; export them afterwards with
/// [`distda_trace::chrome::export`] and friends. The run's report gains a
/// `trace.*` section with the tracer's counters and histogram summaries.
pub fn simulate_traced(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    tracer: &Tracer,
) -> RunResult {
    simulate_traced_with_ref(prog, init, cfg, None, None, tracer).0
}

/// [`simulate_traced`] with an explicit skip-ahead override, for the trace
/// determinism tests (skip on/off must export byte-identical traces).
pub fn simulate_traced_with_skip(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    skip: Option<bool>,
    tracer: &Tracer,
) -> RunResult {
    simulate_traced_with_ref(prog, init, cfg, skip, None, tracer).0
}

/// Writes the Chrome trace of an env-enabled run to
/// `results/trace_<kernel>_<config>.json`.
fn auto_export(tracer: &Tracer, r: &RunResult) {
    let slug = |s: &str| -> String {
        s.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect()
    };
    let dir = std::path::Path::new("results");
    let path = dir.join(format!(
        "trace_{}_{}.json",
        slug(&r.kernel),
        slug(&r.config)
    ));
    let doc = distda_trace::chrome::export(tracer);
    if std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&path, doc))
        .is_err()
    {
        eprintln!("warning: could not write trace to {}", path.display());
    }
}

/// The full pipeline with every knob except a [`CheckPolicy`] (the
/// environment's policy applies). Panics on any [`SimError`]; see
/// [`try_simulate_checked`].
pub fn simulate_traced_with_ref(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    skip: Option<bool>,
    reference: Option<&(Memory, Vec<Value>)>,
    tracer: &Tracer,
) -> (RunResult, Memory, Vec<Value>) {
    try_simulate_checked(
        prog,
        init,
        cfg,
        skip,
        reference,
        tracer,
        CheckPolicy::from_env(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// The standard checked pipeline ([`try_simulate_instrumented`] with the
/// environment's `DISTDA_OBS` self-profiling policy): with `DISTDA_OBS`
/// set, the scheduler structurally times every component and the
/// "perf top"-style table is written to
/// `results/profile_<kernel>_<config>.txt` after the run.
///
/// # Errors
///
/// Returns [`SimError`] on deadlock, budget exhaustion, invariant
/// violation, invalid configuration, or strict-validation mismatch.
pub fn try_simulate_checked(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    skip: Option<bool>,
    reference: Option<&(Memory, Vec<Value>)>,
    tracer: &Tracer,
    policy: CheckPolicy,
) -> Result<(RunResult, Memory, Vec<Value>), SimError> {
    let profiler = distda_sim::env::profiler();
    let sampler = distda_sim::env::sampler();
    let out = try_simulate_instrumented(
        prog, init, cfg, skip, reference, tracer, policy, &profiler, &sampler,
    )?;
    if let Some(snap) = profiler.snapshot_at(out.0.ticks) {
        auto_export_profile(&snap, &out.0);
    }
    Ok(out)
}

/// Runs a program with an explicit self-profiler: the
/// entry point the `obs` bin and the observability tests use to measure
/// where host time goes without touching the process environment.
///
/// # Errors
///
/// Returns [`SimError`] as [`try_simulate_checked`].
pub fn try_simulate_profiled(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    reference: Option<&(Memory, Vec<Value>)>,
    profiler: &distda_sim::Profiler,
) -> Result<RunResult, SimError> {
    try_simulate_instrumented(
        prog,
        init,
        cfg,
        None,
        reference,
        &Tracer::disabled(),
        CheckPolicy::from_env(),
        profiler,
        &distda_sim::Sampler::disabled(),
    )
    .map(|out| out.0)
}

/// Runs a program with an explicit explain [`Sampler`](distda_sim::Sampler):
/// the entry point the `explain` bin and the explain determinism tests use
/// to attribute bottlenecks without touching the process environment. The
/// resulting report carries the `explain.*` keys and the returned
/// explanation holds the full causal tree.
///
/// # Errors
///
/// Returns [`SimError`] as [`try_simulate_checked`]; accounting violations
/// found by the analyzer surface as [`SimError::InvariantViolation`] with
/// phase `explain-accounting` when the policy sanitizes.
pub fn try_simulate_explained(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    skip: Option<bool>,
    reference: Option<&(Memory, Vec<Value>)>,
    sampler: &distda_sim::Sampler,
) -> Result<(RunResult, Option<distda_explain::Explanation>), SimError> {
    let mut explanation = None;
    let out = try_simulate_core(
        prog,
        init,
        cfg,
        skip,
        reference,
        &Tracer::disabled(),
        CheckPolicy::from_env(),
        &distda_sim::Profiler::disabled(),
        sampler,
        &mut explanation,
    )?;
    Ok((out.0, explanation))
}

/// Writes the self-profile table of an env-enabled run to
/// `results/profile_<kernel>_<config>.txt`.
fn auto_export_profile(snap: &distda_sim::ProfileSnapshot, r: &RunResult) {
    let slug = |s: &str| -> String {
        s.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect()
    };
    let dir = std::path::Path::new("results");
    let path = dir.join(format!(
        "profile_{}_{}.txt",
        slug(&r.kernel),
        slug(&r.config)
    ));
    let table = distda_sim::profile::render_table(snap);
    if std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&path, table))
        .is_err()
    {
        eprintln!("warning: could not write profile to {}", path.display());
    }
}

/// The root of every entry point: the full pipeline with every knob —
/// skip override, shared reference, tracer, [`CheckPolicy`], self-profiler.
///
/// With `policy.sanitize`, an enabled [`Sanitizer`] is attached to the
/// machine: the run loops stop on the first conservation-law violation,
/// and the drained machine is audited (MSHRs, responses, credits, flits,
/// cache occupancy, tick attribution). With `policy.strict_validate`, a
/// disagreement with the IR interpreter's golden execution becomes
/// [`SimError::ValidationMismatch`] naming the first mismatching
/// object/element. With an enabled `profiler`, the scheduler times every
/// component tick against the host clock (never perturbing results).
///
/// # Errors
///
/// Returns [`SimError`] on deadlock, budget exhaustion, invariant
/// violation, invalid configuration, or strict-validation mismatch.
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_instrumented(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    skip: Option<bool>,
    reference: Option<&(Memory, Vec<Value>)>,
    tracer: &Tracer,
    policy: CheckPolicy,
    profiler: &distda_sim::Profiler,
    sampler: &distda_sim::Sampler,
) -> Result<(RunResult, Memory, Vec<Value>), SimError> {
    let mut explanation = None;
    try_simulate_core(
        prog,
        init,
        cfg,
        skip,
        reference,
        tracer,
        policy,
        profiler,
        sampler,
        &mut explanation,
    )
}

/// The shared pipeline body behind [`try_simulate_instrumented`] and
/// [`try_simulate_explained`]: `explain_out` receives the full causal
/// tree when a sampler is attached (the instrumented entry point drops
/// it; the explained one returns it).
#[allow(clippy::too_many_arguments)]
fn try_simulate_core(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    skip: Option<bool>,
    reference: Option<&(Memory, Vec<Value>)>,
    tracer: &Tracer,
    policy: CheckPolicy,
    profiler: &distda_sim::Profiler,
    sampler: &distda_sim::Sampler,
    explain_out: &mut Option<distda_explain::Explanation>,
) -> Result<(RunResult, Memory, Vec<Value>), SimError> {
    cfg.validate()?;
    // Reference execution for validation (shared across a sweep's
    // configurations when the caller precomputed it).
    let computed;
    let (ref_mem, ref_scalars): (&Memory, &[Value]) = match reference {
        Some((m, s)) => (m, s.as_slice()),
        None => {
            let mut m = Memory::for_program(prog);
            init(&mut m);
            let s = interp::run(prog, &mut m);
            computed = (m, s);
            (&computed.0, computed.1.as_slice())
        }
    };

    // Compile.
    let compiled: Option<CompiledKernel> = cfg.kind.partition_mode().map(|mode| {
        let mut ck = compile(prog, mode);
        if cfg.kind.decentralize_accesses() {
            for plan in &mut ck.offloads {
                *plan = decentralize(plan);
            }
        }
        ck
    });
    let plans: Vec<OffloadPlan> = compiled
        .as_ref()
        .map(|c| c.offloads.clone())
        .unwrap_or_default();

    let san = if policy.sanitize {
        Sanitizer::enabled()
    } else {
        Sanitizer::disabled()
    };
    let exec = if cfg.topology.tenants > 1 {
        let ck = compiled.as_ref().ok_or_else(|| SimError::InvalidConfig {
            detail: "multi-tenant runs require an offload-capable configuration".to_string(),
        })?;
        run_tenants(
            prog, init, cfg, &plans, ck, skip, tracer, &san, profiler, sampler,
        )?
    } else {
        run_single(
            prog, init, cfg, &plans, compiled, skip, tracer, &san, profiler, sampler,
        )?
    };
    let Execution {
        machine,
        scalars,
        extra,
    } = exec;
    let eval_scalars = scalars[0].clone();

    // Validation: every tenant's memory image and live-out scalars match
    // the shared reference (co-scheduled tenants run identical copies of
    // the kernel, so one golden execution covers them all).
    let mut validated = true;
    let mut first_bad = None;
    for t in 0..cfg.topology.tenants as u16 {
        let img = machine.tenant_memimg(t);
        let mem_ok = (0..prog.arrays.len())
            .all(|a| img.array(distda_ir::ArrayId(a)) == ref_mem.array(distda_ir::ArrayId(a)));
        let scalars_ok = scalars[t as usize] == ref_scalars;
        if !(mem_ok && scalars_ok) {
            validated = false;
            first_bad.get_or_insert(t);
        }
    }
    if policy.strict_validate && !validated {
        let t = first_bad.unwrap_or(0);
        let base = mismatch_detail(
            prog,
            machine.tenant_memimg(t),
            ref_mem,
            &scalars[t as usize],
            ref_scalars,
        );
        return Err(SimError::ValidationMismatch {
            kernel: prog.name.clone(),
            config: cfg.label(),
            detail: if cfg.topology.tenants > 1 {
                format!("tenant {t}: {base}")
            } else {
                base
            },
        });
    }

    // Metrics.
    let counters = machine.energy_counters();
    let energy = EnergyModel::nominal_32nm().energy_pj(&counters);
    let l1 = machine.mem().l1_stats();
    let l2 = machine.mem().l2_stats();
    let l3 = machine.mem().l3_stats();
    let cache_accesses = l1.accesses + l2.accesses + l3.accesses;
    let eng = machine.engine_totals();
    let host = machine.host_stats();
    let noc = machine.noc_stats().clone();
    let mut noc_bytes = [0u64; 5];
    for c in TrafficClass::ALL {
        noc_bytes[c.index()] = noc.bytes[c.index()];
    }
    let (dr, dw) = machine.mem().dram_counts();
    // Bytes moved across the chip, distance-weighted on the mesh: vertical
    // movement through the host's private hierarchy, DRAM transfers, and
    // byte-hops on the NoC. Bank-adjacent moves (an L3 bank filling its
    // local access buffer) are the near-data accesses the model exists to
    // create; they are counted in buffer energy, not as chip-level data
    // movement — exactly the on-chip movement the paper's headline
    // reduction measures.
    let data_moved_bytes = 64 * (l1.fills + l2.fills + dr + dw) + noc.total_hop_bytes();

    let ticks = machine.now();
    // Tick-attribution partition invariant: with full event history, the
    // machine-track phase spans plus the `other` remainder must account
    // for exactly the run's ticks — neither a shortfall nor an
    // over-accounting masked by the old `saturating_sub`.
    if san.on() && tracer.is_enabled() {
        let attr = distda_trace::summary::phase_attribution(tracer, ticks);
        if attr.complete {
            let sum: Tick = attr.parts.iter().map(|(_, t)| *t).sum();
            san.check(
                sum == ticks && !attr.over_accounted,
                "trace",
                "attribution-partition",
                ticks,
                || {
                    format!(
                        "phase attribution sums to {sum} of {ticks} ticks (over_accounted={})",
                        attr.over_accounted
                    )
                },
            );
        }
        if san.count() > 0 {
            return Err(SimError::InvariantViolation {
                phase: "post-run",
                now: ticks,
                count: san.count(),
                report: san.render(),
            });
        }
    }
    let mut report = Report::new();
    report.merge_prefixed("mem", &machine.mem().report());
    report.merge_prefixed("noc", &noc.report());
    report.merge_prefixed("energy", &energy.report());
    // Per-port occupancy/stall series (`port.<name>.*`) from the
    // handshaked channel layer; quiet ports are omitted.
    report.merge_prefixed("port", &machine.port_report());
    report.add("ticks", ticks as f64);
    report.add("host.retired", host.retired as f64);
    report.add("host.mem_ops", host.mem_ops as f64);
    report.add("accel.iterations", eng.iterations as f64);
    report.add("accel.stall_mem", eng.stall_mem as f64);
    report.add("accel.stall_chan", eng.stall_chan as f64);
    report.add("validated", f64::from(u8::from(validated)));
    // Per-tenant attribution (`tenant.N.*`, `tenancy.*`) from a
    // multi-tenant execution; empty for single-tenant runs.
    report.merge(&extra);
    if tracer.is_enabled() {
        report.merge_prefixed("trace", &tracer.metrics_report());
    }
    // Causal attribution (`explain.*`): with an attached sampler the
    // drained machine's port topology, engine counters and windowed
    // samples become a ranked causal tree. Accounting violations
    // (blamed + busy exceeding the run, or port stalls disagreeing with
    // the engines' own counters) escalate through the sanitizer like
    // every other conservation law.
    let explanation = if machine.sampler().on() {
        let obs = machine.observation();
        let x = distda_explain::analyze(&obs);
        if san.on() {
            for v in &x.violations {
                san.check(false, "explain", "tick-accounting", ticks, || v.clone());
            }
            if san.count() > 0 {
                return Err(SimError::InvariantViolation {
                    phase: "explain-accounting",
                    now: ticks,
                    count: san.count(),
                    report: san.render(),
                });
            }
        }
        report.merge_prefixed("explain", &distda_explain::to_report(&x));
        // Counter tracks: the sampled windows become `explain` series in
        // the trace registry, rendered as Perfetto counter tracks by the
        // Chrome exporter next to the run's slices.
        if tracer.is_enabled() {
            if let Some(d) = &obs.samples {
                let sink = tracer.sink("explain");
                for w in &d.windows {
                    for (p, pt) in d.port_names.iter().zip(&w.ports) {
                        sink.sample(w.at, &format!("{p}.stalls"), pt.stalls as f64);
                        sink.sample(w.at, &format!("{p}.len"), pt.len as f64);
                    }
                    for (c, v) in d.counter_names.iter().zip(&w.counters) {
                        sink.sample(w.at, c, *v as f64);
                    }
                }
            }
        }
        Some(x)
    } else {
        None
    };

    let result = RunResult {
        kernel: prog.name.clone(),
        config: cfg.label(),
        ticks,
        ns: ticks_to_ns(ticks),
        energy,
        counters,
        cache_accesses,
        mem_ops: host.mem_ops + eng.mem_ops,
        total_ops: host.retired + eng.mem_ops + eng.alu_ops,
        host_ops: host.retired,
        intra_bytes: eng.intra_bytes,
        da_bytes: eng.da_bytes,
        aa_bytes: eng.aa_bytes,
        noc_bytes,
        data_moved_bytes,
        validated,
        report,
    };
    if distda_sim::env::explain().is_some() {
        if let Some(x) = &explanation {
            auto_export_explain(x, &result);
        }
    }
    *explain_out = explanation;
    let final_mem = machine.into_memimg();
    Ok((result, final_mem, eval_scalars))
}

/// Writes the causal tree of an env-enabled (`DISTDA_EXPLAIN`) run to
/// `results/explain_<kernel>_<config>.txt`.
fn auto_export_explain(x: &distda_explain::Explanation, r: &RunResult) {
    let slug = |s: &str| -> String {
        s.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect()
    };
    let dir = std::path::Path::new("results");
    let path = dir.join(format!(
        "explain_{}_{}.txt",
        slug(&r.kernel),
        slug(&r.config)
    ));
    let tree = distda_explain::render_text(x);
    if std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&path, tree))
        .is_err()
    {
        eprintln!(
            "warning: could not write explain tree to {}",
            path.display()
        );
    }
}

/// Describes the first disagreement between the simulated machine's final
/// state and the golden model's, for [`SimError::ValidationMismatch`].
fn mismatch_detail(
    prog: &Program,
    sim: &Memory,
    reference: &Memory,
    sim_scalars: &[Value],
    ref_scalars: &[Value],
) -> String {
    for a in 0..prog.arrays.len() {
        let id = distda_ir::ArrayId(a);
        let (s, r) = (sim.array(id), reference.array(id));
        let diffs = s.iter().zip(r.iter()).filter(|(x, y)| x != y).count();
        if diffs > 0 || s.len() != r.len() {
            let i = s
                .iter()
                .zip(r.iter())
                .position(|(x, y)| x != y)
                .unwrap_or(s.len().min(r.len()));
            return format!(
                "array {}[{}]: simulated {:?} != reference {:?} ({} of {} elements differ)",
                prog.arrays[a].name,
                i,
                s.get(i),
                r.get(i),
                diffs,
                r.len()
            );
        }
    }
    for (i, (s, r)) in sim_scalars.iter().zip(ref_scalars.iter()).enumerate() {
        if s != r {
            return format!("scalar {i}: simulated {s:?} != reference {r:?}");
        }
    }
    "state differs but no element-level mismatch found".to_string()
}

/// The memory-hierarchy configuration implied by a topology: cluster and
/// bank counts follow the mesh shape, and a configured far-memory pool
/// moves DRAM an extra network hop away (added latency, pool bandwidth).
/// External drivers building machines by hand (the `bench` case studies)
/// use this to stay consistent with the runner.
pub fn mem_config_for(topo: &Topology) -> MemConfig {
    let mut mc = MemConfig::scaled_for_reduced_inputs();
    mc.clusters = topo.clusters();
    mc.banks_per_cluster = topo.banks_per_cluster;
    if let Some(fm) = topo.far_memory {
        mc.dram_latency += fm.extra_latency;
        mc.dram_bytes_per_cycle = fm.bytes_per_cycle;
    }
    mc
}

/// Attaches the run's instrumentation (skip override, tracer, sanitizer,
/// self-profiler, explain sampler) to a freshly built machine.
fn instrument(
    machine: &mut Machine,
    skip: Option<bool>,
    tracer: &Tracer,
    san: &Sanitizer,
    profiler: &distda_sim::Profiler,
    sampler: &distda_sim::Sampler,
) {
    if let Some(on) = skip {
        machine.set_skip(on);
    }
    if tracer.is_enabled() {
        machine.set_tracer(tracer.clone());
    }
    if san.on() {
        machine.set_sanitizer(san.clone());
    }
    if profiler.on() {
        machine.set_profiler(profiler.clone());
    }
    machine.set_sampler(sampler.clone());
}

/// What an execution strategy hands back to the shared metrics/validation
/// tail: the drained machine, per-tenant live-out scalars (tenant 0
/// first), and any extra report keys (`tenant.N.*`, `tenancy.*`).
struct Execution {
    machine: Machine,
    scalars: Vec<Vec<Value>>,
    extra: Report,
}

/// The single-tenant execution strategy: the program walker interleaves
/// host segments with offload invocations exactly as before topology
/// parametrization.
#[allow(clippy::too_many_arguments)]
fn run_single(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    plans: &[OffloadPlan],
    compiled: Option<CompiledKernel>,
    skip: Option<bool>,
    tracer: &Tracer,
    san: &Sanitizer,
    profiler: &distda_sim::Profiler,
    sampler: &distda_sim::Sampler,
) -> Result<Execution, SimError> {
    let topo = &cfg.topology;
    let uncore = ClockDomain::from_ghz(2.0);
    let mut mem = MemSystem::new(
        mem_config_for(topo),
        uncore,
        topo.host_node,
        topo.memctrl_node,
    );
    let alloc = allocate(prog, plans, topo.clusters(), cfg.alloc, &mut mem);

    let mut img = Memory::for_program(prog);
    init(&mut img);
    let mut machine = Machine::new(mem, img, alloc.layout.clone(), 5, 224, topo);
    instrument(&mut machine, skip, tracer, san, profiler, sampler);

    let mut walker = Walker {
        prog,
        cfg,
        machine,
        eval: HostEval::new(prog, alloc.layout.clone()),
        compiled,
        alloc,
        handles: HashMap::new(),
    };
    let body = prog.body.clone();
    walker.exec_block(&body)?;
    walker.flush()?;
    walker.machine.drain()?;
    let Walker { machine, eval, .. } = walker;
    Ok(Execution {
        machine,
        scalars: vec![eval.scalars],
        extra: Report::new(),
    })
}

/// Whether a statement (transitively) contains a loop.
fn stmt_contains_loop(s: &Stmt) -> bool {
    match s {
        Stmt::Loop(_) => true,
        Stmt::If(_, t, e) => t.iter().any(stmt_contains_loop) || e.iter().any(stmt_contains_loop),
        _ => false,
    }
}

/// Functionally executes one loop-free statement against a tenant's view.
fn exec_scalar_stmt(s: &Stmt, eval: &mut HostEval, mem: &mut Memory) {
    match s {
        Stmt::Store(a, idx, val) => eval.store(*a, idx, val, mem),
        Stmt::SetScalar(sid, e) => eval.set_scalar(*sid, e, mem),
        Stmt::If(c, t, e) => {
            let (v, _) = eval.eval(c, mem);
            let arm = if v.truthy() { t } else { e };
            for s in arm {
                exec_scalar_stmt(s, eval, mem);
            }
        }
        Stmt::Loop(_) => unreachable!("host phases are loop-free under tenancy"),
    }
}

/// Runs a tenant's loop-free host phase (prologue or epilogue) and charges
/// the accumulated segment to the shared host core.
fn run_host_phase(
    stmts: &[&Stmt],
    eval: &mut HostEval,
    machine: &mut Machine,
    tenant: u16,
) -> Result<(), SimError> {
    {
        let mem = machine.tenant_memimg_mut(tenant);
        for s in stmts {
            exec_scalar_stmt(s, eval, mem);
        }
    }
    machine.run_host_segment(eval.take_segment())
}

/// Jain's fairness index over per-tenant progress rates: 1.0 when every
/// tenant progresses equally, 1/n under maximal starvation.
fn jain_index(xs: &[f64]) -> f64 {
    let s: f64 = xs.iter().sum();
    let s2: f64 = xs.iter().map(|x| x * x).sum();
    if s2 <= 0.0 {
        return 1.0;
    }
    s * s / (xs.len() as f64 * s2)
}

/// The multi-tenant execution strategy: `topology.tenants` identical
/// copies of the kernel co-scheduled on one fabric. Each tenant gets its
/// own functional view and a disjoint address band whose anchored objects
/// rotate home clusters (see [`allocate_for_tenant`]); host phases share
/// the single host core sequentially, while every tenant's offload runs
/// concurrently and contends for NUCA banks, mesh links and DRAM. The
/// kernel must be shaped as `prologue* offloadable-loop epilogue*` with no
/// loops outside the offload — anything else is rejected rather than
/// silently serialized.
#[allow(clippy::too_many_arguments)]
fn run_tenants(
    prog: &Program,
    init: &dyn Fn(&mut Memory),
    cfg: &RunConfig,
    plans: &[OffloadPlan],
    compiled: &CompiledKernel,
    skip: Option<bool>,
    tracer: &Tracer,
    san: &Sanitizer,
    profiler: &distda_sim::Profiler,
    sampler: &distda_sim::Sampler,
) -> Result<Execution, SimError> {
    let topo = &cfg.topology;
    let n = topo.tenants;

    // Shape gate: exactly one top-level loop, offloadable, with loop-free
    // prologue/epilogue around it.
    let mut pre: Vec<&Stmt> = Vec::new();
    let mut post: Vec<&Stmt> = Vec::new();
    let mut the_loop: Option<&distda_ir::Loop> = None;
    for s in &prog.body {
        match s {
            Stmt::Loop(l) => {
                if the_loop.is_some() {
                    return Err(SimError::InvalidConfig {
                        detail: format!(
                            "kernel {} has multiple top-level loops; multi-tenant runs \
                             require prologue* offloadable-loop epilogue*",
                            prog.name
                        ),
                    });
                }
                the_loop = Some(l);
            }
            s if the_loop.is_none() => pre.push(s),
            s => post.push(s),
        }
    }
    let l = the_loop.ok_or_else(|| SimError::InvalidConfig {
        detail: format!("kernel {} has no top-level loop to offload", prog.name),
    })?;
    if pre.iter().chain(post.iter()).any(|s| stmt_contains_loop(s)) {
        return Err(SimError::InvalidConfig {
            detail: format!(
                "kernel {} has host-side loops outside the offload; multi-tenant \
                 runs require loop-free prologue/epilogue",
                prog.name
            ),
        });
    }
    let plan = compiled
        .plan_for(l.id)
        .cloned()
        .ok_or_else(|| SimError::InvalidConfig {
            detail: format!(
                "kernel {}'s top-level loop is not offloadable under this configuration",
                prog.name
            ),
        })?;

    // One shared fabric; per-tenant views, layouts and address bands.
    let uncore = ClockDomain::from_ghz(2.0);
    let mut mem = MemSystem::new(
        mem_config_for(topo),
        uncore,
        topo.host_node,
        topo.memctrl_node,
    );
    let mut allocs: Vec<Allocation> = Vec::with_capacity(n);
    let mut imgs: Vec<Memory> = Vec::with_capacity(n);
    for t in 0..n {
        allocs.push(allocate_for_tenant(
            prog,
            plans,
            topo.clusters(),
            cfg.alloc,
            &mut mem,
            t as u16,
        ));
        let mut img = Memory::for_program(prog);
        init(&mut img);
        imgs.push(img);
    }
    let mut imgs = imgs.into_iter();
    let mut machine = Machine::new(
        mem,
        imgs.next().expect("tenants >= 1"),
        allocs[0].layout.clone(),
        5,
        224,
        topo,
    );
    for (i, img) in imgs.enumerate() {
        machine.add_tenant(img, allocs[i + 1].layout.clone());
    }
    instrument(&mut machine, skip, tracer, san, profiler, sampler);
    let mut evals: Vec<HostEval> = allocs
        .iter()
        .map(|a| HostEval::new(prog, a.layout.clone()))
        .collect();

    // Host prologues run sequentially: one host core serves all tenants.
    for (t, eval) in evals.iter_mut().enumerate() {
        run_host_phase(&pre, eval, &mut machine, t as u16)?;
    }

    // Configure and launch every tenant's offload. Configuration MMIO is
    // charged sequentially (still one host core), so later tenants launch
    // while earlier offloads are already in flight — a staggered start,
    // exactly what co-scheduling looks like.
    let mut handles: Vec<PlanHandle> = Vec::with_capacity(n);
    for t in 0..n {
        let eval = &mut evals[t];
        let (sv, ev) = {
            let mem = machine.tenant_memimg_mut(t as u16);
            let (sv, _) = eval.eval(&l.start, mem);
            let (ev, _) = eval.eval(&l.end, mem);
            (sv, ev)
        };
        machine.run_host_segment(eval.take_segment())?;
        let placement = place_partitions(&plan, &allocs[t], cfg.kind, topo.host_node);
        let substrates = substrates_for(&plan, cfg);
        let ranges: Vec<(u64, u64)> = {
            let mut arrays: Vec<_> = plan
                .partitions
                .iter()
                .flat_map(|p| p.accesses.iter().map(|a| a.array))
                .collect();
            arrays.sort();
            arrays.dedup();
            arrays
                .into_iter()
                .map(|a| allocs[t].layout.range(prog, a))
                .collect()
        };
        let h =
            machine.configure_plan_for_tenant(&plan, &placement, &substrates, &ranges, t as u16);
        let params: Vec<Value> = plan
            .params
            .iter()
            .map(|sym| match sym {
                Sym::Var(lv) => Value::I(evals[t].loop_vars[lv.0]),
                Sym::Scalar(s) => evals[t].scalars[s.0],
            })
            .collect();
        let carries: Vec<Vec<Value>> = machine
            .plan_carry_scalars(h)
            .iter()
            .map(|ss| ss.iter().map(|s| evals[t].scalars[s.0]).collect())
            .collect();
        machine.launch(h, &params, &carries, sv.as_i64(), ev.as_i64(), l.step);
        handles.push(h);
    }

    // All offloads in flight: run to joint completion, recording the tick
    // at which each tenant's plan finished.
    let mut done_at: Vec<Option<Tick>> = vec![None; n];
    {
        let hs = handles.clone();
        machine.run_until("offload", |now, st| {
            let mut all = true;
            for (t, &h) in hs.iter().enumerate() {
                if st.plan_done(h) {
                    if done_at[t].is_none() {
                        done_at[t] = Some(now);
                    }
                } else {
                    all = false;
                }
            }
            all
        })?;
    }

    // Live-outs back to each tenant's host state, then sequential
    // epilogues.
    for t in 0..n {
        for (s, v) in machine.read_liveouts(handles[t]) {
            evals[t].set_scalar_external(s, v);
        }
    }
    for (t, eval) in evals.iter_mut().enumerate() {
        run_host_phase(&post, eval, &mut machine, t as u16)?;
    }
    machine.drain()?;

    // Per-tenant attribution and the fairness summary. Rates are inverse
    // completion ticks; under a perfectly fair fabric all tenants finish
    // together and the index is 1.0.
    let end = machine.now();
    let mut extra = Report::new();
    let mut rates = Vec::with_capacity(n);
    for (t, &done) in done_at.iter().enumerate() {
        let ticks_t = done.unwrap_or(end);
        let et = machine.tenant_engine_totals(t as u16);
        let hop = machine.noc_stats().tenant_hop_bytes(t as u16);
        extra.add(format!("tenant.{t}.ticks"), ticks_t as f64);
        extra.add(format!("tenant.{t}.iterations"), et.iterations as f64);
        extra.add(format!("tenant.{t}.busy_cycles"), et.busy_cycles as f64);
        extra.add(format!("tenant.{t}.stall_mem"), et.stall_mem as f64);
        extra.add(format!("tenant.{t}.stall_chan"), et.stall_chan as f64);
        extra.add(format!("tenant.{t}.intra_bytes"), et.intra_bytes as f64);
        extra.add(format!("tenant.{t}.da_bytes"), et.da_bytes as f64);
        extra.add(format!("tenant.{t}.aa_bytes"), et.aa_bytes as f64);
        extra.add(format!("tenant.{t}.hop_bytes"), hop as f64);
        rates.push(1.0 / ticks_t.max(1) as f64);
    }
    extra.add("tenancy.tenants", n as f64);
    extra.add("tenancy.fairness", jain_index(&rates));
    Ok(Execution {
        machine,
        scalars: evals.into_iter().map(|e| e.scalars).collect(),
        extra,
    })
}

struct Walker<'a> {
    prog: &'a Program,
    cfg: &'a RunConfig,
    machine: Machine,
    eval: HostEval,
    compiled: Option<CompiledKernel>,
    alloc: Allocation,
    handles: HashMap<LoopId, PlanHandle>,
}

impl Walker<'_> {
    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<(), SimError> {
        for s in stmts {
            self.exec(s)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), SimError> {
        let ops = self.eval.take_segment();
        self.machine.run_host_segment(ops)
    }

    fn exec(&mut self, s: &Stmt) -> Result<(), SimError> {
        match s {
            Stmt::Store(a, idx, val) => {
                let mem = self.machine.memimg_mut();
                self.eval.store(*a, idx, val, mem);
                Ok(())
            }
            Stmt::SetScalar(sid, e) => {
                let mem = self.machine.memimg_mut();
                self.eval.set_scalar(*sid, e, mem);
                Ok(())
            }
            Stmt::If(c, t, e) => {
                let (v, _) = self.eval.eval(c, self.machine.memimg_mut());
                if v.truthy() {
                    self.exec_block(t)
                } else {
                    self.exec_block(e)
                }
            }
            Stmt::Loop(l) => {
                let plan = self
                    .compiled
                    .as_ref()
                    .and_then(|c| c.plan_for(l.id))
                    .cloned();
                match plan {
                    Some(plan) => self.run_offload(l, &plan),
                    None => self.run_host_loop(l),
                }
            }
        }
    }

    fn run_host_loop(&mut self, l: &distda_ir::Loop) -> Result<(), SimError> {
        let (sv, _) = self.eval.eval(&l.start, self.machine.memimg_mut());
        let (ev, _) = self.eval.eval(&l.end, self.machine.memimg_mut());
        let (start, end) = (sv.as_i64(), ev.as_i64());
        let mut i = start;
        while (l.step > 0 && i < end) || (l.step < 0 && i > end) {
            self.eval.loop_vars[l.var.0] = i;
            self.eval.emit_loop_overhead();
            self.exec_block(&l.body)?;
            if self.eval.segment_len() > SEGMENT_FLUSH_OPS {
                self.flush()?;
            }
            i += l.step;
        }
        Ok(())
    }

    fn run_offload(&mut self, l: &distda_ir::Loop, plan: &OffloadPlan) -> Result<(), SimError> {
        // Host evaluates bounds (may read memory, e.g. CSR row pointers).
        let (sv, _) = self.eval.eval(&l.start, self.machine.memimg_mut());
        let (ev, _) = self.eval.eval(&l.end, self.machine.memimg_mut());
        self.flush()?;
        let handle = match self.handles.get(&l.id) {
            Some(&h) => h,
            None => {
                let h = self.configure(plan);
                self.handles.insert(l.id, h);
                h
            }
        };
        let params: Vec<Value> = plan
            .params
            .iter()
            .map(|sym| match sym {
                Sym::Var(lv) => Value::I(self.eval.loop_vars[lv.0]),
                Sym::Scalar(s) => self.eval.scalars[s.0],
            })
            .collect();
        let carries: Vec<Vec<Value>> = self
            .machine
            .plan_carry_scalars(handle)
            .iter()
            .map(|ss| ss.iter().map(|s| self.eval.scalars[s.0]).collect())
            .collect();
        self.machine
            .launch(handle, &params, &carries, sv.as_i64(), ev.as_i64(), l.step);
        self.machine.run_offload(handle)?;
        for (s, v) in self.machine.read_liveouts(handle) {
            self.eval.set_scalar_external(s, v);
        }
        Ok(())
    }

    fn configure(&mut self, plan: &OffloadPlan) -> PlanHandle {
        let placement = place_partitions(
            plan,
            &self.alloc,
            self.cfg.kind,
            self.cfg.topology.host_node,
        );
        let substrates = substrates_for(plan, self.cfg);
        let ranges: Vec<(u64, u64)> = {
            let mut arrays: Vec<_> = plan
                .partitions
                .iter()
                .flat_map(|p| p.accesses.iter().map(|a| a.array))
                .collect();
            arrays.sort();
            arrays.dedup();
            arrays
                .into_iter()
                .map(|a| self.alloc.layout.range(self.prog, a))
                .collect()
        };
        self.machine
            .configure_plan(plan, &placement, &substrates, &ranges)
    }
}

/// Horizontal placement (paper Section V-A step 4): anchored partitions go
/// to their object's home cluster; compute-only partitions go to the
/// majority cluster of their channel peers; Mono-CA centralizes at the
/// topology's host node (which is also the fallback for partitions with no
/// placement votes).
pub fn place_partitions(
    plan: &OffloadPlan,
    alloc: &Allocation,
    kind: ConfigKind,
    host_node: usize,
) -> Vec<usize> {
    let n = plan.partitions.len();
    if kind == ConfigKind::MonoCA {
        return vec![host_node; n];
    }
    let mut placement: Vec<Option<usize>> = vec![None; n];
    // Pass 1: partitions with accesses follow their objects.
    for (i, part) in plan.partitions.iter().enumerate() {
        let mut votes: HashMap<usize, usize> = HashMap::new();
        for acc in &part.accesses {
            if let Some(h) = alloc.home[acc.array.0] {
                *votes.entry(h).or_insert(0) += 1;
            }
        }
        placement[i] = votes
            .into_iter()
            .max_by_key(|&(c, v)| (v, std::cmp::Reverse(c)))
            .map(|(c, _)| c);
    }
    // Pass 2: the rest follow their channel peers.
    for (i, _) in plan.partitions.iter().enumerate() {
        if placement[i].is_some() {
            continue;
        }
        let mut votes: HashMap<usize, usize> = HashMap::new();
        for ch in &plan.channels {
            let peer = if ch.producer as usize == i {
                ch.consumer as usize
            } else if ch.consumer as usize == i {
                ch.producer as usize
            } else {
                continue;
            };
            if let Some(c) = placement[peer] {
                *votes.entry(c).or_insert(0) += 1;
            }
        }
        placement[i] = votes
            .into_iter()
            .max_by_key(|&(c, v)| (v, std::cmp::Reverse(c)))
            .map(|(c, _)| c);
    }
    placement
        .into_iter()
        .map(|p| p.unwrap_or(host_node))
        .collect()
}

/// Whether a partition is a bare access node (stream FSM + channel port).
fn is_access_node(part: &distda_compiler::PartitionDef) -> bool {
    !part.accesses.is_empty()
        && part.nodes.iter().all(|n| {
            matches!(
                n,
                PNode::LoadStream { .. }
                    | PNode::StoreStream { .. }
                    | PNode::Send { .. }
                    | PNode::Recv { .. }
            )
        })
}

/// Chooses a substrate for every partition of a plan under a configuration.
pub fn substrates_for(plan: &OffloadPlan, cfg: &RunConfig) -> Vec<Substrate> {
    let accel_clock = ClockDomain::from_ghz(cfg.accel_ghz);
    let uncore = ClockDomain::from_ghz(2.0);
    let tuning = if cfg.sw_prefetch {
        (16, 24, 32)
    } else {
        (8, 12, 16)
    };
    plan.partitions
        .iter()
        .map(|part| {
            let access_node = is_access_node(part);
            if access_node {
                // Stream FSM: element-rate hardware at the uncore clock.
                return Substrate {
                    model: IssueModel::InOrder { width: 1 },
                    clock: uncore,
                    buffer_lines: cfg.buffer_lines,
                    is_access_node: true,
                    tuning,
                };
            }
            let model = if cfg.kind.is_cgra() {
                let grid = if cfg.kind == ConfigKind::MonoDAF {
                    CgraConfig::mono_da_8x8()
                } else {
                    CgraConfig::dist_da_5x5()
                };
                IssueModel::Cgra {
                    ii: cgra_map(part, &grid).ii,
                }
            } else {
                IssueModel::InOrder {
                    width: cfg.issue_width,
                }
            };
            Substrate {
                model,
                clock: accel_clock,
                buffer_lines: cfg.buffer_lines,
                is_access_node: false,
                tuning,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_ir::prelude::*;

    fn axpy(n: usize) -> (Program, impl Fn(&mut Memory)) {
        let mut b = ProgramBuilder::new("axpy");
        let x = b.array_f64("x", n);
        let y = b.array_f64("y", n);
        b.for_(0, n as i64, 1, |b, i| {
            let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
            b.store(y, i, v);
        });
        let p = b.build();
        (p, move |mem: &mut Memory| {
            for i in 0..n {
                mem.array_mut(ArrayId(0))[i] = Value::F(i as f64);
                mem.array_mut(ArrayId(1))[i] = Value::F(1.0);
            }
        })
    }

    #[test]
    fn every_configuration_validates_on_axpy() {
        let (p, init) = axpy(256);
        for kind in ConfigKind::ALL {
            let cfg = RunConfig::named(kind);
            let r = simulate(&p, &init, &cfg);
            assert!(r.validated, "{} failed validation", cfg.label());
            assert!(r.ticks > 0);
        }
    }

    #[test]
    fn accelerated_configs_reduce_host_work() {
        let (p, init) = axpy(512);
        let ooo = simulate(&p, &init, &RunConfig::named(ConfigKind::OoO));
        let dist = simulate(&p, &init, &RunConfig::named(ConfigKind::DistDAIO));
        assert!(
            dist.host_ops < ooo.host_ops / 4,
            "offload should strip host instructions: {} vs {}",
            dist.host_ops,
            ooo.host_ops
        );
        assert!(dist.counters.io_ops > 0);
    }

    #[test]
    fn dist_da_reduces_cache_accesses_vs_ooo() {
        let (p, init) = axpy(2048);
        let ooo = simulate(&p, &init, &RunConfig::named(ConfigKind::OoO));
        let dist = simulate(&p, &init, &RunConfig::named(ConfigKind::DistDAF));
        assert!(
            dist.cache_accesses < ooo.cache_accesses,
            "near-data buffers should cut cache accesses: {} vs {}",
            dist.cache_accesses,
            ooo.cache_accesses
        );
    }

    #[test]
    fn nested_loop_offload_reruns_inner_plan() {
        let mut b = ProgramBuilder::new("rows");
        let a = b.array_f64("a", 16 * 16);
        let o = b.array_f64("o", 16 * 16);
        b.for_(0, 16, 1, |b, i| {
            b.for_(0, 16, 1, |b, j| {
                let idx = i.clone() * Expr::c(16) + j;
                b.store(o, idx.clone(), Expr::load(a, idx) * Expr::cf(2.0));
            });
        });
        let p = b.build();
        let init = |mem: &mut Memory| {
            for i in 0..256 {
                mem.array_mut(ArrayId(0))[i] = Value::F(i as f64);
            }
        };
        for kind in [ConfigKind::OoO, ConfigKind::MonoDAIO, ConfigKind::DistDAIO] {
            let r = simulate(&p, &init, &RunConfig::named(kind));
            assert!(r.validated, "{:?} failed", kind);
        }
    }

    #[test]
    fn larger_meshes_validate_across_configs() {
        let (p, init) = axpy(256);
        for (c, r_) in [(4usize, 4usize), (8, 4)] {
            let cfg = RunConfig::named(ConfigKind::DistDAF).with_topology(Topology::mesh(c, r_));
            let r = simulate(&p, &init, &cfg);
            assert!(r.validated, "{} failed validation", r.config);
            assert!(r.config.ends_with(&format!(":{c}x{r_}")));
        }
    }

    #[test]
    fn far_memory_pool_adds_latency() {
        let (p, init) = axpy(512);
        let near = simulate(&p, &init, &RunConfig::named(ConfigKind::OoO));
        let mut topo = Topology::paper();
        topo.far_memory = Some(crate::config::FarMemory {
            extra_latency: 200,
            bytes_per_cycle: 2,
        });
        let far = simulate(
            &p,
            &init,
            &RunConfig::named(ConfigKind::OoO).with_topology(topo),
        );
        assert!(far.validated);
        assert!(
            far.ticks > near.ticks,
            "pooled memory an extra hop away must cost time: {} vs {}",
            far.ticks,
            near.ticks
        );
    }

    #[test]
    fn multi_tenant_axpy_validates_with_fair_attribution() {
        let (p, init) = axpy(256);
        let mut topo = Topology::mesh(4, 2);
        topo.tenants = 2;
        let cfg = RunConfig::named(ConfigKind::DistDAIO).with_topology(topo);
        let r = simulate(&p, &init, &cfg);
        assert!(r.validated, "{} failed validation", r.config);
        assert!(r.config.ends_with(":t2"));
        assert_eq!(r.report.get("tenancy.tenants"), Some(2.0));
        let fair = r.report.get("tenancy.fairness").unwrap();
        assert!(
            fair > 0.5 && fair <= 1.0 + 1e-12,
            "homogeneous tenants should be near-fair, index {fair}"
        );
        // Both tenants did the same (full) amount of kernel work, and the
        // per-tenant counts partition the whole-machine total.
        let it0 = r.report.get("tenant.0.iterations").unwrap();
        let it1 = r.report.get("tenant.1.iterations").unwrap();
        assert!(it0 > 0.0);
        assert_eq!(it0, it1);
        assert_eq!(it0 + it1, r.report.get("accel.iterations").unwrap());
        // Per-tenant hop bytes partition the whole-machine total (the
        // registry invariant the obs layer re-checks on ingest).
        let hop_sum: f64 = (0..2)
            .map(|t| r.report.get(&format!("tenant.{t}.hop_bytes")).unwrap())
            .sum();
        assert_eq!(hop_sum, r.report.sum_prefix("noc.hop_bytes."));
    }

    #[test]
    fn multi_tenant_rejects_host_side_loops() {
        let mut b = ProgramBuilder::new("two-loops");
        let x = b.array_f64("x", 32);
        b.for_(0, 32, 1, |b, i| {
            b.store(x, i.clone(), Expr::load(x, i) + Expr::cf(1.0));
        });
        b.for_(0, 32, 1, |b, i| {
            b.store(x, i.clone(), Expr::load(x, i) * Expr::cf(2.0));
        });
        let p = b.build();
        let mut topo = Topology::paper();
        topo.tenants = 2;
        let cfg = RunConfig::named(ConfigKind::DistDAIO).with_topology(topo);
        let err = try_simulate(&p, &|_| {}, &cfg).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn reduction_scalars_flow_back_to_host() {
        let mut b = ProgramBuilder::new("dot");
        let x = b.array_f64("x", 128);
        let y = b.array_f64("y", 128);
        let acc = b.scalar("acc", 0.0f64);
        let out = b.array_f64("out", 1);
        b.for_(0, 128, 1, |b, i| {
            b.set(
                acc,
                Expr::Scalar(acc) + Expr::load(x, i.clone()) * Expr::load(y, i),
            );
        });
        // Host consumes the reduction result afterwards.
        b.store(out, Expr::c(0), Expr::Scalar(acc));
        let p = b.build();
        let init = |mem: &mut Memory| {
            for i in 0..128 {
                mem.array_mut(ArrayId(0))[i] = Value::F(1.0);
                mem.array_mut(ArrayId(1))[i] = Value::F(2.0);
            }
        };
        for kind in ConfigKind::ALL {
            let r = simulate(&p, &init, &RunConfig::named(kind));
            assert!(r.validated, "{:?} failed validation", kind);
        }
    }
}
