//! A bounded ring buffer for trace events.
//!
//! Components emit into a fixed-capacity ring so tracing never grows
//! unboundedly with simulated time: when the ring is full the *oldest*
//! record is overwritten (the most recent window of activity is what a
//! timeline viewer needs) and the drop is counted, so exporters can state
//! exactly how much history was shed.

/// Fixed-capacity ring keeping the most recent `capacity` records.
///
/// # Examples
///
/// ```
/// use distda_trace::ring::Ring;
/// let mut r = Ring::new(2);
/// r.push(1);
/// r.push(2);
/// r.push(3);
/// assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
/// assert_eq!(r.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be nonzero");
        Self {
            buf: Vec::new(),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends a record, overwriting the oldest one when full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Drains the ring into a `Vec`, oldest-first.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.to_vec(), vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn under_capacity_keeps_insertion_order() {
        let mut r = Ring::new(8);
        r.push("a");
        r.push("b");
        assert_eq!(r.to_vec(), vec!["a", "b"]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _ = Ring::<u8>::new(0);
    }
}
