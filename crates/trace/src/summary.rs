//! Plain-text summaries: a top-N digest of the busiest events, counters
//! and latency histograms per component, and a cycle-exact stall/phase
//! attribution for a run.
//!
//! Attribution relies on the machine's emission discipline: the `machine`
//! track's `kernel_phase` and `mmio` spans are sequential and disjoint by
//! construction, so summing their durations per label and assigning the
//! remainder to `other` partitions every base tick of the run exactly.

use crate::event::EventKind;
use crate::Tick;
use crate::{ComponentDump, Tracer};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A partition of a run's ticks into labelled buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    /// `(label, ticks)` buckets, largest first; includes `other`.
    pub parts: Vec<(String, Tick)>,
    /// Total ticks of the run (the sum of all parts).
    pub total: Tick,
    /// Whether the event ring shed history, making the split a floor.
    pub complete: bool,
    /// Labelled spans summed to *more* than the claimed run length —
    /// overlapping phase spans or a wrong total. The `other` bucket
    /// saturates to zero in that case, which used to mask the condition
    /// entirely; the flag keeps the invariant checkable.
    pub over_accounted: bool,
}

/// Attributes every tick of a `total`-tick run to a machine phase.
///
/// Sums the durations of `kernel_phase` and `mmio` spans on every traced
/// track whose name starts with `machine`, per display label, and assigns
/// the unaccounted remainder to `other`.
pub fn phase_attribution(tracer: &Tracer, total: Tick) -> Attribution {
    attribution_from(&tracer.components(), total)
}

/// [`phase_attribution`] over a pre-snapshotted component list.
pub fn attribution_from(comps: &[ComponentDump], total: Tick) -> Attribution {
    let mut sums: BTreeMap<String, Tick> = BTreeMap::new();
    let mut complete = true;
    for c in comps.iter().filter(|c| c.name.starts_with("machine")) {
        if c.dropped > 0 {
            complete = false;
        }
        for e in &c.events {
            let attributed = matches!(
                e.kind,
                EventKind::KernelPhase { .. } | EventKind::MmioTransfer { .. }
            );
            if attributed && !e.is_instant() {
                *sums.entry(e.kind.display_name()).or_insert(0) += e.duration();
            }
        }
    }
    let accounted: Tick = sums.values().sum();
    let mut parts: Vec<(String, Tick)> = sums.into_iter().collect();
    parts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    // Underflow is possible here by design: overlapping spans (or a
    // `total` measured over a narrower window than the trace) can
    // over-account the run. That case is reported explicitly through
    // `over_accounted` — `other` clamps to zero instead of wrapping, and
    // `total` widens to cover what was actually attributed.
    let over_accounted = accounted > total;
    let other = if over_accounted { 0 } else { total - accounted };
    parts.push(("other".to_string(), other));
    Attribution {
        parts,
        total: total.max(accounted),
        complete,
        over_accounted,
    }
}

/// Renders an attribution as an aligned table with percentages.
pub fn render_attribution(attr: &Attribution) -> String {
    let mut out = String::from("cycle attribution\n");
    let width = attr
        .parts
        .iter()
        .map(|(l, _)| l.len())
        .max()
        .unwrap_or(5)
        .max(5);
    for (label, ticks) in &attr.parts {
        let pct = if attr.total == 0 {
            0.0
        } else {
            100.0 * *ticks as f64 / attr.total as f64
        };
        let _ = writeln!(out, "  {label:width$}  {ticks:>14}  {pct:6.2}%");
    }
    let _ = writeln!(out, "  {:width$}  {:>14}  100.00%", "total", attr.total);
    if !attr.complete {
        out.push_str("  (event ring overflowed; labelled shares are lower bounds)\n");
    }
    if attr.over_accounted {
        out.push_str("  (WARNING: labelled spans exceed the run length)\n");
    }
    out
}

/// Renders a top-N digest of every component: busiest span labels by total
/// duration, largest counters, and histogram summaries.
pub fn render(tracer: &Tracer, top_n: usize) -> String {
    render_components(&tracer.components(), top_n)
}

/// [`render`] over a pre-snapshotted component list.
pub fn render_components(comps: &[ComponentDump], top_n: usize) -> String {
    let mut out = String::new();
    for c in comps {
        let _ = writeln!(
            out,
            "[{}] {} events{}",
            c.name,
            c.events.len(),
            if c.dropped > 0 {
                format!(" (+{} dropped)", c.dropped)
            } else {
                String::new()
            }
        );

        // Busiest labels: spans by total duration, instants by count.
        let mut durs: BTreeMap<String, (Tick, u64)> = BTreeMap::new();
        for e in &c.events {
            let entry = durs.entry(e.kind.display_name()).or_insert((0, 0));
            entry.0 += e.duration();
            entry.1 += 1;
        }
        let mut durs: Vec<(String, (Tick, u64))> = durs.into_iter().collect();
        durs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (label, (ticks, n)) in durs.iter().take(top_n) {
            let _ = writeln!(out, "  event {label:<16} n={n:<8} ticks={ticks}");
        }

        let mut counters: Vec<(&String, &u64)> = c.metrics.counters.iter().collect();
        counters.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (name, v) in counters.iter().take(top_n) {
            let _ = writeln!(out, "  count {name:<16} {v}");
        }

        for (name, h) in c.metrics.hists.iter().take(top_n) {
            let _ = writeln!(
                out,
                "  hist  {name:<16} n={} mean={:.1} p50={} p99={} max={}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Tracer};

    fn machine_tracer() -> Tracer {
        let t = Tracer::enabled();
        let m = t.sink("machine");
        m.span(
            0,
            40,
            EventKind::KernelPhase {
                phase: "host-segment",
            },
        );
        m.span(40, 50, EventKind::MmioTransfer { words: 8 });
        m.span(50, 90, EventKind::KernelPhase { phase: "offload" });
        t
    }

    #[test]
    fn attribution_partitions_total_exactly() {
        let attr = phase_attribution(&machine_tracer(), 100);
        let sum: Tick = attr.parts.iter().map(|(_, t)| t).sum();
        assert_eq!(sum, 100);
        assert_eq!(attr.total, 100);
        let other = attr.parts.iter().find(|(l, _)| l == "other").unwrap();
        assert_eq!(other.1, 10);
        assert!(attr.complete);
    }

    #[test]
    fn attribution_sorts_largest_first() {
        let attr = phase_attribution(&machine_tracer(), 100);
        assert_eq!(attr.parts[0].0, "host-segment");
        assert_eq!(attr.parts[0].1, 40);
    }

    #[test]
    fn over_accounting_is_flagged_not_masked() {
        // Spans sum to 90 ticks; claim the run was only 50.
        let attr = phase_attribution(&machine_tracer(), 50);
        assert!(attr.over_accounted);
        assert_eq!(attr.total, 90);
        let other = attr.parts.iter().find(|(l, _)| l == "other").unwrap();
        assert_eq!(other.1, 0);
        assert!(render_attribution(&attr).contains("WARNING"));
        assert!(!phase_attribution(&machine_tracer(), 100).over_accounted);
    }

    #[test]
    fn render_lists_components_and_counters() {
        let t = machine_tracer();
        t.sink("noc").count("flits", 12);
        let text = render(&t, 5);
        assert!(text.contains("[machine]"));
        assert!(text.contains("[noc]"));
        assert!(text.contains("flits"));
        let attr_text = render_attribution(&phase_attribution(&t, 100));
        assert!(attr_text.contains("100.00%"));
    }
}
