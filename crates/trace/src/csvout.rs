//! CSV export of sampled time series.
//!
//! One long-format file — `component,series,tick,value` — covering every
//! change-sampled series on every component, suitable for plotting queue
//! occupancy or MSHR pressure over simulated time with any spreadsheet or
//! `pandas.read_csv`. Rows are ordered by (track, series name, tick), so
//! the output is deterministic and diff-friendly.

use crate::{ComponentDump, Tracer};
use std::fmt::Write as _;

/// Exports every sampled series on `tracer` as one CSV document.
pub fn export(tracer: &Tracer) -> String {
    export_components(&tracer.components())
}

/// Exports pre-snapshotted components.
pub fn export_components(comps: &[ComponentDump]) -> String {
    let mut out = String::from("component,series,tick,value\n");
    for c in comps {
        for (name, series) in &c.metrics.series {
            for (at, v) in &series.points {
                let _ = writeln!(out, "{},{},{},{}", field(&c.name), field(name), at, v);
            }
        }
    }
    out
}

/// Quotes a CSV field only when it needs it.
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn rows_are_ordered_and_parseable() {
        let t = Tracer::enabled();
        let s = t.sink("mem.dram");
        s.sample(0, "queue", 1.0);
        s.sample(5, "queue", 3.0);
        s.sample(2, "mshr", 2.0);
        let csv = export(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "component,series,tick,value");
        assert_eq!(lines[1], "mem.dram,mshr,2,2");
        assert_eq!(lines[2], "mem.dram,queue,0,1");
        assert_eq!(lines[3], "mem.dram,queue,5,3");
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("plain"), "plain");
    }
}
