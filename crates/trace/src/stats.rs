//! Statistics reporting: ordered key/value reports and summary helpers.
//!
//! Hot-path counters in the simulator are plain `u64` fields on components;
//! at the end of a run each component folds them into a [`Report`], which the
//! experiment harness prints or normalizes (every figure in the paper is a
//! ratio against a baseline configuration).

use std::collections::BTreeMap;
use std::fmt;

/// An ordered map of named scalar statistics.
///
/// # Examples
///
/// ```
/// use distda_trace::Report;
/// let mut r = Report::new();
/// r.add("cycles", 100.0);
/// r.add("insts", 250.0);
/// assert_eq!(r.get("cycles"), Some(100.0));
/// assert_eq!(r.ratio("insts", "cycles"), Some(2.5));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    entries: BTreeMap<String, f64>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or overwrites a statistic.
    pub fn add(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.entries.insert(key.into(), value);
        self
    }

    /// Adds `value` to an existing statistic (or inserts it).
    pub fn accumulate(&mut self, key: &str, value: f64) -> &mut Self {
        *self.entries.entry(key.to_string()).or_insert(0.0) += value;
        self
    }

    /// Looks up a statistic.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.entries.get(key).copied()
    }

    /// Ratio of two statistics, `None` if either is missing or the
    /// denominator is zero.
    pub fn ratio(&self, num: &str, den: &str) -> Option<f64> {
        let d = self.get(den)?;
        if d == 0.0 {
            return None;
        }
        Some(self.get(num)? / d)
    }

    /// Merges another report, prefixing its keys.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &Report) -> &mut Self {
        for (k, v) in &other.entries {
            self.entries.insert(format!("{prefix}.{k}"), *v);
        }
        self
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the report holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another report entrywise: values under the same key are
    /// summed, keys unique to `other` are inserted.
    ///
    /// This is the aggregation primitive for combining per-run reports
    /// (e.g. one report per sweep cell) into a suite total.
    ///
    /// # Examples
    ///
    /// ```
    /// use distda_trace::Report;
    /// let mut total = Report::new();
    /// total.add("cycles", 100.0);
    /// let mut run = Report::new();
    /// run.add("cycles", 50.0).add("misses", 7.0);
    /// total.merge(&run);
    /// assert_eq!(total.get("cycles"), Some(150.0));
    /// assert_eq!(total.get("misses"), Some(7.0));
    /// ```
    pub fn merge(&mut self, other: &Report) -> &mut Self {
        for (k, v) in &other.entries {
            self.accumulate(k, *v);
        }
        self
    }

    /// Multiplies every entry by `factor`.
    ///
    /// Useful for normalising a merged report (`scale(1.0 / runs)` turns a
    /// suite total into a per-run mean) or converting units in bulk.
    ///
    /// # Examples
    ///
    /// ```
    /// use distda_trace::Report;
    /// let mut r = Report::new();
    /// r.add("cycles", 100.0).add("insts", 250.0);
    /// r.scale(0.5);
    /// assert_eq!(r.get("cycles"), Some(50.0));
    /// assert_eq!(r.get("insts"), Some(125.0));
    /// ```
    pub fn scale(&mut self, factor: f64) -> &mut Self {
        for v in self.entries.values_mut() {
            *v *= factor;
        }
        self
    }

    /// Sums all entries whose key starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> f64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.entries {
            writeln!(f, "{k:<40} {v:>16.4}")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, f64)> for Report {
    fn from_iter<I: IntoIterator<Item = (String, f64)>>(iter: I) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

/// Geometric mean of a sequence of positive values.
///
/// Returns `None` for an empty input or any non-positive value. The paper's
/// headline results (e.g. 3.3x energy efficiency) are geometric means across
/// workloads.
///
/// # Examples
///
/// ```
/// use distda_trace::geomean;
/// assert!((geomean([2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
/// assert_eq!(geomean([]), None);
/// ```
pub fn geomean(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut r = Report::new();
        r.add("a", 1.0).add("b", 2.0);
        assert_eq!(r.get("a"), Some(1.0));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn accumulate_sums() {
        let mut r = Report::new();
        r.accumulate("x", 1.5).accumulate("x", 2.5);
        assert_eq!(r.get("x"), Some(4.0));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut r = Report::new();
        r.add("n", 4.0).add("z", 0.0);
        assert_eq!(r.ratio("n", "z"), None);
        assert_eq!(r.ratio("n", "n"), Some(1.0));
    }

    #[test]
    fn merge_prefixed_namespaces_keys() {
        let mut inner = Report::new();
        inner.add("hits", 10.0);
        let mut outer = Report::new();
        outer.merge_prefixed("l1", &inner);
        assert_eq!(outer.get("l1.hits"), Some(10.0));
    }

    #[test]
    fn merge_sums_shared_keys_and_inserts_new() {
        let mut a = Report::new();
        a.add("x", 1.0).add("y", 2.0);
        let mut b = Report::new();
        b.add("y", 3.0).add("z", 4.0);
        a.merge(&b);
        assert_eq!(a.get("x"), Some(1.0));
        assert_eq!(a.get("y"), Some(5.0));
        assert_eq!(a.get("z"), Some(4.0));
    }

    #[test]
    fn scale_multiplies_all_entries() {
        let mut r = Report::new();
        r.add("a", 2.0).add("b", -4.0);
        r.scale(2.5);
        assert_eq!(r.get("a"), Some(5.0));
        assert_eq!(r.get("b"), Some(-10.0));
    }

    #[test]
    fn sum_prefix_selects_subtree() {
        let mut r = Report::new();
        r.add("noc.data", 3.0)
            .add("noc.ctrl", 2.0)
            .add("mem.reads", 7.0);
        assert_eq!(r.sum_prefix("noc."), 5.0);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([1.0, 2.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_nonpositive() {
        assert_eq!(geomean([1.0, 0.0]), None);
        assert_eq!(geomean([-1.0]), None);
    }

    #[test]
    fn display_is_nonempty() {
        let mut r = Report::new();
        r.add("k", 1.0);
        assert!(format!("{r}").contains('k'));
    }
}
