//! Chrome/Perfetto trace-event export.
//!
//! Produces the [Trace Event Format] JSON that `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) load directly: one thread
//! (track) per component, `"M"` metadata records naming each track, nested
//! `"B"`/`"E"` pairs for kernel phases, `"X"` complete events for other
//! spans, `"i"` instants, and `"C"` counter records for sampled series.
//! Timestamps are simulated base ticks reported through the `ts`/`dur`
//! microsecond fields (1 tick ↦ 1 µs in the viewer).
//!
//! The output is deterministic: tracks are ordered by registration, events
//! within a track by (start, end, name), and all numbers are integers or
//! shortest-form floats — so byte comparison of two exports is a valid
//! equality test in the determinism suite.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{Event, EventKind};
use crate::json::escape;
use crate::{ComponentDump, Tracer};
use std::fmt::Write as _;

/// Process id used for every track (a run is one "process").
const PID: u32 = 1;

/// Exports every component registered on `tracer` as one JSON document.
pub fn export(tracer: &Tracer) -> String {
    export_components(&tracer.components())
}

/// Exports pre-snapshotted components (lets callers snapshot once and feed
/// several exporters).
pub fn export_components(comps: &[ComponentDump]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for c in comps {
        write_track(&mut out, c, &mut first);
    }
    out.push_str("]}");
    out
}

fn write_track(out: &mut String, c: &ComponentDump, first: &mut bool) {
    let tid = c.track + 1;
    sep(out, first);
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{PID},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(&c.name)
    );

    let mut events: Vec<&Event> = c.events.iter().collect();
    events.sort_by(|a, b| {
        (a.start, a.end, a.kind.display_name()).cmp(&(b.start, b.end, b.kind.display_name()))
    });

    for e in &events {
        match &e.kind {
            EventKind::KernelPhase { .. } => {
                // Begin/end pairs: phases nest in the viewer and the pair
                // balance is checked by the export tests.
                sep(out, first);
                write_common(out, e, tid, "B");
                out.push_str(&format!(",\"ts\":{}", e.start));
                write_args(out, e);
                out.push('}');
                sep(out, first);
                write_common(out, e, tid, "E");
                out.push_str(&format!(",\"ts\":{}", e.end));
                out.push('}');
            }
            _ if e.is_instant() => {
                sep(out, first);
                write_common(out, e, tid, "i");
                out.push_str(&format!(",\"ts\":{},\"s\":\"t\"", e.start));
                write_args(out, e);
                out.push('}');
            }
            _ => {
                sep(out, first);
                write_common(out, e, tid, "X");
                out.push_str(&format!(",\"ts\":{},\"dur\":{}", e.start, e.duration()));
                write_args(out, e);
                out.push('}');
            }
        }
    }

    for (name, series) in &c.metrics.series {
        for (at, v) in &series.points {
            sep(out, first);
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"name\":\"{}\",\"cat\":\"series\",\"pid\":{PID},\
                 \"tid\":{tid},\"ts\":{at},\"args\":{{\"value\":{}}}}}",
                escape(name),
                fmt_num(*v)
            );
        }
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn write_common(out: &mut String, e: &Event, tid: u32, ph: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"{ph}\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{PID},\"tid\":{tid}",
        escape(&e.kind.display_name()),
        e.kind.category()
    );
}

fn write_args(out: &mut String, e: &Event) {
    let args = e.kind.args();
    if args.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":{v}");
    }
    out.push('}');
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::EventKind;

    fn demo_tracer() -> Tracer {
        let t = Tracer::enabled();
        let m = t.sink("machine");
        m.span(0, 100, EventKind::KernelPhase { phase: "offload" });
        m.instant(10, EventKind::MmioTransfer { words: 4 });
        m.span(
            20,
            30,
            EventKind::EngineStall {
                cause: crate::StallCause::Mem,
            },
        );
        let n = t.sink("noc");
        n.instant(
            5,
            EventKind::NocFlit {
                class: "AccData",
                src: 0,
                dst: 3,
                bytes: 64,
            },
        );
        n.sample(7, "in_flight", 2.0);
        t
    }

    #[test]
    fn export_is_valid_json_with_expected_phases() {
        let doc = export(&demo_tracer());
        let v = json::parse(&doc).expect("chrome export parses");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phases.contains(&"M"));
        assert!(phases.contains(&"B"));
        assert!(phases.contains(&"E"));
        assert!(phases.contains(&"i"));
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"C"));
    }

    #[test]
    fn begin_end_pairs_balance_per_track() {
        let doc = export(&demo_tracer());
        let v = json::parse(&doc).unwrap();
        let mut depth = 0i64;
        for e in v.get("traceEvents").unwrap().as_arr().unwrap() {
            match e.get("ph").unwrap().as_str().unwrap() {
                "B" => depth += 1,
                "E" => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn export_is_deterministic() {
        let a = export(&demo_tracer());
        let b = export(&demo_tracer());
        assert_eq!(a, b);
    }
}
