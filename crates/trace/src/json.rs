//! A minimal JSON reader used to validate exported traces.
//!
//! The workspace deliberately carries no external dependencies, so the
//! Chrome-trace smoke tests and `trace --check` parse their own output with
//! this small recursive-descent parser instead of `serde`. It accepts
//! strict JSON (no comments, no trailing commas) — exactly what the
//! exporters produce — and is not meant as a general-purpose library.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (held as `f64`, adequate for trace timestamps here).
    Num(f64),
    /// String contents, unescaped.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with key order normalised (sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as a single JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let s =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(s, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad \\u escape"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; bytes are valid UTF-8 by
                    // construction (input is &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#)
            .expect("parse");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse(r#""Aé""#).expect("parse");
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn escape_produces_parseable_strings() {
        let s = "a\"b\\c\nd\te";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }
}
