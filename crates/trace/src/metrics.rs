//! The metrics registry: counters, log-bucketed latency histograms and
//! sampled time series, kept per component next to its event ring.
//!
//! These complement the end-of-run [`Report`]: a report says
//! *how many* cache misses a run took, the registry's series say *when* the
//! DRAM queue was deep and the histograms say *how skewed* packet latencies
//! were. Series are sampled **on change** (never on a timer), which keeps
//! traces bit-identical under idle skip-ahead.

use crate::{Report, Tick};
use std::collections::BTreeMap;

/// Number of log2 buckets (covers the full `u64` range).
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket `i` counts values `v` with `bucket_of(v) == i`, where bucket 0
/// holds zero and bucket `i` holds `[2^(i-1), 2^i)`.
///
/// # Examples
///
/// ```
/// use distda_trace::metrics::LogHist;
/// let mut h = LogHist::default();
/// for v in [0, 1, 2, 3, 900] {
///     h.observe(v);
/// }
/// assert_eq!(h.count, 5);
/// assert_eq!(h.max, 900);
/// assert!(h.quantile(0.5) <= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHist {
    /// Per-bucket observation counts.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LogHist {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A bounded, change-sampled time series (queue occupancy, MSHR pressure,
/// link flit rates). Consecutive identical values are deduplicated; once
/// `cap` points are held further points are dropped and counted.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// `(tick, value)` points, oldest first.
    pub points: Vec<(Tick, f64)>,
    /// Maximum points retained.
    pub cap: usize,
    /// Points dropped after the cap was reached.
    pub dropped: u64,
    last: Option<f64>,
}

impl Series {
    /// Creates a series bounded to `cap` points.
    pub fn new(cap: usize) -> Self {
        Self {
            points: Vec::new(),
            cap: cap.max(1),
            dropped: 0,
            last: None,
        }
    }

    /// Records `value` at `at` unless it equals the previous sample.
    pub fn sample(&mut self, at: Tick, value: f64) {
        if self.last == Some(value) {
            return;
        }
        self.last = Some(value);
        if self.points.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.points.push((at, value));
    }
}

/// Per-component metrics: counters, histograms and series, keyed by name.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Log-bucketed histograms.
    pub hists: BTreeMap<String, LogHist>,
    /// Sampled time series.
    pub series: BTreeMap<String, Series>,
    /// Cap applied to newly created series.
    pub series_cap: usize,
}

impl Metrics {
    /// Creates an empty registry whose series hold at most `series_cap`
    /// points each.
    pub fn new(series_cap: usize) -> Self {
        Self {
            series_cap: series_cap.max(1),
            ..Self::default()
        }
    }

    /// Adds `n` to the counter `name`.
    pub fn count(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Records `v` into the histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = LogHist::default();
            h.observe(v);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// Samples the series `name` at `at`.
    pub fn sample(&mut self, name: &str, at: Tick, value: f64) {
        if let Some(s) = self.series.get_mut(name) {
            s.sample(at, value);
        } else {
            let mut s = Series::new(self.series_cap);
            s.sample(at, value);
            self.series.insert(name.to_string(), s);
        }
    }

    /// Folds counters and histogram summaries into a [`Report`]
    /// (`<name>` for counters; `<name>.count/mean/p50/p99/max` for
    /// histograms).
    pub fn report(&self) -> Report {
        let mut r = Report::new();
        for (k, v) in &self.counters {
            r.add(k.clone(), *v as f64);
        }
        for (k, h) in &self.hists {
            r.add(format!("{k}.count"), h.count as f64);
            r.add(format!("{k}.mean"), h.mean());
            r.add(format!("{k}.p50"), h.quantile(0.5) as f64);
            r.add(format!("{k}.p99"), h.quantile(0.99) as f64);
            r.add(format!("{k}.max"), h.max as f64);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
    }

    #[test]
    fn hist_quantiles_bound_observations() {
        let mut h = LogHist::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count, 1000);
        let p50 = h.quantile(0.5);
        assert!((256..=1023).contains(&p50), "p50 bucket bound {p50}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn hist_merge_sums() {
        let mut a = LogHist::default();
        a.observe(1);
        let mut b = LogHist::default();
        b.observe(100);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 100);
    }

    #[test]
    fn series_dedups_and_caps() {
        let mut s = Series::new(2);
        s.sample(0, 1.0);
        s.sample(1, 1.0); // deduped
        s.sample(2, 2.0);
        s.sample(3, 3.0); // over cap
        assert_eq!(s.points, vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn metrics_report_folds_everything() {
        let mut m = Metrics::new(16);
        m.count("flits", 3);
        m.count("flits", 2);
        m.observe("lat", 7);
        let r = m.report();
        assert_eq!(r.get("flits"), Some(5.0));
        assert_eq!(r.get("lat.count"), Some(1.0));
        assert_eq!(r.get("lat.max"), Some(7.0));
    }
}
