//! # distda-trace
//!
//! Cycle-attributed tracing and metrics for the Dist-DA machine: typed,
//! tick-stamped event spans in bounded per-component rings, a metrics
//! registry (counters, log-bucketed histograms, change-sampled time
//! series), and exporters — Chrome/Perfetto JSON ([`chrome`]), CSV time
//! series ([`csvout`]) and a plain-text top-N summary with cycle-exact
//! phase attribution ([`summary`]).
//!
//! ## Zero overhead when disabled
//!
//! A [`Tracer`] is either live (backed by shared state) or disabled
//! (`None` inside). Components hold a [`TraceSink`] per track; with
//! tracing off every emission method is an inlined `Option` check on a
//! local field — no allocation, no locking, no formatting — so the
//! simulator's hot path is unaffected (< 2% on aggregate throughput is
//! the enforced budget, measured at well under that).
//!
//! ## Determinism
//!
//! Events are stamped with simulated ticks only and emitted only on
//! observable-work edges, so exported traces are byte-identical across
//! `DISTDA_THREADS` settings and with idle skip-ahead on or off.
//!
//! ## Enabling
//!
//! Programmatically ([`Tracer::enabled`], [`Tracer::with_filter`],
//! [`Tracer::with_filter_cap`]) or via the `DISTDA_TRACE` /
//! `DISTDA_TRACE_CAP` environment knobs, parsed by `distda_sim::env`
//! (which constructs the tracer through [`Tracer::with_filter_cap`]):
//!
//! - `DISTDA_TRACE=1` (or `all`) — trace every component;
//! - `DISTDA_TRACE=mem,noc` — per-component filtering by name prefix
//!   (`mem` matches `mem.cache`, `mem.dram`, ...);
//! - unset or `0` — disabled.
//!
//! `DISTDA_TRACE_CAP` bounds the per-component event ring (default
//! `65536` events).
//!
//! ```
//! use distda_trace::{EventKind, Tracer};
//! let tracer = Tracer::enabled();
//! let sink = tracer.sink("machine");
//! sink.span(0, 100, EventKind::KernelPhase { phase: "offload" });
//! let json = distda_trace::chrome::export(&tracer);
//! assert!(json.contains("offload"));
//! ```

pub mod chrome;
pub mod csvout;
pub mod event;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod stats;
pub mod summary;

pub use event::{Event, EventKind, StallCause};
pub use metrics::{LogHist, Metrics, Series};
pub use ring::Ring;
pub use stats::{geomean, Report};

/// Base-clock tick count (6 GHz base tick in the Dist-DA machine).
///
/// Kept as a local alias so this crate sits below `distda-sim` in the
/// dependency order; `distda_sim::Tick` is the same `u64`.
pub type Tick = u64;

use std::sync::{Arc, Mutex};

/// Default per-component event-ring capacity.
pub const DEFAULT_EVENT_CAP: usize = 65_536;
/// Default per-series point capacity.
pub const DEFAULT_SERIES_CAP: usize = 16_384;

/// Which components are traced.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Filter {
    All,
    /// Component-name prefixes (`mem` matches `mem.dram`).
    Prefixes(Vec<String>),
}

impl Filter {
    fn matches(&self, component: &str) -> bool {
        match self {
            Filter::All => true,
            Filter::Prefixes(ps) => ps.iter().any(|p| {
                component == p
                    || (component.len() > p.len()
                        && component.starts_with(p.as_str())
                        && component.as_bytes()[p.len()] == b'.')
            }),
        }
    }
}

#[derive(Debug)]
struct SinkShared {
    name: String,
    track: u32,
    state: Mutex<SinkState>,
}

#[derive(Debug)]
struct SinkState {
    events: Ring<Event>,
    metrics: Metrics,
}

#[derive(Debug)]
struct TracerShared {
    filter: Filter,
    event_cap: usize,
    series_cap: usize,
    components: Mutex<Vec<Arc<SinkShared>>>,
}

/// Snapshot of one component's track, for exporters.
#[derive(Debug, Clone)]
pub struct ComponentDump {
    /// Component name (track label).
    pub name: String,
    /// Stable track id (registration order).
    pub track: u32,
    /// Events oldest-first.
    pub events: Vec<Event>,
    /// Events evicted from the ring.
    pub dropped: u64,
    /// The component's metrics.
    pub metrics: Metrics,
}

/// The tracing handle threaded through the machine. Cheap to clone;
/// disabled by default.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<TracerShared>>,
}

impl Tracer {
    /// A tracer that records nothing and costs nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A tracer recording every component with default capacities.
    pub fn enabled() -> Self {
        Self::with_filter_cap("all", DEFAULT_EVENT_CAP)
    }

    /// A tracer from a filter spec: `"all"`/`"1"` traces everything, a
    /// comma-separated list traces components whose name matches a listed
    /// prefix, `""`/`"0"` disables.
    pub fn with_filter(spec: &str) -> Self {
        Self::with_filter_cap(spec, DEFAULT_EVENT_CAP)
    }

    /// Like [`Tracer::with_filter`], with an explicit per-component
    /// event-ring capacity (clamped to at least 16).
    pub fn with_filter_cap(spec: &str, event_cap: usize) -> Self {
        let spec = spec.trim();
        if spec.is_empty() || spec == "0" {
            return Self::disabled();
        }
        let filter = if spec == "1" || spec.eq_ignore_ascii_case("all") {
            Filter::All
        } else {
            Filter::Prefixes(
                spec.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect(),
            )
        };
        Self {
            shared: Some(Arc::new(TracerShared {
                filter,
                event_cap: event_cap.max(16),
                series_cap: DEFAULT_SERIES_CAP,
                components: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this tracer records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Registers (or reuses) the component `name` and returns its sink.
    /// Returns a disabled sink when the tracer is off or the component is
    /// filtered out, so emission sites need no gating of their own.
    pub fn sink(&self, name: &str) -> TraceSink {
        let Some(shared) = &self.shared else {
            return TraceSink::default();
        };
        if !shared.filter.matches(name) {
            return TraceSink::default();
        }
        let mut comps = shared.components.lock().unwrap();
        if let Some(c) = comps.iter().find(|c| c.name == name) {
            return TraceSink {
                inner: Some(c.clone()),
            };
        }
        let c = Arc::new(SinkShared {
            name: name.to_string(),
            track: comps.len() as u32,
            state: Mutex::new(SinkState {
                events: Ring::new(shared.event_cap),
                metrics: Metrics::new(shared.series_cap),
            }),
        });
        comps.push(c.clone());
        TraceSink { inner: Some(c) }
    }

    /// Snapshots every registered component in track order.
    pub fn components(&self) -> Vec<ComponentDump> {
        let Some(shared) = &self.shared else {
            return Vec::new();
        };
        let comps = shared.components.lock().unwrap();
        comps
            .iter()
            .map(|c| {
                let st = c.state.lock().unwrap();
                ComponentDump {
                    name: c.name.clone(),
                    track: c.track,
                    events: st.events.to_vec(),
                    dropped: st.events.dropped(),
                    metrics: st.metrics.clone(),
                }
            })
            .collect()
    }

    /// Folds every component's counters and histogram summaries into one
    /// [`Report`], keys prefixed by component name.
    pub fn metrics_report(&self) -> Report {
        let mut out = Report::new();
        for c in self.components() {
            out.merge_prefixed(&c.name, &c.metrics.report());
        }
        out
    }
}

/// One component's emission handle. Default-constructed sinks are
/// disabled; every method early-outs on a disabled sink.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkShared>>,
}

impl TraceSink {
    /// Whether emissions on this sink are recorded. Call sites that must
    /// format names or compute values before emitting should gate on this.
    #[inline]
    pub fn on(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a completed span covering `[start, end]`.
    #[inline]
    pub fn span(&self, start: Tick, end: Tick, kind: EventKind) {
        if let Some(inner) = &self.inner {
            inner
                .state
                .lock()
                .unwrap()
                .events
                .push(Event { start, end, kind });
        }
    }

    /// Records an instantaneous event at `at`.
    #[inline]
    pub fn instant(&self, at: Tick, kind: EventKind) {
        self.span(at, at, kind);
    }

    /// Adds `n` to the counter `name`.
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.state.lock().unwrap().metrics.count(name, n);
        }
    }

    /// Records `v` into the log-bucketed histogram `name`.
    #[inline]
    pub fn observe(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.state.lock().unwrap().metrics.observe(name, v);
        }
    }

    /// Samples the time series `name` at `at` (change-sampled).
    #[inline]
    pub fn sample(&self, at: Tick, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.state.lock().unwrap().metrics.sample(name, at, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_hands_out_dead_sinks() {
        let t = Tracer::disabled();
        let s = t.sink("anything");
        assert!(!t.is_enabled());
        assert!(!s.on());
        s.instant(1, EventKind::MmioTransfer { words: 1 });
        assert!(t.components().is_empty());
    }

    #[test]
    fn filter_matches_exact_and_dotted_prefix() {
        let t = Tracer::with_filter("mem,noc");
        assert!(t.sink("mem").on());
        assert!(t.sink("mem.dram").on());
        assert!(t.sink("noc").on());
        assert!(!t.sink("machine").on());
        assert!(!t.sink("memx").on());
    }

    #[test]
    fn zero_and_empty_specs_disable() {
        assert!(!Tracer::with_filter("0").is_enabled());
        assert!(!Tracer::with_filter("").is_enabled());
        assert!(Tracer::with_filter("all").is_enabled());
        assert!(Tracer::with_filter("1").is_enabled());
    }

    #[test]
    fn sinks_share_a_component_by_name() {
        let t = Tracer::enabled();
        let a = t.sink("noc");
        let b = t.sink("noc");
        a.count("flits", 1);
        b.count("flits", 2);
        let comps = t.components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].metrics.counters["flits"], 3);
    }

    #[test]
    fn tracks_are_registration_ordered() {
        let t = Tracer::enabled();
        t.sink("b");
        t.sink("a");
        let comps = t.components();
        assert_eq!(comps[0].name, "b");
        assert_eq!(comps[0].track, 0);
        assert_eq!(comps[1].name, "a");
        assert_eq!(comps[1].track, 1);
    }

    #[test]
    fn metrics_report_prefixes_components() {
        let t = Tracer::enabled();
        t.sink("noc").count("flits", 4);
        t.sink("mem").observe("lat", 16);
        let r = t.metrics_report();
        assert_eq!(r.get("noc.flits"), Some(4.0));
        assert_eq!(r.get("mem.lat.count"), Some(1.0));
    }

    #[test]
    fn events_record_in_order() {
        let t = Tracer::enabled();
        let s = t.sink("machine");
        s.span(0, 10, EventKind::KernelPhase { phase: "offload" });
        s.instant(4, EventKind::MmioTransfer { words: 2 });
        let comps = t.components();
        assert_eq!(comps[0].events.len(), 2);
        assert_eq!(comps[0].events[0].duration(), 10);
        assert!(comps[0].events[1].is_instant());
    }
}
