//! The typed event taxonomy.
//!
//! Every record a component can emit is a variant of [`EventKind`], stamped
//! with base-tick times in an [`Event`]. Keeping the taxonomy closed (an
//! enum rather than free-form strings) means emission sites cannot drift
//! apart in naming, exporters can render stable track/category names, and
//! the determinism tests can compare traces structurally.
//!
//! Events may only be emitted on *observable-work* edges — edges the
//! machine's idle skip-ahead would never skip (a cache access, a packet
//! injection, a stall beginning or ending). That discipline is what makes
//! exported traces byte-identical with skip-ahead on or off.

use crate::Tick;

/// Why an accelerator engine stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Waiting for a line fill from the hierarchy.
    Mem,
    /// Waiting for channel credit (send) or data (receive).
    Chan,
    /// Waiting for outstanding writes to drop below the cap.
    WriteCap,
}

impl StallCause {
    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::Mem => "mem",
            StallCause::Chan => "chan",
            StallCause::WriteCap => "write_cap",
        }
    }
}

/// What happened. See the module docs for the emission discipline.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A top-level machine phase (`host-segment`, `offload`, `drain`).
    /// Exported as nested begin/end pairs; these spans are disjoint by
    /// construction, so summing them attributes every cycle of a run.
    KernelPhase {
        /// Phase label.
        phase: &'static str,
    },
    /// An offload plan was configured onto engines (`cp_config`).
    OffloadDispatch {
        /// Plan handle.
        plan: u32,
        /// Engines allocated.
        engines: u32,
        /// MMIO configuration words charged.
        config_words: u64,
    },
    /// Host-side MMIO transfer occupying the host (config, `cp_set_rf`,
    /// `cp_run`, `cp_load_rf`).
    MmioTransfer {
        /// Words moved.
        words: u64,
    },
    /// A host trace segment was loaded onto the out-of-order core.
    HostSegment {
        /// Dynamic ops in the segment.
        ops: u64,
    },
    /// A demand miss at some cache level.
    CacheMiss {
        /// 1 = L1, 2 = L2, 3 = NUCA cluster.
        level: u8,
        /// Core (levels 1-2) or cluster (level 3) index.
        unit: u16,
        /// Line address (byte address of the line).
        line: u64,
    },
    /// A DRAM access entered the channel queue.
    DramBurst {
        /// Line address.
        line: u64,
        /// Whether the access is a write.
        write: bool,
    },
    /// A packet was injected into the mesh.
    NocFlit {
        /// Traffic-class name.
        class: &'static str,
        /// Source node.
        src: u16,
        /// Destination node.
        dst: u16,
        /// Payload bytes.
        bytes: u32,
    },
    /// An engine sat blocked for the span's duration.
    EngineStall {
        /// What it waited on.
        cause: StallCause,
    },
    /// An engine completed one invocation (`cp_run` to done).
    EngineRun {
        /// Inner iterations retired by the invocation.
        iters: u64,
    },
}

impl EventKind {
    /// Stable category name (chrome `cat` field, CSV event column).
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::KernelPhase { .. } => "kernel_phase",
            EventKind::OffloadDispatch { .. } => "offload_dispatch",
            EventKind::MmioTransfer { .. } => "mmio",
            EventKind::HostSegment { .. } => "host_segment",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::DramBurst { .. } => "dram_burst",
            EventKind::NocFlit { .. } => "noc_flit",
            EventKind::EngineStall { .. } => "engine_stall",
            EventKind::EngineRun { .. } => "engine_run",
        }
    }

    /// Display name (chrome `name` field).
    pub fn display_name(&self) -> String {
        match self {
            EventKind::KernelPhase { phase } => (*phase).to_string(),
            EventKind::EngineStall { cause } => format!("stall:{}", cause.name()),
            EventKind::CacheMiss { level, .. } => format!("miss:L{level}"),
            EventKind::DramBurst { write, .. } => {
                if *write {
                    "dram:wr".to_string()
                } else {
                    "dram:rd".to_string()
                }
            }
            EventKind::NocFlit { class, .. } => format!("flit:{class}"),
            other => other.category().to_string(),
        }
    }

    /// Event arguments as sorted `(key, value)` pairs for exporters.
    pub fn args(&self) -> Vec<(&'static str, String)> {
        match self {
            EventKind::KernelPhase { phase } => vec![("phase", format!("\"{phase}\""))],
            EventKind::OffloadDispatch {
                plan,
                engines,
                config_words,
            } => vec![
                ("config_words", config_words.to_string()),
                ("engines", engines.to_string()),
                ("plan", plan.to_string()),
            ],
            EventKind::MmioTransfer { words } => vec![("words", words.to_string())],
            EventKind::HostSegment { ops } => vec![("ops", ops.to_string())],
            EventKind::CacheMiss { level, unit, line } => vec![
                ("level", level.to_string()),
                ("line", line.to_string()),
                ("unit", unit.to_string()),
            ],
            EventKind::DramBurst { line, write } => {
                vec![("line", line.to_string()), ("write", write.to_string())]
            }
            EventKind::NocFlit {
                class,
                src,
                dst,
                bytes,
            } => vec![
                ("bytes", bytes.to_string()),
                ("class", format!("\"{class}\"")),
                ("dst", dst.to_string()),
                ("src", src.to_string()),
            ],
            EventKind::EngineStall { cause } => {
                vec![("cause", format!("\"{}\"", cause.name()))]
            }
            EventKind::EngineRun { iters } => vec![("iters", iters.to_string())],
        }
    }
}

/// A cycle-stamped record: a span (`start < end`) or an instant
/// (`start == end`) on one component's track.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Base tick the event began.
    pub start: Tick,
    /// Base tick the event ended (equal to `start` for instants).
    pub end: Tick,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Duration in base ticks.
    pub fn duration(&self) -> Tick {
        self.end - self.start
    }

    /// Whether this is an instantaneous event.
    pub fn is_instant(&self) -> bool {
        self.start == self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_stable() {
        assert_eq!(
            EventKind::KernelPhase { phase: "offload" }.category(),
            "kernel_phase"
        );
        assert_eq!(
            EventKind::EngineStall {
                cause: StallCause::Chan
            }
            .display_name(),
            "stall:chan"
        );
    }

    #[test]
    fn args_are_key_sorted() {
        let k = EventKind::NocFlit {
            class: "AccData",
            src: 0,
            dst: 7,
            bytes: 64,
        };
        let keys: Vec<_> = k.args().into_iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn span_vs_instant() {
        let e = Event {
            start: 3,
            end: 9,
            kind: EventKind::MmioTransfer { words: 4 },
        };
        assert_eq!(e.duration(), 6);
        assert!(!e.is_instant());
    }
}
