//! The fleet observability CLI: self-profile a run, gate a benchmark
//! against a baseline, or export manifests as OpenMetrics.
//!
//! ```text
//! cargo run --release --bin obs -- profile --kernel pf --config Dist-DA-F
//! cargo run --release --bin obs -- gate --baseline ci/simspeed_smoke_baseline.json \
//!     --current results/BENCH_simspeed_smoke.json --manifests results/manifests/runs.jsonl
//! cargo run --release --bin obs -- export --manifests results/manifests/runs.jsonl \
//!     --out results/manifests.om
//! ```
//!
//! Subcommands:
//!
//! - `profile [--kernel NAME]... [--config LABEL] [--scale tiny|eval]
//!   [--out DIR]` — run each workload with the scheduler self-profiler
//!   attached, print the "perf top"-style table and write the OpenMetrics
//!   rendering of the profile + run metrics to `<out>/profile_<k>_<c>.om`.
//! - `gate --baseline PATH [--current PATH] [--manifests PATH]
//!   [--max-tps-drop F] [--allow-runs-drift]` — diff a current
//!   `BENCH_simspeed.json` against a committed baseline; exit nonzero on
//!   regression (deterministic metrics exact, throughput by ratio).
//! - `export [--manifests PATH] [--out PATH]` — fold a manifest JSONL
//!   stream into the metrics registry and write OpenMetrics text.

use distda_obs::manifest::{self, config_hash};
use distda_obs::{gate, Registry, Thresholds};
use distda_system::{ConfigKind, RunConfig};
use distda_workloads::{suite, Scale};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    cmd: String,
    kernels: Vec<String>,
    config: String,
    scale: String,
    out: PathBuf,
    baseline: Option<PathBuf>,
    current: PathBuf,
    manifests: Option<PathBuf>,
    max_tps_drop: f64,
    allow_runs_drift: bool,
}

const USAGE: &str = "usage: obs profile [--kernel NAME]... [--config LABEL] [--scale tiny|eval] [--out DIR]\n       obs gate --baseline PATH [--current PATH] [--manifests PATH] [--max-tps-drop F] [--allow-runs-drift]\n       obs export [--manifests PATH] [--out PATH]";

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let cmd = it.next().ok_or(USAGE)?;
    let mut args = Args {
        cmd,
        kernels: Vec::new(),
        config: "Dist-DA-F".to_string(),
        scale: "tiny".to_string(),
        out: PathBuf::from("results"),
        baseline: None,
        current: PathBuf::from("BENCH_simspeed.json"),
        manifests: None,
        max_tps_drop: 0.9,
        allow_runs_drift: false,
    };
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--kernel" => args.kernels.push(value("--kernel")?),
            "--config" => args.config = value("--config")?,
            "--scale" => args.scale = value("--scale")?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--current" => args.current = PathBuf::from(value("--current")?),
            "--manifests" => args.manifests = Some(PathBuf::from(value("--manifests")?)),
            "--max-tps-drop" => {
                args.max_tps_drop = value("--max-tps-drop")?
                    .parse()
                    .map_err(|e| format!("--max-tps-drop: {e}"))?;
            }
            "--allow-runs-drift" => args.allow_runs_drift = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.kernels.is_empty() {
        args.kernels.push("pf".to_string());
    }
    Ok(args)
}

fn config_by_label(label: &str) -> Option<RunConfig> {
    ConfigKind::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(label))
        .map(RunConfig::named)
}

fn slug(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

fn cmd_profile(args: &Args) -> Result<u32, String> {
    let scale = match args.scale.as_str() {
        "tiny" => Scale::tiny(),
        "eval" => Scale::eval(),
        other => return Err(format!("unknown scale: {other} (expected tiny or eval)")),
    };
    let cfg = config_by_label(&args.config).ok_or_else(|| {
        format!(
            "unknown config: {} (expected one of {})",
            args.config,
            ConfigKind::ALL.map(|k| k.label()).join(", ")
        )
    })?;
    let workloads = suite(&scale);
    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;

    let mut failures = 0u32;
    for name in &args.kernels {
        let Some(w) = workloads.iter().find(|w| &w.name == name) else {
            eprintln!(
                "unknown kernel: {name} (available: {})",
                workloads
                    .iter()
                    .map(|w| w.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            failures += 1;
            continue;
        };
        let prof = distda_sim::Profiler::enabled();
        let t0 = std::time::Instant::now();
        let r = match w.try_simulate_profiled(&cfg, &prof) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name} / {}: {e}", cfg.kind.label());
                failures += 1;
                continue;
            }
        };
        let host_secs = t0.elapsed().as_secs_f64();
        let snap = prof.snapshot_at(r.ticks).expect("profiler was enabled");

        println!(
            "=== {} / {} — {} ticks in {host_secs:.3}s host, validated={} ===",
            r.kernel, r.config, r.ticks, r.validated
        );
        print!("{}", distda_sim::profile::render_table(&snap));

        let mut reg = Registry::new();
        reg.ingest_run(&r);
        reg.ingest_profile(&[("kernel", &r.kernel), ("config", &r.config)], &snap);
        let om_path = args.out.join(format!(
            "profile_{}_{}.om",
            slug(&r.kernel),
            slug(&r.config)
        ));
        std::fs::write(&om_path, reg.openmetrics())
            .map_err(|e| format!("cannot write {}: {e}", om_path.display()))?;
        println!("openmetrics: {}", om_path.display());

        let rec = manifest::ManifestRecord::capture(
            &r.kernel,
            &r.config,
            config_hash(&cfg),
            r.ticks,
            host_secs,
            r.validated,
        )
        .with_bottleneck(&r.report);
        if let Err(e) = rec.append() {
            eprintln!("warning: cannot append manifest: {e}");
        }
        println!();
    }
    Ok(failures)
}

fn cmd_gate(args: &Args) -> Result<u32, String> {
    let baseline_path = args
        .baseline
        .as_ref()
        .ok_or("gate requires --baseline PATH")?;
    let read = |p: &PathBuf| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
    };
    let th = Thresholds {
        max_tps_drop: args.max_tps_drop,
        require_runs_match: !args.allow_runs_drift,
        require_ticks_match: !args.allow_runs_drift,
    };
    let mut rep = gate::gate_simspeed(&read(baseline_path)?, &read(&args.current)?, &th)?;
    if let Some(manifests) = &args.manifests {
        let man = gate::check_manifests_at(Some(manifests), &read(manifests)?)?;
        rep.checks.extend(man.checks);
    }
    print!("{}", rep.render());
    Ok(u32::from(rep.regressed()))
}

fn cmd_export(args: &Args) -> Result<u32, String> {
    let manifests = args
        .manifests
        .clone()
        .unwrap_or_else(|| PathBuf::from(manifest::DEFAULT_MANIFEST_PATH));
    let stream = std::fs::read_to_string(&manifests)
        .map_err(|e| format!("cannot read {}: {e}", manifests.display()))?;
    let records = manifest::parse_manifests(&stream)?;
    let mut reg = Registry::new();
    for r in &records {
        let labels: &[(&str, &str)] = &[("kernel", &r.kernel), ("config", &r.config)];
        reg.counter_add("distda_manifest_runs", labels, 1);
        reg.counter_add("distda_manifest_ticks", labels, r.ticks);
        reg.hist_observe(
            "distda_manifest_host_ms",
            labels,
            (r.host_secs * 1e3) as u64,
        );
        if !r.validated {
            reg.counter_add("distda_manifest_unvalidated", labels, 1);
        }
    }
    let out = if args.out == Path::new("results") {
        PathBuf::from("results/manifests.om")
    } else {
        args.out.clone()
    };
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out, reg.openmetrics())
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!("{} manifest records -> {}", records.len(), out.display());
    Ok(0)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match args.cmd.as_str() {
        "profile" => cmd_profile(&args),
        "gate" => cmd_gate(&args),
        "export" => cmd_export(&args),
        other => Err(format!("unknown subcommand: {other}\n{USAGE}")),
    };
    match outcome {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
