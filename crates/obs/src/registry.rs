//! A label-aware metrics registry with an OpenMetrics text exporter.
//!
//! The registry is the convergence point of every measurement source in
//! the workspace: simulated statistics from
//! [`RunResult`] and trace
//! [`Report`]s, host-side numbers from the
//! scheduler self-profiler, and per-component counters/histograms from
//! trace dumps. All of them land in three metric families — counters,
//! gauges and log-bucketed histograms — keyed by a metric name plus an
//! ordered label set, and render deterministically to the
//! [OpenMetrics](https://prometheus.io/docs/specs/om/open_metrics_spec/)
//! text format via [`Registry::openmetrics`].
//!
//! Everything is `BTreeMap`-backed, so the export is byte-stable for a
//! given set of observations regardless of insertion order — the property
//! the regression gate and the CI artifact diffs rely on.

use distda_sim::ProfileSnapshot;
use distda_system::RunResult;
use distda_trace::metrics::{bucket_upper, LogHist};
use distda_trace::stats::Report;
use distda_trace::ComponentDump;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An ordered, owned label set (`key=value` pairs, sorted by key).
type Labels = Vec<(String, String)>;

/// Per-family storage: label set -> value, inside name -> series.
type Family<T> = BTreeMap<String, BTreeMap<Labels, T>>;

/// The fleet metrics registry. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Family<u64>,
    gauges: Family<f64>,
    hists: Family<LogHist>,
}

/// Sanitizes a metric or label name to the OpenMetrics charset
/// (`[a-zA-Z0-9_:]`, not starting with a digit).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label *value* per the OpenMetrics text format
/// (backslash, double quote and line feed).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn own_labels(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|(k, val)| (sanitize_name(k), (*val).to_string()))
        .collect();
    v.sort();
    v
}

fn render_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Formats an f64 the OpenMetrics way: integral values without a decimal
/// point are fine, but NaN/infinities get their spec spellings.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name{labels}`.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], n: u64) {
        *self
            .counters
            .entry(sanitize_name(name))
            .or_default()
            .entry(own_labels(labels))
            .or_insert(0) += n;
    }

    /// Sets the gauge `name{labels}` to `v` (last write wins).
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauges
            .entry(sanitize_name(name))
            .or_default()
            .insert(own_labels(labels), v);
    }

    /// Records one observation into the histogram `name{labels}`.
    pub fn hist_observe(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.hists
            .entry(sanitize_name(name))
            .or_default()
            .entry(own_labels(labels))
            .or_default()
            .observe(v);
    }

    /// Folds a whole [`LogHist`] into the histogram `name{labels}`.
    pub fn hist_merge(&mut self, name: &str, labels: &[(&str, &str)], h: &LogHist) {
        self.hists
            .entry(sanitize_name(name))
            .or_default()
            .entry(own_labels(labels))
            .or_default()
            .merge(h);
    }

    /// Ingests the headline numbers of one simulated run, labelled by
    /// kernel and configuration.
    pub fn ingest_run(&mut self, r: &RunResult) {
        let labels: &[(&str, &str)] = &[("kernel", &r.kernel), ("config", &r.config)];
        self.counter_add("distda_simulated_ticks", labels, r.ticks);
        self.counter_add("distda_data_moved_bytes", labels, r.data_moved_bytes);
        self.counter_add("distda_cache_accesses", labels, r.cache_accesses);
        self.counter_add("distda_total_ops", labels, r.total_ops);
        self.gauge_set("distda_simulated_ns", labels, r.ns);
        self.gauge_set("distda_energy_pj", labels, r.energy_pj());
        self.gauge_set(
            "distda_validated",
            labels,
            if r.validated { 1.0 } else { 0.0 },
        );
        // Multi-tenant runs carry per-tenant attribution in the report
        // (`tenant.N.<what>` keys); re-expose them as series labelled by
        // tenant id so fleet dashboards can watch fairness per cell. The
        // per-tenant series partition the whole-machine totals — see the
        // `tenant_series_partition_machine_totals` invariant test.
        let tenants = r.report.get("tenancy.tenants").unwrap_or(0.0) as usize;
        if tenants > 1 {
            self.gauge_set(
                "distda_tenancy_fairness",
                labels,
                r.report.get("tenancy.fairness").unwrap_or(0.0),
            );
            self.gauge_set("distda_tenancy_tenants", labels, tenants as f64);
            for t in 0..tenants {
                let tid = t.to_string();
                let mut tl: Vec<(&str, &str)> = labels.to_vec();
                tl.push(("tenant", &tid));
                for what in [
                    "ticks",
                    "iterations",
                    "busy_cycles",
                    "stall_mem",
                    "stall_chan",
                    "intra_bytes",
                    "da_bytes",
                    "aa_bytes",
                    "hop_bytes",
                ] {
                    if let Some(v) = r.report.get(&format!("tenant.{t}.{what}")) {
                        self.counter_add(&format!("distda_tenant_{what}"), &tl, v as u64);
                    }
                }
            }
        }
        // Per-port handshake series from the `port.<name>.<what>` report
        // keys: pushed/stall counters plus a high-water gauge, labelled
        // by port so dashboards can localize back-pressure to one
        // boundary. Channel-port stall series sum to `accel.stall_chan`
        // and ACP response-port stalls to `accel.stall_mem` — see the
        // `port_series_sum_to_machine_stalls` invariant test.
        for (key, v) in r.report.iter() {
            let Some(rest) = key.strip_prefix("port.") else {
                continue;
            };
            let Some((port, what)) = rest.rsplit_once('.') else {
                continue;
            };
            let mut pl: Vec<(&str, &str)> = labels.to_vec();
            pl.push(("port", port));
            match what {
                "pushed" => self.counter_add("distda_port_pushed", &pl, v as u64),
                "stalls" => self.counter_add("distda_port_stall_cycles", &pl, v as u64),
                "high_water" => self.gauge_set("distda_port_high_water", &pl, v),
                _ => {}
            }
        }
        // Causal-attribution series from explain-enabled runs
        // (`explain.*` report keys): the headline verdict as gauges plus
        // per-node blamed/busy/idle tick counters labelled by component,
        // so dashboards carry *why* a cell is slow, not just how slow.
        if let Some(stall) = r.report.get("explain.stall_ticks") {
            self.gauge_set("distda_explain_stall_ticks", labels, stall);
            self.gauge_set(
                "distda_explain_top_share",
                labels,
                r.report.get("explain.top.share").unwrap_or(0.0),
            );
            for (key, v) in r.report.iter() {
                let Some(rest) = key.strip_prefix("explain.node.") else {
                    continue;
                };
                let Some((node, what)) = rest.rsplit_once('.') else {
                    continue;
                };
                let mut nl: Vec<(&str, &str)> = labels.to_vec();
                nl.push(("component", node));
                match what {
                    "blamed" => self.counter_add("distda_explain_blamed_ticks", &nl, v as u64),
                    "busy" => self.counter_add("distda_explain_busy_ticks", &nl, v as u64),
                    "idle" => self.counter_add("distda_explain_idle_ticks", &nl, v as u64),
                    _ => {}
                }
            }
        }
    }

    /// Ingests a statistics [`Report`] as gauges named
    /// `<prefix>_<sanitized key>{labels}`.
    pub fn ingest_report(&mut self, prefix: &str, labels: &[(&str, &str)], report: &Report) {
        for (key, value) in report.iter() {
            self.gauge_set(&format!("{prefix}_{}", sanitize_name(key)), labels, value);
        }
    }

    /// Ingests a scheduler self-profile: per-component host nanoseconds,
    /// active ticks and wakes, plus scheduler-level tick accounting.
    pub fn ingest_profile(&mut self, labels: &[(&str, &str)], snap: &ProfileSnapshot) {
        for c in &snap.comps {
            let mut with_comp: Vec<(&str, &str)> = labels.to_vec();
            with_comp.push(("component", &c.name));
            self.counter_add("distda_prof_host_ns", &with_comp, c.host_ns);
            self.counter_add("distda_prof_active_ticks", &with_comp, c.active_ticks);
            self.counter_add("distda_prof_wakes", &with_comp, c.wakes);
        }
        self.counter_add("distda_prof_ticks_executed", labels, snap.ticks_executed);
        self.counter_add("distda_prof_ticks_skipped", labels, snap.ticks_skipped);
        self.counter_add("distda_prof_skip_spans", labels, snap.skip_spans);
        self.counter_add("distda_prof_probes", labels, snap.probes);
        self.counter_add("distda_prof_probe_ns", labels, snap.probe_ns);
    }

    /// Ingests trace dumps: every per-component counter and histogram from
    /// the tracer's metrics, labelled by component name.
    pub fn ingest_trace_components(&mut self, labels: &[(&str, &str)], comps: &[ComponentDump]) {
        for d in comps {
            let mut with_comp: Vec<(&str, &str)> = labels.to_vec();
            with_comp.push(("component", &d.name));
            for (name, &n) in &d.metrics.counters {
                self.counter_add(
                    &format!("distda_trace_{}", sanitize_name(name)),
                    &with_comp,
                    n,
                );
            }
            for (name, h) in &d.metrics.hists {
                self.hist_merge(
                    &format!("distda_trace_{}", sanitize_name(name)),
                    &with_comp,
                    h,
                );
            }
        }
    }

    /// Renders the registry in the OpenMetrics text format: families
    /// sorted by name, counters with the `_total` suffix, histograms as
    /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`, and the
    /// mandatory `# EOF` terminator.
    pub fn openmetrics(&self) -> String {
        let mut out = String::new();
        for (name, series) in &self.counters {
            writeln!(out, "# TYPE {name} counter").unwrap();
            for (labels, v) in series {
                writeln!(out, "{name}_total{} {v}", render_labels(labels, None)).unwrap();
            }
        }
        for (name, series) in &self.gauges {
            writeln!(out, "# TYPE {name} gauge").unwrap();
            for (labels, v) in series {
                writeln!(out, "{name}{} {}", render_labels(labels, None), fmt_f64(*v)).unwrap();
            }
        }
        for (name, series) in &self.hists {
            writeln!(out, "# TYPE {name} histogram").unwrap();
            for (labels, h) in series {
                let mut cum = 0u64;
                for (i, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    cum += c;
                    let le = if bucket_upper(i) == u64::MAX {
                        "+Inf".to_string()
                    } else {
                        bucket_upper(i).to_string()
                    };
                    writeln!(
                        out,
                        "{name}_bucket{} {cum}",
                        render_labels(labels, Some(("le", &le)))
                    )
                    .unwrap();
                }
                writeln!(
                    out,
                    "{name}_bucket{} {cum}",
                    render_labels(labels, Some(("le", "+Inf")))
                )
                .unwrap();
                writeln!(out, "{name}_sum{} {}", render_labels(labels, None), h.sum).unwrap();
                writeln!(
                    out,
                    "{name}_count{} {}",
                    render_labels(labels, None),
                    h.count
                )
                .unwrap();
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("mem.dram/reads"), "mem_dram_reads");
        assert_eq!(sanitize_name("2fast"), "_2fast");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn counters_render_with_total_suffix_and_sorted_labels() {
        let mut r = Registry::new();
        r.counter_add("runs", &[("config", "OoO")], 2);
        r.counter_add("runs", &[("config", "Dist-DA")], 1);
        r.counter_add("runs", &[("config", "OoO")], 3);
        let om = r.openmetrics();
        let dist = om.find("runs_total{config=\"Dist-DA\"} 1").unwrap();
        let ooo = om.find("runs_total{config=\"OoO\"} 5").unwrap();
        assert!(dist < ooo, "label sets must render sorted:\n{om}");
        assert!(om.contains("# TYPE runs counter"));
        assert!(om.ends_with("# EOF\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let mut r = Registry::new();
        for v in [1u64, 1, 3, 100] {
            r.hist_observe("lat", &[], v);
        }
        let om = r.openmetrics();
        assert!(om.contains("# TYPE lat histogram"));
        assert!(om.contains("lat_bucket{le=\"1\"} 2"));
        assert!(om.contains("lat_bucket{le=\"3\"} 3"));
        assert!(om.contains("lat_bucket{le=\"127\"} 4"));
        assert!(om.contains("lat_bucket{le=\"+Inf\"} 4"));
        assert!(om.contains("lat_sum 105"));
        assert!(om.contains("lat_count 4"));
    }

    #[test]
    fn export_is_insertion_order_independent() {
        let mut a = Registry::new();
        a.counter_add("x", &[("k", "1")], 1);
        a.gauge_set("g", &[], 2.5);
        a.counter_add("w", &[], 7);
        let mut b = Registry::new();
        b.counter_add("w", &[], 7);
        b.gauge_set("g", &[], 2.5);
        b.counter_add("x", &[("k", "1")], 1);
        assert_eq!(a.openmetrics(), b.openmetrics());
    }
}
