//! # distda-obs
//!
//! Fleet-level observability for the Dist-DA reproduction: everything a
//! *fleet* of simulation runs needs to be watched, compared and gated,
//! built on the measurement layers below it (the scheduler self-profiler
//! in `distda-sim`, the tracer in `distda-trace`).
//!
//! Four pillars:
//!
//! - [`registry`] — a label-aware metrics registry (counters, gauges,
//!   log-bucketed histograms) with an OpenMetrics text exporter, populated
//!   from [`RunResult`](distda_system::RunResult)s, trace dumps and
//!   self-profiler snapshots.
//! - [`manifest`] — JSONL run manifests: one self-describing record per
//!   simulated run (config hash, git revision, environment knobs, ticks,
//!   wall-clock, validation status), appended under `results/manifests/`.
//! - [`progress`] — a live sweep-progress reporter: a channel-fed thread
//!   that renders a one-line stderr status and streams machine-readable
//!   JSONL events, gated by `DISTDA_PROGRESS`.
//! - [`gate`] — a perf-regression gate diffing the current
//!   `BENCH_simspeed.json` and manifests against a committed baseline with
//!   per-metric thresholds; nonzero exit on regression for CI.
//!
//! The invariant the whole crate is built around: observation never
//! perturbs simulation. Every pillar consumes data the simulator already
//! produced (or host-clock measurements that cannot feed back into
//! scheduler decisions), so simulated results are bit-identical with
//! observability on or off.

pub mod gate;
pub mod manifest;
pub mod progress;
pub mod registry;

pub use gate::{gate_simspeed, GateReport, Thresholds};
pub use manifest::ManifestRecord;
pub use progress::{Progress, ProgressConfig};
pub use registry::Registry;
