//! The perf-regression gate: diff a current `BENCH_simspeed.json` (and
//! its manifests) against a committed baseline, with per-metric
//! thresholds, and fail loudly.
//!
//! Two classes of metric, two policies:
//!
//! - **Deterministic metrics** (`runs`, `simulated_ticks`) are identical
//!   on every machine for a given source revision — the simulator is
//!   bit-deterministic. They must match the baseline *exactly*; a drift
//!   means the simulation itself changed, which is either an intentional
//!   model change (update the baseline in the same PR) or a bug.
//! - **Host-speed metrics** (`simulated_ticks_per_sec`) are noisy — CI
//!   runners differ run to run — so they gate on a lenient ratio
//!   threshold ([`Thresholds::max_tps_drop`], default 0.9: fail only when
//!   current throughput falls below 90% of baseline... configure per
//!   call; CI uses wider margins than a dedicated perf box would).
//!
//! Manifests add a third check: every run in the stream must have
//! `validated == true`.

use crate::manifest::ManifestRecord;
use distda_trace::json;

/// Gate thresholds. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Fail when `current_tps < max_tps_drop * baseline_tps`.
    pub max_tps_drop: f64,
    /// Require the `runs` count to match the baseline exactly.
    pub require_runs_match: bool,
    /// Require `simulated_ticks` to match the baseline exactly.
    pub require_ticks_match: bool,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            max_tps_drop: 0.9,
            require_runs_match: true,
            require_ticks_match: true,
        }
    }
}

/// One gate check's outcome.
#[derive(Debug, Clone)]
pub struct Check {
    /// Metric name.
    pub metric: String,
    /// Human-readable comparison.
    pub detail: String,
    /// Whether the check passed.
    pub ok: bool,
}

/// The gate's verdict: every check, pass or fail.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Individual checks in evaluation order.
    pub checks: Vec<Check>,
}

impl GateReport {
    fn push(&mut self, metric: &str, ok: bool, detail: String) {
        self.checks.push(Check {
            metric: metric.to_string(),
            detail,
            ok,
        });
    }

    /// Whether any check failed.
    pub fn regressed(&self) -> bool {
        self.checks.iter().any(|c| !c.ok)
    }

    /// Renders the verdict as a table, one check per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.checks {
            writeln!(
                out,
                "{} {:<28} {}",
                if c.ok { "PASS" } else { "FAIL" },
                c.metric,
                c.detail
            )
            .unwrap();
        }
        writeln!(
            out,
            "gate: {}",
            if self.regressed() {
                "REGRESSED"
            } else {
                "clean"
            }
        )
        .unwrap();
        out
    }
}

fn num(v: &json::Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(json::Value::as_num)
        .ok_or_else(|| format!("simspeed JSON missing numeric field `{key}`"))
}

/// Gates a current `BENCH_simspeed.json` document against a baseline one.
///
/// # Errors
///
/// Returns a message when either document fails to parse or lacks a
/// required field — a malformed input is an infrastructure failure, not a
/// regression verdict.
pub fn gate_simspeed(baseline: &str, current: &str, th: &Thresholds) -> Result<GateReport, String> {
    let base = json::parse(baseline).map_err(|e| format!("baseline: {e:?}"))?;
    let cur = json::parse(current).map_err(|e| format!("current: {e:?}"))?;
    let mut rep = GateReport::default();

    if th.require_runs_match {
        let (b, c) = (num(&base, "runs")?, num(&cur, "runs")?);
        rep.push(
            "runs",
            b == c,
            format!("baseline {b}, current {c} (exact match required)"),
        );
    }
    if th.require_ticks_match {
        let (b, c) = (
            num(&base, "simulated_ticks")?,
            num(&cur, "simulated_ticks")?,
        );
        rep.push(
            "simulated_ticks",
            b == c,
            format!("baseline {b}, current {c} (deterministic, exact match required)"),
        );
    }
    let (b_tps, c_tps) = (
        num(&base, "simulated_ticks_per_sec")?,
        num(&cur, "simulated_ticks_per_sec")?,
    );
    let floor = th.max_tps_drop * b_tps;
    rep.push(
        "simulated_ticks_per_sec",
        c_tps >= floor,
        format!(
            "baseline {b_tps:.0}, current {c_tps:.0}, floor {floor:.0} ({}% of baseline)",
            (th.max_tps_drop * 100.0).round()
        ),
    );
    Ok(rep)
}

/// Gates a manifest JSONL stream: every run must be validated.
///
/// # Errors
///
/// Returns a message when the stream fails to parse.
pub fn check_manifests(stream: &str) -> Result<GateReport, String> {
    check_manifests_at(None, stream)
}

/// [`check_manifests`], citing the stream's file path (and the offending
/// line number) in every failure detail, so a mismatch in a multi-file CI
/// run points straight at the manifest to open — not just a config hash.
///
/// # Errors
///
/// Returns a message (prefixed with the path, when given) when the stream
/// fails to parse.
pub fn check_manifests_at(
    source: Option<&std::path::Path>,
    stream: &str,
) -> Result<GateReport, String> {
    let cite = |line: usize| match source {
        Some(p) => format!(" [{}:{line}]", p.display()),
        None => String::new(),
    };
    let records: Vec<(usize, ManifestRecord)> = stream
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            ManifestRecord::parse_jsonl(l)
                .map(|r| (i + 1, r))
                .map_err(|e| match source {
                    Some(p) => format!("{}:{}: {e}", p.display(), i + 1),
                    None => format!("line {}: {e}", i + 1),
                })
        })
        .collect::<Result<_, _>>()?;
    let mut rep = GateReport::default();
    let bad: Vec<String> = records
        .iter()
        .filter(|(_, r)| !r.validated)
        .map(|(line, r)| format!("{} under {}{}", r.kernel, r.config, cite(*line)))
        .collect();
    rep.push(
        "manifests_validated",
        bad.is_empty(),
        if bad.is_empty() {
            format!("{} runs, all validated", records.len())
        } else {
            format!(
                "{} of {} runs NOT validated: {}",
                bad.len(),
                records.len(),
                bad.join(", ")
            )
        },
    );
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simspeed(runs: u64, ticks: u64, tps: f64) -> String {
        format!(
            concat!(
                "{{\"threads\": 8, \"runs\": {}, \"wall_secs\": 1.0,",
                " \"sim_secs_sum\": 1.0, \"sims_per_sec\": 1.0,",
                " \"simulated_ticks\": {}, \"simulated_ticks_per_sec\": {}}}"
            ),
            runs, ticks, tps
        )
    }

    #[test]
    fn identical_documents_pass() {
        let doc = simspeed(216, 2_013_124_321, 9_815_164.5);
        let rep = gate_simspeed(&doc, &doc, &Thresholds::default()).unwrap();
        assert!(!rep.regressed(), "{}", rep.render());
    }

    #[test]
    fn twenty_percent_throughput_drop_fails_strict_threshold() {
        let base = simspeed(216, 2_013_124_321, 10_000_000.0);
        let cur = simspeed(216, 2_013_124_321, 8_000_000.0);
        let rep = gate_simspeed(
            &base,
            &cur,
            &Thresholds {
                max_tps_drop: 0.9,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rep.regressed(), "{}", rep.render());
        // ... but survives a very lenient CI threshold.
        let rep = gate_simspeed(
            &base,
            &cur,
            &Thresholds {
                max_tps_drop: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!rep.regressed(), "{}", rep.render());
    }

    #[test]
    fn tick_drift_fails_regardless_of_throughput() {
        let base = simspeed(216, 100, 1.0);
        let cur = simspeed(216, 101, 1.0);
        let rep = gate_simspeed(&base, &cur, &Thresholds::default()).unwrap();
        assert!(rep.regressed(), "{}", rep.render());
        let fail = rep.checks.iter().find(|c| !c.ok).unwrap();
        assert_eq!(fail.metric, "simulated_ticks");
    }

    #[test]
    fn malformed_input_is_an_error_not_a_verdict() {
        assert!(gate_simspeed("{", "{}", &Thresholds::default()).is_err());
        assert!(gate_simspeed("{}", "{}", &Thresholds::default()).is_err());
    }

    #[test]
    fn manifests_gate_on_validation() {
        let ok = ManifestRecord::capture("pf", "OoO", "fnv1a:0".into(), 10, 0.1, true);
        let bad = ManifestRecord::capture("nw", "OoO", "fnv1a:0".into(), 10, 0.1, false);
        let stream = format!("{}\n{}\n", ok.render_jsonl(), bad.render_jsonl());
        let rep = check_manifests(&stream).unwrap();
        assert!(rep.regressed());
        assert!(rep.render().contains("nw under OoO"), "{}", rep.render());
        let rep = check_manifests(&format!("{}\n", ok.render_jsonl())).unwrap();
        assert!(!rep.regressed());
    }

    #[test]
    fn manifest_failures_cite_the_offending_path_and_line() {
        use std::path::Path;
        let ok = ManifestRecord::capture("pf", "OoO", "fnv1a:0".into(), 10, 0.1, true);
        let bad = ManifestRecord::capture("nw", "OoO", "fnv1a:0".into(), 10, 0.1, false);
        let stream = format!("{}\n{}\n", ok.render_jsonl(), bad.render_jsonl());
        let path = Path::new("results/manifests/runs.jsonl");
        let rep = check_manifests_at(Some(path), &stream).unwrap();
        assert!(rep.regressed());
        let rendered = rep.render();
        assert!(
            rendered.contains("nw under OoO [results/manifests/runs.jsonl:2]"),
            "{rendered}"
        );
        // Parse errors cite the path too.
        let err = check_manifests_at(Some(path), "not json\n").unwrap_err();
        assert!(err.starts_with("results/manifests/runs.jsonl:1:"), "{err}");
    }
}
