//! JSONL run manifests: one self-describing record per simulated run.
//!
//! A manifest line answers, months later, "what exactly produced this
//! number": the kernel and configuration label, a structural hash of the
//! full [`RunConfig`], the git revision of the
//! working tree, the UTC timestamp, the environment knobs in force
//! (thread count, skip-ahead, sanitizer, strict validation), the
//! simulated tick count, the host wall-clock and the validation verdict.
//!
//! Records append to `results/manifests/runs.jsonl` — one JSON object per
//! line, so `grep`/`jq` and the [regression gate](crate::gate) can stream
//! them without a real JSON-document parser. Parsing reuses the
//! workspace's hand-rolled [`distda_trace::json`].

use distda_system::RunConfig;
use distda_trace::json;
use std::path::{Path, PathBuf};

/// Default manifest stream, relative to the working directory.
pub const DEFAULT_MANIFEST_PATH: &str = "results/manifests/runs.jsonl";

/// One run's manifest record. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestRecord {
    /// Kernel name.
    pub kernel: String,
    /// Configuration label.
    pub config: String,
    /// FNV-1a hash of the full `RunConfig` (structural identity).
    pub config_hash: String,
    /// Simulated base ticks.
    pub ticks: u64,
    /// Host wall-clock seconds for the run.
    pub host_secs: f64,
    /// Whether the final memory image matched the reference interpreter.
    pub validated: bool,
    /// Git revision of the working tree (`unknown` outside a checkout).
    pub git_rev: String,
    /// UTC timestamp, `YYYY-MM-DDTHH:MM:SSZ`.
    pub date_utc: String,
    /// Sweep worker count in force (0 = autodetect).
    pub threads: u64,
    /// `DISTDA_SKIP` policy at run time.
    pub skip: bool,
    /// `DISTDA_SANITIZE` policy at run time.
    pub sanitize: bool,
    /// `DISTDA_VALIDATE` policy at run time.
    pub validate: bool,
    /// Every `DISTDA_*` environment knob in force, verbatim and sorted by
    /// name. Values are arbitrary strings — addresses, paths, `key=value`
    /// lists — so they may contain `=` or whitespace; the JSON encoding
    /// preserves them exactly. Manifests written before this field was
    /// added parse with an empty list.
    pub env: Vec<(String, String)>,
    /// The explain verdict when the run carried causal attribution: the
    /// most-blamed component and its share of all engine stall ticks.
    /// `None` on runs without `DISTDA_EXPLAIN`; manifests written before
    /// this field existed parse as `None`.
    pub bottleneck: Option<(String, f64)>,
}

/// Snapshots every `DISTDA_*` environment variable, sorted by name.
pub fn capture_env() -> Vec<(String, String)> {
    let mut knobs: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("DISTDA_"))
        .collect();
    knobs.sort();
    knobs
}

/// FNV-1a hash of a [`RunConfig`]'s structural identity, rendered
/// `fnv1a:<16 hex digits>`. Stable for a given config across runs and
/// machines (it hashes the `Debug` rendering, which is pure data).
pub fn config_hash(cfg: &RunConfig) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv1a:{h:016x}")
}

/// The git revision of the repository containing `start` (or any
/// ancestor directory), read straight from `.git/HEAD` without spawning a
/// process. Returns `"unknown"` outside a checkout.
pub fn git_rev_from(start: &Path) -> String {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let head = d.join(".git/HEAD");
        if let Ok(contents) = std::fs::read_to_string(&head) {
            let contents = contents.trim();
            if let Some(reference) = contents.strip_prefix("ref: ") {
                if let Ok(rev) = std::fs::read_to_string(d.join(".git").join(reference)) {
                    return rev.trim().to_string();
                }
                // Packed refs: scan .git/packed-refs for the ref name.
                if let Ok(packed) = std::fs::read_to_string(d.join(".git/packed-refs")) {
                    for line in packed.lines() {
                        if let Some((rev, name)) = line.split_once(' ') {
                            if name.trim() == reference {
                                return rev.trim().to_string();
                            }
                        }
                    }
                }
                return "unknown".to_string();
            }
            return contents.to_string(); // detached HEAD: the rev itself
        }
        dir = d.parent();
    }
    "unknown".to_string()
}

/// [`git_rev_from`] starting at the current working directory.
pub fn git_rev() -> String {
    std::env::current_dir()
        .map(|d| git_rev_from(&d))
        .unwrap_or_else(|_| "unknown".to_string())
}

/// The current UTC time as `YYYY-MM-DDTHH:MM:SSZ`, derived from
/// `SystemTime` with the standard civil-from-days algorithm (no external
/// time crate).
pub fn utc_now_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let tod = secs % 86_400;
    // Howard Hinnant's civil_from_days, days since 1970-01-01.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        tod / 3600,
        (tod / 60) % 60,
        tod % 60
    )
}

impl ManifestRecord {
    /// Builds a record for one finished run, capturing the current git
    /// revision, UTC time and `DISTDA_*` environment policies.
    pub fn capture(
        kernel: &str,
        config: &str,
        cfg_hash: String,
        ticks: u64,
        host_secs: f64,
        validated: bool,
    ) -> Self {
        Self {
            kernel: kernel.to_string(),
            config: config.to_string(),
            config_hash: cfg_hash,
            ticks,
            host_secs,
            validated,
            git_rev: git_rev(),
            date_utc: utc_now_string(),
            threads: distda_sim::env::threads().unwrap_or(0) as u64,
            skip: distda_sim::env::skip(),
            sanitize: distda_sim::env::sanitize(),
            validate: distda_sim::env::validate(),
            env: capture_env(),
            bottleneck: None,
        }
    }

    /// Attaches the explain verdict from a run report's `explain.*` keys
    /// (no-op when the run carried no attribution).
    #[must_use]
    pub fn with_bottleneck(mut self, report: &distda_sim::Report) -> Self {
        self.bottleneck = distda_explain::top_bottleneck(report);
        self
    }

    /// Renders the record as one JSON line (no trailing newline).
    pub fn render_jsonl(&self) -> String {
        let env = self
            .env
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json::escape(k), json::escape(v)))
            .collect::<Vec<_>>()
            .join(",");
        let verdict = match &self.bottleneck {
            Some((who, share)) => format!(
                ",\"bottleneck\":\"{}\",\"bottleneck_share\":{share}",
                json::escape(who)
            ),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"kernel\":\"{}\",\"config\":\"{}\",\"config_hash\":\"{}\",",
                "\"ticks\":{},\"host_secs\":{},\"validated\":{},",
                "\"git_rev\":\"{}\",\"date_utc\":\"{}\",\"threads\":{},",
                "\"skip\":{},\"sanitize\":{},\"validate\":{},\"env\":{{{}}}{}}}"
            ),
            json::escape(&self.kernel),
            json::escape(&self.config),
            json::escape(&self.config_hash),
            self.ticks,
            self.host_secs,
            self.validated,
            json::escape(&self.git_rev),
            json::escape(&self.date_utc),
            self.threads,
            self.skip,
            self.sanitize,
            self.validate,
            env,
            verdict,
        )
    }

    /// Parses one JSON line produced by [`ManifestRecord::render_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn parse_jsonl(line: &str) -> Result<Self, String> {
        let v = json::parse(line).map_err(|e| format!("manifest line: {e:?}"))?;
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest line missing string field `{key}`"))
        };
        let n = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(json::Value::as_num)
                .ok_or_else(|| format!("manifest line missing numeric field `{key}`"))
        };
        let b = |key: &str| -> Result<bool, String> {
            match v.get(key) {
                Some(json::Value::Bool(x)) => Ok(*x),
                _ => Err(format!("manifest line missing bool field `{key}`")),
            }
        };
        // Absent in manifests written before the knob snapshot existed.
        let env = match v.get("env") {
            None => Vec::new(),
            Some(json::Value::Obj(o)) => o
                .iter()
                .map(|(k, val)| {
                    val.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("manifest `env.{k}` must be a string"))
                })
                .collect::<Result<Vec<_>, String>>()?,
            Some(_) => return Err("manifest `env` must be an object".to_string()),
        };
        // Absent before explain verdicts existed, and on runs without one.
        let bottleneck = match v.get("bottleneck") {
            None => None,
            Some(who) => {
                let who = who
                    .as_str()
                    .ok_or("manifest `bottleneck` must be a string")?;
                let share = v
                    .get("bottleneck_share")
                    .and_then(json::Value::as_num)
                    .ok_or("manifest `bottleneck` requires numeric `bottleneck_share`")?;
                Some((who.to_string(), share))
            }
        };
        Ok(Self {
            kernel: s("kernel")?,
            config: s("config")?,
            config_hash: s("config_hash")?,
            ticks: n("ticks")? as u64,
            host_secs: n("host_secs")?,
            validated: b("validated")?,
            git_rev: s("git_rev")?,
            date_utc: s("date_utc")?,
            threads: n("threads")? as u64,
            skip: b("skip")?,
            sanitize: b("sanitize")?,
            validate: b("validate")?,
            env,
            bottleneck,
        })
    }

    /// Appends this record to the JSONL stream at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write as _;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.render_jsonl())
    }

    /// [`ManifestRecord::append_to`] at [`DEFAULT_MANIFEST_PATH`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append(&self) -> std::io::Result<()> {
        self.append_to(&PathBuf::from(DEFAULT_MANIFEST_PATH))
    }
}

/// Parses a whole JSONL manifest stream, skipping blank lines.
///
/// # Errors
///
/// Returns the first malformed line's error, 1-indexed.
pub fn parse_manifests(stream: &str) -> Result<Vec<ManifestRecord>, String> {
    stream
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| ManifestRecord::parse_jsonl(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_system::{ConfigKind, RunConfig};

    #[test]
    fn config_hash_is_structural() {
        let a = RunConfig::named(ConfigKind::DistDAF);
        let b = RunConfig::named(ConfigKind::DistDAF);
        let c = RunConfig::named(ConfigKind::OoO);
        assert_eq!(config_hash(&a), config_hash(&b));
        assert_ne!(config_hash(&a), config_hash(&c));
        assert!(config_hash(&a).starts_with("fnv1a:"));
    }

    #[test]
    fn jsonl_round_trips() {
        let rec = ManifestRecord {
            kernel: "pf".to_string(),
            config: "Dist-DA-F \"quoted\"".to_string(),
            config_hash: "fnv1a:0123456789abcdef".to_string(),
            ticks: 123_456_789,
            host_secs: 1.25,
            validated: true,
            git_rev: "deadbeef".to_string(),
            date_utc: "2026-08-07T00:00:00Z".to_string(),
            threads: 8,
            skip: true,
            sanitize: false,
            validate: true,
            env: Vec::new(),
            bottleneck: Some(("engine.3".to_string(), 0.625)),
        };
        let line = rec.render_jsonl();
        assert!(!line.contains('\n'));
        assert_eq!(ManifestRecord::parse_jsonl(&line).unwrap(), rec);
        // Runs without attribution omit the verdict fields entirely.
        let plain = ManifestRecord {
            bottleneck: None,
            ..rec
        };
        let line = plain.render_jsonl();
        assert!(!line.contains("bottleneck"));
        assert_eq!(ManifestRecord::parse_jsonl(&line).unwrap(), plain);
    }

    #[test]
    fn env_knobs_with_equals_and_whitespace_round_trip() {
        let mut rec = ManifestRecord::capture("pf", "OoO", "fnv1a:0".to_string(), 10, 0.5, true);
        rec.env = vec![
            (
                "DISTDA_SERVE_ADDR".to_string(),
                "127.0.0.1:7077".to_string(),
            ),
            (
                "DISTDA_SERVE_CACHE_DIR".to_string(),
                "/tmp/my cache dir/results".to_string(),
            ),
            (
                "DISTDA_SWEEP_OVERRIDES".to_string(),
                "buffer_lines=8 issue_width=2\talloc=first-touch".to_string(),
            ),
        ];
        let line = rec.render_jsonl();
        assert!(!line.contains('\n'));
        let back = ManifestRecord::parse_jsonl(&line).unwrap();
        assert_eq!(back, rec, "`=`/whitespace values must survive verbatim");
    }

    #[test]
    fn manifests_without_env_field_still_parse() {
        // The exact shape this module wrote before the knob snapshot.
        let legacy = concat!(
            "{\"kernel\":\"pf\",\"config\":\"OoO\",\"config_hash\":\"fnv1a:0\",",
            "\"ticks\":10,\"host_secs\":0.5,\"validated\":true,",
            "\"git_rev\":\"deadbeef\",\"date_utc\":\"2026-08-07T00:00:00Z\",",
            "\"threads\":8,\"skip\":false,\"sanitize\":false,\"validate\":true}"
        );
        let rec = ManifestRecord::parse_jsonl(legacy).unwrap();
        assert!(rec.env.is_empty());
        assert_eq!(rec.kernel, "pf");
        // A mistyped snapshot is an error, not a silent drop.
        let bad = legacy.replace("\"validate\":true}", "\"validate\":true,\"env\":[1]}");
        assert!(ManifestRecord::parse_jsonl(&bad).is_err());
    }

    #[test]
    fn stream_parses_and_reports_bad_lines() {
        let rec = ManifestRecord::capture("pf", "OoO", "fnv1a:0".to_string(), 10, 0.5, true);
        let stream = format!("{}\n\n{}\n", rec.render_jsonl(), rec.render_jsonl());
        assert_eq!(parse_manifests(&stream).unwrap().len(), 2);
        let bad = "{\"kernel\":\"pf\"}";
        let err = parse_manifests(bad).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn git_rev_resolves_in_this_repo() {
        let rev = git_rev();
        assert!(rev == "unknown" || rev.len() >= 7, "{rev}");
    }

    #[test]
    fn utc_timestamp_shape() {
        let t = utc_now_string();
        assert_eq!(t.len(), 20, "{t}");
        assert!(t.ends_with('Z') && t.contains('T'));
        assert!(t.starts_with("20"), "{t}");
    }
}
