//! Live sweep progress: a channel-fed reporter thread.
//!
//! A sweep is a fleet of independent simulations; while it runs, the only
//! feedback the harness used to give was a `\r`-rewritten cell counter.
//! [`Progress`] upgrades that to a real reporter: worker threads post
//! cell-started / cell-finished events over an `mpsc` channel, and a
//! single reporter thread aggregates them into
//!
//! - a periodic one-line stderr status (done / running / failed counts
//!   plus average simulated-ticks-per-second throughput), and
//! - a machine-readable JSONL event stream (one object per cell
//!   completion plus a final summary), for dashboards and the CI log.
//!
//! Every JSONL line carries the sweep's `job` id and a monotonic `seq`
//! (starting at 1), so streams from concurrent sweeps appended to one
//! file remain attributable to their job and ordering is testable.
//! [`Progress::from_env`] hands out process-unique job ids; tests and
//! embedders can pin one via [`ProgressConfig::job`].
//!
//! The reporter is strictly an *observer*: workers never block on it
//! (events are fire-and-forget sends), and it touches nothing the
//! simulation reads, so results are identical with progress on or off —
//! enforced by the observability determinism tests.
//!
//! Gated by `DISTDA_PROGRESS` via [`Progress::from_env`].

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use distda_trace::json;

/// Default JSONL event-stream path for env-enabled progress.
pub const DEFAULT_PROGRESS_PATH: &str = "results/sweep_progress.jsonl";

/// Default stderr refresh period.
pub const DEFAULT_PERIOD: Duration = Duration::from_millis(500);

enum Event {
    Started,
    Done {
        kernel: String,
        config: String,
        ok: bool,
        host_secs: f64,
        ticks: u64,
    },
}

/// Where and how often the reporter speaks.
#[derive(Debug, Clone)]
pub struct ProgressConfig {
    /// Render the one-line `\r` status to stderr.
    pub stderr: bool,
    /// Append JSONL events to this path (`None` = no stream).
    pub jsonl: Option<PathBuf>,
    /// Stderr refresh period.
    pub period: Duration,
    /// Job id stamped on every JSONL line. [`Progress::from_env`]
    /// allocates a process-unique one; the default is 1.
    pub job: u64,
}

impl Default for ProgressConfig {
    fn default() -> Self {
        Self {
            stderr: true,
            jsonl: None,
            period: DEFAULT_PERIOD,
            job: 1,
        }
    }
}

/// Process-wide job-id well for [`Progress::from_env`].
static NEXT_JOB: AtomicU64 = AtomicU64::new(1);

/// A live sweep-progress reporter. See the [module docs](self).
pub struct Progress {
    tx: Sender<Event>,
    handle: Option<JoinHandle<()>>,
}

struct Reporter {
    total: usize,
    cfg: ProgressConfig,
    started: usize,
    done: usize,
    failed: usize,
    ticks: u64,
    sim_secs: f64,
    /// Per-job monotonic JSONL sequence number; the next line is `seq+1`.
    seq: u64,
    t0: Instant,
    out: Option<std::fs::File>,
}

impl Reporter {
    fn jsonl(&mut self, line: &str) {
        if let Some(f) = &mut self.out {
            let _ = writeln!(f, "{line}");
        }
    }

    fn status_line(&self) -> String {
        let running = self.started.saturating_sub(self.done + self.failed);
        let elapsed = self.t0.elapsed().as_secs_f64().max(1e-9);
        let tps = self.ticks as f64 / elapsed;
        format!(
            "[sweep] {}/{} done, {} running, {} failed | {:.1}M ticks/s avg",
            self.done + self.failed,
            self.total,
            running,
            self.failed,
            tps / 1e6,
        )
    }

    fn render(&self) {
        if self.cfg.stderr {
            // Pad so a shorter line fully overwrites a longer one.
            eprint!("\r{:<72}", self.status_line());
        }
    }

    fn on_event(&mut self, ev: Event) {
        match ev {
            Event::Started => self.started += 1,
            Event::Done {
                kernel,
                config,
                ok,
                host_secs,
                ticks,
            } => {
                if ok {
                    self.done += 1;
                } else {
                    self.failed += 1;
                }
                self.ticks += ticks;
                self.sim_secs += host_secs;
                let t_ms = self.t0.elapsed().as_millis();
                self.seq += 1;
                let line = format!(
                    concat!(
                        "{{\"t_ms\":{},\"job\":{},\"seq\":{},\"event\":\"cell\",",
                        "\"kernel\":\"{}\",\"config\":\"{}\",",
                        "\"ok\":{},\"host_secs\":{},\"ticks\":{}}}"
                    ),
                    t_ms,
                    self.cfg.job,
                    self.seq,
                    json::escape(&kernel),
                    json::escape(&config),
                    ok,
                    host_secs,
                    ticks,
                );
                self.jsonl(&line);
            }
        }
    }

    fn finish(&mut self) {
        let elapsed = self.t0.elapsed().as_secs_f64();
        self.seq += 1;
        let line = format!(
            concat!(
                "{{\"t_ms\":{},\"job\":{},\"seq\":{},\"event\":\"summary\",",
                "\"done\":{},\"failed\":{},",
                "\"ticks\":{},\"sim_secs_sum\":{},\"elapsed_secs\":{}}}"
            ),
            self.t0.elapsed().as_millis(),
            self.cfg.job,
            self.seq,
            self.done,
            self.failed,
            self.ticks,
            self.sim_secs,
            elapsed,
        );
        self.jsonl(&line);
        if self.cfg.stderr {
            self.render();
            eprintln!();
        }
    }
}

impl Progress {
    /// Starts a reporter for a sweep of `total` cells.
    pub fn start(total: usize, cfg: ProgressConfig) -> Self {
        let out = cfg.jsonl.as_ref().and_then(|p| {
            if let Some(parent) = p.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            std::fs::File::create(p).ok()
        });
        let (tx, rx) = mpsc::channel::<Event>();
        let mut rep = Reporter {
            total,
            cfg,
            started: 0,
            done: 0,
            failed: 0,
            ticks: 0,
            sim_secs: 0.0,
            seq: 0,
            t0: Instant::now(),
            out,
        };
        let period = rep.cfg.period;
        let handle = std::thread::spawn(move || {
            let mut deadline = Instant::now() + period;
            loop {
                let wait = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(ev) => rep.on_event(ev),
                    Err(RecvTimeoutError::Timeout) => {
                        rep.render();
                        deadline = Instant::now() + period;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            rep.finish();
        });
        Self {
            tx,
            handle: Some(handle),
        }
    }

    /// A reporter per the `DISTDA_PROGRESS` policy: `None` when progress
    /// is off; otherwise stderr + the default JSONL stream at
    /// [`DEFAULT_PROGRESS_PATH`].
    pub fn from_env(total: usize) -> Option<Self> {
        if !distda_sim::env::progress() {
            return None;
        }
        Some(Self::start(
            total,
            ProgressConfig {
                stderr: true,
                jsonl: Some(PathBuf::from(DEFAULT_PROGRESS_PATH)),
                period: DEFAULT_PERIOD,
                job: NEXT_JOB.fetch_add(1, Ordering::SeqCst),
            },
        ))
    }

    /// Posts "one cell started". Never blocks.
    pub fn cell_started(&self) {
        let _ = self.tx.send(Event::Started);
    }

    /// Posts "one cell finished". Never blocks.
    pub fn cell_done(&self, kernel: &str, config: &str, ok: bool, host_secs: f64, ticks: u64) {
        let _ = self.tx.send(Event::Done {
            kernel: kernel.to_string(),
            config: config.to_string(),
            ok,
            host_secs,
            ticks,
        });
    }

    /// Shuts the reporter down: drains pending events, writes the summary
    /// JSONL line and the final stderr status, joins the thread.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        // Dropping the only sender disconnects the channel after the
        // reporter drains it.
        let (dead_tx, _) = mpsc::channel();
        let tx = std::mem::replace(&mut self.tx, dead_tx);
        drop(tx);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_jsonl_stream() {
        let dir = std::env::temp_dir().join("distda_obs_progress_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("stream.jsonl");
        let p = Progress::start(
            2,
            ProgressConfig {
                stderr: false,
                jsonl: Some(path.clone()),
                period: Duration::from_millis(10),
                job: 42,
            },
        );
        p.cell_started();
        p.cell_done("pf", "OoO", true, 0.25, 1000);
        p.cell_started();
        p.cell_done("nw", "Dist-DA-F", false, 0.5, 0);
        p.finish();
        let stream = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = stream.lines().collect();
        assert_eq!(lines.len(), 3, "{stream}");
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("event").and_then(json::Value::as_str),
            Some("cell")
        );
        assert_eq!(
            first.get("kernel").and_then(json::Value::as_str),
            Some("pf")
        );
        // Every line carries the job id and a strictly increasing seq.
        for (i, line) in lines.iter().enumerate() {
            let v = json::parse(line).unwrap();
            assert_eq!(v.get("job").and_then(json::Value::as_num), Some(42.0));
            assert_eq!(
                v.get("seq").and_then(json::Value::as_num),
                Some((i + 1) as f64),
                "{line}"
            );
        }
        let summary = json::parse(lines[2]).unwrap();
        assert_eq!(
            summary.get("event").and_then(json::Value::as_str),
            Some("summary")
        );
        assert_eq!(summary.get("done").and_then(json::Value::as_num), Some(1.0));
        assert_eq!(
            summary.get("failed").and_then(json::Value::as_num),
            Some(1.0)
        );
        assert_eq!(
            summary.get("ticks").and_then(json::Value::as_num),
            Some(1000.0)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn from_env_defaults_off() {
        // DISTDA_PROGRESS is unset in the test environment.
        if std::env::var("DISTDA_PROGRESS").is_err() {
            assert!(Progress::from_env(10).is_none());
        }
    }

    #[test]
    fn status_line_reports_counts() {
        let rep = Reporter {
            total: 10,
            cfg: ProgressConfig::default(),
            started: 5,
            done: 2,
            failed: 1,
            ticks: 3_000_000,
            sim_secs: 0.0,
            seq: 0,
            t0: Instant::now(),
            out: None,
        };
        let line = rep.status_line();
        assert!(line.contains("3/10 done"), "{line}");
        assert!(line.contains("2 running"), "{line}");
        assert!(line.contains("1 failed"), "{line}");
    }
}
