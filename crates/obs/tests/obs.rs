//! End-to-end observability tests: the self-profiler against a real
//! simulated run, and the central invariant — observation never perturbs
//! simulation.

use distda_obs::Registry;
use distda_sim::Profiler;
use distda_system::{ConfigKind, RunConfig, Topology};
use distda_workloads::{micro, pathfinder, Scale};

#[test]
fn profiler_accounts_for_a_real_run() {
    let w = pathfinder(&Scale::tiny());
    let cfg = RunConfig::named(ConfigKind::DistDAF);
    let prof = Profiler::enabled();
    let r = w.try_simulate_profiled(&cfg, &prof).unwrap();
    assert!(r.validated);
    let snap = prof.snapshot_at(r.ticks).unwrap();

    // Executed + skipped ticks partition the run exactly.
    assert_eq!(
        snap.ticks_executed + snap.ticks_skipped,
        r.ticks,
        "profiler tick accounting must partition the run"
    );
    assert!(snap.ticks_executed > 0);
    assert!(!snap.comps.is_empty(), "machine registers components");

    // Per-component active ticks are bounded by executed ticks, and their
    // sum by executed ticks times the component count.
    for c in &snap.comps {
        assert!(
            c.active_ticks <= snap.ticks_executed,
            "{}: {} active > {} executed",
            c.name,
            c.active_ticks,
            snap.ticks_executed
        );
    }
    let sum: u64 = snap.comps.iter().map(|c| c.active_ticks).sum();
    assert!(sum <= snap.ticks_executed * snap.comps.len() as u64);

    // Host time was actually measured, and the table renders it.
    assert!(snap.total_host_ns() > 0);
    let table = distda_sim::profile::render_table(&snap);
    assert!(table.contains("component"), "{table}");
    assert!(table.contains("executed"), "{table}");
}

#[test]
fn profiling_does_not_perturb_results() {
    let w = pathfinder(&Scale::tiny());
    let cfg = RunConfig::named(ConfigKind::DistDAIO);
    let plain = w.try_simulate(&cfg).unwrap();
    let prof = Profiler::enabled();
    let profiled = w.try_simulate_profiled(&cfg, &prof).unwrap();
    assert_eq!(
        format!("{plain:?}"),
        format!("{profiled:?}"),
        "RunResult must be bit-identical with the profiler attached"
    );
}

#[test]
fn registry_ingests_a_run_and_profile() {
    let w = pathfinder(&Scale::tiny());
    let cfg = RunConfig::named(ConfigKind::DistDAF);
    let prof = Profiler::enabled();
    let r = w.try_simulate_profiled(&cfg, &prof).unwrap();
    let snap = prof.snapshot_at(r.ticks).unwrap();

    let mut reg = Registry::new();
    reg.ingest_run(&r);
    reg.ingest_profile(&[("kernel", &r.kernel), ("config", &r.config)], &snap);
    reg.ingest_report("distda_stat", &[("kernel", &r.kernel)], &r.report);
    let om = reg.openmetrics();
    assert!(om.contains("distda_simulated_ticks_total"), "{om}");
    assert!(om.contains("distda_prof_host_ns_total"), "{om}");
    assert!(om.contains(&format!("kernel=\"{}\"", r.kernel)), "{om}");
    assert!(om.ends_with("# EOF\n"));
}

/// Sums every sample of one metric in an OpenMetrics export, optionally
/// keeping only series carrying a given label pair.
fn series_sum(om: &str, metric: &str, label: Option<(&str, &str)>) -> f64 {
    om.lines()
        .filter(|l| l.starts_with(&format!("{metric}{{")) || l.starts_with(&format!("{metric} ")))
        .filter(|l| match label {
            Some((k, v)) => l.contains(&format!("{k}=\"{v}\"")),
            None => true,
        })
        .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
        .sum()
}

/// The per-tenant series a multi-tenant run exports must partition the
/// whole-machine totals: summing `distda_tenant_*` over tenants recovers
/// the machine-level iteration count and NoC hop-byte total exactly.
#[test]
fn tenant_series_partition_machine_totals() {
    let mut topo = Topology::mesh(4, 2);
    topo.tenants = 2;
    let w = micro::saxpy(256, 2.0, 9);
    let cfg = RunConfig::named(ConfigKind::DistDAIO).with_topology(topo);
    let r = w.try_simulate(&cfg).unwrap();
    assert!(r.validated, "multi-tenant run must validate");

    let mut reg = Registry::new();
    reg.ingest_run(&r);
    let om = reg.openmetrics();

    // Both tenants appear as labelled series.
    for t in ["0", "1"] {
        assert!(om.contains(&format!("tenant=\"{t}\"")), "{om}");
    }
    assert!(om.contains("distda_tenancy_fairness"), "{om}");

    // Per-tenant iterations sum to the machine's accelerator iterations.
    let iters = series_sum(&om, "distda_tenant_iterations_total", None);
    assert_eq!(iters, r.report.get("accel.iterations").unwrap(), "{om}");

    // Per-tenant hop bytes partition the mesh's total hop bytes.
    let hops = series_sum(&om, "distda_tenant_hop_bytes_total", None);
    assert_eq!(hops, r.report.sum_prefix("noc.hop_bytes."), "{om}");

    // Each tenant's share is itself nonzero — attribution, not lumping.
    for t in ["0", "1"] {
        let h = series_sum(&om, "distda_tenant_hop_bytes_total", Some(("tenant", t)));
        assert!(h > 0.0, "tenant {t} moved no bytes: {om}");
    }
}

/// The per-port stall series exported from `port.*` report keys must sum
/// back to the whole-machine stall totals: channel-port stalls recover
/// `accel.stall_chan` exactly, and ACP response-port stalls recover
/// `accel.stall_mem` exactly. This pins the engine's per-port stall
/// attribution hooks to the two sites that charge its own counters.
#[test]
fn port_series_sum_to_machine_stalls() {
    let w = pathfinder(&Scale::tiny());
    let cfg = RunConfig::named(ConfigKind::DistDAIO);
    let r = w.try_simulate(&cfg).unwrap();
    assert!(r.validated);

    let mut reg = Registry::new();
    reg.ingest_run(&r);
    let om = reg.openmetrics();

    // Ports exported and carrying traffic.
    assert!(om.contains("distda_port_pushed_total"), "{om}");
    assert!(
        series_sum(&om, "distda_port_pushed_total", None) > 0.0,
        "{om}"
    );

    // Stall cycles on ports whose name starts with `prefix`.
    let stalls_for = |prefix: &str| -> f64 {
        om.lines()
            .filter(|l| l.starts_with("distda_port_stall_cycles_total{"))
            .filter(|l| l.contains(&format!("port=\"{prefix}")))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
            .sum()
    };
    let chan = r.report.get("accel.stall_chan").unwrap();
    let mem = r.report.get("accel.stall_mem").unwrap();
    assert_eq!(stalls_for("chan"), chan, "{om}");
    assert_eq!(stalls_for("mem.resp"), mem, "{om}");
    assert!(
        chan + mem > 0.0,
        "expected the run to exercise back-pressure: {om}"
    );
}
