//! End-to-end observability tests: the self-profiler against a real
//! simulated run, and the central invariant — observation never perturbs
//! simulation.

use distda_obs::Registry;
use distda_sim::Profiler;
use distda_system::{ConfigKind, RunConfig};
use distda_workloads::{pathfinder, Scale};

#[test]
fn profiler_accounts_for_a_real_run() {
    let w = pathfinder(&Scale::tiny());
    let cfg = RunConfig::named(ConfigKind::DistDAF);
    let prof = Profiler::enabled();
    let r = w.try_simulate_profiled(&cfg, &prof).unwrap();
    assert!(r.validated);
    let snap = prof.snapshot_at(r.ticks).unwrap();

    // Executed + skipped ticks partition the run exactly.
    assert_eq!(
        snap.ticks_executed + snap.ticks_skipped,
        r.ticks,
        "profiler tick accounting must partition the run"
    );
    assert!(snap.ticks_executed > 0);
    assert!(!snap.comps.is_empty(), "machine registers components");

    // Per-component active ticks are bounded by executed ticks, and their
    // sum by executed ticks times the component count.
    for c in &snap.comps {
        assert!(
            c.active_ticks <= snap.ticks_executed,
            "{}: {} active > {} executed",
            c.name,
            c.active_ticks,
            snap.ticks_executed
        );
    }
    let sum: u64 = snap.comps.iter().map(|c| c.active_ticks).sum();
    assert!(sum <= snap.ticks_executed * snap.comps.len() as u64);

    // Host time was actually measured, and the table renders it.
    assert!(snap.total_host_ns() > 0);
    let table = distda_sim::profile::render_table(&snap);
    assert!(table.contains("component"), "{table}");
    assert!(table.contains("executed"), "{table}");
}

#[test]
fn profiling_does_not_perturb_results() {
    let w = pathfinder(&Scale::tiny());
    let cfg = RunConfig::named(ConfigKind::DistDAIO);
    let plain = w.try_simulate(&cfg).unwrap();
    let prof = Profiler::enabled();
    let profiled = w.try_simulate_profiled(&cfg, &prof).unwrap();
    assert_eq!(
        format!("{plain:?}"),
        format!("{profiled:?}"),
        "RunResult must be bit-identical with the profiler attached"
    );
}

#[test]
fn registry_ingests_a_run_and_profile() {
    let w = pathfinder(&Scale::tiny());
    let cfg = RunConfig::named(ConfigKind::DistDAF);
    let prof = Profiler::enabled();
    let r = w.try_simulate_profiled(&cfg, &prof).unwrap();
    let snap = prof.snapshot_at(r.ticks).unwrap();

    let mut reg = Registry::new();
    reg.ingest_run(&r);
    reg.ingest_profile(&[("kernel", &r.kernel), ("config", &r.config)], &snap);
    reg.ingest_report("distda_stat", &[("kernel", &r.kernel)], &r.report);
    let om = reg.openmetrics();
    assert!(om.contains("distda_simulated_ticks_total"), "{om}");
    assert!(om.contains("distda_prof_host_ns_total"), "{om}");
    assert!(om.contains(&format!("kernel=\"{}\"", r.kernel)), "{om}");
    assert!(om.ends_with("# EOF\n"));
}
