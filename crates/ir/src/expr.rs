//! Expressions of the kernel IR.
//!
//! Index expressions of [`Expr::Load`] are ordinary expressions; the
//! compiler's scalar-evolution pass recognizes the affine ones as streams
//! and the `Load`-inside-index ones as indirect accesses — exactly the
//! distinction the paper's Section V-A draws.

use crate::value::Value;

/// Identifies a memory object (application data structure). The paper calls
/// this the *virtual object ID*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// Identifies a scalar program variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScalarId(pub usize);

/// Identifies a loop induction variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopVarId(pub usize);

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    Lt,
    Le,
    Eq,
    And,
    Or,
}

impl BinOp {
    /// Applies the operator to values.
    pub fn apply(self, a: Value, b: Value) -> Value {
        match self {
            BinOp::Add => Value::add(a, b),
            BinOp::Sub => Value::sub(a, b),
            BinOp::Mul => Value::mul(a, b),
            BinOp::Div => Value::div(a, b),
            BinOp::Rem => Value::rem(a, b),
            BinOp::Min => Value::min(a, b),
            BinOp::Max => Value::max(a, b),
            BinOp::Lt => Value::lt(a, b),
            BinOp::Le => Value::le(a, b),
            BinOp::Eq => Value::eq_val(a, b),
            BinOp::And => Value::I((a.truthy() && b.truthy()) as i64),
            BinOp::Or => Value::I((a.truthy() || b.truthy()) as i64),
        }
    }

    /// Execution latency in accelerator cycles (single-issue in-order).
    pub fn latency(self) -> u64 {
        match self {
            BinOp::Add
            | BinOp::Sub
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Eq
            | BinOp::And
            | BinOp::Or => 1,
            BinOp::Min | BinOp::Max => 1,
            BinOp::Mul => 3,
            BinOp::Div | BinOp::Rem => 12,
        }
    }

    /// Whether the op needs a floating-point/complex ALU on a CGRA tile.
    pub fn is_complex(self) -> bool {
        matches!(self, BinOp::Mul | BinOp::Div | BinOp::Rem)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
    Sqrt,
    Abs,
}

impl UnOp {
    /// Applies the operator.
    pub fn apply(self, a: Value) -> Value {
        match self {
            UnOp::Neg => Value::neg(a),
            UnOp::Not => Value::not(a),
            UnOp::Sqrt => Value::sqrt(a),
            UnOp::Abs => Value::abs(a),
        }
    }

    /// Execution latency in accelerator cycles.
    pub fn latency(self) -> u64 {
        match self {
            UnOp::Neg | UnOp::Not | UnOp::Abs => 1,
            UnOp::Sqrt => 12,
        }
    }

    /// Whether the op needs a floating-point/complex unit.
    pub fn is_complex(self) -> bool {
        matches!(self, UnOp::Sqrt)
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal.
    Const(Value),
    /// Loop induction variable.
    LoopVar(LoopVarId),
    /// Scalar variable read.
    Scalar(ScalarId),
    /// Array element read; the index is in elements.
    Load(ArrayId, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// `cond != 0 ? a : b`, evaluated non-speculatively on both sides
    /// (predication, as the compiler's if-conversion produces).
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

// Builder methods intentionally mirror the IR operator names
// (`add`, `not`, ...); they are not operator-trait impls.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Integer literal.
    pub fn c(v: i64) -> Expr {
        Expr::Const(Value::I(v))
    }

    /// Float literal.
    pub fn cf(v: f64) -> Expr {
        Expr::Const(Value::F(v))
    }

    /// Array load.
    pub fn load(a: ArrayId, idx: Expr) -> Expr {
        Expr::Load(a, Box::new(idx))
    }

    fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: impl Into<Expr>) -> Expr {
        Self::bin(BinOp::Lt, self, rhs.into())
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: impl Into<Expr>) -> Expr {
        Self::bin(BinOp::Le, self, rhs.into())
    }

    /// `self == rhs`.
    pub fn eq_(self, rhs: impl Into<Expr>) -> Expr {
        Self::bin(BinOp::Eq, self, rhs.into())
    }

    /// `min(self, rhs)`.
    pub fn min(self, rhs: impl Into<Expr>) -> Expr {
        Self::bin(BinOp::Min, self, rhs.into())
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: impl Into<Expr>) -> Expr {
        Self::bin(BinOp::Max, self, rhs.into())
    }

    /// Logical and.
    pub fn and(self, rhs: impl Into<Expr>) -> Expr {
        Self::bin(BinOp::And, self, rhs.into())
    }

    /// Logical or.
    pub fn or(self, rhs: impl Into<Expr>) -> Expr {
        Self::bin(BinOp::Or, self, rhs.into())
    }

    /// Remainder.
    pub fn rem(self, rhs: impl Into<Expr>) -> Expr {
        Self::bin(BinOp::Rem, self, rhs.into())
    }

    /// `self != 0 ? a : b` (predicated select).
    pub fn select(self, a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Select(Box::new(self), Box::new(a.into()), Box::new(b.into()))
    }

    /// Square root.
    pub fn sqrt(self) -> Expr {
        Expr::Un(UnOp::Sqrt, Box::new(self))
    }

    /// Absolute value.
    pub fn abs(self) -> Expr {
        Expr::Un(UnOp::Abs, Box::new(self))
    }

    /// Logical not.
    pub fn not(self) -> Expr {
        Expr::Un(UnOp::Not, Box::new(self))
    }

    /// Visits every node in the tree (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Load(_, i) => i.visit(f),
            Expr::Bin(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Un(_, a) => a.visit(f),
            Expr::Select(c, a, b) => {
                c.visit(f);
                a.visit(f);
                b.visit(f);
            }
            _ => {}
        }
    }

    /// Counts the operation nodes (loads + arithmetic), the static size the
    /// compiler reports in Table VI.
    pub fn op_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if matches!(
                e,
                Expr::Load(..) | Expr::Bin(..) | Expr::Un(..) | Expr::Select(..)
            ) {
                n += 1;
            }
        });
        n
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::c(v)
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Expr {
        Expr::cf(v)
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_build_trees() {
        let e = Expr::c(1) + Expr::c(2) * Expr::c(3);
        match &e {
            Expr::Bin(BinOp::Add, a, b) => {
                assert_eq!(**a, Expr::c(1));
                assert!(matches!(**b, Expr::Bin(BinOp::Mul, _, _)));
            }
            _ => panic!("unexpected shape"),
        }
    }

    #[test]
    fn op_count_counts_work_nodes() {
        let a = ArrayId(0);
        // load + load + add + mul = 4
        let e = (Expr::load(a, Expr::c(0)) + Expr::load(a, Expr::c(1))) * Expr::c(2);
        assert_eq!(e.op_count(), 4);
        assert_eq!(Expr::c(5).op_count(), 0);
    }

    #[test]
    fn binop_apply_matches_value_ops() {
        assert_eq!(BinOp::Add.apply(Value::I(1), Value::I(2)), Value::I(3));
        assert_eq!(BinOp::Lt.apply(Value::I(1), Value::I(2)), Value::I(1));
        assert_eq!(BinOp::And.apply(Value::I(1), Value::I(0)), Value::I(0));
        assert_eq!(BinOp::Or.apply(Value::I(0), Value::F(2.0)), Value::I(1));
    }

    #[test]
    fn latencies_are_positive_and_divide_sensibly() {
        for op in [BinOp::Add, BinOp::Mul, BinOp::Div] {
            assert!(op.latency() >= 1);
        }
        assert!(BinOp::Div.latency() > BinOp::Mul.latency());
        assert!(BinOp::Mul.latency() > BinOp::Add.latency());
        assert!(UnOp::Sqrt.latency() > UnOp::Neg.latency());
    }

    #[test]
    fn complex_classification() {
        assert!(BinOp::Mul.is_complex());
        assert!(!BinOp::Add.is_complex());
        assert!(UnOp::Sqrt.is_complex());
    }

    #[test]
    fn visit_reaches_all_nodes() {
        let a = ArrayId(1);
        let e = Expr::load(a, Expr::c(3) + Expr::LoopVar(LoopVarId(0)));
        let mut kinds = Vec::new();
        e.visit(&mut |n| kinds.push(std::mem::discriminant(n)));
        assert_eq!(kinds.len(), 4); // load, add, const, loopvar
    }
}
