//! The reference interpreter: functional execution of a [`Program`].
//!
//! Every accelerated configuration's final memory image is validated
//! against this interpreter, mirroring the paper's "applications with
//! accelerator offloads are validated by execution until program
//! completion".

use crate::expr::{Expr, ScalarId};
use crate::program::{Program, Stmt};
use crate::value::Value;

/// Functional memory: one `Vec<Value>` per declared array.
#[derive(Debug, Clone, PartialEq)]
pub struct Memory {
    arrays: Vec<Vec<Value>>,
}

impl Memory {
    /// Allocates zero-initialized memory for a program's arrays.
    pub fn for_program(p: &Program) -> Self {
        Self {
            arrays: p
                .arrays
                .iter()
                .map(|a| {
                    let zero = if a.is_float {
                        Value::F(0.0)
                    } else {
                        Value::I(0)
                    };
                    vec![zero; a.len]
                })
                .collect(),
        }
    }

    /// Read-only view of an array.
    pub fn array(&self, a: crate::expr::ArrayId) -> &[Value] {
        &self.arrays[a.0]
    }

    /// Mutable view of an array (for input initialization).
    pub fn array_mut(&mut self, a: crate::expr::ArrayId) -> &mut [Value] {
        &mut self.arrays[a.0]
    }

    /// Reads an element, clamping out-of-bounds indices to the array edge
    /// (the kernels are in-bounds by construction; clamping keeps the
    /// interpreter total under property-test fuzzing).
    pub fn load(&self, a: crate::expr::ArrayId, idx: i64) -> Value {
        let arr = &self.arrays[a.0];
        let i = (idx.max(0) as usize).min(arr.len().saturating_sub(1));
        arr.get(i).copied().unwrap_or(Value::I(0))
    }

    /// Writes an element with the same clamping as [`Memory::load`].
    pub fn store(&mut self, a: crate::expr::ArrayId, idx: i64, v: Value) {
        let arr = &mut self.arrays[a.0];
        if arr.is_empty() {
            return;
        }
        let i = (idx.max(0) as usize).min(arr.len() - 1);
        arr[i] = v;
    }
}

/// Interpreter state (scalars + loop variables) over a memory image.
#[derive(Debug)]
pub struct Interp<'p> {
    prog: &'p Program,
    scalars: Vec<Value>,
    loop_vars: Vec<i64>,
    /// Dynamic statement budget guard (deterministic kernels stay far
    /// below it; a runaway loop aborts with a panic instead of hanging).
    budget: u64,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter for a program.
    pub fn new(prog: &'p Program) -> Self {
        Self {
            prog,
            scalars: prog.scalars.iter().map(|s| s.init).collect(),
            loop_vars: vec![0; prog.loop_var_count],
            budget: 2_000_000_000,
        }
    }

    /// Runs the program to completion over `mem`, returning final scalars.
    ///
    /// # Panics
    ///
    /// Panics if the dynamic statement budget is exhausted.
    pub fn run(mut self, mem: &mut Memory) -> Vec<Value> {
        // Clone the body handle to avoid double-borrowing self.
        let body = &self.prog.body;
        self.exec_block(body, mem);
        self.scalars
    }

    fn exec_block(&mut self, stmts: &[Stmt], mem: &mut Memory) {
        for s in stmts {
            self.exec(s, mem);
        }
    }

    fn exec(&mut self, s: &Stmt, mem: &mut Memory) {
        self.budget = self
            .budget
            .checked_sub(1)
            .expect("interpreter budget exhausted");
        match s {
            Stmt::Store(a, idx, val) => {
                let i = self.eval(idx, mem).as_i64();
                let v = self.eval(val, mem);
                mem.store(*a, i, v);
            }
            Stmt::SetScalar(sid, e) => {
                let v = self.eval(e, mem);
                self.scalars[sid.0] = v;
            }
            Stmt::If(c, t, e) => {
                if self.eval(c, mem).truthy() {
                    self.exec_block(t, mem);
                } else {
                    self.exec_block(e, mem);
                }
            }
            Stmt::Loop(l) => {
                let start = self.eval(&l.start, mem).as_i64();
                let end = self.eval(&l.end, mem).as_i64();
                let mut i = start;
                while (l.step > 0 && i < end) || (l.step < 0 && i > end) {
                    self.loop_vars[l.var.0] = i;
                    self.exec_block(&l.body, mem);
                    i += l.step;
                }
            }
        }
    }

    /// Evaluates an expression.
    pub fn eval(&mut self, e: &Expr, mem: &Memory) -> Value {
        match e {
            Expr::Const(v) => *v,
            Expr::LoopVar(lv) => Value::I(self.loop_vars[lv.0]),
            Expr::Scalar(s) => self.scalars[s.0],
            Expr::Load(a, idx) => {
                let i = self.eval(idx, mem).as_i64();
                mem.load(*a, i)
            }
            Expr::Bin(op, a, b) => {
                let va = self.eval(a, mem);
                let vb = self.eval(b, mem);
                op.apply(va, vb)
            }
            Expr::Un(op, a) => {
                let v = self.eval(a, mem);
                op.apply(v)
            }
            Expr::Select(c, a, b) => {
                // Predicated: both sides evaluated.
                let vc = self.eval(c, mem);
                let va = self.eval(a, mem);
                let vb = self.eval(b, mem);
                if vc.truthy() {
                    va
                } else {
                    vb
                }
            }
        }
    }

    /// Reads a scalar mid-run (for tests).
    pub fn scalar(&self, s: ScalarId) -> Value {
        self.scalars[s.0]
    }
}

/// Convenience: runs `prog` over `mem`, returning final scalar values.
pub fn run(prog: &Program, mem: &mut Memory) -> Vec<Value> {
    Interp::new(prog).run(mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn axpy_computes_expected_values() {
        let mut b = ProgramBuilder::new("axpy");
        let x = b.array_f64("x", 8);
        let y = b.array_f64("y", 8);
        b.for_(0, 8, 1, |b, i| {
            let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
            b.store(y, i, v);
        });
        let p = b.build();
        let mut mem = Memory::for_program(&p);
        for i in 0..8 {
            mem.array_mut(x)[i] = Value::F(i as f64);
            mem.array_mut(y)[i] = Value::F(1.0);
        }
        run(&p, &mut mem);
        for i in 0..8 {
            assert_eq!(mem.array(y)[i], Value::F(2.0 * i as f64 + 1.0));
        }
    }

    #[test]
    fn reduction_through_scalar() {
        let mut b = ProgramBuilder::new("sum");
        let x = b.array_i64("x", 5);
        let acc = b.scalar("acc", 0i64);
        b.for_(0, 5, 1, |b, i| {
            b.set(acc, Expr::Scalar(acc) + Expr::load(x, i));
        });
        let p = b.build();
        let mut mem = Memory::for_program(&p);
        for i in 0..5 {
            mem.array_mut(x)[i] = Value::I(i as i64 + 1);
        }
        let scalars = run(&p, &mut mem);
        assert_eq!(scalars[acc.0], Value::I(15));
    }

    #[test]
    fn dynamic_inner_bounds_read_memory() {
        // CSR-style: inner loop bounds come from an index array.
        let mut b = ProgramBuilder::new("csr");
        let ap = b.array_i64("Ap", 3);
        let out = b.array_i64("out", 4);
        b.for_(0, 2, 1, |b, i| {
            let lo = Expr::load(ap, i.clone());
            let hi = Expr::load(ap, i + Expr::c(1));
            b.for_(lo, hi, 1, |b, j| {
                b.store(out, j.clone(), j + Expr::c(100));
            });
        });
        let p = b.build();
        let mut mem = Memory::for_program(&p);
        mem.array_mut(ap)
            .copy_from_slice(&[Value::I(0), Value::I(3), Value::I(4)]);
        run(&p, &mut mem);
        let got: Vec<i64> = mem.array(out).iter().map(|v| v.as_i64()).collect();
        assert_eq!(got, vec![100, 101, 102, 103]);
    }

    #[test]
    fn negative_step_counts_down() {
        let mut b = ProgramBuilder::new("rev");
        let x = b.array_i64("x", 4);
        let k = b.scalar("k", 0i64);
        b.for_(3, -1, -1, |b, i| {
            b.store(x, Expr::Scalar(k), i);
            b.set(k, Expr::Scalar(k) + Expr::c(1));
        });
        let p = b.build();
        let mut mem = Memory::for_program(&p);
        run(&p, &mut mem);
        let got: Vec<i64> = mem.array(x).iter().map(|v| v.as_i64()).collect();
        assert_eq!(got, vec![3, 2, 1, 0]);
    }

    #[test]
    fn pointer_chase_follows_links() {
        let mut b = ProgramBuilder::new("pch");
        let next = b.array_i64("next", 4);
        let p_s = b.scalar("p", 0i64);
        b.for_(0, 5, 1, |b, _| {
            b.set(p_s, Expr::load(next, Expr::Scalar(p_s)));
        });
        let p = b.build();
        let mut mem = Memory::for_program(&p);
        // 0 -> 2 -> 1 -> 3 -> 0 cycle.
        mem.array_mut(next)
            .copy_from_slice(&[Value::I(2), Value::I(3), Value::I(1), Value::I(0)]);
        let scalars = run(&p, &mut mem);
        // After 5 hops from 0: 2,1,3,0,2.
        assert_eq!(scalars[p_s.0], Value::I(2));
    }

    #[test]
    fn if_executes_taken_branch_only() {
        let mut b = ProgramBuilder::new("branchy");
        let x = b.array_i64("x", 2);
        b.for_(0, 2, 1, |b, i| {
            b.if_(
                i.eq_(Expr::c(0)),
                |b| b.store(x, Expr::c(0), Expr::c(7)),
                |b| b.store(x, Expr::c(1), Expr::c(9)),
            );
        });
        let p = b.build();
        let mut mem = Memory::for_program(&p);
        run(&p, &mut mem);
        assert_eq!(mem.array(x)[0], Value::I(7));
        assert_eq!(mem.array(x)[1], Value::I(9));
    }

    #[test]
    fn out_of_bounds_clamps_instead_of_panicking() {
        let mut b = ProgramBuilder::new("oob");
        let x = b.array_i64("x", 2);
        b.store(x, Expr::c(99), Expr::c(1));
        let p = b.build();
        let mut mem = Memory::for_program(&p);
        run(&p, &mut mem);
        assert_eq!(mem.array(x)[1], Value::I(1));
    }
}
